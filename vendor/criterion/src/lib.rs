//! Offline shim of the `criterion` benchmarking API this workspace uses.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal timing harness compatible with the subset of criterion the
//! benches call: [`criterion_group!`] / [`criterion_main!`], [`Criterion`],
//! benchmark groups with `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, [`BenchmarkId`], and `Bencher::iter`.
//!
//! It reports median / mean / min per benchmark to stdout. There is no
//! statistical regression analysis, HTML report, or warm-up tuning — the
//! numbers are honest wall-clock medians, sufficient for the relative
//! comparisons the repository's experiments make.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier; re-exported for parity with upstream.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// An id from a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Trait unifying `&str` and [`BenchmarkId`] as bench labels.
pub trait IntoBenchmarkId {
    /// The label to print.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Per-iteration timing helper handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples of a calibrated batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate the batch size so one sample takes ≳200µs, keeping
        // timer quantization out of the medians for cheap bodies.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_micros(200) || iters >= (1 << 20) {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter[0];
        println!(
            "{label:<48} median {} mean {} min {}",
            fmt_time(median),
            fmt_time(mean),
            fmt_time(min)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:9.3} s ")
    } else if secs >= 1e-3 {
        format!("{:9.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:9.3} µs", secs * 1e6)
    } else {
        format!("{:9.1} ns", secs * 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            iters_per_sample: 1,
        };
        f(&mut b);
        b.report(&label);
        self
    }

    /// Runs a benchmark that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            iters_per_sample: 1,
        };
        f(&mut b, input);
        b.report(&label);
        self
    }

    /// Finishes the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        println!("\n== {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.default_sample_size,
            iters_per_sample: 1,
        };
        let label = id.into_label();
        f(&mut b);
        b.report(&label);
        self
    }
}

/// Declares a benchmark group function compatible with upstream usage.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` for `harness = false` targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
