//! Offline shim of the `proptest` API surface this workspace uses.
//!
//! The build environment has no network access, so the workspace vendors a
//! small property-testing harness compatible with the subset of proptest
//! the tests call: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), range strategies over numeric primitives,
//! [`collection::vec`], [`sample::select`], and the `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from upstream, by design:
//! * no shrinking — a failing case prints its inputs and panics;
//! * no persistence — `proptest-regressions` files are ignored;
//! * deterministic seeding per test name, so runs are reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy abstraction: how to produce one random value.
pub mod strategy {
    use rand::rngs::StdRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of value produced.
        type Value;
        /// Draws one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }
}

use strategy::Strategy;

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                use rand::RngExt;
                assert!(self.start < self.end, "cannot sample empty range");
                let u: f64 = rng.random();
                self.start + (self.end - self.start) * u as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f64, f32);

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Length specification for [`vec`]: an exact size or a half-open
    /// range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors whose elements come from `element`
    /// and whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Strategy choosing uniformly from a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Chooses uniformly among `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }
}

/// Test-runner configuration and helpers used by the [`proptest!`] macro.
pub mod test_runner {
    use super::*;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; the shim trades depth for wall
            // time since every case re-runs without shrinking.
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-test RNG so failures are reproducible.
    pub fn deterministic_rng(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// The commonly imported surface: `use proptest::prelude::*;`.
pub mod prelude {
    /// Alias of the crate root so `prop::sample::select(...)` works.
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property; failure panics with the inputs
/// echoed by the harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` against `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::deterministic_rng(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)*
                let __inputs = format!(
                    concat!("" $(, stringify!($arg), " = {:?}; ")*),
                    $(&$arg),*
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body)
                );
                if let ::std::result::Result::Err(__panic) = __outcome {
                    eprintln!(
                        "proptest {}: case {}/{} failed with inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __inputs
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u32..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    proptest! {
        #[test]
        fn select_draws_members(c in prop::sample::select(vec!['a', 'b'])) {
            prop_assert!(c == 'a' || c == 'b');
        }

        #[test]
        fn exact_vec_size(v in crate::collection::vec(0.0f64..1.0, 4)) {
            prop_assert_eq!(v.len(), 4);
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        use rand::Rng;
        let mut a = crate::test_runner::deterministic_rng("t");
        let mut b = crate::test_runner::deterministic_rng("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
