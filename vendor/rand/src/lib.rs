//! Offline shim of the `rand` crate API surface this workspace uses.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors a minimal, deterministic implementation of the
//! pieces it calls: [`Rng`], [`RngExt`], [`SeedableRng`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — high-quality, reproducible, and dependency-free. It does
//! NOT match upstream `rand`'s stream bit-for-bit; everything in this
//! repository that depends on randomness is seeded and asserts statistical
//! properties, not exact draws.

/// Core random source: a stream of `u64`s.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value of a supported primitive type; `f64`/`f32` are
    /// uniform in `[0, 1)`, integers uniform over their full range.
    fn random<T: SamplePrimitive>(&mut self) -> T;

    /// Draws a value uniform in `range` (half-open).
    fn random_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T;

    /// Draws `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool;
}

impl<R: Rng + ?Sized> RngExt for R {
    fn random<T: SamplePrimitive>(&mut self) -> T {
        T::draw(self.next_u64())
    }

    fn random_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T {
        T::uniform_in(self.next_u64(), range)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * F64_SCALE < p
    }
}

const F64_SCALE: f64 = 1.0 / (1u64 << 53) as f64;

/// Primitive types `RngExt::random` can produce from one raw word.
pub trait SamplePrimitive: Sized {
    /// Maps 64 random bits to a uniform value of `Self`.
    fn draw(word: u64) -> Self;
}

impl SamplePrimitive for f64 {
    fn draw(word: u64) -> Self {
        (word >> 11) as f64 * F64_SCALE
    }
}

impl SamplePrimitive for f32 {
    fn draw(word: u64) -> Self {
        (word >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SamplePrimitive for u64 {
    fn draw(word: u64) -> Self {
        word
    }
}

impl SamplePrimitive for u32 {
    fn draw(word: u64) -> Self {
        (word >> 32) as u32
    }
}

impl SamplePrimitive for usize {
    fn draw(word: u64) -> Self {
        word as usize
    }
}

impl SamplePrimitive for bool {
    fn draw(word: u64) -> Self {
        word & 1 == 1
    }
}

/// Integer types usable with `random_range`.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform mapping of 64 random bits into `[range.start, range.end)`.
    fn uniform_in(word: u64, range: core::ops::Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn uniform_in(word: u64, range: core::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                // Widening multiply-shift (Lemire) keeps bias negligible
                // without a rejection loop.
                let hi = ((word as u128 * span as u128) >> 64) as u64;
                range.start + hi as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8);

macro_rules! impl_uniform_int_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn uniform_in(word: u64, range: core::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.wrapping_sub(range.start) as $u as u64;
                let hi = ((word as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_uniform_int_signed!(i64 => u64, i32 => u32, i16 => u16, i8 => u8, isize => usize);

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding recipe.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_covers_and_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn works_through_unsized_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
