//! Haar wavelet transforms — the multi-resolution representation the paper
//! cites (\[1\]–\[3\]) for "rough approximations of information at low
//! resolutions, with more detailed views at higher resolutions".
//!
//! The unnormalized Haar pair `(average, half-difference)` is used so that
//! approximation coefficients stay in the data's units (an approximation at
//! level L is simply the mean of each 2^L block), which is what progressive
//! model evaluation needs.

use mbir_archive::grid::Grid2;

/// One level of a 1-D Haar analysis: `(approximations, details)`.
///
/// For an odd-length input the trailing sample is carried into the
/// approximation band unchanged and the detail band is one shorter.
///
/// # Examples
///
/// ```
/// use mbir_progressive::wavelet::haar_decompose_1d;
///
/// let (approx, detail) = haar_decompose_1d(&[1.0, 3.0, 2.0, 8.0]);
/// assert_eq!(approx, vec![2.0, 5.0]);
/// assert_eq!(detail, vec![-1.0, -3.0]);
/// ```
pub fn haar_decompose_1d(input: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let pairs = input.len() / 2;
    let mut approx = Vec::with_capacity(pairs + input.len() % 2);
    let mut detail = Vec::with_capacity(pairs);
    for i in 0..pairs {
        let a = input[2 * i];
        let b = input[2 * i + 1];
        approx.push((a + b) / 2.0);
        detail.push((a - b) / 2.0);
    }
    if input.len() % 2 == 1 {
        approx.push(input[input.len() - 1]);
    }
    (approx, detail)
}

/// Inverse of [`haar_decompose_1d`].
///
/// # Panics
///
/// Panics when the band lengths are inconsistent (valid pairs satisfy
/// `approx.len() == detail.len()` or `approx.len() == detail.len() + 1`).
pub fn haar_reconstruct_1d(approx: &[f64], detail: &[f64]) -> Vec<f64> {
    assert!(
        approx.len() == detail.len() || approx.len() == detail.len() + 1,
        "inconsistent band lengths: approx {} detail {}",
        approx.len(),
        detail.len()
    );
    let mut out = Vec::with_capacity(approx.len() + detail.len());
    for i in 0..detail.len() {
        out.push(approx[i] + detail[i]);
        out.push(approx[i] - detail[i]);
    }
    if approx.len() > detail.len() {
        out.push(approx[approx.len() - 1]);
    }
    out
}

/// Multi-level 1-D Haar decomposition: returns the deepest approximation and
/// the detail bands from deepest to shallowest.
pub fn haar_multi_1d(input: &[f64], levels: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let mut approx = input.to_vec();
    let mut details = Vec::with_capacity(levels);
    for _ in 0..levels {
        if approx.len() < 2 {
            break;
        }
        let (a, d) = haar_decompose_1d(&approx);
        details.push(d);
        approx = a;
    }
    details.reverse();
    (approx, details)
}

/// Inverse of [`haar_multi_1d`].
pub fn haar_multi_reconstruct_1d(approx: &[f64], details: &[Vec<f64>]) -> Vec<f64> {
    let mut current = approx.to_vec();
    for d in details {
        current = haar_reconstruct_1d(&current, d);
    }
    current
}

/// A separable 2-D Haar approximation pyramid over a grid.
///
/// Level 0 is the full-resolution grid; level `k` halves each dimension
/// (ceil for odd sizes) and stores block averages, i.e. the LL band of a
/// k-level separable Haar analysis. Detail bands are not retained: for
/// progressive *model execution* only approximations are consumed, and the
/// exact data is still available at level 0.
///
/// # Examples
///
/// ```
/// use mbir_archive::grid::Grid2;
/// use mbir_progressive::wavelet::HaarPyramid2d;
///
/// let g = Grid2::from_fn(8, 8, |r, c| (r * 8 + c) as f64);
/// let pyr = HaarPyramid2d::build(&g, 3);
/// assert_eq!(pyr.levels(), 4);
/// assert_eq!(pyr.level(3).rows(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct HaarPyramid2d {
    levels: Vec<Grid2<f64>>,
}

impl HaarPyramid2d {
    /// Builds a pyramid with up to `max_levels` reductions over `base`
    /// (stops early once a level is 1x1).
    pub fn build(base: &Grid2<f64>, max_levels: usize) -> Self {
        let mut levels = vec![base.clone()];
        for _ in 0..max_levels {
            let prev = levels.last().expect("non-empty by construction");
            if prev.rows() == 1 && prev.cols() == 1 {
                break;
            }
            levels.push(reduce_2x2(prev));
        }
        HaarPyramid2d { levels }
    }

    /// Number of levels (level 0 = full resolution).
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// The grid at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    pub fn level(&self, level: usize) -> &Grid2<f64> {
        assert!(
            level < self.levels.len(),
            "level {level} out of range {}",
            self.levels.len()
        );
        &self.levels[level]
    }

    /// Fraction of base-resolution data volume needed to materialize
    /// `level` (1.0 at level 0, ~1/4 per level above).
    pub fn volume_fraction(&self, level: usize) -> f64 {
        let base = self.levels[0].len() as f64;
        self.level(level).len() as f64 / base
    }
}

/// 2x2 block-average reduction (ragged edges average the partial block).
fn reduce_2x2(grid: &Grid2<f64>) -> Grid2<f64> {
    let rows = grid.rows().div_ceil(2);
    let cols = grid.cols().div_ceil(2);
    Grid2::from_fn(rows, cols, |r, c| {
        let r0 = r * 2;
        let c0 = c * 2;
        let r1 = (r0 + 2).min(grid.rows());
        let c1 = (c0 + 2).min(grid.cols());
        let mut sum = 0.0;
        let mut count = 0.0;
        for rr in r0..r1 {
            for cc in c0..c1 {
                sum += grid.at(rr, cc);
                count += 1.0;
            }
        }
        sum / count
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_level_roundtrip_even() {
        let x = vec![4.0, 2.0, -1.0, 7.0, 0.0, 0.5];
        let (a, d) = haar_decompose_1d(&x);
        assert_eq!(a.len(), 3);
        assert_eq!(d.len(), 3);
        let y = haar_reconstruct_1d(&a, &d);
        assert_eq!(x, y);
    }

    #[test]
    fn single_level_roundtrip_odd() {
        let x = vec![1.0, 2.0, 3.0];
        let (a, d) = haar_decompose_1d(&x);
        assert_eq!(a, vec![1.5, 3.0]);
        assert_eq!(d, vec![-0.5]);
        assert_eq!(haar_reconstruct_1d(&a, &d), x);
    }

    #[test]
    fn multi_level_roundtrip() {
        let x: Vec<f64> = (0..13).map(|i| (i as f64).sin() * 5.0).collect();
        let (a, ds) = haar_multi_1d(&x, 3);
        let y = haar_multi_reconstruct_1d(&a, &ds);
        for (xi, yi) in x.iter().zip(&y) {
            assert!((xi - yi).abs() < 1e-12);
        }
    }

    #[test]
    fn deepest_approx_is_block_mean() {
        let x = vec![1.0, 3.0, 5.0, 7.0];
        let (a, _) = haar_multi_1d(&x, 2);
        assert_eq!(a, vec![4.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent band lengths")]
    fn reconstruct_rejects_bad_bands() {
        let _ = haar_reconstruct_1d(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    fn pyramid_levels_shrink_and_preserve_mean() {
        let g = Grid2::from_fn(16, 16, |r, c| (r * c) as f64);
        let pyr = HaarPyramid2d::build(&g, 10);
        assert_eq!(pyr.levels(), 5);
        assert_eq!(pyr.level(4).rows(), 1);
        // Power-of-two grid: every level preserves the global mean exactly.
        for level in 0..pyr.levels() {
            assert!(
                (pyr.level(level).mean() - g.mean()).abs() < 1e-9,
                "level {level}"
            );
        }
        assert!((pyr.volume_fraction(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pyramid_handles_ragged_grids() {
        let g = Grid2::from_fn(5, 7, |r, c| (r + c) as f64);
        let pyr = HaarPyramid2d::build(&g, 8);
        let top = pyr.level(pyr.levels() - 1);
        assert_eq!((top.rows(), top.cols()), (1, 1));
    }

    proptest! {
        #[test]
        fn prop_roundtrip_any_signal(x in proptest::collection::vec(-1e6f64..1e6, 1..64)) {
            let (a, ds) = haar_multi_1d(&x, 6);
            let y = haar_multi_reconstruct_1d(&a, &ds);
            prop_assert_eq!(x.len(), y.len());
            for (xi, yi) in x.iter().zip(&y) {
                prop_assert!((xi - yi).abs() <= 1e-6 * (1.0 + xi.abs()));
            }
        }

        #[test]
        fn prop_approx_within_min_max(x in proptest::collection::vec(-1e3f64..1e3, 2..64)) {
            let (a, _) = haar_multi_1d(&x, 6);
            let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for v in &a {
                prop_assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9);
            }
        }
    }
}
