//! Hierarchical aggregates over 1-D series — the time-axis analogue of the
//! raster [`crate::pyramid`].
//!
//! Well logs and weather feeds are 1-D; a model that is monotone in a
//! series value (gamma above threshold, temperature above 25 °C) can prune
//! whole intervals from `(min, max, mean)` summaries exactly like the
//! pyramid engines prune raster regions.

use mbir_archive::error::ArchiveError;
use mbir_archive::series::TimeSeries;

/// Aggregates of one series interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalStats {
    /// First sample index covered (inclusive).
    pub start: usize,
    /// Number of samples covered.
    pub len: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Mean value.
    pub mean: f64,
}

impl IntervalStats {
    fn merge(&self, other: &IntervalStats) -> IntervalStats {
        let len = self.len + other.len;
        IntervalStats {
            start: self.start.min(other.start),
            len,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            mean: (self.mean * self.len as f64 + other.mean * other.len as f64) / len as f64,
        }
    }
}

/// A binary aggregate tree over a series (level 0 = single samples; the
/// top level is a single interval).
///
/// # Examples
///
/// ```
/// use mbir_archive::series::TimeSeries;
/// use mbir_progressive::seriesagg::SeriesPyramid;
///
/// let ts = TimeSeries::new(0, 1, vec![3.0, 1.0, 4.0, 1.0, 5.0]).unwrap();
/// let pyr = SeriesPyramid::build(&ts);
/// let root = pyr.root();
/// assert_eq!(root.min, 1.0);
/// assert_eq!(root.max, 5.0);
/// assert_eq!(root.len, 5);
/// ```
#[derive(Debug, Clone)]
pub struct SeriesPyramid {
    levels: Vec<Vec<IntervalStats>>,
}

impl SeriesPyramid {
    /// Builds the full pyramid over a series.
    pub fn build(series: &TimeSeries<f64>) -> Self {
        let base: Vec<IntervalStats> = series
            .values()
            .iter()
            .enumerate()
            .map(|(start, &v)| IntervalStats {
                start,
                len: 1,
                min: v,
                max: v,
                mean: v,
            })
            .collect();
        let mut levels = vec![base];
        while levels.last().map(|l| l.len()).unwrap_or(0) > 1 {
            let prev = levels.last().expect("non-empty");
            let next: Vec<IntervalStats> = prev
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 2 {
                        pair[0].merge(&pair[1])
                    } else {
                        pair[0]
                    }
                })
                .collect();
            levels.push(next);
        }
        SeriesPyramid { levels }
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of base samples.
    pub fn base_len(&self) -> usize {
        self.levels[0].len()
    }

    /// The single top interval.
    pub fn root(&self) -> IntervalStats {
        *self.levels[self.levels.len() - 1]
            .first()
            .expect("top level has one interval")
    }

    /// Interval at `(level, index)`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::OutOfBounds`] for an invalid address.
    pub fn interval(&self, level: usize, index: usize) -> Result<IntervalStats, ArchiveError> {
        self.levels
            .get(level)
            .and_then(|l| l.get(index))
            .copied()
            .ok_or(ArchiveError::OutOfBounds {
                row: level,
                col: index,
                rows: self.levels.len(),
                cols: self.levels.first().map(|l| l.len()).unwrap_or(0),
            })
    }

    /// Children addresses at `level - 1` (empty at level 0).
    pub fn children(&self, level: usize, index: usize) -> Vec<(usize, usize)> {
        if level == 0 || level >= self.levels.len() {
            return Vec::new();
        }
        let child_count = self.levels[level - 1].len();
        [(level - 1, index * 2), (level - 1, index * 2 + 1)]
            .into_iter()
            .filter(|(_, i)| *i < child_count)
            .collect()
    }

    /// Indexes of base samples whose values can exceed `threshold`, found
    /// by interval descent — touching only the intervals whose `max`
    /// clears the threshold. Returns `(matches, intervals_examined)`.
    pub fn samples_above(&self, threshold: f64) -> (Vec<usize>, usize) {
        let mut matches = Vec::new();
        let mut examined = 0usize;
        let top = self.levels.len() - 1;
        let mut stack = vec![(top, 0usize)];
        while let Some((level, index)) = stack.pop() {
            examined += 1;
            let s = self.levels[level][index];
            if s.max < threshold {
                continue;
            }
            if s.min >= threshold {
                // Entire interval qualifies — no need to descend.
                matches.extend(s.start..s.start + s.len);
                continue;
            }
            if level == 0 {
                matches.push(s.start);
                continue;
            }
            for child in self.children(level, index) {
                stack.push(child);
            }
        }
        matches.sort_unstable();
        (matches, examined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn series(values: Vec<f64>) -> TimeSeries<f64> {
        TimeSeries::new(0, 1, values).expect("non-empty")
    }

    #[test]
    fn root_aggregates_everything() {
        let pyr = SeriesPyramid::build(&series(vec![2.0, -1.0, 7.0]));
        let root = pyr.root();
        assert_eq!(root.min, -1.0);
        assert_eq!(root.max, 7.0);
        assert_eq!(root.len, 3);
        assert!((root.mean - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn interval_addressing() {
        let pyr = SeriesPyramid::build(&series(vec![1.0, 2.0, 3.0, 4.0, 5.0]));
        assert_eq!(pyr.base_len(), 5);
        let i = pyr.interval(1, 0).unwrap();
        assert_eq!((i.min, i.max), (1.0, 2.0));
        // Odd tail carries up unchanged.
        let tail = pyr.interval(1, 2).unwrap();
        assert_eq!(tail.len, 1);
        assert_eq!(tail.min, 5.0);
        assert!(pyr.interval(9, 0).is_err());
        assert!(pyr.interval(0, 5).is_err());
    }

    #[test]
    fn children_partition_parent() {
        let pyr = SeriesPyramid::build(&series((0..13).map(|i| i as f64).collect()));
        for level in 1..pyr.levels() {
            for index in 0..pyr.levels[level].len() {
                let parent = pyr.interval(level, index).unwrap();
                let merged = pyr
                    .children(level, index)
                    .into_iter()
                    .map(|(l, i)| pyr.interval(l, i).unwrap())
                    .reduce(|a, b| a.merge(&b))
                    .unwrap();
                assert_eq!(parent.len, merged.len);
                assert_eq!(parent.min, merged.min);
                assert_eq!(parent.max, merged.max);
            }
        }
    }

    #[test]
    fn threshold_descent_matches_linear_scan() {
        let values: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let pyr = SeriesPyramid::build(&series(values.clone()));
        let (hits, examined) = pyr.samples_above(80.0);
        let expected: Vec<usize> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| **v >= 80.0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hits, expected);
        assert!(examined > 0);
    }

    #[test]
    fn descent_prunes_on_coherent_series() {
        // A long flat series with one spike: descent touches O(log n)
        // intervals instead of n.
        let mut values = vec![0.0; 1024];
        values[700] = 10.0;
        let pyr = SeriesPyramid::build(&series(values));
        let (hits, examined) = pyr.samples_above(5.0);
        assert_eq!(hits, vec![700]);
        assert!(examined < 64, "examined {examined} of 2047 intervals");
    }

    #[test]
    fn fully_qualifying_interval_short_circuits() {
        let pyr = SeriesPyramid::build(&series(vec![9.0; 256]));
        let (hits, examined) = pyr.samples_above(5.0);
        assert_eq!(hits.len(), 256);
        assert_eq!(examined, 1, "root alone qualifies everything");
    }

    proptest! {
        #[test]
        fn prop_descent_equals_scan(
            values in proptest::collection::vec(-100.0f64..100.0, 1..200),
            threshold in -100.0f64..100.0,
        ) {
            let pyr = SeriesPyramid::build(&series(values.clone()));
            let (hits, _) = pyr.samples_above(threshold);
            let expected: Vec<usize> = values
                .iter()
                .enumerate()
                .filter(|(_, v)| **v >= threshold)
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(hits, expected);
        }
    }
}
