//! Aggregate resolution pyramids with sound interval bounds.
//!
//! Progressive model execution needs more than block means: to *prune* a
//! region soundly, the engine must know an interval guaranteed to contain
//! every base-resolution value under a pyramid cell. `AggregatePyramid`
//! stores `(min, max, mean, count)` per cell, so any model monotone in its
//! attributes gets sound per-region bounds.

use mbir_archive::error::ArchiveError;
use mbir_archive::extent::CellCoord;
use mbir_archive::grid::Grid2;

/// Aggregates of the base-resolution values covered by one pyramid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellStats {
    /// Minimum covered value.
    pub min: f64,
    /// Maximum covered value.
    pub max: f64,
    /// Mean of covered values.
    pub mean: f64,
    /// Number of base cells covered.
    pub count: u64,
}

impl CellStats {
    /// Aggregates a single value.
    pub fn of_value(v: f64) -> Self {
        CellStats {
            min: v,
            max: v,
            mean: v,
            count: 1,
        }
    }

    /// Merges two aggregates.
    pub fn merge(&self, other: &CellStats) -> CellStats {
        let count = self.count + other.count;
        CellStats {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            mean: (self.mean * self.count as f64 + other.mean * other.count as f64) / count as f64,
            count,
        }
    }

    /// Width of the value interval.
    pub fn spread(&self) -> f64 {
        self.max - self.min
    }
}

/// A min/max/mean pyramid over a [`Grid2<f64>`].
///
/// Level 0 is base resolution (stats of single cells); each higher level
/// aggregates 2x2 children (ragged edges aggregate what exists). The
/// top level is always a single cell.
///
/// # Examples
///
/// ```
/// use mbir_archive::grid::Grid2;
/// use mbir_progressive::pyramid::AggregatePyramid;
///
/// let pyr = AggregatePyramid::build(&Grid2::from_fn(32, 32, |r, _| r as f64));
/// let root = pyr.root();
/// assert_eq!(root.min, 0.0);
/// assert_eq!(root.max, 31.0);
/// assert_eq!(root.count, 32 * 32);
/// ```
#[derive(Debug, Clone)]
pub struct AggregatePyramid {
    levels: Vec<Grid2<CellStats>>,
}

impl AggregatePyramid {
    /// Builds the full pyramid (down to 1x1) over `base`.
    pub fn build(base: &Grid2<f64>) -> Self {
        let mut levels = vec![base.map(|&v| CellStats::of_value(v))];
        loop {
            let prev = levels.last().expect("non-empty by construction");
            if prev.rows() == 1 && prev.cols() == 1 {
                break;
            }
            let rows = prev.rows().div_ceil(2);
            let cols = prev.cols().div_ceil(2);
            let next = Grid2::from_fn(rows, cols, |r, c| {
                let mut acc: Option<CellStats> = None;
                for rr in r * 2..(r * 2 + 2).min(prev.rows()) {
                    for cc in c * 2..(c * 2 + 2).min(prev.cols()) {
                        let s = prev.at(rr, cc);
                        acc = Some(match acc {
                            Some(a) => a.merge(s),
                            None => *s,
                        });
                    }
                }
                acc.expect("every parent covers at least one child")
            });
            levels.push(next);
        }
        AggregatePyramid { levels }
    }

    /// Extends the pyramid for rows appended at the bottom of the base
    /// grid, recomputing only the dirtied suffix of each level.
    ///
    /// Appending `band` below an `R`-row base dirties base rows
    /// `R..R+band.rows()`; at level `l` the first dirty row follows the
    /// recurrence `dirty_l = dirty_{l-1} / 2` (a parent is dirty exactly
    /// when its child block `2r..2r+2` reaches a dirty row, including the
    /// previously clamped last parent that now covers a second child).
    /// Rows before the dirty frontier are **copied** from the old level —
    /// their covered children are unchanged and the merge is
    /// deterministic — and rows at or past it are recomputed with
    /// [`build`](Self::build)'s exact fixed `(rr, cc)` merge order, so the
    /// result is bit-identical to a full rebuild over the extended grid
    /// (property-tested). New levels appear as the pyramid grows taller.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::Misaligned`] when the band's width differs from
    /// the base's; [`ArchiveError::EmptyDimension`] for an empty band.
    pub fn extend_rows(&mut self, band: &Grid2<f64>) -> Result<(), ArchiveError> {
        let (base_rows, base_cols) = self.base_shape();
        if band.cols() != base_cols {
            return Err(ArchiveError::Misaligned(format!(
                "band width {} != pyramid width {}",
                band.cols(),
                base_cols
            )));
        }
        if band.rows() == 0 {
            return Err(ArchiveError::EmptyDimension);
        }
        let mut dirty = base_rows;
        let old0 = &self.levels[0];
        let mut new_levels = vec![Grid2::from_fn(
            base_rows + band.rows(),
            base_cols,
            |r, c| {
                if r < dirty {
                    *old0.at(r, c)
                } else {
                    CellStats::of_value(*band.at(r - dirty, c))
                }
            },
        )];
        let mut level = 1usize;
        loop {
            let prev = new_levels.last().expect("non-empty by construction");
            if prev.rows() == 1 && prev.cols() == 1 {
                break;
            }
            dirty /= 2;
            let rows = prev.rows().div_ceil(2);
            let cols = prev.cols().div_ceil(2);
            let old = self.levels.get(level);
            let next = Grid2::from_fn(rows, cols, |r, c| {
                if r < dirty {
                    if let Some(old) = old {
                        return *old.at(r, c);
                    }
                }
                let mut acc: Option<CellStats> = None;
                for rr in r * 2..(r * 2 + 2).min(prev.rows()) {
                    for cc in c * 2..(c * 2 + 2).min(prev.cols()) {
                        let s = prev.at(rr, cc);
                        acc = Some(match acc {
                            Some(a) => a.merge(s),
                            None => *s,
                        });
                    }
                }
                acc.expect("every parent covers at least one child")
            });
            new_levels.push(next);
            level += 1;
        }
        self.levels = new_levels;
        Ok(())
    }

    /// Number of levels; level 0 is base resolution.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Base grid shape `(rows, cols)`.
    pub fn base_shape(&self) -> (usize, usize) {
        (self.levels[0].rows(), self.levels[0].cols())
    }

    /// Shape of a level.
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    pub fn level_shape(&self, level: usize) -> (usize, usize) {
        let g = &self.levels[level];
        (g.rows(), g.cols())
    }

    /// Stats of the cell at `(level, row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::OutOfBounds`] outside the level's shape (a
    /// `level` beyond the top is reported against the top level's bounds).
    pub fn cell(&self, level: usize, row: usize, col: usize) -> Result<CellStats, ArchiveError> {
        let g = self.levels.get(level).ok_or(ArchiveError::OutOfBounds {
            row: level,
            col: 0,
            rows: self.levels.len(),
            cols: 1,
        })?;
        Ok(*g.get(row, col)?)
    }

    /// Stats of the single top cell.
    pub fn root(&self) -> CellStats {
        *self.levels[self.levels.len() - 1].at(0, 0)
    }

    /// The children coordinates of `(level, row, col)` at `level - 1`.
    ///
    /// Returns an empty vector at level 0. Descent loops that run once per
    /// popped frontier region should prefer
    /// [`AggregatePyramid::children_into`] with a reused buffer.
    pub fn children(&self, level: usize, row: usize, col: usize) -> Vec<CellCoord> {
        let mut out = Vec::with_capacity(4);
        self.children_into(level, row, col, &mut out);
        out
    }

    /// Writes the children of `(level, row, col)` into `out` (cleared
    /// first) — the allocation-free form of [`AggregatePyramid::children`]
    /// for hot descent loops. `out` is left empty at level 0.
    pub fn children_into(&self, level: usize, row: usize, col: usize, out: &mut Vec<CellCoord>) {
        out.clear();
        if level == 0 || level >= self.levels.len() {
            return;
        }
        let child = &self.levels[level - 1];
        for rr in row * 2..(row * 2 + 2).min(child.rows()) {
            for cc in col * 2..(col * 2 + 2).min(child.cols()) {
                out.push(CellCoord::new(rr, cc));
            }
        }
    }

    /// The base-resolution cells covered by `(level, row, col)`.
    pub fn base_cells(&self, level: usize, row: usize, col: usize) -> Vec<CellCoord> {
        let mut out = Vec::new();
        self.base_cells_into(level, row, col, &mut out);
        out
    }

    /// Writes the base cells covered by `(level, row, col)` into `out`
    /// (cleared first) — the allocation-free form of
    /// [`AggregatePyramid::base_cells`].
    pub fn base_cells_into(&self, level: usize, row: usize, col: usize, out: &mut Vec<CellCoord>) {
        out.clear();
        let scale = 1usize << level;
        let (rows, cols) = self.base_shape();
        for rr in row * scale..((row + 1) * scale).min(rows) {
            for cc in col * scale..((col + 1) * scale).min(cols) {
                out.push(CellCoord::new(rr, cc));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn root_covers_everything() {
        let g = Grid2::from_fn(10, 14, |r, c| (r * 14 + c) as f64);
        let pyr = AggregatePyramid::build(&g);
        let root = pyr.root();
        assert_eq!(root.min, 0.0);
        assert_eq!(root.max, 139.0);
        assert_eq!(root.count, 140);
        assert!((root.mean - g.mean()).abs() < 1e-9);
    }

    #[test]
    fn level0_is_base() {
        let g = Grid2::from_fn(3, 3, |r, c| (r + c) as f64);
        let pyr = AggregatePyramid::build(&g);
        let s = pyr.cell(0, 2, 1).unwrap();
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn children_partition_parent() {
        let g = Grid2::from_fn(5, 5, |r, c| (r * 5 + c) as f64);
        let pyr = AggregatePyramid::build(&g);
        for level in 1..pyr.levels() {
            let (rows, cols) = pyr.level_shape(level);
            for r in 0..rows {
                for c in 0..cols {
                    let parent = pyr.cell(level, r, c).unwrap();
                    let kids = pyr.children(level, r, c);
                    assert!(!kids.is_empty());
                    let merged = kids
                        .iter()
                        .map(|k| pyr.cell(level - 1, k.row, k.col).unwrap())
                        .reduce(|a, b| a.merge(&b))
                        .unwrap();
                    assert_eq!(parent.count, merged.count);
                    assert_eq!(parent.min, merged.min);
                    assert_eq!(parent.max, merged.max);
                    assert!((parent.mean - merged.mean).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn base_cells_match_count() {
        let g = Grid2::from_fn(7, 9, |r, c| (r * c) as f64);
        let pyr = AggregatePyramid::build(&g);
        for level in 0..pyr.levels() {
            let (rows, cols) = pyr.level_shape(level);
            for r in 0..rows {
                for c in 0..cols {
                    let s = pyr.cell(level, r, c).unwrap();
                    let cells = pyr.base_cells(level, r, c);
                    assert_eq!(s.count as usize, cells.len(), "level {level} ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn out_of_bounds_errors() {
        let pyr = AggregatePyramid::build(&Grid2::filled(4, 4, 1.0));
        assert!(pyr.cell(0, 4, 0).is_err());
        assert!(pyr.cell(99, 0, 0).is_err());
    }

    #[test]
    fn into_variants_agree_with_allocating_forms() {
        // Odd shape exercises clamped 2x2 blocks and ragged base coverage;
        // the reused buffer must also be fully cleared between calls.
        let pyr = AggregatePyramid::build(&Grid2::from_fn(7, 5, |r, c| (r * 5 + c) as f64));
        let mut buf = vec![CellCoord::new(999, 999); 3];
        for level in 0..pyr.levels() {
            let (lr, lc) = pyr.level_shape(level);
            for r in 0..lr {
                for c in 0..lc {
                    pyr.children_into(level, r, c, &mut buf);
                    assert_eq!(buf, pyr.children(level, r, c), "children {level} ({r},{c})");
                    pyr.base_cells_into(level, r, c, &mut buf);
                    assert_eq!(buf, pyr.base_cells(level, r, c), "base {level} ({r},{c})");
                }
            }
        }
        // Beyond-top levels yield no children in either form.
        pyr.children_into(99, 0, 0, &mut buf);
        assert!(buf.is_empty());
        assert_eq!(pyr.children(99, 0, 0), Vec::<CellCoord>::new());
    }

    fn stats_eq(a: &AggregatePyramid, b: &AggregatePyramid) -> bool {
        if a.levels() != b.levels() {
            return false;
        }
        for l in 0..a.levels() {
            let (r, c) = a.level_shape(l);
            if b.level_shape(l) != (r, c) {
                return false;
            }
            for rr in 0..r {
                for cc in 0..c {
                    let x = a.cell(l, rr, cc).unwrap();
                    let y = b.cell(l, rr, cc).unwrap();
                    // Bit-identity, not approximate equality.
                    if x.min.to_bits() != y.min.to_bits()
                        || x.max.to_bits() != y.max.to_bits()
                        || x.mean.to_bits() != y.mean.to_bits()
                        || x.count != y.count
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    #[test]
    fn extend_rows_matches_full_rebuild_bit_for_bit() {
        let cell = |r: usize, c: usize| ((r * 131 + c * 17) % 97) as f64 * 0.375 - 11.0;
        for (base_rows, band_rows, cols) in [(4, 2, 6), (5, 3, 7), (1, 1, 1), (8, 8, 3), (2, 6, 16)]
        {
            let base = Grid2::from_fn(base_rows, cols, cell);
            let band = Grid2::from_fn(band_rows, cols, |r, c| cell(base_rows + r, c));
            let full = AggregatePyramid::build(&Grid2::from_fn(base_rows + band_rows, cols, cell));
            let mut incr = AggregatePyramid::build(&base);
            incr.extend_rows(&band).unwrap();
            assert!(
                stats_eq(&incr, &full),
                "({base_rows}+{band_rows})x{cols} diverged from rebuild"
            );
        }
    }

    #[test]
    fn extend_rows_validates_band() {
        let mut pyr = AggregatePyramid::build(&Grid2::filled(4, 4, 1.0));
        assert!(pyr.extend_rows(&Grid2::filled(2, 3, 1.0)).is_err());
        assert_eq!(pyr.base_shape(), (4, 4), "failed extend left it intact");
    }

    proptest! {
        #[test]
        fn prop_extend_rows_is_rebuild(
            base_rows in 1usize..24,
            band_rows in 1usize..12,
            cols in 1usize..24,
            seed in 0u64..500,
        ) {
            let cell = |r: usize, c: usize| {
                let h = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((r * 53 + c) as u64);
                (h % 1000) as f64 - 500.0
            };
            let base = Grid2::from_fn(base_rows, cols, cell);
            let band = Grid2::from_fn(band_rows, cols, |r, c| cell(base_rows + r, c));
            let full =
                AggregatePyramid::build(&Grid2::from_fn(base_rows + band_rows, cols, cell));
            let mut incr = AggregatePyramid::build(&base);
            incr.extend_rows(&band).unwrap();
            prop_assert!(stats_eq(&incr, &full));
        }
    }

    proptest! {
        #[test]
        fn prop_bounds_are_sound(
            rows in 1usize..20,
            cols in 1usize..20,
            seed in 0u64..1000,
        ) {
            // Pseudo-random but deterministic grid from the seed.
            let g = Grid2::from_fn(rows, cols, |r, c| {
                let h = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((r * 31 + c) as u64);
                (h % 1000) as f64 - 500.0
            });
            let pyr = AggregatePyramid::build(&g);
            for level in 0..pyr.levels() {
                let (lr, lc) = pyr.level_shape(level);
                for r in 0..lr {
                    for c in 0..lc {
                        let s = pyr.cell(level, r, c).unwrap();
                        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
                        for cell in pyr.base_cells(level, r, c) {
                            let v = *g.at(cell.row, cell.col);
                            prop_assert!(v >= s.min && v <= s.max);
                        }
                    }
                }
            }
        }
    }
}
