//! Semantic abstraction level: classified land cover and contours.
//!
//! Classification of satellite images "can be viewed as a special case of
//! applying Bayesian network" (paper §3.1), and running it progressively on
//! progressively-represented data produced the 30x speedup the paper quotes
//! from \[13\]. This module provides the classifier, its progressive
//! (coarse-to-fine, confidence-gated) execution, and contour extraction.

use crate::pyramid::AggregatePyramid;
use mbir_archive::extent::CellCoord;
use mbir_archive::grid::Grid2;
use std::fmt;

/// Land-cover classes assigned by the classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum LandCover {
    /// Open water.
    Water,
    /// Closed-canopy forest.
    Forest,
    /// Grass / shrub land.
    Grass,
    /// Built-up areas.
    Urban,
    /// Bare soil / rock.
    BareSoil,
}

impl LandCover {
    /// All classes in declaration order.
    pub const ALL: [LandCover; 5] = [
        LandCover::Water,
        LandCover::Forest,
        LandCover::Grass,
        LandCover::Urban,
        LandCover::BareSoil,
    ];
}

impl fmt::Display for LandCover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LandCover::Water => "water",
            LandCover::Forest => "forest",
            LandCover::Grass => "grass",
            LandCover::Urban => "urban",
            LandCover::BareSoil => "bare-soil",
        };
        f.write_str(name)
    }
}

/// A maximum-likelihood Gaussian classifier with diagonal covariance —
/// the standard workhorse for multi-spectral pixel labelling.
///
/// # Examples
///
/// ```
/// use mbir_progressive::semantics::{GaussianClassifier, LandCover};
///
/// let mut clf = GaussianClassifier::new(1);
/// clf.fit_class(LandCover::Water, &[vec![10.0], vec![12.0], vec![11.0]]);
/// clf.fit_class(LandCover::Urban, &[vec![200.0], vec![210.0], vec![190.0]]);
/// let (label, margin) = clf.classify(&[11.0]).unwrap();
/// assert_eq!(label, LandCover::Water);
/// assert!(margin > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianClassifier {
    dims: usize,
    classes: Vec<(LandCover, Vec<f64>, Vec<f64>)>, // (label, means, variances)
}

impl GaussianClassifier {
    /// Creates an empty classifier over `dims`-dimensional pixels.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "classifier needs at least one dimension");
        GaussianClassifier {
            dims,
            classes: Vec::new(),
        }
    }

    /// Number of fitted classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Fits (or refits) one class from labelled sample vectors.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or any sample has the wrong dimension.
    pub fn fit_class(&mut self, label: LandCover, samples: &[Vec<f64>]) {
        assert!(!samples.is_empty(), "need samples to fit {label}");
        assert!(
            samples.iter().all(|s| s.len() == self.dims),
            "sample dimension mismatch"
        );
        let n = samples.len() as f64;
        let mut means = vec![0.0; self.dims];
        for s in samples {
            for (m, v) in means.iter_mut().zip(s) {
                *m += v / n;
            }
        }
        let mut vars = vec![0.0; self.dims];
        for s in samples {
            for ((var, m), v) in vars.iter_mut().zip(&means).zip(s) {
                *var += (v - m) * (v - m) / n;
            }
        }
        // Variance floor keeps degenerate (e.g. single-sample) training sets
        // usable; pixel units here are 8-bit-ish radiances, so 1e-3 is far
        // below any physical variance.
        for var in &mut vars {
            *var = var.max(1e-3);
        }
        self.classes.retain(|(l, _, _)| *l != label);
        self.classes.push((label, means, vars));
    }

    /// Log-likelihood of `pixel` under one class (diagonal Gaussian).
    fn log_likelihood(&self, means: &[f64], vars: &[f64], pixel: &[f64]) -> f64 {
        means
            .iter()
            .zip(vars)
            .zip(pixel)
            .map(|((m, var), x)| {
                let d = x - m;
                -0.5 * (d * d / var + var.ln())
            })
            .sum()
    }

    /// Classifies a pixel, returning `(label, margin)` where `margin` is the
    /// log-likelihood gap to the runner-up class (a confidence measure; with
    /// a single class the margin is infinite).
    ///
    /// Returns `None` when no class has been fitted or the pixel dimension
    /// is wrong.
    pub fn classify(&self, pixel: &[f64]) -> Option<(LandCover, f64)> {
        if self.classes.is_empty() || pixel.len() != self.dims {
            return None;
        }
        let mut best: Option<(LandCover, f64)> = None;
        let mut second = f64::NEG_INFINITY;
        for (label, means, vars) in &self.classes {
            let ll = self.log_likelihood(means, vars, pixel);
            match best {
                Some((_, b)) if ll <= b => {
                    if ll > second {
                        second = ll;
                    }
                }
                Some((_, b)) => {
                    second = b;
                    best = Some((*label, ll));
                }
                None => best = Some((*label, ll)),
            }
        }
        best.map(|(l, b)| (l, b - second))
    }

    /// Classifies every pixel of a multi-band stack (bands in one `Vec` of
    /// equally-shaped grids), counting evaluations into `work`.
    ///
    /// # Panics
    ///
    /// Panics if `bands` is empty or disagrees with the classifier
    /// dimension.
    pub fn classify_grid(&self, bands: &[Grid2<f64>], work: &mut u64) -> Grid2<LandCover> {
        assert_eq!(bands.len(), self.dims, "band count mismatch");
        let rows = bands[0].rows();
        let cols = bands[0].cols();
        Grid2::from_fn(rows, cols, |r, c| {
            *work += 1;
            let pixel: Vec<f64> = bands.iter().map(|b| *b.at(r, c)).collect();
            self.classify(&pixel)
                .expect("classifier fitted and dims checked")
                .0
        })
    }

    /// Progressive classification over per-band pyramids (paper §3.1 / \[13\]):
    /// descend from the coarsest level; if one class provably wins over the
    /// *entire* block's value box (see [`GaussianClassifier::block_label`]),
    /// label the whole block; otherwise recurse into its children. Returns
    /// the label grid and the number of classifier/block evaluations
    /// performed. The result is **identical** to full-resolution
    /// classification (the block test is exact, not a heuristic), while the
    /// work shrinks with the scene's spatial coherence.
    ///
    /// # Panics
    ///
    /// Panics if `pyramids` is empty, disagrees with the classifier
    /// dimension, or the pyramids have different shapes.
    pub fn classify_progressive(&self, pyramids: &[AggregatePyramid]) -> (Grid2<LandCover>, u64) {
        assert_eq!(pyramids.len(), self.dims, "pyramid count mismatch");
        let (rows, cols) = pyramids[0].base_shape();
        for p in pyramids {
            assert_eq!(p.base_shape(), (rows, cols), "pyramid shape mismatch");
        }
        let mut out = Grid2::filled(rows, cols, LandCover::Water);
        let mut work = 0u64;
        let top = pyramids[0].levels() - 1;
        let mut stack = vec![(top, 0usize, 0usize)];
        while let Some((level, r, c)) = stack.pop() {
            work += 1;
            if level == 0 {
                let pixel: Vec<f64> = pyramids
                    .iter()
                    .map(|p| p.cell(0, r, c).expect("in-bounds").mean)
                    .collect();
                let (label, _) = self
                    .classify(&pixel)
                    .expect("classifier fitted and dims checked");
                out.set(r, c, label).expect("in-bounds");
                continue;
            }
            let ranges: Vec<(f64, f64)> = pyramids
                .iter()
                .map(|p| {
                    let s = p.cell(level, r, c).expect("coords tracked in-bounds");
                    (s.min, s.max)
                })
                .collect();
            if let Some(label) = self.block_label(&ranges) {
                for cell in pyramids[0].base_cells(level, r, c) {
                    out.set(cell.row, cell.col, label)
                        .expect("base cells are in-bounds");
                }
            } else {
                for child in pyramids[0].children(level, r, c) {
                    stack.push((level - 1, child.row, child.col));
                }
            }
        }
        (out, work)
    }

    /// The class that wins over an *entire* attribute box, or `None` when
    /// no class dominates everywhere.
    ///
    /// Sound and exact for diagonal Gaussians: the pairwise log-likelihood
    /// difference is separable per dimension, so its exact minimum over a
    /// box is the sum of per-dimension quadratic minima. Class `L` labels
    /// the block iff `min over box (ll_L - ll_M) > 0` for every rival `M`.
    pub fn block_label(&self, ranges: &[(f64, f64)]) -> Option<LandCover> {
        if self.classes.is_empty() || ranges.len() != self.dims {
            return None;
        }
        'candidates: for (li, (label, means, vars)) in self.classes.iter().enumerate() {
            for (mi, (_, m2, v2)) in self.classes.iter().enumerate() {
                if li == mi {
                    continue;
                }
                let min_diff: f64 = ranges
                    .iter()
                    .enumerate()
                    .map(|(j, &(lo, hi))| quad_diff_min(means[j], vars[j], m2[j], v2[j], lo, hi))
                    .sum();
                if min_diff <= 0.0 {
                    continue 'candidates;
                }
            }
            return Some(*label);
        }
        None
    }
}

/// Exact minimum over `[lo, hi]` of the 1-D log-likelihood difference
/// `g(x) = [-(x-mA)^2/(2 vA) - ln(vA)/2] - [-(x-mB)^2/(2 vB) - ln(vB)/2]`.
fn quad_diff_min(m_a: f64, v_a: f64, m_b: f64, v_b: f64, lo: f64, hi: f64) -> f64 {
    let g = |x: f64| {
        let da = x - m_a;
        let db = x - m_b;
        (-da * da / (2.0 * v_a) - v_a.ln() / 2.0) - (-db * db / (2.0 * v_b) - v_b.ln() / 2.0)
    };
    let mut min = g(lo).min(g(hi));
    // Interior critical point of the quadratic (when curvature differs).
    let denom = 1.0 / v_b - 1.0 / v_a;
    if denom.abs() > 1e-300 {
        let x_star = (m_b / v_b - m_a / v_a) / denom;
        if x_star > lo && x_star < hi {
            min = min.min(g(x_star));
        }
    }
    min
}

/// A contour region: connected cells at or above a threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct ContourRegion {
    /// Member cells.
    pub cells: Vec<CellCoord>,
    /// Minimum value inside the region.
    pub min: f64,
    /// Maximum value inside the region.
    pub max: f64,
}

impl ContourRegion {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the region has no cells (never true when produced by
    /// [`contour_regions`]).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Extracts 4-connected regions of cells with `value >= threshold`,
/// largest first — the "contours computed from a data array, allowing for
/// very rapid identification of areas with low or high parameter values"
/// of §3.1.
pub fn contour_regions(grid: &Grid2<f64>, threshold: f64) -> Vec<ContourRegion> {
    let rows = grid.rows();
    let cols = grid.cols();
    let mut seen = vec![false; rows * cols];
    let mut regions = Vec::new();
    for start_r in 0..rows {
        for start_c in 0..cols {
            if seen[start_r * cols + start_c] || *grid.at(start_r, start_c) < threshold {
                continue;
            }
            let mut cells = Vec::new();
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut queue = vec![CellCoord::new(start_r, start_c)];
            seen[start_r * cols + start_c] = true;
            while let Some(cell) = queue.pop() {
                let v = *grid.at(cell.row, cell.col);
                min = min.min(v);
                max = max.max(v);
                cells.push(cell);
                let mut push = |r: usize, c: usize| {
                    if !seen[r * cols + c] && *grid.at(r, c) >= threshold {
                        seen[r * cols + c] = true;
                        queue.push(CellCoord::new(r, c));
                    }
                };
                if cell.row > 0 {
                    push(cell.row - 1, cell.col);
                }
                if cell.row + 1 < rows {
                    push(cell.row + 1, cell.col);
                }
                if cell.col > 0 {
                    push(cell.row, cell.col - 1);
                }
                if cell.col + 1 < cols {
                    push(cell.row, cell.col + 1);
                }
            }
            regions.push(ContourRegion { cells, min, max });
        }
    }
    regions.sort_by_key(|r| std::cmp::Reverse(r.cells.len()));
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_class_clf() -> GaussianClassifier {
        let mut clf = GaussianClassifier::new(2);
        clf.fit_class(
            LandCover::Water,
            &[vec![10.0, 20.0], vec![12.0, 22.0], vec![8.0, 18.0]],
        );
        // Same spread as the water samples so the decision boundary midpoint
        // is a genuine low-margin point.
        clf.fit_class(
            LandCover::Urban,
            &[vec![200.0, 210.0], vec![202.0, 212.0], vec![198.0, 208.0]],
        );
        clf
    }

    #[test]
    fn classify_picks_nearest_class() {
        let clf = two_class_clf();
        assert_eq!(clf.classify(&[11.0, 21.0]).unwrap().0, LandCover::Water);
        assert_eq!(clf.classify(&[205.0, 175.0]).unwrap().0, LandCover::Urban);
        assert!(clf.classify(&[1.0]).is_none(), "wrong dimension");
        assert!(GaussianClassifier::new(2).classify(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn margin_reflects_confidence() {
        let clf = two_class_clf();
        let (_, confident) = clf.classify(&[10.0, 20.0]).unwrap();
        // Midpoint between the two (equal-variance) class means.
        let (_, borderline) = clf.classify(&[105.0, 115.0]).unwrap();
        assert!(confident > borderline);
    }

    #[test]
    fn refit_replaces_class() {
        let mut clf = two_class_clf();
        clf.fit_class(LandCover::Water, &[vec![300.0, 300.0]]);
        assert_eq!(clf.class_count(), 2);
        assert_eq!(clf.classify(&[299.0, 299.0]).unwrap().0, LandCover::Water);
    }

    #[test]
    fn progressive_matches_full_on_blocky_scene() {
        let clf = two_class_clf();
        // Left half water-like, right half urban-like.
        let band0 = Grid2::from_fn(32, 32, |_, c| if c < 16 { 10.0 } else { 200.0 });
        let band1 = Grid2::from_fn(32, 32, |_, c| if c < 16 { 20.0 } else { 180.0 });
        let mut full_work = 0u64;
        let full = clf.classify_grid(&[band0.clone(), band1.clone()], &mut full_work);
        let pyramids = [
            AggregatePyramid::build(&band0),
            AggregatePyramid::build(&band1),
        ];
        let (prog, prog_work) = clf.classify_progressive(&pyramids);
        assert_eq!(
            full, prog,
            "progressive must agree with full classification"
        );
        assert_eq!(full_work, 1024);
        assert!(
            prog_work * 10 < full_work,
            "expected >10x fewer evals, got {prog_work} vs {full_work}"
        );
    }

    #[test]
    fn progressive_always_terminates_on_noise() {
        let clf = two_class_clf();
        let band0 = Grid2::from_fn(17, 23, |r, c| ((r * 31 + c * 17) % 220) as f64);
        let band1 = Grid2::from_fn(17, 23, |r, c| ((r * 13 + c * 7) % 220) as f64);
        let pyramids = [
            AggregatePyramid::build(&band0),
            AggregatePyramid::build(&band1),
        ];
        let (labels, work) = clf.classify_progressive(&pyramids);
        assert_eq!((labels.rows(), labels.cols()), (17, 23));
        assert!(work > 0);
        // Noise offers no coherent blocks: progressive must still be exact.
        let mut full_work = 0u64;
        let full = clf.classify_grid(&[band0, band1], &mut full_work);
        assert_eq!(full, labels);
    }

    #[test]
    fn block_label_requires_unanimity() {
        let clf = two_class_clf();
        // A box firmly inside water territory.
        assert_eq!(
            clf.block_label(&[(5.0, 15.0), (15.0, 25.0)]),
            Some(LandCover::Water)
        );
        // A box spanning the decision boundary dominates for nobody.
        assert_eq!(clf.block_label(&[(5.0, 205.0), (15.0, 215.0)]), None);
        // Wrong arity.
        assert_eq!(clf.block_label(&[(0.0, 1.0)]), None);
    }

    #[test]
    fn progressive_is_exact_on_smooth_gradients() {
        let clf = two_class_clf();
        // Smooth gradient crossing the boundary diagonally.
        let band0 = Grid2::from_fn(40, 40, |r, c| 5.0 + (r + c) as f64 * 2.6);
        let band1 = Grid2::from_fn(40, 40, |r, c| 15.0 + (r + c) as f64 * 2.6);
        let mut full_work = 0u64;
        let full = clf.classify_grid(&[band0.clone(), band1.clone()], &mut full_work);
        let pyramids = [
            AggregatePyramid::build(&band0),
            AggregatePyramid::build(&band1),
        ];
        let (prog, prog_work) = clf.classify_progressive(&pyramids);
        assert_eq!(full, prog);
        assert!(
            prog_work < full_work,
            "coherent gradient should still save work: {prog_work} vs {full_work}"
        );
    }

    #[test]
    fn contours_find_plateau() {
        let g = Grid2::from_fn(10, 10, |r, c| {
            if (2..5).contains(&r) && (2..5).contains(&c) {
                9.0
            } else if r == 9 && c == 9 {
                8.0
            } else {
                0.0
            }
        });
        let regions = contour_regions(&g, 5.0);
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].len(), 9);
        assert_eq!(regions[1].len(), 1);
        assert_eq!(regions[0].min, 9.0);
        assert!(contour_regions(&g, 100.0).is_empty());
    }

    #[test]
    fn contours_use_4_connectivity() {
        // Two diagonal cells must be separate regions.
        let g = Grid2::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        let regions = contour_regions(&g, 0.5);
        assert_eq!(regions.len(), 2);
    }
}
