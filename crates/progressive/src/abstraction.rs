//! The multi-abstraction ladder (paper §3.1): raw data, features,
//! semantics, metadata — "multiple abstraction level representations rely on
//! the fact that raw information can be processed into alternate
//! formulations ... that require lower data volumes at the expense of
//! fidelity."

use std::fmt;

/// Abstraction levels ordered from cheapest/coarsest to most expensive/
/// most faithful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AbstractionLevel {
    /// Catalog metadata only — extent, modality, time range.
    Metadata,
    /// Semantic labels (classification maps, contours, lithology runs).
    Semantics,
    /// Derived feature vectors (texture, histograms).
    Features,
    /// Full-fidelity raw data.
    Raw,
}

impl AbstractionLevel {
    /// All levels, cheapest first.
    pub const LADDER: [AbstractionLevel; 4] = [
        AbstractionLevel::Metadata,
        AbstractionLevel::Semantics,
        AbstractionLevel::Features,
        AbstractionLevel::Raw,
    ];

    /// Typical relative data volume per source pixel at this level, used
    /// for query planning (raw = 1.0; the others follow the reduction
    /// ratios of the representations in this crate: one region label per
    /// 16x16 tile for semantics, one 5-float feature vector per 16x16 tile
    /// for features, O(1) metadata). Volume strictly increases with detail.
    pub fn volume_fraction(&self) -> f64 {
        match self {
            AbstractionLevel::Metadata => 1e-6,
            AbstractionLevel::Semantics => 1.0 / 256.0,
            AbstractionLevel::Features => 5.0 / 256.0,
            AbstractionLevel::Raw => 1.0,
        }
    }

    /// The next-more-detailed level, or `None` at [`AbstractionLevel::Raw`].
    pub fn refine(&self) -> Option<AbstractionLevel> {
        match self {
            AbstractionLevel::Metadata => Some(AbstractionLevel::Semantics),
            AbstractionLevel::Semantics => Some(AbstractionLevel::Features),
            AbstractionLevel::Features => Some(AbstractionLevel::Raw),
            AbstractionLevel::Raw => None,
        }
    }
}

impl fmt::Display for AbstractionLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AbstractionLevel::Metadata => "metadata",
            AbstractionLevel::Semantics => "semantics",
            AbstractionLevel::Features => "features",
            AbstractionLevel::Raw => "raw",
        };
        f.write_str(name)
    }
}

/// A plan of which abstraction levels a progressive query will visit, with
/// its total data-volume estimate relative to a raw-only scan.
///
/// # Examples
///
/// ```
/// use mbir_progressive::abstraction::{AbstractionLevel, ProgressionPlan};
///
/// let plan = ProgressionPlan::full_ladder();
/// assert!(plan.volume_fraction(0.01) < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressionPlan {
    steps: Vec<AbstractionLevel>,
}

impl ProgressionPlan {
    /// A plan visiting every ladder rung from metadata to raw.
    pub fn full_ladder() -> Self {
        ProgressionPlan {
            steps: AbstractionLevel::LADDER.to_vec(),
        }
    }

    /// A plan over a custom rung sequence.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or not strictly increasing in detail.
    pub fn new(steps: Vec<AbstractionLevel>) -> Self {
        assert!(!steps.is_empty(), "plan needs at least one level");
        assert!(
            steps.windows(2).all(|w| w[0] < w[1]),
            "plan levels must strictly increase in detail"
        );
        ProgressionPlan { steps }
    }

    /// The planned levels, coarse to fine.
    pub fn steps(&self) -> &[AbstractionLevel] {
        &self.steps
    }

    /// Estimated total data volume (fraction of a raw scan) when each step
    /// passes only `survival` of its candidates to the next step.
    ///
    /// # Panics
    ///
    /// Panics if `survival` is not within `[0, 1]`.
    pub fn volume_fraction(&self, survival: f64) -> f64 {
        assert!((0.0..=1.0).contains(&survival), "survival must be in [0,1]");
        let mut remaining = 1.0;
        let mut total = 0.0;
        for level in &self.steps {
            total += remaining * level.volume_fraction();
            remaining *= survival;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_ordered_cheap_to_expensive() {
        for pair in AbstractionLevel::LADDER.windows(2) {
            assert!(pair[0] < pair[1]);
            assert!(pair[0].volume_fraction() < pair[1].volume_fraction());
        }
    }

    #[test]
    fn refine_walks_the_ladder() {
        let mut level = AbstractionLevel::Metadata;
        let mut seen = vec![level];
        while let Some(next) = level.refine() {
            seen.push(next);
            level = next;
        }
        assert_eq!(seen, AbstractionLevel::LADDER.to_vec());
    }

    #[test]
    fn plan_volume_decreases_with_selectivity() {
        let plan = ProgressionPlan::full_ladder();
        let tight = plan.volume_fraction(0.01);
        let loose = plan.volume_fraction(0.5);
        assert!(tight < loose);
        assert!(loose < 1.0 + plan.steps().len() as f64);
        // Survival 1.0 means every level touches everything.
        let worst = plan.volume_fraction(1.0);
        let sum: f64 = AbstractionLevel::LADDER
            .iter()
            .map(|l| l.volume_fraction())
            .sum();
        assert!((worst - sum).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn plan_rejects_unordered_steps() {
        let _ = ProgressionPlan::new(vec![AbstractionLevel::Raw, AbstractionLevel::Features]);
    }

    #[test]
    fn single_step_plan_is_valid() {
        let plan = ProgressionPlan::new(vec![AbstractionLevel::Raw]);
        assert_eq!(plan.steps().len(), 1);
        assert!((plan.volume_fraction(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_plan_rejected() {
        let _ = ProgressionPlan::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "survival")]
    fn survival_out_of_range_rejected() {
        let _ = ProgressionPlan::full_ladder().volume_fraction(1.5);
    }

    #[test]
    fn display_names() {
        assert_eq!(AbstractionLevel::Semantics.to_string(), "semantics");
        assert_eq!(AbstractionLevel::Raw.to_string(), "raw");
    }
}
