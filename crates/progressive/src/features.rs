//! Feature-level abstraction: texture statistics per tile (paper §3.1,
//! "raw information can be processed into alternate formulations such as
//! features (texture, color, shape, etc.)").
//!
//! Feature vectors are far smaller than the raw pixels they summarize, so a
//! texture query can screen whole tiles at feature level and only fetch raw
//! pixels for the survivors — the mechanism behind the 4–8x progressive
//! texture-matching speedup the paper quotes from \[12\].

use mbir_archive::grid::Grid2;

/// Texture feature vector for one tile.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TileFeatures {
    /// Mean intensity.
    pub mean: f64,
    /// Intensity variance.
    pub variance: f64,
    /// Mean absolute gradient (edge energy).
    pub edge_energy: f64,
    /// Shannon entropy of a 16-bin histogram (bits).
    pub entropy: f64,
    /// Michelson-style contrast `(max - min) / (max + min + eps)`.
    pub contrast: f64,
}

impl TileFeatures {
    /// Computes the feature vector of a tile.
    pub fn of(tile: &Grid2<f64>) -> Self {
        let mean = tile.mean();
        let variance = tile.variance();
        let (min, max) = tile.min_max().unwrap_or((0.0, 0.0));

        // Mean absolute forward-difference gradient.
        let mut grad = 0.0;
        let mut grad_n = 0u64;
        for r in 0..tile.rows() {
            for c in 0..tile.cols() {
                if c + 1 < tile.cols() {
                    grad += (tile.at(r, c + 1) - tile.at(r, c)).abs();
                    grad_n += 1;
                }
                if r + 1 < tile.rows() {
                    grad += (tile.at(r + 1, c) - tile.at(r, c)).abs();
                    grad_n += 1;
                }
            }
        }
        let edge_energy = if grad_n > 0 {
            grad / grad_n as f64
        } else {
            0.0
        };

        // Histogram entropy over the tile's own range.
        let bins = 16usize;
        let mut hist = vec![0u64; bins];
        let range = (max - min).max(f64::MIN_POSITIVE);
        for (_, &v) in tile.iter() {
            let b = (((v - min) / range) * bins as f64) as usize;
            hist[b.min(bins - 1)] += 1;
        }
        let n = tile.len() as f64;
        let entropy = hist
            .iter()
            .filter(|&&h| h > 0)
            .map(|&h| {
                let p = h as f64 / n;
                -p * p.log2()
            })
            .sum();

        let contrast = (max - min) / (max.abs() + min.abs() + 1e-12);

        TileFeatures {
            mean,
            variance,
            edge_energy,
            entropy,
            contrast,
        }
    }

    /// The feature vector as a fixed-order array.
    pub fn to_array(self) -> [f64; 5] {
        [
            self.mean,
            self.variance,
            self.edge_energy,
            self.entropy,
            self.contrast,
        ]
    }

    /// Euclidean distance between feature vectors (optionally scaled).
    pub fn distance(&self, other: &TileFeatures) -> f64 {
        self.to_array()
            .iter()
            .zip(other.to_array().iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

/// Partitions a grid into `tile x tile` tiles and computes per-tile
/// features, returning `(tile_row, tile_col, features)` in row-major order.
///
/// # Panics
///
/// Panics if `tile == 0`.
pub fn tile_features(grid: &Grid2<f64>, tile: usize) -> Vec<(usize, usize, TileFeatures)> {
    assert!(tile > 0, "tile size must be non-zero");
    let t_rows = grid.rows().div_ceil(tile);
    let t_cols = grid.cols().div_ceil(tile);
    let mut out = Vec::with_capacity(t_rows * t_cols);
    for tr in 0..t_rows {
        for tc in 0..t_cols {
            let window = grid
                .window(
                    mbir_archive::extent::CellCoord::new(tr * tile, tc * tile),
                    tile,
                    tile,
                )
                .expect("tile origin is inside the grid");
            out.push((tr, tc, TileFeatures::of(&window)));
        }
    }
    out
}

/// Progressive texture match: screen tiles with features of the *coarse*
/// representation (against `query_coarse`, the query's own coarse-level
/// features), then extract full-resolution features only for tiles whose
/// coarse distance is within `screen_factor` of the best coarse distance.
/// Returns the indexes of the `k` best tiles (by fine distance against
/// `query_fine`) plus the number of fine extractions — the work measure for
/// the E3 experiment.
///
/// Screening compares coarse features with coarse features because texture
/// statistics are not scale-invariant; comparing a fine query vector against
/// coarse tile vectors would make the screen meaningless.
///
/// # Panics
///
/// Panics if `tile == 0` or `k == 0`.
pub fn progressive_texture_match(
    grid: &Grid2<f64>,
    coarse: &Grid2<f64>,
    query_coarse: &TileFeatures,
    query_fine: &TileFeatures,
    tile: usize,
    k: usize,
    screen_factor: f64,
) -> (Vec<(usize, usize)>, usize) {
    assert!(tile > 0 && k > 0, "tile and k must be non-zero");
    // Coarse grid is assumed to be a 2^s reduction of `grid`.
    let scale = (grid.rows() as f64 / coarse.rows() as f64).round().max(1.0) as usize;
    let coarse_tile = (tile / scale).max(1);
    let coarse_feats = tile_features(coarse, coarse_tile);
    let mut scored: Vec<(f64, usize, usize)> = coarse_feats
        .iter()
        .map(|(tr, tc, f)| (f.distance(query_coarse), *tr, *tc))
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));
    let best = scored.first().map(|s| s.0).unwrap_or(0.0);
    let cutoff = best * screen_factor + 1e-12;

    let mut fine: Vec<(f64, (usize, usize))> = Vec::new();
    let mut fine_extractions = 0usize;
    for &(d, tr, tc) in &scored {
        if d > cutoff && fine.len() >= k {
            break;
        }
        let window = grid
            .window(
                mbir_archive::extent::CellCoord::new(tr * tile, tc * tile),
                tile,
                tile,
            )
            .expect("coarse tile maps inside the fine grid");
        fine_extractions += 1;
        fine.push((TileFeatures::of(&window).distance(query_fine), (tr, tc)));
    }
    fine.sort_by(|a, b| a.0.total_cmp(&b.0));
    fine.truncate(k);
    (fine.into_iter().map(|(_, t)| t).collect(), fine_extractions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_tile_has_zero_texture() {
        let f = TileFeatures::of(&Grid2::filled(8, 8, 3.0));
        assert_eq!(f.mean, 3.0);
        assert_eq!(f.variance, 0.0);
        assert_eq!(f.edge_energy, 0.0);
        assert_eq!(f.entropy, 0.0);
        assert!(f.contrast < 1e-9);
    }

    #[test]
    fn checkerboard_is_high_texture() {
        let check = Grid2::from_fn(8, 8, |r, c| ((r + c) % 2) as f64);
        let flat = Grid2::filled(8, 8, 0.5);
        let fc = TileFeatures::of(&check);
        let ff = TileFeatures::of(&flat);
        assert!(fc.edge_energy > 0.9);
        assert!(fc.variance > ff.variance);
        assert!(
            fc.entropy > 0.9,
            "two-value histogram ~1 bit, got {}",
            fc.entropy
        );
    }

    #[test]
    fn distance_is_metric_like() {
        let a = TileFeatures::of(&Grid2::from_fn(8, 8, |r, c| (r * c) as f64));
        let b = TileFeatures::of(&Grid2::from_fn(8, 8, |r, c| ((r + c) % 3) as f64));
        assert_eq!(a.distance(&a), 0.0);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        assert!(a.distance(&b) > 0.0);
    }

    #[test]
    fn tile_features_cover_grid() {
        let g = Grid2::from_fn(10, 12, |r, c| (r + c) as f64);
        let feats = tile_features(&g, 4);
        assert_eq!(feats.len(), 3 * 3);
        assert_eq!(feats[0].0, 0);
        assert_eq!(feats.last().unwrap().1, 2);
    }

    #[test]
    fn progressive_match_finds_planted_tile() {
        // Plant a distinctive texture in tile (2, 3) of a 4x4 tiling.
        let tile = 16usize;
        let g = Grid2::from_fn(64, 64, |r, c| {
            if r / tile == 2 && c / tile == 3 {
                ((r + c) % 2) as f64 * 100.0
            } else {
                (r as f64 * 0.1).sin()
            }
        });
        let query_window = g
            .window(
                mbir_archive::extent::CellCoord::new(2 * tile, 3 * tile),
                tile,
                tile,
            )
            .unwrap();
        let query_fine = TileFeatures::of(&query_window);
        // Coarse = 2x reduction.
        let coarse = Grid2::from_fn(32, 32, |r, c| {
            (g.at(2 * r, 2 * c)
                + g.at(2 * r + 1, 2 * c)
                + g.at(2 * r, 2 * c + 1)
                + g.at(2 * r + 1, 2 * c + 1))
                / 4.0
        });
        let query_coarse_window = coarse
            .window(
                mbir_archive::extent::CellCoord::new(2 * tile / 2, 3 * tile / 2),
                tile / 2,
                tile / 2,
            )
            .unwrap();
        let query_coarse = TileFeatures::of(&query_coarse_window);
        let (hits, fine_work) =
            progressive_texture_match(&g, &coarse, &query_coarse, &query_fine, tile, 1, 2.0);
        assert_eq!(hits[0], (2, 3));
        assert!(
            fine_work < 16,
            "screening should avoid extracting all 16 tiles, did {fine_work}"
        );
    }
}
