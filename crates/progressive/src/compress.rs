//! Wavelet-domain compression: the storage side of multi-resolution
//! representation (paper refs \[1\]–\[3\], "adaptive storage and retrieval of
//! large compressed images").
//!
//! A k-level Haar analysis concentrates a smooth image's energy in few
//! coefficients; keeping the largest fraction gives the archive a
//! rate/fidelity dial. Compression here is an archive-storage concern —
//! model retrieval consumes the pyramid approximations, which are exact
//! block means regardless of what fraction of detail is stored.

use crate::wavelet::{haar_decompose_1d, haar_reconstruct_1d};
use mbir_archive::grid::Grid2;

/// A compressed 2-D signal: separable Haar transform with small detail
/// coefficients zeroed.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedGrid {
    rows: usize,
    cols: usize,
    levels: usize,
    /// The transform plane (approximation in the top-left corner, detail
    /// bands around it), with dropped coefficients stored as exact zeros.
    plane: Vec<f64>,
    kept: usize,
}

impl CompressedGrid {
    /// Compresses `grid` with `levels` of separable Haar analysis, keeping
    /// the `keep_fraction` largest-magnitude detail coefficients
    /// (approximation coefficients are always kept).
    ///
    /// # Panics
    ///
    /// Panics if `keep_fraction` is outside `[0, 1]`.
    pub fn compress(grid: &Grid2<f64>, levels: usize, keep_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&keep_fraction),
            "keep_fraction must be in [0,1], got {keep_fraction}"
        );
        let rows = grid.rows();
        let cols = grid.cols();
        let mut plane: Vec<f64> = grid.as_slice().to_vec();
        let mut r_extent = rows;
        let mut c_extent = cols;
        let mut applied = 0usize;
        for _ in 0..levels {
            if r_extent < 2 && c_extent < 2 {
                break;
            }
            // Transform rows of the active corner.
            if c_extent >= 2 {
                for r in 0..r_extent {
                    let row: Vec<f64> = (0..c_extent).map(|c| plane[r * cols + c]).collect();
                    let (a, d) = haar_decompose_1d(&row);
                    for (c, v) in a.iter().chain(d.iter()).enumerate() {
                        plane[r * cols + c] = *v;
                    }
                }
            }
            // Transform columns of the active corner.
            if r_extent >= 2 {
                for c in 0..c_extent {
                    let col: Vec<f64> = (0..r_extent).map(|r| plane[r * cols + c]).collect();
                    let (a, d) = haar_decompose_1d(&col);
                    for (r, v) in a.iter().chain(d.iter()).enumerate() {
                        plane[r * cols + c] = *v;
                    }
                }
            }
            r_extent = r_extent.div_ceil(2);
            c_extent = c_extent.div_ceil(2);
            applied += 1;
        }

        // Threshold detail coefficients (everything outside the final
        // approximation corner).
        let is_detail = |idx: usize| -> bool {
            let (r, c) = (idx / cols, idx % cols);
            r >= r_extent || c >= c_extent
        };
        let mut detail_mags: Vec<f64> = plane
            .iter()
            .enumerate()
            .filter(|(i, _)| is_detail(*i))
            .map(|(_, v)| v.abs())
            .collect();
        let total_detail = detail_mags.len();
        let keep = ((total_detail as f64) * keep_fraction).round() as usize;
        let mut kept = total_detail.min(keep);
        if kept < total_detail {
            detail_mags.sort_by(|a, b| b.total_cmp(a));
            let threshold = if kept == 0 {
                f64::INFINITY
            } else {
                detail_mags[kept - 1]
            };
            // Zero everything strictly below the threshold; count what
            // actually survived (ties can keep a few more).
            kept = 0;
            for (i, v) in plane.iter_mut().enumerate() {
                if is_detail(i) {
                    if v.abs() < threshold {
                        *v = 0.0;
                    } else {
                        kept += 1;
                    }
                }
            }
        }
        CompressedGrid {
            rows,
            cols,
            levels: applied,
            plane,
            kept,
        }
    }

    /// Number of detail coefficients retained.
    pub fn kept_coefficients(&self) -> usize {
        self.kept
    }

    /// Nonzero coefficients (approximation + kept details) as a fraction of
    /// the original cell count — the storage ratio.
    pub fn storage_fraction(&self) -> f64 {
        let nonzero = self.plane.iter().filter(|v| **v != 0.0).count();
        nonzero as f64 / (self.rows * self.cols) as f64
    }

    /// Reconstructs the (lossy) grid.
    pub fn reconstruct(&self) -> Grid2<f64> {
        let rows = self.rows;
        let cols = self.cols;
        let mut plane = self.plane.clone();
        // Recompute the extent ladder to invert in reverse order.
        let mut extents = Vec::with_capacity(self.levels);
        let mut r_extent = rows;
        let mut c_extent = cols;
        for _ in 0..self.levels {
            extents.push((r_extent, c_extent));
            r_extent = r_extent.div_ceil(2);
            c_extent = c_extent.div_ceil(2);
        }
        for &(re, ce) in extents.iter().rev() {
            // Inverse columns first (reverse of forward order).
            if re >= 2 {
                let half = re.div_ceil(2);
                for c in 0..ce {
                    let a: Vec<f64> = (0..half).map(|r| plane[r * cols + c]).collect();
                    let d: Vec<f64> = (half..re).map(|r| plane[r * cols + c]).collect();
                    let col = haar_reconstruct_1d(&a, &d);
                    for (r, v) in col.iter().enumerate() {
                        plane[r * cols + c] = *v;
                    }
                }
            }
            if ce >= 2 {
                let half = ce.div_ceil(2);
                for r in 0..re {
                    let a: Vec<f64> = (0..half).map(|c| plane[r * cols + c]).collect();
                    let d: Vec<f64> = (half..ce).map(|c| plane[r * cols + c]).collect();
                    let row = haar_reconstruct_1d(&a, &d);
                    for (c, v) in row.iter().enumerate() {
                        plane[r * cols + c] = *v;
                    }
                }
            }
        }
        Grid2::from_vec(rows, cols, plane).expect("dimensions preserved")
    }

    /// Root-mean-square reconstruction error against the original.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn rmse(&self, original: &Grid2<f64>) -> f64 {
        assert!(
            original.rows() == self.rows && original.cols() == self.cols,
            "shape mismatch"
        );
        let recon = self.reconstruct();
        let sum: f64 = recon
            .as_slice()
            .iter()
            .zip(original.as_slice())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (sum / (self.rows * self.cols) as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbir_archive::synth::GaussianField;
    use proptest::prelude::*;

    #[test]
    fn full_retention_is_lossless() {
        let g = GaussianField::new(1).generate(32, 32);
        let c = CompressedGrid::compress(&g, 4, 1.0);
        let r = c.reconstruct();
        for (a, b) in r.as_slice().iter().zip(g.as_slice()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert!((c.storage_fraction() - 1.0).abs() < 0.2, "mostly nonzero");
    }

    #[test]
    fn rmse_decreases_with_retention() {
        let g = GaussianField::new(2)
            .with_roughness(0.4)
            .generate(64, 64)
            .normalized(0.0, 255.0);
        let rmse_05 = CompressedGrid::compress(&g, 4, 0.05).rmse(&g);
        let rmse_20 = CompressedGrid::compress(&g, 4, 0.20).rmse(&g);
        let rmse_80 = CompressedGrid::compress(&g, 4, 0.80).rmse(&g);
        assert!(rmse_05 > rmse_20, "{rmse_05} vs {rmse_20}");
        assert!(rmse_20 > rmse_80, "{rmse_20} vs {rmse_80}");
    }

    #[test]
    fn energy_compaction_on_smooth_images() {
        // A smooth image at 5% retention should reconstruct within a few
        // percent of its dynamic range.
        let g = GaussianField::new(3)
            .with_roughness(0.3)
            .generate(64, 64)
            .normalized(0.0, 255.0);
        let c = CompressedGrid::compress(&g, 5, 0.05);
        assert!(c.storage_fraction() < 0.12, "{}", c.storage_fraction());
        let rmse = c.rmse(&g);
        assert!(rmse < 12.0, "rmse {rmse} over a 0..255 range");
    }

    #[test]
    fn zero_retention_keeps_approximation_only() {
        let g = Grid2::from_fn(16, 16, |r, c| (r + c) as f64);
        let c = CompressedGrid::compress(&g, 4, 0.0);
        assert_eq!(c.kept_coefficients(), 0);
        // Reconstruction is block means — still close for a linear ramp.
        let rmse = c.rmse(&g);
        assert!(rmse < 16.0);
    }

    #[test]
    fn ragged_sizes_roundtrip() {
        let g = GaussianField::new(4).generate(19, 27);
        let c = CompressedGrid::compress(&g, 3, 1.0);
        let r = c.reconstruct();
        for (a, b) in r.as_slice().iter().zip(g.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn prop_lossless_at_full_retention(
            rows in 1usize..24,
            cols in 1usize..24,
            levels in 0usize..5,
            seed in 0u64..100,
        ) {
            let g = Grid2::from_fn(rows, cols, |r, c| {
                let h = seed.wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add((r * 97 + c) as u64);
                (h % 1000) as f64 / 10.0
            });
            let c = CompressedGrid::compress(&g, levels, 1.0);
            let r = c.reconstruct();
            for (a, b) in r.as_slice().iter().zip(g.as_slice()) {
                prop_assert!((a - b).abs() < 1e-8);
            }
        }
    }
}
