#![warn(missing_docs)]
//! # mbir-progressive
//!
//! Progressive data representations for model-based retrieval (paper §3.1).
//! The paper names two orthogonal axes along which archive data can be made
//! progressively cheaper to consume:
//!
//! * **Multi-resolution** — coarse views first. [`wavelet`] provides the
//!   Haar transform family the paper cites; [`pyramid`] builds aggregate
//!   (min/max/mean) resolution pyramids that yield *sound interval bounds*
//!   for model values over whole regions, enabling quad-descent refinement.
//! * **Multi-abstraction** — alternate formulations at lower data volume:
//!   raw pixels → derived [`features`] (texture statistics) → [`semantics`]
//!   (classified land cover, contours) → metadata. [`abstraction`] defines
//!   the ladder and its data-volume accounting.
//!
//! ```
//! use mbir_archive::grid::Grid2;
//! use mbir_progressive::pyramid::AggregatePyramid;
//!
//! let grid = Grid2::from_fn(64, 64, |r, c| (r + c) as f64);
//! let pyr = AggregatePyramid::build(&grid);
//! let top = pyr.cell(pyr.levels() - 1, 0, 0).unwrap();
//! assert!(top.min <= top.mean && top.mean <= top.max);
//! ```

pub mod abstraction;
pub mod compress;
pub mod features;
pub mod pyramid;
pub mod semantics;
pub mod seriesagg;
pub mod wavelet;

pub use abstraction::AbstractionLevel;
pub use compress::CompressedGrid;
pub use features::TileFeatures;
pub use pyramid::{AggregatePyramid, CellStats};
pub use semantics::{GaussianClassifier, LandCover};
pub use seriesagg::{IntervalStats, SeriesPyramid};
pub use wavelet::{haar_decompose_1d, haar_reconstruct_1d, HaarPyramid2d};
