//! Multi-band raster scenes (the Landsat Thematic Mapper stand-in).

use crate::error::ArchiveError;
use crate::extent::GeoExtent;
use crate::grid::Grid2;
use crate::synth::{mix_fields, GaussianField};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a spectral band within a [`Scene`].
///
/// Landsat TM numbering is used by the paper's HPS risk model (bands 4, 5
/// and 7), so the constants for those bands are provided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BandId(pub u8);

impl BandId {
    /// Landsat TM band 4 (near infrared).
    pub const TM4: BandId = BandId(4);
    /// Landsat TM band 5 (shortwave infrared 1).
    pub const TM5: BandId = BandId(5);
    /// Landsat TM band 7 (shortwave infrared 2).
    pub const TM7: BandId = BandId(7);
}

impl fmt::Display for BandId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "band{}", self.0)
    }
}

/// A co-registered multi-band raster scene.
///
/// All bands share one shape and extent; [`Scene::add_band`] enforces the
/// alignment. Pixel values are stored as `f64` radiance; quantized 8-bit
/// views can be derived with [`Scene::quantized`].
///
/// # Examples
///
/// ```
/// use mbir_archive::scene::{BandId, Scene};
/// use mbir_archive::grid::Grid2;
///
/// let mut scene = Scene::new(8, 8);
/// scene.add_band(BandId::TM4, Grid2::filled(8, 8, 0.5)).unwrap();
/// assert_eq!(scene.band_ids(), vec![BandId::TM4]);
/// ```
#[derive(Debug, Clone)]
pub struct Scene {
    rows: usize,
    cols: usize,
    extent: GeoExtent,
    bands: BTreeMap<BandId, Grid2<f64>>,
}

impl Scene {
    /// Creates an empty scene of the given shape over the unit extent.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0 || cols == 0`.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "scene dimensions must be non-zero");
        Scene {
            rows,
            cols,
            extent: GeoExtent::unit(),
            bands: BTreeMap::new(),
        }
    }

    /// Sets the geographic extent (builder style).
    pub fn with_extent(mut self, extent: GeoExtent) -> Self {
        self.extent = extent;
        self
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The geographic extent.
    pub fn extent(&self) -> &GeoExtent {
        &self.extent
    }

    /// Band ids present, in ascending order.
    pub fn band_ids(&self) -> Vec<BandId> {
        self.bands.keys().copied().collect()
    }

    /// Number of bands.
    pub fn band_count(&self) -> usize {
        self.bands.len()
    }

    /// Adds (or replaces) a band.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::Misaligned`] when the grid shape differs from
    /// the scene shape.
    pub fn add_band(&mut self, id: BandId, grid: Grid2<f64>) -> Result<(), ArchiveError> {
        if grid.rows() != self.rows || grid.cols() != self.cols {
            return Err(ArchiveError::Misaligned(format!(
                "{id} is {}x{}, scene is {}x{}",
                grid.rows(),
                grid.cols(),
                self.rows,
                self.cols
            )));
        }
        self.bands.insert(id, grid.with_extent(self.extent));
        Ok(())
    }

    /// Borrow of a band.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::UnknownDataset`] for an absent band.
    pub fn band(&self, id: BandId) -> Result<&Grid2<f64>, ArchiveError> {
        self.bands
            .get(&id)
            .ok_or_else(|| ArchiveError::UnknownDataset(id.to_string()))
    }

    /// Pixel value of one band.
    ///
    /// # Errors
    ///
    /// Propagates band lookup and bounds errors.
    pub fn value(&self, id: BandId, row: usize, col: usize) -> Result<f64, ArchiveError> {
        Ok(*self.band(id)?.get(row, col)?)
    }

    /// The per-pixel vector of all band values (ascending band order).
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-bounds coordinates.
    pub fn pixel(&self, row: usize, col: usize) -> Result<Vec<f64>, ArchiveError> {
        if row >= self.rows || col >= self.cols {
            return Err(ArchiveError::OutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok(self.bands.values().map(|g| *g.at(row, col)).collect())
    }

    /// An 8-bit quantized copy of a band, scaled over its own min/max — the
    /// fidelity actually offered by archived TM products.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::UnknownDataset`] for an absent band.
    pub fn quantized(&self, id: BandId) -> Result<Grid2<u8>, ArchiveError> {
        let band = self.band(id)?;
        Ok(band.normalized(0.0, 255.0).map(|&v| v.round() as u8))
    }
}

/// Builder for synthetic multi-spectral scenes with controlled inter-band
/// correlation, the stand-in for real Landsat acquisitions.
#[derive(Debug, Clone)]
pub struct SyntheticScene {
    seed: u64,
    rows: usize,
    cols: usize,
    roughness: f64,
    band_ids: Vec<BandId>,
    correlation: f64,
}

impl SyntheticScene {
    /// Creates a builder for a `rows x cols` scene.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0 || cols == 0`.
    pub fn new(seed: u64, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "scene dimensions must be non-zero");
        SyntheticScene {
            seed,
            rows,
            cols,
            roughness: 0.55,
            band_ids: vec![BandId::TM4, BandId::TM5, BandId::TM7],
            correlation: 0.7,
        }
    }

    /// Sets field roughness (clamped to `[0, 1]`).
    pub fn with_roughness(mut self, roughness: f64) -> Self {
        self.roughness = roughness.clamp(0.0, 1.0);
        self
    }

    /// Sets the bands to synthesize.
    pub fn with_bands(mut self, ids: &[BandId]) -> Self {
        self.band_ids = ids.to_vec();
        self
    }

    /// Sets the pairwise correlation between consecutive bands (clamped to
    /// `[0, 0.99]`).
    pub fn with_correlation(mut self, correlation: f64) -> Self {
        self.correlation = correlation.clamp(0.0, 0.99);
        self
    }

    /// Generates the scene.
    pub fn generate(&self) -> Scene {
        let k = self.band_ids.len().max(1);
        let sources: Vec<Grid2<f64>> = (0..k)
            .map(|i| {
                GaussianField::new(self.seed.wrapping_add(i as u64 * 7919))
                    .with_roughness(self.roughness)
                    .generate(self.rows, self.cols)
            })
            .collect();
        // Band j mixes a shared component (source 0) with its own source:
        // weight rho on shared, sqrt(1 - rho^2) on own, giving correlation
        // ~rho^2 between any two bands and exactly rho with the shared field.
        let rho = self.correlation;
        let own = (1.0 - rho * rho).sqrt();
        let weights: Vec<Vec<f64>> = (0..k)
            .map(|j| {
                let mut w = vec![0.0; k];
                w[0] += rho;
                w[j] += own;
                w
            })
            .collect();
        let mixed = mix_fields(&sources, &weights);
        let mut scene = Scene::new(self.rows, self.cols);
        for (id, grid) in self.band_ids.iter().zip(mixed) {
            scene
                .add_band(*id, grid.normalized(0.0, 255.0))
                .expect("generated bands share the scene shape");
        }
        scene
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_band_rejects_misaligned() {
        let mut scene = Scene::new(4, 4);
        let err = scene.add_band(BandId::TM4, Grid2::filled(3, 4, 0.0));
        assert!(matches!(err, Err(ArchiveError::Misaligned(_))));
    }

    #[test]
    fn pixel_vector_uses_ascending_band_order() {
        let mut scene = Scene::new(2, 2);
        scene
            .add_band(BandId::TM7, Grid2::filled(2, 2, 7.0))
            .unwrap();
        scene
            .add_band(BandId::TM4, Grid2::filled(2, 2, 4.0))
            .unwrap();
        scene
            .add_band(BandId::TM5, Grid2::filled(2, 2, 5.0))
            .unwrap();
        assert_eq!(scene.pixel(0, 0).unwrap(), vec![4.0, 5.0, 7.0]);
        assert!(scene.pixel(2, 0).is_err());
    }

    #[test]
    fn unknown_band_is_an_error() {
        let scene = Scene::new(2, 2);
        assert!(matches!(
            scene.band(BandId::TM4),
            Err(ArchiveError::UnknownDataset(_))
        ));
    }

    #[test]
    fn quantized_spans_full_byte_range() {
        let mut scene = Scene::new(1, 3);
        scene
            .add_band(
                BandId::TM4,
                Grid2::from_vec(1, 3, vec![0.0, 0.5, 1.0]).unwrap(),
            )
            .unwrap();
        let q = scene.quantized(BandId::TM4).unwrap();
        assert_eq!(q.as_slice(), &[0u8, 128, 255]);
    }

    #[test]
    fn synthetic_scene_has_requested_bands_and_is_deterministic() {
        let s1 = SyntheticScene::new(99, 16, 16).generate();
        let s2 = SyntheticScene::new(99, 16, 16).generate();
        assert_eq!(s1.band_ids(), vec![BandId::TM4, BandId::TM5, BandId::TM7]);
        for id in s1.band_ids() {
            assert_eq!(s1.band(id).unwrap(), s2.band(id).unwrap());
        }
    }

    #[test]
    fn synthetic_bands_are_correlated() {
        let scene = SyntheticScene::new(4, 33, 33)
            .with_correlation(0.9)
            .generate();
        let a = scene.band(BandId::TM4).unwrap();
        let b = scene.band(BandId::TM5).unwrap();
        let (ma, mb) = (a.mean(), b.mean());
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                let dx = a.at(r, c) - ma;
                let dy = b.at(r, c) - mb;
                sxy += dx * dy;
                sxx += dx * dx;
                syy += dy * dy;
            }
        }
        let corr = sxy / (sxx * syy).sqrt();
        assert!(corr > 0.5, "corr {corr}");
    }
}
