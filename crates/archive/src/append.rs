//! Crash-consistent appendable archives: journaled, tile-aligned row
//! appends with verified recovery.
//!
//! The paper's archives are living collections — new imagery and weather
//! pages arrive continuously. [`AppendableArchive`] makes ingestion
//! crash-safe with the classic write-ahead discipline:
//!
//! 1. **Journal first.** An appended row band is framed and persisted to
//!    the [`AppendJournal`](crate::journal::AppendJournal) *before* any
//!    in-memory state changes. The frame's trailing commit checksum is
//!    the durability point.
//! 2. **Apply second.** Only after the frame is durable is the band
//!    spliced onto the committed grid and the commit epoch bumped.
//! 3. **Recover by replay.** After a crash
//!    ([`WriteFault`](crate::fault::WriteFault)), [`recover`](AppendableArchive::recover)
//!    replays the surviving journal bytes onto the base grid, truncates
//!    at the first invalid frame, and restores *exactly* the committed
//!    prefix — bit-identical to an archive freshly built from those
//!    bands (property-tested in `tests/append_props.rs`).
//!
//! Appends are **tile-row aligned**: the base grid and every band have a
//! row count that is a multiple of the tile size, so appends add whole
//! tile rows and never rewrite a committed page. That is what makes the
//! committed prefix immutable — page `p` of epoch `e` has the same bytes
//! in every later epoch, which the snapshot layer (`mbir-core`) relies on
//! for isolation.

use crate::error::ArchiveError;
use crate::grid::Grid2;
use crate::journal::{recover, AppendJournal, RecoveredJournal, TruncationReason};
use crate::tile::TileStore;

/// Receipt for one committed append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendCommit {
    /// Journal sequence number of the committed frame.
    pub seq: u64,
    /// Commit epoch after this append (== seq + 1; epoch 0 is the base).
    pub epoch: u64,
    /// Absolute row index where the band landed.
    pub row_offset: usize,
    /// Rows appended.
    pub rows: usize,
}

/// How a recovery replay ended.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Appends restored (the recovered commit epoch).
    pub applied: u64,
    /// Byte length of the valid committed journal prefix.
    pub committed_bytes: usize,
    /// Journal bytes discarded past the committed prefix.
    pub dropped_bytes: usize,
    /// Why the journal scan stopped.
    pub truncation: TruncationReason,
}

/// A grid archive that grows by journaled, tile-aligned row appends.
///
/// # Examples
///
/// ```
/// use mbir_archive::append::AppendableArchive;
/// use mbir_archive::grid::Grid2;
///
/// let base = Grid2::filled(4, 8, 0.0);
/// let mut arch = AppendableArchive::new(base.clone(), 4).unwrap();
/// let commit = arch.append_rows(Grid2::filled(4, 8, 1.0)).unwrap();
/// assert_eq!(commit.epoch, 1);
/// assert_eq!(arch.rows(), 8);
///
/// // A crash later: replaying the journal restores the committed state.
/// let (rec, report) = AppendableArchive::recover(base, 4, arch.journal_bytes()).unwrap();
/// assert_eq!(report.applied, 1);
/// assert_eq!(rec.grid(), arch.grid());
/// ```
#[derive(Debug, Clone)]
pub struct AppendableArchive {
    tile: usize,
    grid: Grid2<f64>,
    journal: AppendJournal,
    epoch: u64,
}

impl AppendableArchive {
    /// Wraps a base grid for appending with the given tile size.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::AppendMisaligned`] when the base row count is not
    /// a multiple of `tile` (appends must start on a tile boundary so
    /// committed pages are never rewritten), or when `tile` is zero.
    pub fn new(base: Grid2<f64>, tile: usize) -> Result<Self, ArchiveError> {
        if tile == 0 {
            return Err(ArchiveError::AppendMisaligned(
                "tile size must be > 0".into(),
            ));
        }
        if !base.rows().is_multiple_of(tile) {
            return Err(ArchiveError::AppendMisaligned(format!(
                "base rows {} not a multiple of tile {}",
                base.rows(),
                tile
            )));
        }
        Ok(AppendableArchive {
            tile,
            grid: base,
            journal: AppendJournal::new(),
            epoch: 0,
        })
    }

    /// Arms a write fault on the underlying journal (builder style) — the
    /// chaos harness's crash injection point.
    pub fn with_write_fault(mut self, fault: crate::fault::WriteFault) -> Self {
        self.journal = std::mem::take(&mut self.journal).with_write_fault(fault);
        self
    }

    /// Appends a band of rows at the bottom of the archive: journals the
    /// frame first, then applies it, then bumps the commit epoch.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::AppendMisaligned`] when the band's width differs
    /// from the archive's or its height is not a whole number of tile
    /// rows — nothing is written. [`ArchiveError::JournalCrashed`] when
    /// an armed write fault fires (or already fired): the in-memory state
    /// is unchanged and the archive accepts no further appends, exactly
    /// like a dead process.
    pub fn append_rows(&mut self, band: Grid2<f64>) -> Result<AppendCommit, ArchiveError> {
        if band.cols() != self.grid.cols() {
            return Err(ArchiveError::AppendMisaligned(format!(
                "band width {} != archive width {}",
                band.cols(),
                self.grid.cols()
            )));
        }
        if band.rows() == 0 || !band.rows().is_multiple_of(self.tile) {
            return Err(ArchiveError::AppendMisaligned(format!(
                "band height {} not a positive multiple of tile {}",
                band.rows(),
                self.tile
            )));
        }
        let row_offset = self.grid.rows();
        let seq = self.journal.append(row_offset, &band)?;
        let mut data = Vec::with_capacity(self.grid.len() + band.len());
        data.extend_from_slice(self.grid.as_slice());
        data.extend_from_slice(band.as_slice());
        self.grid = Grid2::from_vec(row_offset + band.rows(), self.grid.cols(), data)
            .expect("append geometry validated above");
        self.epoch += 1;
        Ok(AppendCommit {
            seq,
            epoch: self.epoch,
            row_offset,
            rows: band.rows(),
        })
    }

    /// Replays journal bytes onto `base`, restoring exactly the committed
    /// prefix.
    ///
    /// Beyond the journal-level frame verification
    /// ([`crate::journal::recover`]), each committed record must also
    /// splice contiguously (its `row_offset` equals the current row
    /// count, its width and tile alignment match); a record that verifies
    /// but does not fit is treated as the start of the invalid suffix,
    /// reported as [`TruncationReason::BadGeometry`].
    ///
    /// # Errors
    ///
    /// [`ArchiveError::AppendMisaligned`] when `base`/`tile` themselves
    /// are invalid (as in [`new`](Self::new)).
    pub fn recover(
        base: Grid2<f64>,
        tile: usize,
        journal_bytes: &[u8],
    ) -> Result<(Self, RecoveryReport), ArchiveError> {
        let mut arch = AppendableArchive::new(base, tile)?;
        let RecoveredJournal {
            records,
            mut committed_bytes,
            mut dropped_bytes,
            mut truncation,
        } = recover(journal_bytes);
        let mut replayed = AppendJournal::new();
        for record in records {
            let fits = record.row_offset == arch.grid.rows()
                && record.band.cols() == arch.grid.cols()
                && record.band.rows() % tile == 0;
            if !fits {
                let tail = committed_bytes;
                committed_bytes = replayed.bytes().len();
                dropped_bytes += tail - committed_bytes;
                truncation = TruncationReason::BadGeometry;
                break;
            }
            replayed
                .append(record.row_offset, &record.band)
                .expect("fresh journal cannot be crashed");
            let mut data = Vec::with_capacity(arch.grid.len() + record.band.len());
            data.extend_from_slice(arch.grid.as_slice());
            data.extend_from_slice(record.band.as_slice());
            arch.grid = Grid2::from_vec(
                record.row_offset + record.band.rows(),
                arch.grid.cols(),
                data,
            )
            .expect("record geometry validated above");
            arch.epoch += 1;
        }
        arch.journal = replayed;
        let report = RecoveryReport {
            applied: arch.epoch,
            committed_bytes,
            dropped_bytes,
            truncation,
        };
        Ok((arch, report))
    }

    /// The committed grid (base plus every committed band).
    pub fn grid(&self) -> &Grid2<f64> {
        &self.grid
    }

    /// Committed rows.
    pub fn rows(&self) -> usize {
        self.grid.rows()
    }

    /// Archive width.
    pub fn cols(&self) -> usize {
        self.grid.cols()
    }

    /// Tile size appends are aligned to.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Commit epoch: number of committed appends (0 = base only).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True once an armed write fault has fired.
    pub fn has_crashed(&self) -> bool {
        self.journal.has_crashed()
    }

    /// The persisted journal bytes — what survives a crash.
    pub fn journal_bytes(&self) -> &[u8] {
        self.journal.bytes()
    }

    /// Builds a [`TileStore`] over the committed grid, for paged queries.
    ///
    /// # Errors
    ///
    /// Propagates [`TileStore::new`] validation.
    pub fn store(&self) -> Result<TileStore, ArchiveError> {
        TileStore::new(self.grid.clone(), self.tile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::WriteFault;

    fn base() -> Grid2<f64> {
        Grid2::from_fn(4, 6, |r, c| (r * 6 + c) as f64)
    }

    fn band(seed: f64) -> Grid2<f64> {
        Grid2::from_fn(2, 6, |r, c| seed + (r * 6 + c) as f64 * 0.25)
    }

    #[test]
    fn construction_validates_alignment() {
        assert!(AppendableArchive::new(base(), 2).is_ok());
        assert!(matches!(
            AppendableArchive::new(base(), 0),
            Err(ArchiveError::AppendMisaligned(_))
        ));
        assert!(matches!(
            AppendableArchive::new(base(), 3),
            Err(ArchiveError::AppendMisaligned(_))
        ));
    }

    #[test]
    fn append_rejects_misfit_bands_without_writing() {
        let mut arch = AppendableArchive::new(base(), 2).unwrap();
        let wrong_width = Grid2::filled(2, 5, 0.0);
        assert!(matches!(
            arch.append_rows(wrong_width),
            Err(ArchiveError::AppendMisaligned(_))
        ));
        let wrong_height = Grid2::filled(3, 6, 0.0);
        assert!(matches!(
            arch.append_rows(wrong_height),
            Err(ArchiveError::AppendMisaligned(_))
        ));
        assert_eq!(arch.journal_bytes().len(), 0);
        assert_eq!(arch.epoch(), 0);
    }

    #[test]
    fn appends_commit_and_are_readable() {
        let mut arch = AppendableArchive::new(base(), 2).unwrap();
        let c1 = arch.append_rows(band(100.0)).unwrap();
        assert_eq!((c1.seq, c1.epoch, c1.row_offset, c1.rows), (0, 1, 4, 2));
        let c2 = arch.append_rows(band(200.0)).unwrap();
        assert_eq!((c2.seq, c2.epoch, c2.row_offset), (1, 2, 6));
        assert_eq!(arch.rows(), 8);
        assert_eq!(*arch.grid().at(4, 0), 100.0);
        assert_eq!(*arch.grid().at(6, 3), 200.75);
        // The committed prefix is immutable: the base rows are untouched.
        for r in 0..4 {
            for c in 0..6 {
                assert_eq!(arch.grid().at(r, c), base().at(r, c));
            }
        }
        let store = arch.store().unwrap();
        assert_eq!(store.rows(), 8);
        assert_eq!(store.read(7, 5).unwrap(), *arch.grid().at(7, 5));
    }

    #[test]
    fn recovery_restores_exactly_the_committed_prefix() {
        let mut arch =
            AppendableArchive::new(base(), 2)
                .unwrap()
                .with_write_fault(WriteFault::TornWrite {
                    frame: 2,
                    persisted_bytes: 21,
                });
        arch.append_rows(band(1.0)).unwrap();
        arch.append_rows(band(2.0)).unwrap();
        let err = arch.append_rows(band(3.0)).unwrap_err();
        assert!(matches!(err, ArchiveError::JournalCrashed { .. }));
        assert!(arch.has_crashed());
        // The failed append changed nothing in memory…
        assert_eq!(arch.epoch(), 2);
        assert_eq!(arch.rows(), 8);
        // …and a crashed archive refuses more work.
        assert!(arch.append_rows(band(4.0)).is_err());

        let (rec, report) = AppendableArchive::recover(base(), 2, arch.journal_bytes()).unwrap();
        assert_eq!(report.applied, 2);
        assert_eq!(report.truncation, TruncationReason::TornFrame);
        assert_eq!(report.dropped_bytes, 21);
        assert_eq!(rec.grid(), arch.grid(), "bit-identical committed prefix");
        assert_eq!(rec.epoch(), 2);

        // The recovered archive appends onward seamlessly.
        let mut rec = rec;
        let c = rec.append_rows(band(3.0)).unwrap();
        assert_eq!(c.epoch, 3);
        // Equivalent to a clean archive that never crashed.
        let mut clean = AppendableArchive::new(base(), 2).unwrap();
        for s in [1.0, 2.0, 3.0] {
            clean.append_rows(band(s)).unwrap();
        }
        assert_eq!(rec.grid(), clean.grid());
        assert_eq!(rec.journal_bytes(), clean.journal_bytes());
    }

    #[test]
    fn recovery_stops_at_non_contiguous_records() {
        // Build two journals and splice frame 1 of the second after frame
        // 0 of the first: both frames verify, but the splice replays a
        // band at the wrong row offset. (Seq continuity passes because we
        // take frame 1 after frame 0.)
        let mut a = AppendableArchive::new(base(), 2).unwrap();
        a.append_rows(band(1.0)).unwrap();
        let mut b = AppendableArchive::new(Grid2::filled(8, 6, 0.0), 2).unwrap();
        b.append_rows(band(7.0)).unwrap();
        b.append_rows(band(8.0)).unwrap();
        let frame0 = a.journal_bytes().to_vec();
        let b_bytes = b.journal_bytes();
        let frame1 = &b_bytes[b_bytes.len() / 2..];
        let mut spliced = frame0.clone();
        spliced.extend_from_slice(frame1);
        let (rec, report) = AppendableArchive::recover(base(), 2, &spliced).unwrap();
        assert_eq!(report.applied, 1, "only the contiguous prefix replays");
        assert_eq!(report.truncation, TruncationReason::BadGeometry);
        assert_eq!(report.committed_bytes, frame0.len());
        assert_eq!(rec.rows(), 6);
    }
}
