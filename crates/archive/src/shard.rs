//! Row-band shard planning: deterministic, tile-aligned partitioning of a
//! grid archive into contiguous row bands, one per shard.
//!
//! The plan is pure geometry — it owns no data. The retrieval layer builds
//! per-band pyramids and stores from it (one independent failure domain
//! per band), and [`ShardPlan::shard_of_row`] routes any global row back
//! to its shard. Bands are aligned to whole tile rows so that a page of
//! the original tiling never straddles two shards: a lost page stays a
//! single-shard fault.

use crate::error::ArchiveError;
use crate::extent::CellCoord;
use crate::grid::Grid2;

/// One contiguous row band of a [`ShardPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardBand {
    /// Shard index, in band order from row 0.
    pub shard: usize,
    /// First global row of the band.
    pub row_offset: usize,
    /// Band height in rows.
    pub rows: usize,
}

impl ShardBand {
    /// One past the band's last global row.
    pub fn row_end(&self) -> usize {
        self.row_offset + self.rows
    }
}

/// A deterministic partition of `rows × cols` cells into contiguous,
/// tile-aligned row bands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    bands: Vec<ShardBand>,
    rows: usize,
    cols: usize,
    tile: usize,
}

impl ShardPlan {
    /// Plans `shards` contiguous row bands over a `rows × cols` grid
    /// tiled with `tile × tile` pages. Whole tile rows are distributed as
    /// evenly as possible (earlier shards get the remainder), so every
    /// band is page-aligned and the same inputs always produce the same
    /// plan.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::EmptyDimension`] when `rows`, `cols`, `tile`, or
    /// `shards` is zero; [`ArchiveError::Misaligned`] when the grid has
    /// fewer tile rows than shards (some shard would own no rows).
    pub fn row_bands(
        rows: usize,
        cols: usize,
        shards: usize,
        tile: usize,
    ) -> Result<Self, ArchiveError> {
        if rows == 0 || cols == 0 || tile == 0 || shards == 0 {
            return Err(ArchiveError::EmptyDimension);
        }
        let tile_rows = rows.div_ceil(tile);
        if shards > tile_rows {
            return Err(ArchiveError::Misaligned(format!(
                "cannot split {tile_rows} tile rows ({rows} rows at tile {tile}) into {shards} shards"
            )));
        }
        let per = tile_rows / shards;
        let extra = tile_rows % shards;
        let mut bands = Vec::with_capacity(shards);
        let mut row = 0usize;
        for shard in 0..shards {
            let band_tile_rows = per + usize::from(shard < extra);
            let band_rows = (band_tile_rows * tile).min(rows - row);
            bands.push(ShardBand {
                shard,
                row_offset: row,
                rows: band_rows,
            });
            row += band_rows;
        }
        debug_assert_eq!(row, rows);
        Ok(ShardPlan {
            bands,
            rows,
            cols,
            tile,
        })
    }

    /// The planned bands, in order from row 0.
    pub fn bands(&self) -> &[ShardBand] {
        &self.bands
    }

    /// Number of shards in the plan.
    pub fn shard_count(&self) -> usize {
        self.bands.len()
    }

    /// The planned global shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Tile size the bands are aligned to.
    pub fn tile_size(&self) -> usize {
        self.tile
    }

    /// The shard owning a global row, or `None` outside the grid.
    pub fn shard_of_row(&self, row: usize) -> Option<usize> {
        if row >= self.rows {
            return None;
        }
        // Bands are contiguous and sorted; binary search on the offset.
        let i = self
            .bands
            .partition_point(|b| b.row_offset <= row)
            .saturating_sub(1);
        Some(self.bands[i].shard)
    }

    /// Copies one shard's row band out of a full grid. Returns `None`
    /// when the grid's shape differs from the planned shape or the shard
    /// index is out of range.
    pub fn extract_band<T: Clone>(&self, grid: &Grid2<T>, shard: usize) -> Option<Grid2<T>> {
        if grid.rows() != self.rows || grid.cols() != self.cols {
            return None;
        }
        let band = self.bands.get(shard)?;
        grid.window(CellCoord::new(band.row_offset, 0), band.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_tile_the_grid_contiguously() {
        for (rows, shards, tile) in [(64, 4, 4), (64, 16, 4), (48, 3, 8), (100, 7, 4), (8, 1, 8)] {
            let plan = ShardPlan::row_bands(rows, 32, shards, tile).unwrap();
            assert_eq!(plan.shard_count(), shards);
            let mut next = 0usize;
            for (i, band) in plan.bands().iter().enumerate() {
                assert_eq!(band.shard, i);
                assert_eq!(band.row_offset, next, "rows={rows} shards={shards}");
                assert!(band.rows > 0, "every shard owns rows");
                // All but the last band end on a tile boundary.
                if i + 1 < shards {
                    assert_eq!(band.row_end() % tile, 0, "page-aligned band break");
                }
                next = band.row_end();
            }
            assert_eq!(next, rows, "bands cover every row");
        }
    }

    #[test]
    fn row_routing_matches_the_bands() {
        let plan = ShardPlan::row_bands(100, 16, 7, 4).unwrap();
        for band in plan.bands() {
            for row in band.row_offset..band.row_end() {
                assert_eq!(plan.shard_of_row(row), Some(band.shard), "row {row}");
            }
        }
        assert_eq!(plan.shard_of_row(100), None);
    }

    #[test]
    fn degenerate_inputs_are_typed_errors() {
        assert!(matches!(
            ShardPlan::row_bands(0, 8, 2, 4),
            Err(ArchiveError::EmptyDimension)
        ));
        assert!(matches!(
            ShardPlan::row_bands(8, 0, 2, 4),
            Err(ArchiveError::EmptyDimension)
        ));
        assert!(matches!(
            ShardPlan::row_bands(8, 8, 0, 4),
            Err(ArchiveError::EmptyDimension)
        ));
        assert!(matches!(
            ShardPlan::row_bands(8, 8, 2, 0),
            Err(ArchiveError::EmptyDimension)
        ));
        // 8 rows at tile 4 = 2 tile rows; 3 shards cannot all own rows.
        assert!(matches!(
            ShardPlan::row_bands(8, 8, 3, 4),
            Err(ArchiveError::Misaligned(_))
        ));
    }

    #[test]
    fn extract_band_windows_the_grid() {
        let grid = Grid2::from_fn(12, 5, |r, c| (r * 5 + c) as f64);
        let plan = ShardPlan::row_bands(12, 5, 3, 2).unwrap();
        let mut reassembled = Vec::new();
        for shard in 0..3 {
            let band = plan.extract_band(&grid, shard).unwrap();
            assert_eq!(band.rows(), plan.bands()[shard].rows);
            assert_eq!(band.cols(), 5);
            for r in 0..band.rows() {
                for c in 0..5 {
                    reassembled.push(*band.at(r, c));
                }
            }
        }
        let flat: Vec<f64> = (0..60).map(|i| i as f64).collect();
        assert_eq!(reassembled, flat, "bands reassemble the original grid");
        assert!(plan.extract_band(&grid, 3).is_none());
        let wrong_shape = Grid2::filled(4, 4, 0.0f64);
        assert!(plan.extract_band(&wrong_shape, 0).is_none());
    }

    #[test]
    fn ragged_last_tile_row_stays_in_bounds() {
        // 10 rows, tile 4 → tile rows of 4, 4, 2; 3 shards get 4/4/2.
        let plan = ShardPlan::row_bands(10, 6, 3, 4).unwrap();
        let rows: Vec<usize> = plan.bands().iter().map(|b| b.rows).collect();
        assert_eq!(rows, vec![4, 4, 2]);
        assert_eq!(plan.bands()[2].row_end(), 10);
    }
}
