//! Row-band shard planning: deterministic, tile-aligned partitioning of a
//! grid archive into contiguous row bands, one per shard.
//!
//! The plan is pure geometry — it owns no data. The retrieval layer builds
//! per-band pyramids and stores from it (one independent failure domain
//! per band), and [`ShardPlan::shard_of_row`] routes any global row back
//! to its shard. Bands are aligned to whole tile rows so that a page of
//! the original tiling never straddles two shards: a lost page stays a
//! single-shard fault.

use crate::error::ArchiveError;
use crate::extent::CellCoord;
use crate::grid::Grid2;
use std::fmt;

/// Monotonic version stamp for a shard topology.
///
/// Every [`ShardPlan`] that can serve live traffic is wrapped in an
/// [`EpochedShardPlan`] carrying one of these; queries pin the epoch they
/// were planned against and the routing layer rejects a mismatch with a
/// typed error instead of silently answering from a different topology.
/// Epochs only ever move forward — a rolled-back migration keeps the
/// source epoch rather than reusing the aborted destination stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TopologyEpoch(u64);

impl TopologyEpoch {
    /// The first epoch of a freshly planned archive.
    pub const ZERO: TopologyEpoch = TopologyEpoch(0);

    /// An epoch with an explicit counter value.
    pub fn new(value: u64) -> Self {
        TopologyEpoch(value)
    }

    /// The raw counter value.
    pub fn get(self) -> u64 {
        self.0
    }

    /// The next epoch in sequence.
    pub fn next(self) -> Self {
        TopologyEpoch(self.0 + 1)
    }
}

impl fmt::Display for TopologyEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One contiguous row band of a [`ShardPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardBand {
    /// Shard index, in band order from row 0.
    pub shard: usize,
    /// First global row of the band.
    pub row_offset: usize,
    /// Band height in rows.
    pub rows: usize,
}

impl ShardBand {
    /// One past the band's last global row.
    pub fn row_end(&self) -> usize {
        self.row_offset + self.rows
    }
}

/// A deterministic partition of `rows × cols` cells into contiguous,
/// tile-aligned row bands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    bands: Vec<ShardBand>,
    rows: usize,
    cols: usize,
    tile: usize,
}

impl ShardPlan {
    /// Plans `shards` contiguous row bands over a `rows × cols` grid
    /// tiled with `tile × tile` pages. Whole tile rows are distributed as
    /// evenly as possible (earlier shards get the remainder), so every
    /// band is page-aligned and the same inputs always produce the same
    /// plan.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::EmptyDimension`] when `rows`, `cols`, `tile`, or
    /// `shards` is zero; [`ArchiveError::Misaligned`] when the grid has
    /// fewer tile rows than shards (some shard would own no rows).
    pub fn row_bands(
        rows: usize,
        cols: usize,
        shards: usize,
        tile: usize,
    ) -> Result<Self, ArchiveError> {
        if rows == 0 || cols == 0 || tile == 0 || shards == 0 {
            return Err(ArchiveError::EmptyDimension);
        }
        let tile_rows = rows.div_ceil(tile);
        if shards > tile_rows {
            return Err(ArchiveError::Misaligned(format!(
                "cannot split {tile_rows} tile rows ({rows} rows at tile {tile}) into {shards} shards"
            )));
        }
        let per = tile_rows / shards;
        let extra = tile_rows % shards;
        let mut bands = Vec::with_capacity(shards);
        let mut row = 0usize;
        for shard in 0..shards {
            let band_tile_rows = per + usize::from(shard < extra);
            let band_rows = (band_tile_rows * tile).min(rows - row);
            bands.push(ShardBand {
                shard,
                row_offset: row,
                rows: band_rows,
            });
            row += band_rows;
        }
        debug_assert_eq!(row, rows);
        Ok(ShardPlan {
            bands,
            rows,
            cols,
            tile,
        })
    }

    /// The planned bands, in order from row 0.
    pub fn bands(&self) -> &[ShardBand] {
        &self.bands
    }

    /// Number of shards in the plan.
    pub fn shard_count(&self) -> usize {
        self.bands.len()
    }

    /// The planned global shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Tile size the bands are aligned to.
    pub fn tile_size(&self) -> usize {
        self.tile
    }

    /// The shard owning a global row, or `None` outside the grid.
    pub fn shard_of_row(&self, row: usize) -> Option<usize> {
        if row >= self.rows {
            return None;
        }
        // Bands are contiguous and sorted; binary search on the offset.
        let i = self
            .bands
            .partition_point(|b| b.row_offset <= row)
            .saturating_sub(1);
        Some(self.bands[i].shard)
    }

    /// Copies one shard's row band out of a full grid. Returns `None`
    /// when the grid's shape differs from the planned shape or the shard
    /// index is out of range.
    pub fn extract_band<T: Clone>(&self, grid: &Grid2<T>, shard: usize) -> Option<Grid2<T>> {
        if grid.rows() != self.rows || grid.cols() != self.cols {
            return None;
        }
        let band = self.bands.get(shard)?;
        grid.window(CellCoord::new(band.row_offset, 0), band.rows, self.cols)
    }

    /// Builds a plan from explicit per-band heights, in rows. Bands are
    /// laid out contiguously from row 0 in the given order; `rows` is the
    /// sum of the heights. This is the constructor behind the topology
    /// transforms ([`split_band`](Self::split_band),
    /// [`merge_bands`](Self::merge_bands),
    /// [`move_tile_rows`](Self::move_tile_rows)).
    ///
    /// # Errors
    ///
    /// [`ArchiveError::EmptyDimension`] when `cols`, `tile`, the band
    /// list, or any band height is zero; [`ArchiveError::Misaligned`]
    /// when an interior band break does not land on a tile boundary.
    pub fn from_band_rows(
        heights: &[usize],
        cols: usize,
        tile: usize,
    ) -> Result<Self, ArchiveError> {
        if cols == 0 || tile == 0 || heights.is_empty() || heights.contains(&0) {
            return Err(ArchiveError::EmptyDimension);
        }
        let mut bands = Vec::with_capacity(heights.len());
        let mut row = 0usize;
        for (shard, &h) in heights.iter().enumerate() {
            if shard + 1 < heights.len() && h % tile != 0 {
                return Err(ArchiveError::Misaligned(format!(
                    "band {shard} height {h} is not a multiple of tile {tile}"
                )));
            }
            bands.push(ShardBand {
                shard,
                row_offset: row,
                rows: h,
            });
            row += h;
        }
        Ok(ShardPlan {
            bands,
            rows: row,
            cols,
            tile,
        })
    }

    /// Per-band heights in rows, in band order.
    pub fn band_rows(&self) -> Vec<usize> {
        self.bands.iter().map(|b| b.rows).collect()
    }

    /// Splits band `shard` into two bands at the midpoint of its tile
    /// rows (the first half gets the remainder). Later bands shift up by
    /// one shard index; no data moves outside the split band's rows.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::Misaligned`] when `shard` is out of range or the
    /// band spans fewer than two tile rows (nothing to split).
    pub fn split_band(&self, shard: usize) -> Result<Self, ArchiveError> {
        let band = self.bands.get(shard).ok_or_else(|| {
            ArchiveError::Misaligned(format!(
                "split: shard {shard} out of range ({} bands)",
                self.bands.len()
            ))
        })?;
        let tile_rows = band.rows.div_ceil(self.tile);
        if tile_rows < 2 {
            return Err(ArchiveError::Misaligned(format!(
                "split: band {shard} spans a single tile row"
            )));
        }
        let first = tile_rows.div_ceil(2) * self.tile;
        let mut heights = self.band_rows();
        heights[shard] = first;
        heights.insert(shard + 1, band.rows - first);
        ShardPlan::from_band_rows(&heights, self.cols, self.tile)
    }

    /// Merges band `shard` with band `shard + 1` into one band. Later
    /// bands shift down by one shard index.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::Misaligned`] when `shard + 1` is out of range.
    pub fn merge_bands(&self, shard: usize) -> Result<Self, ArchiveError> {
        if shard + 1 >= self.bands.len() {
            return Err(ArchiveError::Misaligned(format!(
                "merge: shards {shard}+{} out of range ({} bands)",
                shard + 1,
                self.bands.len()
            )));
        }
        let mut heights = self.band_rows();
        let absorbed = heights.remove(shard + 1);
        heights[shard] += absorbed;
        ShardPlan::from_band_rows(&heights, self.cols, self.tile)
    }

    /// Moves `tile_rows` whole tile rows from the end of band `shard` to
    /// the start of band `shard + 1` (a boundary rebalance). Both bands
    /// must keep at least one tile row.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::Misaligned`] when `shard + 1` is out of range,
    /// `tile_rows` is zero, or the donor band would be left empty.
    pub fn move_tile_rows(&self, shard: usize, tile_rows: usize) -> Result<Self, ArchiveError> {
        if shard + 1 >= self.bands.len() {
            return Err(ArchiveError::Misaligned(format!(
                "move: shards {shard}+{} out of range ({} bands)",
                shard + 1,
                self.bands.len()
            )));
        }
        let donor_tile_rows = self.bands[shard].rows.div_ceil(self.tile);
        if tile_rows == 0 || tile_rows >= donor_tile_rows {
            return Err(ArchiveError::Misaligned(format!(
                "move: cannot take {tile_rows} of {donor_tile_rows} tile rows from shard {shard}"
            )));
        }
        let moved = tile_rows * self.tile;
        let mut heights = self.band_rows();
        heights[shard] -= moved;
        heights[shard + 1] += moved;
        ShardPlan::from_band_rows(&heights, self.cols, self.tile)
    }

    /// Maps the global row range `[row_offset, row_offset + rows)` onto
    /// the plan's bands: one [`BandSlice`] per overlapped band, in row
    /// order. This is how a migration copy engine locates a destination
    /// band's rows inside the source topology.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::OutOfBounds`] when the range is empty or extends
    /// past the planned rows.
    pub fn band_slices(
        &self,
        row_offset: usize,
        rows: usize,
    ) -> Result<Vec<BandSlice>, ArchiveError> {
        let end = row_offset + rows;
        if rows == 0 || end > self.rows {
            return Err(ArchiveError::OutOfBounds {
                row: end.saturating_sub(1),
                col: 0,
                rows: self.rows,
                cols: self.cols,
            });
        }
        let mut slices = Vec::new();
        for band in &self.bands {
            let lo = band.row_offset.max(row_offset);
            let hi = band.row_end().min(end);
            if lo < hi {
                slices.push(BandSlice {
                    shard: band.shard,
                    local_row: lo - band.row_offset,
                    rows: hi - lo,
                    global_row: lo,
                });
            }
        }
        Ok(slices)
    }
}

/// The intersection of a global row range with one band of a
/// [`ShardPlan`], produced by [`ShardPlan::band_slices`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandSlice {
    /// Band (shard index) owning the slice.
    pub shard: usize,
    /// First row of the slice, relative to the band's own row 0.
    pub local_row: usize,
    /// Slice height in rows.
    pub rows: usize,
    /// First row of the slice in global coordinates.
    pub global_row: usize,
}

/// A [`ShardPlan`] stamped with the [`TopologyEpoch`] it serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochedShardPlan {
    plan: ShardPlan,
    epoch: TopologyEpoch,
}

impl EpochedShardPlan {
    /// Wraps the first plan of an archive at [`TopologyEpoch::ZERO`].
    pub fn initial(plan: ShardPlan) -> Self {
        EpochedShardPlan {
            plan,
            epoch: TopologyEpoch::ZERO,
        }
    }

    /// Wraps a plan at an explicit epoch.
    pub fn at_epoch(plan: ShardPlan, epoch: TopologyEpoch) -> Self {
        EpochedShardPlan { plan, epoch }
    }

    /// Stamps `plan` as this plan's successor topology (epoch + 1).
    ///
    /// # Errors
    ///
    /// [`ArchiveError::Misaligned`] when the successor disagrees on grid
    /// shape or tile size — a topology change never reshapes the data.
    pub fn successor(&self, plan: ShardPlan) -> Result<Self, ArchiveError> {
        if plan.shape() != self.plan.shape() || plan.tile_size() != self.plan.tile_size() {
            return Err(ArchiveError::Misaligned(format!(
                "successor plan shape {:?}/tile {} differs from {:?}/tile {}",
                plan.shape(),
                plan.tile_size(),
                self.plan.shape(),
                self.plan.tile_size(),
            )));
        }
        Ok(EpochedShardPlan {
            plan,
            epoch: self.epoch.next(),
        })
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The epoch this plan serves.
    pub fn epoch(&self) -> TopologyEpoch {
        self.epoch
    }
}

/// One connected component of a topology change: the set of source bands
/// and destination bands covering the same contiguous row range, where
/// the two plans disagree. Produced by [`plan_diff`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandGroup {
    /// Source-plan band indices in the group, in row order.
    pub source_bands: Vec<usize>,
    /// Destination-plan band indices in the group, in row order.
    pub dest_bands: Vec<usize>,
    /// First global row of the group's range.
    pub row_offset: usize,
    /// Height of the group's range in rows.
    pub rows: usize,
}

impl BandGroup {
    /// One past the group's last global row.
    pub fn row_end(&self) -> usize {
        self.row_offset + self.rows
    }
}

/// The difference between two shard plans over the same grid: which
/// destination bands carry over unchanged from a source band, and which
/// row ranges must migrate. Produced by [`plan_diff`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanDiff {
    /// `(dest_band, source_band)` pairs with identical row geometry — the
    /// destination band reuses the source band's data verbatim.
    pub carried_over: Vec<(usize, usize)>,
    /// Migration groups, in row order. Within each group the union of
    /// source band rows equals the union of destination band rows.
    pub groups: Vec<BandGroup>,
}

impl PlanDiff {
    /// Destination band indices that need their data migrated.
    pub fn migrating_dest_bands(&self) -> Vec<usize> {
        self.groups
            .iter()
            .flat_map(|g| g.dest_bands.iter().copied())
            .collect()
    }

    /// Source band indices whose rows are being migrated (their data is
    /// retired from the source owner once the change completes).
    pub fn migrating_source_bands(&self) -> Vec<usize> {
        self.groups
            .iter()
            .flat_map(|g| g.source_bands.iter().copied())
            .collect()
    }
}

/// Computes the [`PlanDiff`] between two plans over the same grid.
///
/// Destination bands whose `(row_offset, rows)` geometry also exists in
/// the source plan are carried over; the remaining bands are grouped into
/// connected components of row overlap between migrating source and
/// destination bands. Because both plans tile the same rows and carried
/// bands match exactly, each group's source rows and destination rows
/// cover the same range — the invariant the dual-read merge relies on.
///
/// # Errors
///
/// [`ArchiveError::Misaligned`] when the plans disagree on grid shape or
/// tile size.
pub fn plan_diff(from: &ShardPlan, to: &ShardPlan) -> Result<PlanDiff, ArchiveError> {
    if from.shape() != to.shape() || from.tile_size() != to.tile_size() {
        return Err(ArchiveError::Misaligned(format!(
            "plan_diff: shape {:?}/tile {} vs {:?}/tile {}",
            from.shape(),
            from.tile_size(),
            to.shape(),
            to.tile_size(),
        )));
    }
    let mut carried_over = Vec::new();
    let mut dest_stable = vec![false; to.shard_count()];
    let mut source_stable = vec![false; from.shard_count()];
    for (d, dband) in to.bands().iter().enumerate() {
        for (s, sband) in from.bands().iter().enumerate() {
            if dband.row_offset == sband.row_offset && dband.rows == sband.rows {
                carried_over.push((d, s));
                dest_stable[d] = true;
                source_stable[s] = true;
                break;
            }
        }
    }
    // Connected components of row overlap between the migrating bands of
    // both plans. Bands are in row order on each side, so a sweep with a
    // running range end is enough: a new band joins the open group when
    // it starts before the group's current end.
    #[derive(Clone, Copy)]
    struct Mig {
        band: usize,
        start: usize,
        end: usize,
        dest: bool,
    }
    let mut migs: Vec<Mig> = Vec::new();
    for (s, band) in from.bands().iter().enumerate() {
        if !source_stable[s] {
            migs.push(Mig {
                band: s,
                start: band.row_offset,
                end: band.row_end(),
                dest: false,
            });
        }
    }
    for (d, band) in to.bands().iter().enumerate() {
        if !dest_stable[d] {
            migs.push(Mig {
                band: d,
                start: band.row_offset,
                end: band.row_end(),
                dest: true,
            });
        }
    }
    migs.sort_by_key(|m| (m.start, m.end, m.dest));
    let mut groups: Vec<BandGroup> = Vec::new();
    let mut open: Option<(BandGroup, usize)> = None;
    for m in migs {
        match open.as_mut() {
            Some((group, end)) if m.start < *end => {
                *end = (*end).max(m.end);
                group.rows = *end - group.row_offset;
                if m.dest {
                    group.dest_bands.push(m.band);
                } else {
                    group.source_bands.push(m.band);
                }
            }
            _ => {
                if let Some((group, _)) = open.take() {
                    groups.push(group);
                }
                let mut group = BandGroup {
                    source_bands: Vec::new(),
                    dest_bands: Vec::new(),
                    row_offset: m.start,
                    rows: m.end - m.start,
                };
                if m.dest {
                    group.dest_bands.push(m.band);
                } else {
                    group.source_bands.push(m.band);
                }
                open = Some((group, m.end));
            }
        }
    }
    if let Some((group, _)) = open.take() {
        groups.push(group);
    }
    debug_assert!(groups
        .iter()
        .all(|g| !g.source_bands.is_empty() && !g.dest_bands.is_empty()));
    Ok(PlanDiff {
        carried_over,
        groups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_tile_the_grid_contiguously() {
        for (rows, shards, tile) in [(64, 4, 4), (64, 16, 4), (48, 3, 8), (100, 7, 4), (8, 1, 8)] {
            let plan = ShardPlan::row_bands(rows, 32, shards, tile).unwrap();
            assert_eq!(plan.shard_count(), shards);
            let mut next = 0usize;
            for (i, band) in plan.bands().iter().enumerate() {
                assert_eq!(band.shard, i);
                assert_eq!(band.row_offset, next, "rows={rows} shards={shards}");
                assert!(band.rows > 0, "every shard owns rows");
                // All but the last band end on a tile boundary.
                if i + 1 < shards {
                    assert_eq!(band.row_end() % tile, 0, "page-aligned band break");
                }
                next = band.row_end();
            }
            assert_eq!(next, rows, "bands cover every row");
        }
    }

    #[test]
    fn row_routing_matches_the_bands() {
        let plan = ShardPlan::row_bands(100, 16, 7, 4).unwrap();
        for band in plan.bands() {
            for row in band.row_offset..band.row_end() {
                assert_eq!(plan.shard_of_row(row), Some(band.shard), "row {row}");
            }
        }
        assert_eq!(plan.shard_of_row(100), None);
    }

    #[test]
    fn degenerate_inputs_are_typed_errors() {
        assert!(matches!(
            ShardPlan::row_bands(0, 8, 2, 4),
            Err(ArchiveError::EmptyDimension)
        ));
        assert!(matches!(
            ShardPlan::row_bands(8, 0, 2, 4),
            Err(ArchiveError::EmptyDimension)
        ));
        assert!(matches!(
            ShardPlan::row_bands(8, 8, 0, 4),
            Err(ArchiveError::EmptyDimension)
        ));
        assert!(matches!(
            ShardPlan::row_bands(8, 8, 2, 0),
            Err(ArchiveError::EmptyDimension)
        ));
        // 8 rows at tile 4 = 2 tile rows; 3 shards cannot all own rows.
        assert!(matches!(
            ShardPlan::row_bands(8, 8, 3, 4),
            Err(ArchiveError::Misaligned(_))
        ));
    }

    #[test]
    fn extract_band_windows_the_grid() {
        let grid = Grid2::from_fn(12, 5, |r, c| (r * 5 + c) as f64);
        let plan = ShardPlan::row_bands(12, 5, 3, 2).unwrap();
        let mut reassembled = Vec::new();
        for shard in 0..3 {
            let band = plan.extract_band(&grid, shard).unwrap();
            assert_eq!(band.rows(), plan.bands()[shard].rows);
            assert_eq!(band.cols(), 5);
            for r in 0..band.rows() {
                for c in 0..5 {
                    reassembled.push(*band.at(r, c));
                }
            }
        }
        let flat: Vec<f64> = (0..60).map(|i| i as f64).collect();
        assert_eq!(reassembled, flat, "bands reassemble the original grid");
        assert!(plan.extract_band(&grid, 3).is_none());
        let wrong_shape = Grid2::filled(4, 4, 0.0f64);
        assert!(plan.extract_band(&wrong_shape, 0).is_none());
    }

    #[test]
    fn ragged_last_tile_row_stays_in_bounds() {
        // 10 rows, tile 4 → tile rows of 4, 4, 2; 3 shards get 4/4/2.
        let plan = ShardPlan::row_bands(10, 6, 3, 4).unwrap();
        let rows: Vec<usize> = plan.bands().iter().map(|b| b.rows).collect();
        assert_eq!(rows, vec![4, 4, 2]);
        assert_eq!(plan.bands()[2].row_end(), 10);
    }

    fn assert_tiles_grid(plan: &ShardPlan, rows: usize) {
        let mut next = 0usize;
        for (i, band) in plan.bands().iter().enumerate() {
            assert_eq!(band.shard, i);
            assert_eq!(band.row_offset, next);
            assert!(band.rows > 0);
            if i + 1 < plan.shard_count() {
                assert_eq!(band.row_end() % plan.tile_size(), 0);
            }
            next = band.row_end();
        }
        assert_eq!(next, rows);
    }

    #[test]
    fn split_merge_move_keep_plans_valid() {
        let plan = ShardPlan::row_bands(64, 16, 4, 4).unwrap();
        let split = plan.split_band(1).unwrap();
        assert_eq!(split.shard_count(), 5);
        assert_eq!(split.band_rows(), vec![16, 8, 8, 16, 16]);
        assert_tiles_grid(&split, 64);

        let merged = plan.merge_bands(2).unwrap();
        assert_eq!(merged.shard_count(), 3);
        assert_eq!(merged.band_rows(), vec![16, 16, 32]);
        assert_tiles_grid(&merged, 64);

        let moved = plan.move_tile_rows(0, 2).unwrap();
        assert_eq!(moved.band_rows(), vec![8, 24, 16, 16]);
        assert_tiles_grid(&moved, 64);

        // Ragged last band splits on tile boundaries only.
        let ragged = ShardPlan::row_bands(10, 6, 1, 4).unwrap();
        let halves = ragged.split_band(0).unwrap();
        assert_eq!(halves.band_rows(), vec![8, 2]);
        assert_tiles_grid(&halves, 10);

        assert!(matches!(
            plan.split_band(9),
            Err(ArchiveError::Misaligned(_))
        ));
        assert!(matches!(
            plan.merge_bands(3),
            Err(ArchiveError::Misaligned(_))
        ));
        assert!(matches!(
            plan.move_tile_rows(0, 4),
            Err(ArchiveError::Misaligned(_))
        ));
        let single = ShardPlan::row_bands(4, 4, 1, 4).unwrap();
        assert!(matches!(
            single.split_band(0),
            Err(ArchiveError::Misaligned(_))
        ));
    }

    #[test]
    fn from_band_rows_validates_alignment() {
        assert!(ShardPlan::from_band_rows(&[8, 8], 4, 4).is_ok());
        assert!(matches!(
            ShardPlan::from_band_rows(&[6, 10], 4, 4),
            Err(ArchiveError::Misaligned(_))
        ));
        // Ragged height is fine on the last band only.
        assert!(ShardPlan::from_band_rows(&[8, 6], 4, 4).is_ok());
        assert!(matches!(
            ShardPlan::from_band_rows(&[], 4, 4),
            Err(ArchiveError::EmptyDimension)
        ));
        assert!(matches!(
            ShardPlan::from_band_rows(&[8, 0], 4, 4),
            Err(ArchiveError::EmptyDimension)
        ));
    }

    #[test]
    fn band_slices_cover_requested_range() {
        let plan = ShardPlan::row_bands(64, 8, 4, 4).unwrap();
        let slices = plan.band_slices(12, 24).unwrap();
        // Bands are 16 rows each: [12,16) in band 0, [16,32) in band 1,
        // [32,36) in band 2.
        assert_eq!(slices.len(), 3);
        assert_eq!(
            (slices[0].shard, slices[0].local_row, slices[0].rows),
            (0, 12, 4)
        );
        assert_eq!(
            (slices[1].shard, slices[1].local_row, slices[1].rows),
            (1, 0, 16)
        );
        assert_eq!(
            (slices[2].shard, slices[2].local_row, slices[2].rows),
            (2, 0, 4)
        );
        let mut row = 12;
        for s in &slices {
            assert_eq!(s.global_row, row);
            row += s.rows;
        }
        assert_eq!(row, 36);
        assert!(plan.band_slices(60, 8).is_err());
        assert!(plan.band_slices(0, 0).is_err());
    }

    #[test]
    fn epochs_advance_and_fence_shape_changes() {
        assert_eq!(TopologyEpoch::ZERO.to_string(), "e0");
        assert!(TopologyEpoch::ZERO < TopologyEpoch::ZERO.next());
        assert_eq!(TopologyEpoch::new(6).next().get(), 7);

        let plan = ShardPlan::row_bands(64, 8, 4, 4).unwrap();
        let source = EpochedShardPlan::initial(plan.clone());
        assert_eq!(source.epoch(), TopologyEpoch::ZERO);
        let dest = source.successor(plan.split_band(0).unwrap()).unwrap();
        assert_eq!(dest.epoch(), TopologyEpoch::new(1));
        assert_eq!(dest.plan().shard_count(), 5);

        let reshaped = ShardPlan::row_bands(32, 8, 2, 4).unwrap();
        assert!(source.successor(reshaped).is_err());
        let retiled = ShardPlan::row_bands(64, 8, 4, 8).unwrap();
        assert!(source.successor(retiled).is_err());
    }

    #[test]
    fn plan_diff_groups_split_merge_and_move() {
        let plan = ShardPlan::row_bands(64, 8, 4, 4).unwrap();

        let split = plan.split_band(1).unwrap();
        let diff = plan_diff(&plan, &split).unwrap();
        let mut carried = diff.carried_over.clone();
        carried.sort_unstable();
        assert_eq!(carried, vec![(0, 0), (3, 2), (4, 3)]);
        assert_eq!(diff.groups.len(), 1);
        let g = &diff.groups[0];
        assert_eq!(g.source_bands, vec![1]);
        assert_eq!(g.dest_bands, vec![1, 2]);
        assert_eq!((g.row_offset, g.rows), (16, 16));

        let merged = plan.merge_bands(2).unwrap();
        let diff = plan_diff(&plan, &merged).unwrap();
        assert_eq!(diff.groups.len(), 1);
        let g = &diff.groups[0];
        assert_eq!(g.source_bands, vec![2, 3]);
        assert_eq!(g.dest_bands, vec![2]);
        assert_eq!((g.row_offset, g.row_end()), (32, 64));

        let moved = plan.move_tile_rows(1, 1).unwrap();
        let diff = plan_diff(&plan, &moved).unwrap();
        assert_eq!(diff.groups.len(), 1);
        let g = &diff.groups[0];
        assert_eq!(g.source_bands, vec![1, 2]);
        assert_eq!(g.dest_bands, vec![1, 2]);
        assert_eq!((g.row_offset, g.row_end()), (16, 48));
        assert_eq!(diff.migrating_dest_bands(), vec![1, 2]);
        assert_eq!(diff.migrating_source_bands(), vec![1, 2]);

        // Two independent splits stay two groups.
        let twice = plan.split_band(0).unwrap().split_band(3).unwrap();
        let diff = plan_diff(&plan, &twice).unwrap();
        assert_eq!(diff.groups.len(), 2);
        assert_eq!(diff.groups[0].source_bands, vec![0]);
        assert_eq!(diff.groups[0].dest_bands, vec![0, 1]);
        assert_eq!(diff.groups[1].source_bands, vec![2]);
        assert_eq!(diff.groups[1].dest_bands, vec![3, 4]);

        // No change → no groups, everything carried over.
        let diff = plan_diff(&plan, &plan).unwrap();
        assert!(diff.groups.is_empty());
        assert_eq!(diff.carried_over.len(), 4);

        let other = ShardPlan::row_bands(32, 8, 2, 4).unwrap();
        assert!(plan_diff(&plan, &other).is_err());
    }
}
