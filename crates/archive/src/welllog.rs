//! Well logs: depth-indexed 1-D traces with lithology labels.

use crate::error::ArchiveError;
use crate::lithology::{ColumnGenerator, Layer, Lithology};
use crate::randx;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub use crate::lithology::Lithology as WellLithology;

/// One sample of a well log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogSample {
    /// Measured depth in feet.
    pub depth_ft: f64,
    /// Gamma-ray response in API units.
    pub gamma_api: f64,
    /// Interpreted lithology at this depth.
    pub lithology: Lithology,
}

/// A regularly-sampled well log (0.5 ft default sample interval, the FMI
/// stand-in from the paper's oil/gas scenario).
///
/// # Examples
///
/// ```
/// use mbir_archive::welllog::WellLog;
///
/// let log = WellLog::synthetic(42, 300.0);
/// assert!(log.len() > 0);
/// assert!(log.sample(0).unwrap().depth_ft >= 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WellLog {
    name: String,
    interval_ft: f64,
    samples: Vec<LogSample>,
    layers: Vec<Layer>,
}

impl WellLog {
    /// Creates a log from samples.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::EmptyDimension`] when `samples` is empty or
    /// `interval_ft` is not positive.
    pub fn new(
        name: impl Into<String>,
        interval_ft: f64,
        samples: Vec<LogSample>,
        layers: Vec<Layer>,
    ) -> Result<Self, ArchiveError> {
        if samples.is_empty() || interval_ft <= 0.0 || interval_ft.is_nan() {
            return Err(ArchiveError::EmptyDimension);
        }
        Ok(WellLog {
            name: name.into(),
            interval_ft,
            samples,
            layers,
        })
    }

    /// Synthesizes a log for a `depth_ft`-deep well at 0.5 ft sampling.
    ///
    /// # Panics
    ///
    /// Panics if `depth_ft <= 0`.
    pub fn synthetic(seed: u64, depth_ft: f64) -> Self {
        WellLog::from_column(
            format!("well-{seed}"),
            &ColumnGenerator::new(seed).generate(depth_ft),
            depth_ft,
            seed,
        )
    }

    /// Synthesizes a log guaranteed to contain the riverbed signature the
    /// geology knowledge model searches for.
    ///
    /// # Panics
    ///
    /// Panics if `depth_ft <= 0`.
    pub fn synthetic_with_riverbed(seed: u64, depth_ft: f64) -> Self {
        WellLog::from_column(
            format!("well-{seed}-riverbed"),
            &ColumnGenerator::new(seed)
                .with_riverbed()
                .generate(depth_ft),
            depth_ft,
            seed,
        )
    }

    /// Builds a sampled log from a stratigraphic column, adding per-sample
    /// gamma noise drawn from each layer's lithology profile.
    ///
    /// # Panics
    ///
    /// Panics if `depth_ft <= 0` or the column is empty.
    pub fn from_column(
        name: impl Into<String>,
        layers: &[Layer],
        depth_ft: f64,
        seed: u64,
    ) -> Self {
        assert!(depth_ft > 0.0, "depth must be positive");
        assert!(!layers.is_empty(), "column must have at least one layer");
        let interval_ft = 0.5;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_1065);
        let n = (depth_ft / interval_ft).ceil() as usize;
        let mut samples = Vec::with_capacity(n);
        let mut layer_idx = 0;
        let mut layer_top = 0.0;
        for i in 0..n {
            let depth = i as f64 * interval_ft;
            while layer_idx + 1 < layers.len()
                && depth >= layer_top + layers[layer_idx].thickness_ft
            {
                layer_top += layers[layer_idx].thickness_ft;
                layer_idx += 1;
            }
            let lith = layers[layer_idx].lithology;
            let (mean, std) = lith.gamma_profile();
            samples.push(LogSample {
                depth_ft: depth,
                gamma_api: randx::normal(&mut rng, mean, std).max(0.0),
                lithology: lith,
            });
        }
        WellLog {
            name: name.into(),
            interval_ft,
            samples,
            layers: layers.to_vec(),
        }
    }

    /// The well name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sample spacing in feet.
    pub fn interval_ft(&self) -> f64 {
        self.interval_ft
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the log is empty (never true for a constructed log).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample by index.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::OutOfBounds`] past the end.
    pub fn sample(&self, i: usize) -> Result<&LogSample, ArchiveError> {
        self.samples.get(i).ok_or(ArchiveError::OutOfBounds {
            row: i,
            col: 0,
            rows: self.samples.len(),
            cols: 1,
        })
    }

    /// Borrow of all samples (shallow to deep).
    pub fn samples(&self) -> &[LogSample] {
        &self.samples
    }

    /// The underlying stratigraphic column (shallow to deep). Empty for logs
    /// built directly from samples.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mean gamma over a depth range `[top_ft, bottom_ft)`.
    ///
    /// Returns `None` when no samples fall inside the range.
    pub fn mean_gamma(&self, top_ft: f64, bottom_ft: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.depth_ft >= top_ft && s.depth_ft < bottom_ft)
            .map(|s| s.gamma_api)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Collapses the sampled log back into contiguous lithology runs
    /// (`(lithology, top_ft, thickness_ft)`) — the semantic abstraction the
    /// knowledge model runs over.
    pub fn lithology_runs(&self) -> Vec<(Lithology, f64, f64)> {
        let mut runs = Vec::new();
        let mut iter = self.samples.iter();
        let first = match iter.next() {
            Some(s) => s,
            None => return runs,
        };
        let mut current = first.lithology;
        let mut top = first.depth_ft;
        let mut last_depth = first.depth_ft;
        for s in iter {
            if s.lithology != current {
                runs.push((current, top, s.depth_ft - top));
                current = s.lithology;
                top = s.depth_ft;
            }
            last_depth = s.depth_ft;
        }
        runs.push((current, top, last_depth - top + self.interval_ft));
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_log_shape() {
        let log = WellLog::synthetic(1, 100.0);
        assert_eq!(log.len(), 200);
        assert_eq!(log.interval_ft(), 0.5);
        assert_eq!(log.sample(0).unwrap().depth_ft, 0.0);
        assert!(log.sample(200).is_err());
    }

    #[test]
    fn new_rejects_empty() {
        assert!(matches!(
            WellLog::new("w", 0.5, vec![], vec![]),
            Err(ArchiveError::EmptyDimension)
        ));
    }

    #[test]
    fn gamma_tracks_lithology() {
        let layers = vec![
            Layer {
                lithology: Lithology::Shale,
                thickness_ft: 50.0,
            },
            Layer {
                lithology: Lithology::Sandstone,
                thickness_ft: 50.0,
            },
        ];
        let log = WellLog::from_column("w", &layers, 100.0, 9);
        let shale_gamma = log.mean_gamma(0.0, 50.0).unwrap();
        let sand_gamma = log.mean_gamma(50.0, 100.0).unwrap();
        assert!(
            shale_gamma > sand_gamma + 30.0,
            "shale {shale_gamma} sand {sand_gamma}"
        );
        assert!(log.mean_gamma(200.0, 300.0).is_none());
    }

    #[test]
    fn lithology_runs_roundtrip_column() {
        let layers = vec![
            Layer {
                lithology: Lithology::Shale,
                thickness_ft: 10.0,
            },
            Layer {
                lithology: Lithology::Sandstone,
                thickness_ft: 6.0,
            },
            Layer {
                lithology: Lithology::Siltstone,
                thickness_ft: 8.0,
            },
        ];
        let log = WellLog::from_column("w", &layers, 24.0, 2);
        let runs = log.lithology_runs();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].0, Lithology::Shale);
        assert_eq!(runs[1].0, Lithology::Sandstone);
        assert_eq!(runs[2].0, Lithology::Siltstone);
        assert!((runs[0].2 - 10.0).abs() <= 0.5, "{:?}", runs[0]);
        assert!((runs[1].2 - 6.0).abs() <= 0.5, "{:?}", runs[1]);
    }

    #[test]
    fn direct_construction_from_samples() {
        let samples = vec![
            LogSample {
                depth_ft: 0.0,
                gamma_api: 90.0,
                lithology: Lithology::Shale,
            },
            LogSample {
                depth_ft: 0.5,
                gamma_api: 30.0,
                lithology: Lithology::Sandstone,
            },
        ];
        let log = WellLog::new("manual", 0.5, samples, vec![]).unwrap();
        assert_eq!(log.name(), "manual");
        assert_eq!(log.len(), 2);
        assert!(log.layers().is_empty());
        let runs = log.lithology_runs();
        assert_eq!(runs.len(), 2);
        // Invalid intervals rejected.
        assert!(WellLog::new("bad", 0.0, vec![], vec![]).is_err());
        assert!(WellLog::new(
            "bad",
            -1.0,
            vec![LogSample {
                depth_ft: 0.0,
                gamma_api: 1.0,
                lithology: Lithology::Shale
            }],
            vec![]
        )
        .is_err());
    }

    #[test]
    fn riverbed_variant_contains_signature() {
        let log = WellLog::synthetic_with_riverbed(17, 600.0);
        let runs = log.lithology_runs();
        let found = runs.windows(3).any(|w| {
            w[0].0 == Lithology::Shale
                && w[1].0 == Lithology::Sandstone
                && w[2].0 == Lithology::Siltstone
        });
        assert!(found, "expected planted riverbed in runs {runs:?}");
    }
}
