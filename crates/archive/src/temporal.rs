//! Temporal stacks: time series of co-registered grids.
//!
//! The paper's §3.1 linear model is explicitly temporal —
//! `R(x,y,t) = a1 X1(x,y,t) + a2 X2(x,y,t) + a3 X3(x,y,t) + a4 R(x,y,t-1)`
//! — which needs an archive representation for "the same raster, observed
//! repeatedly". `TemporalStack` stores one grid per acquisition day with
//! shape enforcement and per-cell time-series extraction.

use crate::error::ArchiveError;
use crate::grid::Grid2;
use crate::series::TimeSeries;

/// A time-ordered stack of co-registered grids.
///
/// # Examples
///
/// ```
/// use mbir_archive::grid::Grid2;
/// use mbir_archive::temporal::TemporalStack;
///
/// let mut stack = TemporalStack::new(4, 4);
/// stack.push(0, Grid2::filled(4, 4, 1.0)).unwrap();
/// stack.push(16, Grid2::filled(4, 4, 2.0)).unwrap();
/// assert_eq!(stack.len(), 2);
/// let ts = stack.cell_series(1, 1).unwrap();
/// assert_eq!(ts, vec![(0, 1.0), (16, 2.0)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalStack {
    rows: usize,
    cols: usize,
    frames: Vec<(i64, Grid2<f64>)>,
}

impl TemporalStack {
    /// Creates an empty stack for `rows x cols` frames.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0 || cols == 0`.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "stack dimensions must be non-zero");
        TemporalStack {
            rows,
            cols,
            frames: Vec::new(),
        }
    }

    /// Frame shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the stack has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Appends a frame for `day`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::Misaligned`] for a wrong-shaped grid or a
    /// day not after the last frame (frames must be strictly increasing).
    pub fn push(&mut self, day: i64, grid: Grid2<f64>) -> Result<(), ArchiveError> {
        if grid.rows() != self.rows || grid.cols() != self.cols {
            return Err(ArchiveError::Misaligned(format!(
                "frame is {}x{}, stack is {}x{}",
                grid.rows(),
                grid.cols(),
                self.rows,
                self.cols
            )));
        }
        if let Some((last, _)) = self.frames.last() {
            if day <= *last {
                return Err(ArchiveError::Misaligned(format!(
                    "frame day {day} not after previous day {last}"
                )));
            }
        }
        self.frames.push((day, grid));
        Ok(())
    }

    /// The frame at index `i` as `(day, grid)`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::OutOfBounds`] past the end.
    pub fn frame(&self, i: usize) -> Result<(i64, &Grid2<f64>), ArchiveError> {
        self.frames
            .get(i)
            .map(|(d, g)| (*d, g))
            .ok_or(ArchiveError::OutOfBounds {
                row: i,
                col: 0,
                rows: self.frames.len(),
                cols: 1,
            })
    }

    /// The most recent frame at or before `day`, if any.
    pub fn frame_at(&self, day: i64) -> Option<(i64, &Grid2<f64>)> {
        self.frames
            .iter()
            .rev()
            .find(|(d, _)| *d <= day)
            .map(|(d, g)| (*d, g))
    }

    /// The per-cell time series `(day, value)`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::OutOfBounds`] outside the frame shape.
    pub fn cell_series(&self, row: usize, col: usize) -> Result<Vec<(i64, f64)>, ArchiveError> {
        if row >= self.rows || col >= self.cols {
            return Err(ArchiveError::OutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok(self
            .frames
            .iter()
            .map(|(d, g)| (*d, *g.at(row, col)))
            .collect())
    }

    /// The per-cell values as a regular [`TimeSeries`] when frames are
    /// evenly spaced; `None` for irregular stacks or fewer than 2 frames.
    pub fn cell_regular_series(&self, row: usize, col: usize) -> Option<TimeSeries<f64>> {
        if self.frames.len() < 2 {
            return None;
        }
        let step = (self.frames[1].0 - self.frames[0].0) as u32;
        let regular = self
            .frames
            .windows(2)
            .all(|w| (w[1].0 - w[0].0) as u32 == step);
        if !regular || step == 0 {
            return None;
        }
        let values: Vec<f64> = self
            .cell_series(row, col)
            .ok()?
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        TimeSeries::new(self.frames[0].0, step, values).ok()
    }

    /// Iterator over `(day, grid)` frames in time order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, &Grid2<f64>)> + '_ {
        self.frames.iter().map(|(d, g)| (*d, g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack_3() -> TemporalStack {
        let mut s = TemporalStack::new(2, 2);
        for (i, day) in [0i64, 16, 32].iter().enumerate() {
            s.push(*day, Grid2::filled(2, 2, i as f64)).unwrap();
        }
        s
    }

    #[test]
    fn push_enforces_shape_and_order() {
        let mut s = TemporalStack::new(2, 2);
        assert!(s.push(0, Grid2::filled(3, 2, 0.0)).is_err());
        s.push(5, Grid2::filled(2, 2, 0.0)).unwrap();
        assert!(s.push(5, Grid2::filled(2, 2, 0.0)).is_err());
        assert!(s.push(4, Grid2::filled(2, 2, 0.0)).is_err());
        assert!(s.push(6, Grid2::filled(2, 2, 0.0)).is_ok());
    }

    #[test]
    fn frame_lookup() {
        let s = stack_3();
        assert_eq!(s.frame(1).unwrap().0, 16);
        assert!(s.frame(3).is_err());
        assert_eq!(s.frame_at(20).unwrap().0, 16);
        assert_eq!(s.frame_at(32).unwrap().0, 32);
        assert!(s.frame_at(-1).is_none());
    }

    #[test]
    fn cell_series_and_regular_view() {
        let s = stack_3();
        assert_eq!(
            s.cell_series(0, 0).unwrap(),
            vec![(0, 0.0), (16, 1.0), (32, 2.0)]
        );
        assert!(s.cell_series(2, 0).is_err());
        let ts = s.cell_regular_series(0, 0).unwrap();
        assert_eq!(ts.step_days(), 16);
        assert_eq!(ts.values(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn irregular_stack_has_no_regular_view() {
        let mut s = TemporalStack::new(1, 1);
        s.push(0, Grid2::filled(1, 1, 0.0)).unwrap();
        s.push(10, Grid2::filled(1, 1, 1.0)).unwrap();
        s.push(15, Grid2::filled(1, 1, 2.0)).unwrap();
        assert!(s.cell_regular_series(0, 0).is_none());
        // Single frame is also not a regular series.
        let mut one = TemporalStack::new(1, 1);
        one.push(0, Grid2::filled(1, 1, 0.0)).unwrap();
        assert!(one.cell_regular_series(0, 0).is_none());
    }
}
