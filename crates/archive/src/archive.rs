//! The archive façade: one handle over every modality plus its catalog.
//!
//! Downstream code (the engines, the workflow loop, applications) needs a
//! single object that owns the datasets and keeps the catalog consistent
//! with what is actually stored. `Archive` provides typed registration and
//! lookup per modality, automatic catalog maintenance, and the
//! metadata-level screening entry point (the coarsest rung of the
//! abstraction ladder).

use crate::catalog::{Catalog, DatasetId, DatasetMeta, Modality};
use crate::dem::Dem;
use crate::error::ArchiveError;
use crate::extent::GeoExtent;
use crate::gis::PointLayer;
use crate::scene::Scene;
use crate::series::TimeSeries;
use crate::temporal::TemporalStack;
use crate::weather::WeatherDay;
use crate::welllog::WellLog;
use std::collections::BTreeMap;

/// A multi-modal archive: datasets by id, catalog kept in sync.
///
/// # Examples
///
/// ```
/// use mbir_archive::archive::Archive;
/// use mbir_archive::catalog::Modality;
/// use mbir_archive::scene::SyntheticScene;
///
/// let mut archive = Archive::new();
/// archive.add_scene("tm-1", "July scene", SyntheticScene::new(1, 32, 32).generate());
/// assert_eq!(archive.catalog().by_modality(Modality::Imagery).len(), 1);
/// assert!(archive.scene(&"tm-1".into()).is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Archive {
    catalog: Catalog,
    scenes: BTreeMap<DatasetId, Scene>,
    dems: BTreeMap<DatasetId, Dem>,
    weather: BTreeMap<DatasetId, TimeSeries<WeatherDay>>,
    wells: BTreeMap<DatasetId, WellLog>,
    stacks: BTreeMap<DatasetId, TemporalStack>,
    gis: BTreeMap<DatasetId, PointLayer>,
}

impl Archive {
    /// Creates an empty archive.
    pub fn new() -> Self {
        Archive::default()
    }

    /// The catalog (metadata of everything registered).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Total number of datasets.
    pub fn len(&self) -> usize {
        self.catalog.len()
    }

    /// Whether the archive has no datasets.
    pub fn is_empty(&self) -> bool {
        self.catalog.is_empty()
    }

    /// Registers a multi-band scene.
    pub fn add_scene(&mut self, id: impl Into<DatasetId>, name: impl Into<String>, scene: Scene) {
        let id = id.into();
        self.catalog.register(
            DatasetMeta::new(id.clone(), name, Modality::Imagery)
                .with_extent(*scene.extent())
                .with_tuples((scene.rows() * scene.cols() * scene.band_count()) as u64),
        );
        self.scenes.insert(id, scene);
    }

    /// Registers a DEM.
    pub fn add_dem(&mut self, id: impl Into<DatasetId>, name: impl Into<String>, dem: Dem) {
        let id = id.into();
        self.catalog.register(
            DatasetMeta::new(id.clone(), name, Modality::Elevation)
                .with_extent(*dem.grid().extent())
                .with_tuples(dem.grid().len() as u64),
        );
        self.dems.insert(id, dem);
    }

    /// Registers a weather feed.
    pub fn add_weather(
        &mut self,
        id: impl Into<DatasetId>,
        name: impl Into<String>,
        series: TimeSeries<WeatherDay>,
    ) {
        let id = id.into();
        let first = series.start_day();
        let last = series.day_of(series.len() - 1);
        self.catalog.register(
            DatasetMeta::new(id.clone(), name, Modality::SeriesFeed)
                .with_days(first, last)
                .with_tuples(series.len() as u64),
        );
        self.weather.insert(id, series);
    }

    /// Registers a well log.
    pub fn add_well(&mut self, id: impl Into<DatasetId>, name: impl Into<String>, well: WellLog) {
        let id = id.into();
        self.catalog.register(
            DatasetMeta::new(id.clone(), name, Modality::WellLog).with_tuples(well.len() as u64),
        );
        self.wells.insert(id, well);
    }

    /// Registers a temporal raster stack.
    pub fn add_stack(
        &mut self,
        id: impl Into<DatasetId>,
        name: impl Into<String>,
        stack: TemporalStack,
    ) {
        let id = id.into();
        let (rows, cols) = stack.shape();
        let days = stack
            .iter()
            .fold(None::<(i64, i64)>, |acc, (d, _)| match acc {
                None => Some((d, d)),
                Some((lo, hi)) => Some((lo.min(d), hi.max(d))),
            })
            .unwrap_or((0, 0));
        self.catalog.register(
            DatasetMeta::new(id.clone(), name, Modality::Imagery)
                .with_days(days.0, days.1)
                .with_tuples((rows * cols * stack.len()) as u64),
        );
        self.stacks.insert(id, stack);
    }

    /// Registers a GIS point layer.
    pub fn add_gis(
        &mut self,
        id: impl Into<DatasetId>,
        name: impl Into<String>,
        layer: PointLayer,
    ) {
        let id = id.into();
        let mut meta =
            DatasetMeta::new(id.clone(), name, Modality::Gis).with_tuples(layer.len() as u64);
        if let Some(extent) = layer.extent() {
            meta = meta.with_extent(extent);
        }
        self.catalog.register(meta);
        self.gis.insert(id, layer);
    }

    /// Scene lookup.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::UnknownDataset`] when absent.
    pub fn scene(&self, id: &DatasetId) -> Result<&Scene, ArchiveError> {
        self.scenes
            .get(id)
            .ok_or_else(|| ArchiveError::UnknownDataset(id.to_string()))
    }

    /// DEM lookup.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::UnknownDataset`] when absent.
    pub fn dem(&self, id: &DatasetId) -> Result<&Dem, ArchiveError> {
        self.dems
            .get(id)
            .ok_or_else(|| ArchiveError::UnknownDataset(id.to_string()))
    }

    /// Weather feed lookup.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::UnknownDataset`] when absent.
    pub fn weather(&self, id: &DatasetId) -> Result<&TimeSeries<WeatherDay>, ArchiveError> {
        self.weather
            .get(id)
            .ok_or_else(|| ArchiveError::UnknownDataset(id.to_string()))
    }

    /// Well-log lookup.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::UnknownDataset`] when absent.
    pub fn well(&self, id: &DatasetId) -> Result<&WellLog, ArchiveError> {
        self.wells
            .get(id)
            .ok_or_else(|| ArchiveError::UnknownDataset(id.to_string()))
    }

    /// Temporal-stack lookup.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::UnknownDataset`] when absent.
    pub fn stack(&self, id: &DatasetId) -> Result<&TemporalStack, ArchiveError> {
        self.stacks
            .get(id)
            .ok_or_else(|| ArchiveError::UnknownDataset(id.to_string()))
    }

    /// GIS-layer lookup.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::UnknownDataset`] when absent.
    pub fn gis(&self, id: &DatasetId) -> Result<&PointLayer, ArchiveError> {
        self.gis
            .get(id)
            .ok_or_else(|| ArchiveError::UnknownDataset(id.to_string()))
    }

    /// All wells, in id order — the archive view knowledge-model retrieval
    /// consumes.
    pub fn wells(&self) -> impl Iterator<Item = (&DatasetId, &WellLog)> + '_ {
        self.wells.iter()
    }

    /// All weather feeds, in id order.
    pub fn weather_feeds(
        &self,
    ) -> impl Iterator<Item = (&DatasetId, &TimeSeries<WeatherDay>)> + '_ {
        self.weather.iter()
    }

    /// Metadata-level screen: ids of datasets whose extent intersects the
    /// region of interest (the cheapest rung of the abstraction ladder —
    /// nothing but catalog rows are touched).
    pub fn covering(&self, roi: &GeoExtent) -> Vec<&DatasetMeta> {
        self.catalog.covering(roi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SyntheticScene;
    use crate::weather::WeatherGenerator;

    fn sample_archive() -> Archive {
        let mut a = Archive::new();
        a.add_scene("tm-1", "scene", SyntheticScene::new(1, 16, 16).generate());
        a.add_dem("dem-1", "terrain", Dem::synthetic(2, 16, 16, 0.0, 100.0));
        a.add_weather(
            "wx-1",
            "station",
            WeatherGenerator::new(3).generate(100, 30),
        );
        a.add_well("well-1", "wildcat", WellLog::synthetic(4, 100.0));
        let mut stack = TemporalStack::new(4, 4);
        stack
            .push(0, crate::grid::Grid2::filled(4, 4, 1.0))
            .unwrap();
        a.add_stack("stack-1", "movie", stack);
        let mut layer = PointLayer::new("houses");
        layer.push(crate::gis::PointFeature::new(0.5, 0.5));
        a.add_gis("gis-1", "houses", layer);
        a
    }

    #[test]
    fn registration_populates_catalog() {
        let a = sample_archive();
        assert_eq!(a.len(), 6);
        assert!(!a.is_empty());
        assert_eq!(a.catalog().by_modality(Modality::Imagery).len(), 2); // scene + stack
        assert_eq!(a.catalog().by_modality(Modality::WellLog).len(), 1);
        // Weather day range recorded.
        let meta = a.catalog().get(&"wx-1".into()).unwrap();
        assert_eq!(meta.day_range, (100, 129));
        assert_eq!(meta.tuple_count, 30);
    }

    #[test]
    fn typed_lookups_and_errors() {
        let a = sample_archive();
        assert!(a.scene(&"tm-1".into()).is_ok());
        assert!(a.dem(&"dem-1".into()).is_ok());
        assert!(a.weather(&"wx-1".into()).is_ok());
        assert!(a.well(&"well-1".into()).is_ok());
        assert!(a.stack(&"stack-1".into()).is_ok());
        assert!(a.gis(&"gis-1".into()).is_ok());
        // Cross-modality lookups miss.
        assert!(matches!(
            a.scene(&"dem-1".into()),
            Err(ArchiveError::UnknownDataset(_))
        ));
        assert!(a.well(&"nope".into()).is_err());
    }

    #[test]
    fn iterators_cover_registered_items() {
        let mut a = sample_archive();
        a.add_well("well-2", "offset", WellLog::synthetic(9, 50.0));
        let ids: Vec<&str> = a.wells().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, vec!["well-1", "well-2"]);
        assert_eq!(a.weather_feeds().count(), 1);
    }

    #[test]
    fn metadata_screen_uses_extents() {
        let a = sample_archive();
        // Scenes/DEMs default to the unit extent; a far-away ROI sees only
        // datasets with degenerate/unit extents that still intersect.
        let far = GeoExtent::new(100.0, 100.0, 101.0, 101.0);
        assert!(a.covering(&far).is_empty() || a.covering(&far).len() < a.len());
        let unit = GeoExtent::unit();
        assert!(!a.covering(&unit).is_empty());
    }

    #[test]
    fn reregistration_replaces() {
        let mut a = Archive::new();
        a.add_well("w", "first", WellLog::synthetic(1, 50.0));
        a.add_well("w", "second", WellLog::synthetic(2, 80.0));
        assert_eq!(a.len(), 1);
        assert_eq!(a.catalog().get(&"w".into()).unwrap().name, "second");
        assert_eq!(a.well(&"w".into()).unwrap().len(), 160);
    }
}
