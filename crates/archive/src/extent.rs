//! Geographic extents and raster cell coordinates.

use std::fmt;

/// A raster cell coordinate: `(row, col)` in image space.
///
/// Rows grow downwards (south), columns grow rightwards (east), matching the
/// usual geo-raster convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CellCoord {
    /// Row index (0 at the top edge).
    pub row: usize,
    /// Column index (0 at the left edge).
    pub col: usize,
}

impl CellCoord {
    /// Creates a cell coordinate.
    pub fn new(row: usize, col: usize) -> Self {
        CellCoord { row, col }
    }

    /// Chebyshev (8-neighbourhood) distance to another cell.
    pub fn chebyshev(&self, other: &CellCoord) -> usize {
        let dr = self.row.abs_diff(other.row);
        let dc = self.col.abs_diff(other.col);
        dr.max(dc)
    }

    /// Manhattan (4-neighbourhood) distance to another cell.
    pub fn manhattan(&self, other: &CellCoord) -> usize {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }
}

impl fmt::Display for CellCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

impl From<(usize, usize)> for CellCoord {
    fn from((row, col): (usize, usize)) -> Self {
        CellCoord { row, col }
    }
}

/// An axis-aligned geographic extent in map units.
///
/// `west < east` and `south < north` are maintained as invariants by
/// [`GeoExtent::new`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoExtent {
    west: f64,
    south: f64,
    east: f64,
    north: f64,
}

impl GeoExtent {
    /// Creates an extent, normalizing the corner order.
    pub fn new(west: f64, south: f64, east: f64, north: f64) -> Self {
        GeoExtent {
            west: west.min(east),
            south: south.min(north),
            east: west.max(east),
            north: south.max(north),
        }
    }

    /// A unit extent `[0,1] x [0,1]`, useful for synthetic datasets.
    pub fn unit() -> Self {
        GeoExtent::new(0.0, 0.0, 1.0, 1.0)
    }

    /// Western (minimum x) edge.
    pub fn west(&self) -> f64 {
        self.west
    }

    /// Southern (minimum y) edge.
    pub fn south(&self) -> f64 {
        self.south
    }

    /// Eastern (maximum x) edge.
    pub fn east(&self) -> f64 {
        self.east
    }

    /// Northern (maximum y) edge.
    pub fn north(&self) -> f64 {
        self.north
    }

    /// Width in map units.
    pub fn width(&self) -> f64 {
        self.east - self.west
    }

    /// Height in map units.
    pub fn height(&self) -> f64 {
        self.north - self.south
    }

    /// Whether the point `(x, y)` lies inside (or on the edge of) the extent.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.west && x <= self.east && y >= self.south && y <= self.north
    }

    /// Whether two extents overlap (sharing an edge counts).
    pub fn intersects(&self, other: &GeoExtent) -> bool {
        self.west <= other.east
            && other.west <= self.east
            && self.south <= other.north
            && other.south <= self.north
    }

    /// The intersection of two extents, if non-empty.
    pub fn intersection(&self, other: &GeoExtent) -> Option<GeoExtent> {
        if !self.intersects(other) {
            return None;
        }
        Some(GeoExtent::new(
            self.west.max(other.west),
            self.south.max(other.south),
            self.east.min(other.east),
            self.north.min(other.north),
        ))
    }

    /// The smallest extent covering both inputs.
    pub fn union(&self, other: &GeoExtent) -> GeoExtent {
        GeoExtent::new(
            self.west.min(other.west),
            self.south.min(other.south),
            self.east.max(other.east),
            self.north.max(other.north),
        )
    }

    /// Maps a raster cell in a `rows x cols` grid over this extent to the
    /// map-space centre of that cell.
    pub fn cell_center(&self, cell: CellCoord, rows: usize, cols: usize) -> (f64, f64) {
        let cw = self.width() / cols as f64;
        let ch = self.height() / rows as f64;
        let x = self.west + (cell.col as f64 + 0.5) * cw;
        // row 0 is the northern edge.
        let y = self.north - (cell.row as f64 + 0.5) * ch;
        (x, y)
    }
}

impl Default for GeoExtent {
    fn default() -> Self {
        GeoExtent::unit()
    }
}

impl fmt::Display for GeoExtent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}] x [{}, {}]",
            self.west, self.east, self.south, self.north
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_normalizes_corners() {
        let e = GeoExtent::new(10.0, 5.0, -10.0, -5.0);
        assert_eq!(e.west(), -10.0);
        assert_eq!(e.east(), 10.0);
        assert_eq!(e.south(), -5.0);
        assert_eq!(e.north(), 5.0);
        assert_eq!(e.width(), 20.0);
        assert_eq!(e.height(), 10.0);
    }

    #[test]
    fn contains_and_intersects() {
        let a = GeoExtent::new(0.0, 0.0, 2.0, 2.0);
        let b = GeoExtent::new(1.0, 1.0, 3.0, 3.0);
        let c = GeoExtent::new(5.0, 5.0, 6.0, 6.0);
        assert!(a.contains(1.0, 1.0));
        assert!(a.contains(0.0, 2.0));
        assert!(!a.contains(2.1, 1.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, GeoExtent::new(1.0, 1.0, 2.0, 2.0));
        assert!(a.intersection(&c).is_none());
        assert_eq!(a.union(&c), GeoExtent::new(0.0, 0.0, 6.0, 6.0));
    }

    #[test]
    fn cell_center_maps_rows_north_down() {
        let e = GeoExtent::new(0.0, 0.0, 10.0, 10.0);
        // 10x10 grid over a 10x10 extent: unit cells.
        let (x, y) = e.cell_center(CellCoord::new(0, 0), 10, 10);
        assert!((x - 0.5).abs() < 1e-12);
        assert!((y - 9.5).abs() < 1e-12);
        let (x, y) = e.cell_center(CellCoord::new(9, 9), 10, 10);
        assert!((x - 9.5).abs() < 1e-12);
        assert!((y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cell_distances() {
        let a = CellCoord::new(2, 3);
        let b = CellCoord::new(5, 1);
        assert_eq!(a.chebyshev(&b), 3);
        assert_eq!(a.manhattan(&b), 5);
        assert_eq!(a.chebyshev(&a), 0);
    }
}
