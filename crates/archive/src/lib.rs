#![warn(missing_docs)]
//! # mbir-archive
//!
//! The multi-modal archive substrate for model-based information retrieval
//! (MBIR). The ICDCS 2000 paper evaluates its framework on archives that mix
//! remotely-sensed imagery (Landsat TM bands), digital elevation maps,
//! weather-station time series, GIS/demographic layers, and well-log traces.
//! None of those proprietary sources are redistributable, so this crate
//! provides:
//!
//! * typed containers for each modality ([`Grid2`], [`Scene`], [`Dem`],
//!   [`TimeSeries`], [`WellLog`], [`PointLayer`]),
//! * deterministic, seeded synthetic generators that preserve the statistical
//!   structure the retrieval algorithms exploit ([`synth`], [`weather`],
//!   [`lithology`]),
//! * a metadata [`catalog`] describing every dataset in an archive, and
//! * a paged [`TileStore`] with explicit access accounting ([`AccessStats`])
//!   so that "data touched" speedups can be measured exactly the way the
//!   paper reports them.
//!
//! ```
//! use mbir_archive::synth::GaussianField;
//! use mbir_archive::grid::Grid2;
//!
//! let field = GaussianField::new(7).with_roughness(0.6);
//! let grid: Grid2<f64> = field.generate(64, 64);
//! assert_eq!(grid.rows(), 64);
//! assert_eq!(grid.cols(), 64);
//! ```

pub mod append;
pub mod archive;
pub mod catalog;
pub mod dem;
pub mod error;
pub mod extent;
pub mod fault;
pub mod gis;
pub mod grid;
pub mod integrity;
pub mod journal;
pub mod lithology;
pub mod randx;
pub mod region;
pub mod scene;
pub mod series;
pub mod shard;
pub mod stats;
pub mod synth;
pub mod temporal;
pub mod tile;
pub mod weather;
pub mod welllog;

pub use append::{AppendCommit, AppendableArchive, RecoveryReport};
pub use archive::Archive;
pub use catalog::{Catalog, DatasetId, DatasetMeta, Modality};
pub use dem::Dem;
pub use error::ArchiveError;
pub use extent::{CellCoord, GeoExtent};
pub use fault::{FaultKind, FaultProfile, ResilienceConfig, RetryPolicy, WriteFault};
pub use gis::{PointFeature, PointLayer};
pub use grid::Grid2;
pub use integrity::{fnv1a64, PageEnvelope};
pub use journal::{AppendJournal, AppendRecord, RecoveredJournal, TruncationReason};
pub use lithology::{ColumnGenerator, Layer, Lithology};
pub use region::{Polygon, Region, RegionLayer};
pub use scene::{BandId, Scene};
pub use series::TimeSeries;
pub use shard::{ShardBand, ShardPlan};
pub use stats::{AccessStats, IoModel};
pub use temporal::TemporalStack;
pub use tile::TileStore;
pub use weather::{WeatherDay, WeatherGenerator};
pub use welllog::WellLog;
