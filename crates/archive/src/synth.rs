//! Synthetic dataset generators.
//!
//! All generators are deterministic given their seed, so every experiment in
//! the repository regenerates bit-identical inputs.

use crate::grid::Grid2;
use crate::randx;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generator of spatially-correlated Gaussian random fields.
///
/// Uses the diamond–square (midpoint displacement) construction, which
/// produces fractal fields with a tunable roughness: `roughness` near 0
/// yields very smooth, large-structure fields; near 1 yields noisy fields.
/// This is the stand-in for remotely-sensed imagery: satellite radiance,
/// vegetation indexes and soil moisture are all spatially-correlated surfaces
/// and the retrieval algorithms only depend on that correlation structure.
///
/// # Examples
///
/// ```
/// use mbir_archive::synth::GaussianField;
///
/// let g = GaussianField::new(42).with_roughness(0.5).generate(33, 65);
/// assert_eq!((g.rows(), g.cols()), (33, 65));
/// // Deterministic: same seed, same field.
/// let h = GaussianField::new(42).with_roughness(0.5).generate(33, 65);
/// assert_eq!(g, h);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianField {
    seed: u64,
    roughness: f64,
    amplitude: f64,
}

impl GaussianField {
    /// Creates a generator with the given seed, roughness 0.5, amplitude 1.
    pub fn new(seed: u64) -> Self {
        GaussianField {
            seed,
            roughness: 0.5,
            amplitude: 1.0,
        }
    }

    /// Sets the roughness in `[0, 1]`; values are clamped.
    pub fn with_roughness(mut self, roughness: f64) -> Self {
        self.roughness = roughness.clamp(0.0, 1.0);
        self
    }

    /// Sets the displacement amplitude.
    pub fn with_amplitude(mut self, amplitude: f64) -> Self {
        self.amplitude = amplitude.abs();
        self
    }

    /// Generates a `rows x cols` field (any sizes >= 1; internally computed
    /// on the smallest enclosing `2^k + 1` square then cropped).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0 || cols == 0`.
    pub fn generate(&self, rows: usize, cols: usize) -> Grid2<f64> {
        assert!(rows > 0 && cols > 0, "field dimensions must be non-zero");
        let need = rows.max(cols).max(2);
        // Smallest 2^k with 2^k + 1 >= need.
        let mut size = 1usize;
        while size + 1 < need {
            size *= 2;
        }
        let n = size + 1;
        let mut field = vec![0.0f64; n * n];
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Seed the four corners.
        for &(r, c) in &[(0, 0), (0, size), (size, 0), (size, size)] {
            field[r * n + c] = randx::normal(&mut rng, 0.0, self.amplitude);
        }

        let mut step = size;
        let mut scale = self.amplitude;
        while step > 1 {
            let half = step / 2;
            // Diamond step: centers of squares.
            for r in (half..n).step_by(step) {
                for c in (half..n).step_by(step) {
                    let avg = (field[(r - half) * n + (c - half)]
                        + field[(r - half) * n + (c + half)]
                        + field[(r + half) * n + (c - half)]
                        + field[(r + half) * n + (c + half)])
                        / 4.0;
                    field[r * n + c] = avg + randx::normal(&mut rng, 0.0, scale);
                }
            }
            // Square step: edge midpoints.
            for r in (0..n).step_by(half) {
                let c_start = if (r / half).is_multiple_of(2) {
                    half
                } else {
                    0
                };
                for c in (c_start..n).step_by(step) {
                    let mut sum = 0.0;
                    let mut count = 0.0;
                    if r >= half {
                        sum += field[(r - half) * n + c];
                        count += 1.0;
                    }
                    if r + half < n {
                        sum += field[(r + half) * n + c];
                        count += 1.0;
                    }
                    if c >= half {
                        sum += field[r * n + (c - half)];
                        count += 1.0;
                    }
                    if c + half < n {
                        sum += field[r * n + (c + half)];
                        count += 1.0;
                    }
                    field[r * n + c] = sum / count + randx::normal(&mut rng, 0.0, scale);
                }
            }
            step = half;
            scale *= self.roughness.max(1e-3);
        }

        let mut out = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                out.push(field[r * n + c]);
            }
        }
        Grid2::from_vec(rows, cols, out).expect("sizes validated above")
    }
}

/// Mixes independent fields into correlated ones.
///
/// Given `k` independent source fields `Z_i` and a lower-triangular mixing
/// matrix `L` (e.g. the Cholesky factor of a desired band covariance), the
/// output band `j` is `sum_i L[j][i] * Z_i`. This reproduces the strong
/// inter-band correlation of real multi-spectral imagery.
///
/// # Panics
///
/// Panics if `sources` is empty, the grids disagree in shape, or a weight row
/// is longer than `sources`.
pub fn mix_fields(sources: &[Grid2<f64>], weights: &[Vec<f64>]) -> Vec<Grid2<f64>> {
    assert!(!sources.is_empty(), "need at least one source field");
    let rows = sources[0].rows();
    let cols = sources[0].cols();
    for s in sources {
        assert!(
            s.rows() == rows && s.cols() == cols,
            "all source fields must share a shape"
        );
    }
    weights
        .iter()
        .map(|w| {
            assert!(
                w.len() <= sources.len(),
                "weight row longer than source count"
            );
            Grid2::from_fn(rows, cols, |r, c| {
                w.iter()
                    .zip(sources.iter())
                    .map(|(wi, s)| wi * s.at(r, c))
                    .sum()
            })
        })
        .collect()
}

/// Samples event occurrences `O(x, y)` from a risk surface.
///
/// The paper's accuracy metrics (§4.1) compare model-predicted risk against
/// observed occurrences. Real incident reports are proprietary, so
/// occurrences are *planted*: each cell draws `Poisson(base_rate * risk)`
/// events where `risk` is the (normalized) surface value, optionally
/// corrupted with noise so the model cannot be trivially perfect.
#[derive(Debug, Clone)]
pub struct OccurrenceSampler {
    seed: u64,
    base_rate: f64,
    noise_std: f64,
}

impl OccurrenceSampler {
    /// Creates a sampler with the given seed, base rate 1.0 and no noise.
    pub fn new(seed: u64) -> Self {
        OccurrenceSampler {
            seed,
            base_rate: 1.0,
            noise_std: 0.0,
        }
    }

    /// Sets the expected event count for a risk-1.0 cell.
    pub fn with_base_rate(mut self, base_rate: f64) -> Self {
        self.base_rate = base_rate.max(0.0);
        self
    }

    /// Sets the standard deviation of Gaussian noise added to the risk before
    /// sampling (clamped at zero rate).
    pub fn with_noise(mut self, noise_std: f64) -> Self {
        self.noise_std = noise_std.abs();
        self
    }

    /// Draws an occurrence-count grid aligned with `risk` (values assumed in
    /// `[0, 1]`; out-of-range values are clamped).
    pub fn sample(&self, risk: &Grid2<f64>) -> Grid2<u32> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        risk.map(|&r| {
            let noisy = if self.noise_std > 0.0 {
                randx::normal(&mut rng, r, self.noise_std)
            } else {
                r
            };
            let rate = self.base_rate * noisy.clamp(0.0, 1.0);
            randx::poisson(&mut rng, rate) as u32
        })
    }
}

/// Draws `n` independent tuples from a d-dimensional standard Gaussian —
/// the exact dataset family used by the Onion evaluation ("three-parameter
/// Gaussian distributed data sets").
pub fn gaussian_tuples(seed: u64, n: usize, d: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..d).map(|_| randx::standard_normal(&mut rng)).collect())
        .collect()
}

/// Draws `n` tuples uniform in the unit hypercube.
pub fn uniform_tuples(seed: u64, n: usize, d: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..d).map(|_| rng.random::<f64>()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_is_deterministic_and_correct_shape() {
        let g1 = GaussianField::new(9).generate(17, 40);
        let g2 = GaussianField::new(9).generate(17, 40);
        assert_eq!(g1, g2);
        assert_eq!(g1.rows(), 17);
        assert_eq!(g1.cols(), 40);
        let g3 = GaussianField::new(10).generate(17, 40);
        assert_ne!(g1, g3, "different seeds should differ");
    }

    #[test]
    fn smooth_fields_have_higher_neighbor_correlation() {
        let smooth = GaussianField::new(3).with_roughness(0.3).generate(65, 65);
        let rough = GaussianField::new(3).with_roughness(1.0).generate(65, 65);
        let lag1 = |g: &Grid2<f64>| {
            let m = g.mean();
            let mut num = 0.0;
            let mut den = 0.0;
            for r in 0..g.rows() {
                for c in 0..g.cols() - 1 {
                    num += (g.at(r, c) - m) * (g.at(r, c + 1) - m);
                }
            }
            for (_, &v) in g.iter() {
                den += (v - m) * (v - m);
            }
            num / den
        };
        assert!(
            lag1(&smooth) > lag1(&rough),
            "smooth {} vs rough {}",
            lag1(&smooth),
            lag1(&rough)
        );
        assert!(lag1(&smooth) > 0.8);
    }

    #[test]
    fn mix_fields_produces_correlated_bands() {
        let a = GaussianField::new(1).generate(33, 33);
        let b = GaussianField::new(2).generate(33, 33);
        // band0 = a, band1 = 0.9 a + 0.1 b -> strongly correlated with band0.
        let bands = mix_fields(&[a, b], &[vec![1.0], vec![0.9, 0.1]]);
        assert_eq!(bands.len(), 2);
        let (x, y) = (&bands[0], &bands[1]);
        let mx = x.mean();
        let my = y.mean();
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let dx = x.at(r, c) - mx;
                let dy = y.at(r, c) - my;
                sxy += dx * dy;
                sxx += dx * dx;
                syy += dy * dy;
            }
        }
        let corr = sxy / (sxx * syy).sqrt();
        assert!(corr > 0.9, "corr {corr}");
    }

    #[test]
    fn occurrences_track_risk() {
        let mut risk = Grid2::filled(20, 20, 0.0f64);
        for r in 0..20 {
            for c in 10..20 {
                risk.set(r, c, 1.0).unwrap();
            }
        }
        let occ = OccurrenceSampler::new(5).with_base_rate(3.0).sample(&risk);
        let left: u32 = (0..20)
            .map(|r| (0..10).map(|c| occ.at(r, c)).sum::<u32>())
            .sum();
        let right: u32 = (0..20)
            .map(|r| (10..20).map(|c| occ.at(r, c)).sum::<u32>())
            .sum();
        assert_eq!(left, 0, "zero-risk half must have zero occurrences");
        assert!(
            right > 400,
            "high-risk half should average ~3/cell, got {right}"
        );
    }

    #[test]
    fn gaussian_tuples_shape_and_determinism() {
        let t = gaussian_tuples(11, 100, 3);
        assert_eq!(t.len(), 100);
        assert!(t.iter().all(|x| x.len() == 3));
        assert_eq!(t, gaussian_tuples(11, 100, 3));
    }

    #[test]
    fn uniform_tuples_in_unit_cube() {
        let t = uniform_tuples(12, 500, 4);
        assert!(t
            .iter()
            .flat_map(|x| x.iter())
            .all(|&v| (0.0..1.0).contains(&v)));
    }
}
