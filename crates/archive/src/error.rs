//! Error type for archive operations.

use std::error::Error;
use std::fmt;

/// Error raised by archive containers and stores.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArchiveError {
    /// A coordinate was outside the container bounds.
    OutOfBounds {
        /// Row (or index) requested.
        row: usize,
        /// Column requested (0 for 1-D containers).
        col: usize,
        /// Number of rows (or length) of the container.
        rows: usize,
        /// Number of columns of the container (1 for 1-D containers).
        cols: usize,
    },
    /// Construction was attempted with dimensions that do not match the
    /// supplied buffer.
    DimensionMismatch {
        /// Expected element count.
        expected: usize,
        /// Supplied element count.
        actual: usize,
    },
    /// A container was constructed with a zero dimension.
    EmptyDimension,
    /// Two datasets that must be aligned (same shape/extent) were not.
    Misaligned(String),
    /// A dataset id was not present in the catalog.
    UnknownDataset(String),
    /// An injected or simulated I/O failure from a fallible page store.
    PageIo {
        /// Page index whose read failed.
        page: usize,
    },
    /// The page's circuit breaker has tripped: enough consecutive failures
    /// were observed that the store refuses further attempts and fails
    /// fast without retrying.
    PageQuarantined {
        /// Page index under quarantine.
        page: usize,
    },
    /// The page was read, but its payload failed checksum verification —
    /// silent corruption detected by the integrity layer
    /// ([`crate::integrity`]).
    PageCorrupt {
        /// Page index whose payload failed verification.
        page: usize,
    },
    /// The append journal's writer crashed mid-write (a torn write, a
    /// partial record, or a device that stopped persisting at a byte
    /// offset — see [`crate::fault::WriteFault`]). The in-memory state is
    /// gone; only the bytes persisted before the crash survive, and
    /// recovery ([`crate::journal::recover`]) restores exactly the
    /// committed prefix.
    JournalCrashed {
        /// Number of journal bytes that made it to stable storage.
        persisted_bytes: usize,
    },
    /// An append was rejected before any byte was written: the band does
    /// not fit the archive (wrong width, non-tile-aligned height, or a
    /// non-contiguous row offset in a replayed record).
    AppendMisaligned(String),
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::OutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(f, "coordinate ({row}, {col}) outside bounds {rows}x{cols}"),
            ArchiveError::DimensionMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match expected {expected}"
            ),
            ArchiveError::EmptyDimension => write!(f, "container dimension must be non-zero"),
            ArchiveError::Misaligned(what) => write!(f, "datasets misaligned: {what}"),
            ArchiveError::UnknownDataset(id) => write!(f, "unknown dataset id: {id}"),
            ArchiveError::PageIo { page } => write!(f, "i/o failure reading page {page}"),
            ArchiveError::PageQuarantined { page } => {
                write!(f, "page {page} is quarantined after repeated failures")
            }
            ArchiveError::PageCorrupt { page } => {
                write!(f, "page {page} payload failed checksum verification")
            }
            ArchiveError::JournalCrashed { persisted_bytes } => {
                write!(
                    f,
                    "journal writer crashed; {persisted_bytes} bytes persisted"
                )
            }
            ArchiveError::AppendMisaligned(what) => write!(f, "append misaligned: {what}"),
        }
    }
}

impl Error for ArchiveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ArchiveError::OutOfBounds {
            row: 4,
            col: 7,
            rows: 2,
            cols: 2,
        };
        assert_eq!(e.to_string(), "coordinate (4, 7) outside bounds 2x2");
        let e = ArchiveError::DimensionMismatch {
            expected: 12,
            actual: 10,
        };
        assert!(e.to_string().contains("12"));
        assert!(ArchiveError::EmptyDimension
            .to_string()
            .contains("non-zero"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchiveError>();
    }
}
