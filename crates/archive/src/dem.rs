//! Digital elevation model (DEM) and terrain derivatives.

use crate::error::ArchiveError;
use crate::grid::Grid2;
use crate::synth::GaussianField;

/// A digital elevation model: elevations in meters over a grid.
///
/// The HPS risk model in the paper uses "elevation (in meters) from the
/// corresponding DEM" as its fourth attribute; [`Dem::synthetic`] produces
/// fractal terrain matching that role.
///
/// # Examples
///
/// ```
/// use mbir_archive::dem::Dem;
///
/// let dem = Dem::synthetic(3, 32, 32, 0.0, 1500.0);
/// let (lo, hi) = dem.grid().min_max().unwrap();
/// assert!(lo >= 0.0 && hi <= 1500.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dem {
    grid: Grid2<f64>,
    cell_size_m: f64,
}

impl Dem {
    /// Wraps an elevation grid with the given cell size in meters.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size_m` is not strictly positive and finite.
    pub fn new(grid: Grid2<f64>, cell_size_m: f64) -> Self {
        assert!(
            cell_size_m > 0.0 && cell_size_m.is_finite(),
            "cell size must be positive, got {cell_size_m}"
        );
        Dem { grid, cell_size_m }
    }

    /// Synthesizes fractal terrain spanning `[min_elev, max_elev]` meters,
    /// 30 m cells (the Landsat TM ground sample distance).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0 || cols == 0`.
    pub fn synthetic(seed: u64, rows: usize, cols: usize, min_elev: f64, max_elev: f64) -> Self {
        let field = GaussianField::new(seed)
            .with_roughness(0.45)
            .generate(rows, cols)
            .normalized(min_elev.min(max_elev), min_elev.max(max_elev));
        Dem::new(field, 30.0)
    }

    /// The elevation grid.
    pub fn grid(&self) -> &Grid2<f64> {
        &self.grid
    }

    /// Cell size in meters.
    pub fn cell_size_m(&self) -> f64 {
        self.cell_size_m
    }

    /// Elevation at a cell.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::OutOfBounds`] when outside the grid.
    pub fn elevation(&self, row: usize, col: usize) -> Result<f64, ArchiveError> {
        Ok(*self.grid.get(row, col)?)
    }

    /// Slope magnitude (rise over run, dimensionless) via central
    /// differences, one-sided at the edges.
    pub fn slope(&self) -> Grid2<f64> {
        let g = &self.grid;
        let rows = g.rows();
        let cols = g.cols();
        Grid2::from_fn(rows, cols, |r, c| {
            let (r0, r1) = (r.saturating_sub(1), (r + 1).min(rows - 1));
            let (c0, c1) = (c.saturating_sub(1), (c + 1).min(cols - 1));
            let dz_dy = (g.at(r1, c) - g.at(r0, c)) / ((r1 - r0).max(1) as f64 * self.cell_size_m);
            let dz_dx = (g.at(r, c1) - g.at(r, c0)) / ((c1 - c0).max(1) as f64 * self.cell_size_m);
            (dz_dx * dz_dx + dz_dy * dz_dy).sqrt()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_respects_range() {
        let dem = Dem::synthetic(1, 20, 30, 100.0, 900.0);
        let (lo, hi) = dem.grid().min_max().unwrap();
        assert!(lo >= 100.0 - 1e-9 && hi <= 900.0 + 1e-9);
        assert_eq!(dem.grid().rows(), 20);
        assert_eq!(dem.cell_size_m(), 30.0);
    }

    #[test]
    fn flat_terrain_has_zero_slope() {
        let dem = Dem::new(Grid2::filled(5, 5, 200.0), 30.0);
        let s = dem.slope();
        assert!(s.iter().all(|(_, &v)| v == 0.0));
    }

    #[test]
    fn ramp_has_expected_slope() {
        // Elevation increases 30 m per column with 30 m cells -> slope 1.0.
        let dem = Dem::new(Grid2::from_fn(4, 6, |_, c| 30.0 * c as f64), 30.0);
        let s = dem.slope();
        for (_, &v) in s.iter() {
            assert!((v - 1.0).abs() < 1e-12, "slope {v}");
        }
    }

    #[test]
    fn elevation_bounds_checked() {
        let dem = Dem::new(Grid2::filled(2, 2, 0.0), 30.0);
        assert!(dem.elevation(0, 0).is_ok());
        assert!(dem.elevation(2, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_rejected() {
        let _ = Dem::new(Grid2::filled(2, 2, 0.0), 0.0);
    }
}
