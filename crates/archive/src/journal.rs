//! The checksummed append journal: crash-consistent framing for tile
//! appends.
//!
//! Appendable archives ([`crate::append`]) never mutate committed bytes.
//! Every appended row band is first serialized into a self-describing
//! *frame* and persisted to an append-only journal; only once the frame —
//! including its trailing commit checksum — is durable does the append
//! count as committed. A crash can therefore leave exactly one kind of
//! damage: a torn byte *suffix*. Recovery ([`recover`]) replays frames
//! from the start, verifies each one, and truncates at the first invalid
//! frame, provably restoring the committed prefix and nothing else.
//!
//! # Frame format
//!
//! All integers little-endian:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "MBJ1"
//! 4       8     seq          (dense from 0; replay order = commit order)
//! 12      8     row_offset   (absolute first row of the band)
//! 20      8     rows         (band height, > 0)
//! 28      8     cols         (band width, > 0)
//! 36      8·n   values       (row-major f64 bit patterns, n = rows·cols)
//! 36+8n   8     commit checksum
//! ```
//!
//! The commit checksum is the frame's durability point and reuses the
//! PR-4 integrity machinery end to end: the band is expanded into
//! absolute-coordinate `(CellCoord, f64)` tuples — the exact shape a
//! [`PageEnvelope`](crate::integrity::PageEnvelope) seals — digested with
//! [`payload_checksum`](crate::integrity::payload_checksum), and that
//! digest is folded together with the header bytes through
//! [`fnv1a64`](crate::integrity::fnv1a64). Covering *absolute*
//! coordinates means a frame whose values survived but whose placement
//! header rotted (wrong `row_offset`) fails verification just like a
//! flipped value bit.
//!
//! # What recovery guarantees
//!
//! For any byte prefix of a journal produced by [`AppendJournal`] —
//! including prefixes cut mid-frame by the write faults of
//! [`WriteFault`](crate::fault::WriteFault) — [`recover`] returns exactly
//! the records whose full frames (checksum included) survived, in seq
//! order, with dense seqs from 0. Everything after the first invalid
//! frame is reported as dropped, never partially applied.

use crate::error::ArchiveError;
use crate::extent::CellCoord;
use crate::fault::WriteFault;
use crate::grid::Grid2;
use crate::integrity::{fnv1a64, payload_checksum};

/// Journal frame magic: ASCII `MBJ1` in file order.
pub const JOURNAL_MAGIC: [u8; 4] = *b"MBJ1";

/// Fixed frame header length in bytes (magic + seq + geometry).
pub const FRAME_HEADER_LEN: usize = 4 + 8 + 8 + 8 + 8;

/// One committed append: a row band placed at an absolute row offset.
#[derive(Debug, Clone, PartialEq)]
pub struct AppendRecord {
    /// Dense commit sequence number (0-based append order).
    pub seq: u64,
    /// Absolute row index of the band's first row.
    pub row_offset: usize,
    /// The appended rows (band height × archive width).
    pub band: Grid2<f64>,
}

impl AppendRecord {
    /// The band expanded into absolute-coordinate tuples — the payload
    /// shape the integrity layer seals and digests.
    pub fn tuples(&self) -> Vec<(CellCoord, f64)> {
        self.band
            .iter()
            .map(|(c, &v)| (CellCoord::new(self.row_offset + c.row, c.col), v))
            .collect()
    }
}

/// Why a recovery scan stopped where it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncationReason {
    /// The journal ended exactly on a frame boundary: nothing was lost.
    CleanEnd,
    /// Bytes ran out mid-frame — a torn write or partial record.
    TornFrame,
    /// The next frame did not start with the journal magic.
    BadMagic,
    /// A complete frame's commit checksum did not verify.
    BadChecksum,
    /// A complete frame verified but carried the wrong sequence number.
    BadSequence,
    /// A complete frame verified but declared an impossible geometry
    /// (zero rows or columns).
    BadGeometry,
}

/// Result of replaying a journal byte prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJournal {
    /// Committed records in seq order (dense from 0).
    pub records: Vec<AppendRecord>,
    /// Byte length of the valid committed prefix.
    pub committed_bytes: usize,
    /// Bytes past the committed prefix that were discarded.
    pub dropped_bytes: usize,
    /// Why the scan stopped.
    pub truncation: TruncationReason,
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(b)
}

/// The commit checksum of a frame: the integrity-layer payload digest of
/// the band's absolute-coordinate tuples, folded with the header bytes
/// through FNV-1a.
fn commit_checksum(header: &[u8], record: &AppendRecord) -> u64 {
    let payload = payload_checksum(&record.tuples());
    let mut digest_input = Vec::with_capacity(header.len() + 8);
    digest_input.extend_from_slice(header);
    digest_input.extend_from_slice(&payload.to_le_bytes());
    fnv1a64(&digest_input)
}

/// Serializes one record into its on-journal frame.
pub fn encode_frame(record: &AppendRecord) -> Vec<u8> {
    let n = record.band.rows() * record.band.cols();
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + n * 8 + 8);
    frame.extend_from_slice(&JOURNAL_MAGIC);
    put_u64(&mut frame, record.seq);
    put_u64(&mut frame, record.row_offset as u64);
    put_u64(&mut frame, record.band.rows() as u64);
    put_u64(&mut frame, record.band.cols() as u64);
    let checksum = commit_checksum(&frame[..FRAME_HEADER_LEN], record);
    for &v in record.band.as_slice() {
        put_u64(&mut frame, v.to_bits());
    }
    put_u64(&mut frame, checksum);
    frame
}

/// An append-only journal of framed row-band appends, with optional
/// injected write faults.
///
/// The journal owns the "durable bytes" the crash model reasons about:
/// [`append`](Self::append) either persists a whole frame and returns its
/// seq, or — under an armed [`WriteFault`] — persists a torn prefix,
/// latches a crashed state, and fails. A crashed journal accepts no
/// further appends; its surviving bytes are what [`recover`] replays.
///
/// # Examples
///
/// ```
/// use mbir_archive::grid::Grid2;
/// use mbir_archive::journal::{recover, AppendJournal, TruncationReason};
///
/// let mut j = AppendJournal::new();
/// j.append(0, &Grid2::filled(2, 4, 1.0)).unwrap();
/// j.append(2, &Grid2::filled(2, 4, 2.0)).unwrap();
/// let rec = recover(j.bytes());
/// assert_eq!(rec.records.len(), 2);
/// assert_eq!(rec.truncation, TruncationReason::CleanEnd);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AppendJournal {
    buf: Vec<u8>,
    next_seq: u64,
    fault: Option<WriteFault>,
    crashed: bool,
}

impl AppendJournal {
    /// An empty, healthy journal.
    pub fn new() -> Self {
        AppendJournal::default()
    }

    /// Arms a write fault (builder style). At most one fault is armed; it
    /// fires once and leaves the journal crashed.
    pub fn with_write_fault(mut self, fault: WriteFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// The persisted journal bytes — everything that survives a crash.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of fully committed frames.
    pub fn committed_frames(&self) -> u64 {
        self.next_seq
    }

    /// True once an armed write fault has fired; all further appends fail.
    pub fn has_crashed(&self) -> bool {
        self.crashed
    }

    /// Frames and persists one append of `band` at `row_offset`.
    ///
    /// Returns the committed seq. Under an armed [`WriteFault`] that
    /// applies to this append, persists only the fault's byte prefix and
    /// fails with [`ArchiveError::JournalCrashed`]; the append is **not**
    /// committed and the journal accepts nothing further.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::JournalCrashed`] after a crash (immediately, no
    /// bytes written) or when the armed fault fires on this append.
    /// [`ArchiveError::EmptyDimension`] for an empty band.
    pub fn append(&mut self, row_offset: usize, band: &Grid2<f64>) -> Result<u64, ArchiveError> {
        if self.crashed {
            return Err(ArchiveError::JournalCrashed {
                persisted_bytes: self.buf.len(),
            });
        }
        if band.rows() == 0 || band.cols() == 0 {
            return Err(ArchiveError::EmptyDimension);
        }
        let seq = self.next_seq;
        let record = AppendRecord {
            seq,
            row_offset,
            band: band.clone(),
        };
        let frame = encode_frame(&record);
        let cut = match self.fault {
            Some(WriteFault::TornWrite {
                frame: f,
                persisted_bytes,
            }) if f == seq => Some(persisted_bytes.min(frame.len())),
            Some(WriteFault::PartialRecord { frame: f, tuples }) if f == seq => {
                // Header plus whole values, never the trailing checksum.
                let n = record.band.rows() * record.band.cols();
                Some(FRAME_HEADER_LEN + tuples.min(n) * 8)
            }
            Some(WriteFault::CrashAtOffset { offset }) if self.buf.len() + frame.len() > offset => {
                Some(offset.saturating_sub(self.buf.len()).min(frame.len()))
            }
            _ => None,
        };
        match cut {
            Some(persist) => {
                self.buf.extend_from_slice(&frame[..persist]);
                self.crashed = true;
                Err(ArchiveError::JournalCrashed {
                    persisted_bytes: self.buf.len(),
                })
            }
            None => {
                self.buf.extend_from_slice(&frame);
                self.next_seq += 1;
                Ok(seq)
            }
        }
    }
}

/// Replays a journal byte image, truncating at the first invalid frame.
///
/// Accepts *any* byte slice — a cleanly closed journal, a torn prefix
/// left by a crash, or garbage — and returns exactly the committed
/// records (dense seqs from 0, every commit checksum verified) together
/// with where and why the scan stopped. The committed prefix is closed
/// under this function: `recover(&bytes[..r.committed_bytes])` returns
/// the same records with [`TruncationReason::CleanEnd`].
pub fn recover(bytes: &[u8]) -> RecoveredJournal {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut expected_seq = 0u64;
    let truncation = loop {
        if pos == bytes.len() {
            break TruncationReason::CleanEnd;
        }
        let rest = &bytes[pos..];
        if rest.len() < FRAME_HEADER_LEN {
            break TruncationReason::TornFrame;
        }
        if rest[..4] != JOURNAL_MAGIC {
            break TruncationReason::BadMagic;
        }
        let seq = read_u64(rest, 4);
        let row_offset = read_u64(rest, 12);
        let rows = read_u64(rest, 20);
        let cols = read_u64(rest, 28);
        // Geometry first as a length sanity check: a torn header can
        // claim an astronomic payload, which must not overflow the
        // length arithmetic below.
        let Some(n) = rows.checked_mul(cols) else {
            break TruncationReason::TornFrame;
        };
        let Some(frame_len) = n
            .checked_mul(8)
            .and_then(|p| p.checked_add((FRAME_HEADER_LEN + 8) as u64))
        else {
            break TruncationReason::TornFrame;
        };
        if frame_len > rest.len() as u64 {
            break TruncationReason::TornFrame;
        }
        let frame_len = frame_len as usize;
        if rows == 0 || cols == 0 {
            break TruncationReason::BadGeometry;
        }
        let values: Vec<f64> = (0..n as usize)
            .map(|i| f64::from_bits(read_u64(rest, FRAME_HEADER_LEN + i * 8)))
            .collect();
        let band = Grid2::from_vec(rows as usize, cols as usize, values)
            .expect("length matches geometry by construction");
        let record = AppendRecord {
            seq,
            row_offset: row_offset as usize,
            band,
        };
        let stored = read_u64(rest, frame_len - 8);
        if commit_checksum(&rest[..FRAME_HEADER_LEN], &record) != stored {
            break TruncationReason::BadChecksum;
        }
        if seq != expected_seq {
            break TruncationReason::BadSequence;
        }
        records.push(record);
        expected_seq += 1;
        pos += frame_len;
    };
    RecoveredJournal {
        records,
        committed_bytes: pos,
        dropped_bytes: bytes.len() - pos,
        truncation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn band(rows: usize, cols: usize, seed: f64) -> Grid2<f64> {
        Grid2::from_fn(rows, cols, |r, c| seed + (r * cols + c) as f64 * 0.5)
    }

    fn journal_with(n: usize) -> AppendJournal {
        let mut j = AppendJournal::new();
        let mut offset = 0;
        for i in 0..n {
            j.append(offset, &band(2, 4, i as f64 * 10.0)).unwrap();
            offset += 2;
        }
        j
    }

    #[test]
    fn clean_journal_recovers_everything() {
        let j = journal_with(3);
        let rec = recover(j.bytes());
        assert_eq!(rec.truncation, TruncationReason::CleanEnd);
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.committed_bytes, j.bytes().len());
        assert_eq!(rec.dropped_bytes, 0);
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.row_offset, i * 2);
            assert_eq!(r.band, band(2, 4, i as f64 * 10.0));
        }
        assert_eq!(recover(&[]).truncation, TruncationReason::CleanEnd);
    }

    #[test]
    fn every_torn_byte_offset_recovers_the_committed_prefix() {
        let j = journal_with(3);
        let bytes = j.bytes();
        let frame_len = bytes.len() / 3;
        for cut in 0..bytes.len() {
            let rec = recover(&bytes[..cut]);
            let full_frames = cut / frame_len;
            assert_eq!(
                rec.records.len(),
                full_frames,
                "cut at byte {cut} of {frame_len}-byte frames"
            );
            assert_eq!(rec.committed_bytes, full_frames * frame_len);
            if cut % frame_len == 0 {
                assert_eq!(rec.truncation, TruncationReason::CleanEnd);
            } else {
                assert_ne!(rec.truncation, TruncationReason::CleanEnd);
                // Recovery is idempotent: the committed prefix is clean.
                let again = recover(&bytes[..rec.committed_bytes]);
                assert_eq!(again.truncation, TruncationReason::CleanEnd);
                assert_eq!(again.records, rec.records);
            }
        }
    }

    #[test]
    fn torn_write_fault_crashes_and_preserves_prefix() {
        let mut j = AppendJournal::new().with_write_fault(WriteFault::TornWrite {
            frame: 1,
            persisted_bytes: 13,
        });
        j.append(0, &band(2, 4, 0.0)).unwrap();
        let err = j.append(2, &band(2, 4, 1.0)).unwrap_err();
        assert!(matches!(err, ArchiveError::JournalCrashed { .. }));
        assert!(j.has_crashed());
        assert_eq!(j.committed_frames(), 1);
        // Crashed journals refuse further appends without writing bytes.
        let len = j.bytes().len();
        assert!(j.append(2, &band(2, 4, 2.0)).is_err());
        assert_eq!(j.bytes().len(), len);
        let rec = recover(j.bytes());
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.truncation, TruncationReason::TornFrame);
        assert_eq!(rec.dropped_bytes, 13);
    }

    #[test]
    fn partial_record_fault_cuts_at_tuple_boundary() {
        let mut j = AppendJournal::new().with_write_fault(WriteFault::PartialRecord {
            frame: 0,
            tuples: 3,
        });
        assert!(j.append(0, &band(2, 4, 5.0)).is_err());
        assert_eq!(j.bytes().len(), FRAME_HEADER_LEN + 3 * 8);
        let rec = recover(j.bytes());
        assert!(rec.records.is_empty());
        assert_eq!(rec.truncation, TruncationReason::TornFrame);
    }

    #[test]
    fn crash_at_offset_fires_on_the_crossing_append() {
        let frame_len = encode_frame(&AppendRecord {
            seq: 0,
            row_offset: 0,
            band: band(2, 4, 0.0),
        })
        .len();
        let mut j = AppendJournal::new().with_write_fault(WriteFault::CrashAtOffset {
            offset: frame_len + 7,
        });
        j.append(0, &band(2, 4, 0.0)).unwrap();
        assert!(j.append(2, &band(2, 4, 1.0)).is_err());
        assert_eq!(j.bytes().len(), frame_len + 7);
        let rec = recover(j.bytes());
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.truncation, TruncationReason::TornFrame);
    }

    #[test]
    fn corrupted_header_or_payload_is_detected() {
        let j = journal_with(2);
        let frame_len = j.bytes().len() / 2;
        // Flip one payload byte of frame 1: checksum catches it.
        let mut bytes = j.bytes().to_vec();
        bytes[frame_len + FRAME_HEADER_LEN + 3] ^= 0x40;
        let rec = recover(&bytes);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.truncation, TruncationReason::BadChecksum);
        // A rotted placement header (row_offset) fails the same way even
        // though every value byte is intact.
        let mut bytes = j.bytes().to_vec();
        bytes[frame_len + 12] ^= 0x01;
        assert_eq!(recover(&bytes).truncation, TruncationReason::BadChecksum);
        // A clobbered magic stops the scan before decoding.
        let mut bytes = j.bytes().to_vec();
        bytes[frame_len] = b'X';
        assert_eq!(recover(&bytes).truncation, TruncationReason::BadMagic);
    }

    #[test]
    fn duplicated_frame_fails_sequence_check() {
        let j = journal_with(1);
        let mut bytes = j.bytes().to_vec();
        let copy = bytes.clone();
        bytes.extend_from_slice(&copy);
        // The duplicate frame verifies (it is byte-identical) but replays
        // seq 0 where seq 1 is required.
        let rec = recover(&bytes);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.truncation, TruncationReason::BadSequence);
    }

    #[test]
    fn astronomic_geometry_does_not_overflow() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&JOURNAL_MAGIC);
        for v in [0u64, 0, u64::MAX, u64::MAX] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        bytes.extend_from_slice(&[0u8; 64]);
        let rec = recover(&bytes);
        assert!(rec.records.is_empty());
        assert_eq!(rec.truncation, TruncationReason::TornFrame);
    }

    #[test]
    fn empty_band_is_rejected_before_any_byte() {
        let mut j = AppendJournal::new();
        let empty = Grid2::<f64>::from_vec(0, 0, Vec::new());
        // Grid2 refuses zero dimensions itself; exercise the journal's own
        // guard through a 0-row grid if constructible, else skip.
        if let Ok(g) = empty {
            assert_eq!(j.append(0, &g), Err(ArchiveError::EmptyDimension));
        }
        assert_eq!(j.bytes().len(), 0);
    }
}
