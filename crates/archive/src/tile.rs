//! Paged tile store over a raster, with access accounting and optional
//! fault injection.
//!
//! Large archives are read in pages; the paper's speedups hinge on touching
//! fewer of them. `TileStore` partitions a [`Grid2`] into square tiles,
//! counts every tile materialization through a shared [`AccessStats`], and
//! can be configured to fail specific pages to exercise error paths.

use crate::error::ArchiveError;
use crate::extent::CellCoord;
use crate::grid::Grid2;
use crate::stats::AccessStats;
use std::collections::HashSet;

/// A paged, counted view over a grid.
///
/// # Examples
///
/// ```
/// use mbir_archive::grid::Grid2;
/// use mbir_archive::tile::TileStore;
///
/// let grid = Grid2::from_fn(8, 8, |r, c| (r * 8 + c) as f64);
/// let store = TileStore::new(grid, 4).unwrap();
/// let v = store.read(1, 5).unwrap();
/// assert_eq!(v, 13.0);
/// assert_eq!(store.stats().pages_read(), 1);
/// assert_eq!(store.stats().tuples_touched(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TileStore {
    grid: Grid2<f64>,
    tile: usize,
    tiles_per_row: usize,
    stats: AccessStats,
    failing_pages: HashSet<usize>,
}

impl TileStore {
    /// Wraps a grid in a store with `tile x tile` pages.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::EmptyDimension`] if `tile == 0`.
    pub fn new(grid: Grid2<f64>, tile: usize) -> Result<Self, ArchiveError> {
        if tile == 0 {
            return Err(ArchiveError::EmptyDimension);
        }
        let tiles_per_row = grid.cols().div_ceil(tile);
        Ok(TileStore {
            grid,
            tile,
            tiles_per_row,
            stats: AccessStats::new(),
            failing_pages: HashSet::new(),
        })
    }

    /// Shares an existing stats handle (builder style) so multiple stores
    /// aggregate into one counter set.
    pub fn with_stats(mut self, stats: AccessStats) -> Self {
        self.stats = stats;
        self
    }

    /// Marks a page index as failing: reads touching it return
    /// [`ArchiveError::PageIo`]. Used by failure-injection tests.
    pub fn fail_page(&mut self, page: usize) {
        self.failing_pages.insert(page);
    }

    /// The shared stats handle.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Number of rows in the underlying grid.
    pub fn rows(&self) -> usize {
        self.grid.rows()
    }

    /// Number of columns in the underlying grid.
    pub fn cols(&self) -> usize {
        self.grid.cols()
    }

    /// Tile edge length in cells.
    pub fn tile_size(&self) -> usize {
        self.tile
    }

    /// Total number of pages.
    pub fn page_count(&self) -> usize {
        self.grid.rows().div_ceil(self.tile) * self.tiles_per_row
    }

    /// Page index containing cell `(row, col)`.
    pub fn page_of(&self, row: usize, col: usize) -> usize {
        (row / self.tile) * self.tiles_per_row + col / self.tile
    }

    /// Reads one cell, accounting one tuple and one page access.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::OutOfBounds`] outside the grid and
    /// [`ArchiveError::PageIo`] for injected page failures.
    pub fn read(&self, row: usize, col: usize) -> Result<f64, ArchiveError> {
        let v = *self.grid.get(row, col)?;
        let page = self.page_of(row, col);
        if self.failing_pages.contains(&page) {
            return Err(ArchiveError::PageIo { page });
        }
        self.stats.record_tuples(1);
        self.stats.record_pages(1);
        Ok(v)
    }

    /// Reads an entire page as `(coord, value)` tuples, accounting one page
    /// and `len` tuples.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::OutOfBounds`] for an invalid page index and
    /// [`ArchiveError::PageIo`] for injected failures.
    pub fn read_page(&self, page: usize) -> Result<Vec<(CellCoord, f64)>, ArchiveError> {
        if page >= self.page_count() {
            return Err(ArchiveError::OutOfBounds {
                row: page,
                col: 0,
                rows: self.page_count(),
                cols: 1,
            });
        }
        if self.failing_pages.contains(&page) {
            return Err(ArchiveError::PageIo { page });
        }
        let tr = page / self.tiles_per_row;
        let tc = page % self.tiles_per_row;
        let r0 = tr * self.tile;
        let c0 = tc * self.tile;
        let r1 = (r0 + self.tile).min(self.grid.rows());
        let c1 = (c0 + self.tile).min(self.grid.cols());
        let mut out = Vec::with_capacity((r1 - r0) * (c1 - c0));
        for r in r0..r1 {
            for c in c0..c1 {
                out.push((CellCoord::new(r, c), *self.grid.at(r, c)));
            }
        }
        self.stats.record_pages(1);
        self.stats.record_tuples(out.len() as u64);
        Ok(out)
    }

    /// Scans every page in order, calling `f` per tuple. This is the
    /// sequential-scan baseline cost model: every page, every tuple.
    ///
    /// # Errors
    ///
    /// Propagates injected page failures; tuples before the failure have
    /// already been delivered to `f`.
    pub fn scan<F: FnMut(CellCoord, f64)>(&self, mut f: F) -> Result<(), ArchiveError> {
        for page in 0..self.page_count() {
            for (coord, v) in self.read_page(page)? {
                f(coord, v);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_4x4() -> TileStore {
        TileStore::new(Grid2::from_fn(4, 4, |r, c| (r * 4 + c) as f64), 2).unwrap()
    }

    #[test]
    fn page_layout() {
        let s = store_4x4();
        assert_eq!(s.page_count(), 4);
        assert_eq!(s.page_of(0, 0), 0);
        assert_eq!(s.page_of(0, 3), 1);
        assert_eq!(s.page_of(3, 0), 2);
        assert_eq!(s.page_of(3, 3), 3);
    }

    #[test]
    fn read_page_contents() {
        let s = store_4x4();
        let page = s.read_page(3).unwrap();
        let values: Vec<f64> = page.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, vec![10.0, 11.0, 14.0, 15.0]);
        assert_eq!(s.stats().pages_read(), 1);
        assert_eq!(s.stats().tuples_touched(), 4);
        assert!(s.read_page(4).is_err());
    }

    #[test]
    fn ragged_edges_are_partial_pages() {
        let s = TileStore::new(Grid2::from_fn(5, 3, |r, c| (r * 3 + c) as f64), 2).unwrap();
        assert_eq!(s.page_count(), 6);
        // Bottom-right page covers only cell (4, 2).
        let page = s.read_page(5).unwrap();
        assert_eq!(page.len(), 1);
        assert_eq!(page[0].0, CellCoord::new(4, 2));
        assert_eq!(page[0].1, 14.0);
    }

    #[test]
    fn scan_visits_every_tuple_once() {
        let s = store_4x4();
        let mut seen = Vec::new();
        s.scan(|coord, v| seen.push((coord, v))).unwrap();
        assert_eq!(seen.len(), 16);
        let mut coords: Vec<CellCoord> = seen.iter().map(|(c, _)| *c).collect();
        coords.sort();
        coords.dedup();
        assert_eq!(coords.len(), 16);
        assert_eq!(s.stats().pages_read(), 4);
        assert_eq!(s.stats().tuples_touched(), 16);
    }

    #[test]
    fn fault_injection_surfaces_page_io() {
        let mut s = store_4x4();
        s.fail_page(2);
        assert!(matches!(
            s.read(3, 0),
            Err(ArchiveError::PageIo { page: 2 })
        ));
        let mut count = 0;
        let err = s.scan(|_, _| count += 1).unwrap_err();
        assert_eq!(err, ArchiveError::PageIo { page: 2 });
        assert_eq!(count, 8, "pages 0 and 1 delivered before the failure");
    }

    #[test]
    fn zero_tile_rejected() {
        assert!(TileStore::new(Grid2::filled(2, 2, 0.0), 0).is_err());
    }
}
