//! Paged tile store over a raster, with access accounting and configurable
//! fault injection.
//!
//! Large archives are read in pages; the paper's speedups hinge on touching
//! fewer of them. `TileStore` partitions a [`Grid2`] into square tiles,
//! counts every tile materialization through a shared [`AccessStats`], and
//! can be configured with a [`FaultProfile`] (permanent, transient, or
//! probabilistic page faults plus injected latency) and a
//! [`ResilienceConfig`] (tick-based retry with exponential backoff, and a
//! per-page circuit breaker) to exercise degraded-archive behavior.
//!
//! With the default (empty) profile and the default resilience config the
//! store behaves exactly like a fault-free paged reader.

use crate::error::ArchiveError;
use crate::extent::CellCoord;
use crate::fault::{AttemptOutcome, FaultProfile, FaultRuntime, ResilienceConfig};
use crate::grid::Grid2;
use crate::integrity::{corrupt_value, PageEnvelope};
use crate::stats::AccessStats;
use std::sync::Mutex;

/// A paged, counted view over a grid.
///
/// # Examples
///
/// ```
/// use mbir_archive::grid::Grid2;
/// use mbir_archive::tile::TileStore;
///
/// let grid = Grid2::from_fn(8, 8, |r, c| (r * 8 + c) as f64);
/// let store = TileStore::new(grid, 4).unwrap();
/// let v = store.read(1, 5).unwrap();
/// assert_eq!(v, 13.0);
/// assert_eq!(store.stats().pages_read(), 1);
/// assert_eq!(store.stats().tuples_touched(), 1);
/// ```
///
/// Reads under a fault profile retry per the [`ResilienceConfig`]:
///
/// ```
/// use mbir_archive::fault::{FaultProfile, ResilienceConfig, RetryPolicy};
/// use mbir_archive::grid::Grid2;
/// use mbir_archive::tile::TileStore;
///
/// let grid = Grid2::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
/// let store = TileStore::new(grid, 2)
///     .unwrap()
///     .with_faults(FaultProfile::new(0).transient(0, 2))
///     .with_resilience(ResilienceConfig::new(RetryPolicy::retries(3), None));
/// // Two failing attempts, then the page heals within the retry budget.
/// assert_eq!(store.read(0, 0).unwrap(), 0.0);
/// assert_eq!(store.stats().retries(), 2);
/// assert_eq!(store.stats().failures(), 2);
/// ```
#[derive(Debug)]
pub struct TileStore {
    grid: Grid2<f64>,
    tile: usize,
    tiles_per_row: usize,
    stats: AccessStats,
    fault: Mutex<FaultRuntime>,
}

impl Clone for TileStore {
    /// Clones the store, snapshotting the current fault state (transient
    /// counters, breaker state, probabilistic RNG position). The stats
    /// handle is shared, as for any [`AccessStats`] clone.
    fn clone(&self) -> Self {
        let runtime = self.fault.lock().expect("fault state lock").clone();
        TileStore {
            grid: self.grid.clone(),
            tile: self.tile,
            tiles_per_row: self.tiles_per_row,
            stats: self.stats.clone(),
            fault: Mutex::new(runtime),
        }
    }
}

impl TileStore {
    /// Wraps a grid in a store with `tile x tile` pages.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::EmptyDimension`] if `tile == 0`.
    pub fn new(grid: Grid2<f64>, tile: usize) -> Result<Self, ArchiveError> {
        if tile == 0 {
            return Err(ArchiveError::EmptyDimension);
        }
        let tiles_per_row = grid.cols().div_ceil(tile);
        Ok(TileStore {
            grid,
            tile,
            tiles_per_row,
            stats: AccessStats::new(),
            fault: Mutex::new(FaultRuntime::new(
                FaultProfile::healthy(),
                ResilienceConfig::none(),
            )),
        })
    }

    /// Shares an existing stats handle (builder style) so multiple stores
    /// aggregate into one counter set.
    pub fn with_stats(mut self, stats: AccessStats) -> Self {
        self.stats = stats;
        self
    }

    /// Installs a fault profile (builder style), resetting any accumulated
    /// fault state. The resilience config is preserved.
    pub fn with_faults(self, profile: FaultProfile) -> Self {
        {
            let mut rt = self.fault.lock().expect("fault state lock");
            let config = rt.config();
            *rt = FaultRuntime::new(profile, config);
        }
        self
    }

    /// Sets the retry/quarantine behavior (builder style). Accumulated
    /// fault state (transient counters, quarantines) is preserved.
    pub fn with_resilience(self, config: ResilienceConfig) -> Self {
        self.fault
            .lock()
            .expect("fault state lock")
            .set_config(config);
        self
    }

    /// Marks a page index as permanently failing: reads touching it return
    /// [`ArchiveError::PageIo`]. Shorthand for a permanent entry in the
    /// fault profile; used by failure-injection tests.
    pub fn fail_page(&mut self, page: usize) {
        self.fault
            .lock()
            .expect("fault state lock")
            .add_permanent(page);
    }

    /// The active retry/quarantine configuration.
    pub fn resilience(&self) -> ResilienceConfig {
        self.fault.lock().expect("fault state lock").config()
    }

    /// Whether `page` is currently quarantined by the circuit breaker.
    pub fn is_quarantined(&self, page: usize) -> bool {
        self.fault
            .lock()
            .expect("fault state lock")
            .is_quarantined(page)
    }

    /// Pages currently under quarantine, sorted ascending.
    pub fn quarantined_pages(&self) -> impl Iterator<Item = usize> {
        self.fault
            .lock()
            .expect("fault state lock")
            .quarantined_pages()
            .into_iter()
    }

    /// Lifts every quarantine, so the next access re-attempts (and, through
    /// [`read_page_verified`](Self::read_page_verified), re-verifies) the
    /// page. An operator hook: after replacing a bad device, quarantines
    /// from the old hardware should not outlive it.
    pub fn clear_quarantine(&self) {
        self.fault
            .lock()
            .expect("fault state lock")
            .clear_quarantine();
    }

    /// The shared stats handle.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Number of rows in the underlying grid.
    pub fn rows(&self) -> usize {
        self.grid.rows()
    }

    /// Number of columns in the underlying grid.
    pub fn cols(&self) -> usize {
        self.grid.cols()
    }

    /// Tile edge length in cells.
    pub fn tile_size(&self) -> usize {
        self.tile
    }

    /// Total number of pages.
    pub fn page_count(&self) -> usize {
        self.grid.rows().div_ceil(self.tile) * self.tiles_per_row
    }

    /// Page index containing cell `(row, col)`.
    pub fn page_of(&self, row: usize, col: usize) -> usize {
        (row / self.tile) * self.tiles_per_row + col / self.tile
    }

    /// Half-open cell extent `(r0, c0, r1, c1)` covered by `page`
    /// (clipped at ragged grid edges).
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::OutOfBounds`] for an invalid page index.
    pub fn page_extent(&self, page: usize) -> Result<(usize, usize, usize, usize), ArchiveError> {
        if page >= self.page_count() {
            return Err(ArchiveError::OutOfBounds {
                row: page,
                col: 0,
                rows: self.page_count(),
                cols: 1,
            });
        }
        let r0 = (page / self.tiles_per_row) * self.tile;
        let c0 = (page % self.tiles_per_row) * self.tile;
        let r1 = (r0 + self.tile).min(self.grid.rows());
        let c1 = (c0 + self.tile).min(self.grid.cols());
        Ok((r0, c0, r1, c1))
    }

    /// Runs the fault machinery for one logical page access: attempts the
    /// read, retries failed attempts per the policy (accruing backoff
    /// ticks), and trips the circuit breaker on repeated failure. Every
    /// attempt costs one base tick plus any injected latency.
    ///
    /// `Ok(true)` means the access "succeeded" but delivered a silently
    /// corrupted payload — the caller decides whether it verifies
    /// checksums ([`read_page_verified`](Self::read_page_verified)) or
    /// trusts the bytes like a legacy reader ([`read`](Self::read)).
    fn access_page(&self, page: usize) -> Result<bool, ArchiveError> {
        let mut rt = self.fault.lock().expect("fault state lock");
        let policy = rt.config().retry;
        let mut retry = 0u32;
        loop {
            match rt.attempt(page) {
                AttemptOutcome::Quarantined => {
                    return Err(ArchiveError::PageQuarantined { page });
                }
                AttemptOutcome::Ok { latency_ticks } => {
                    self.stats.record_ticks(1 + latency_ticks);
                    return Ok(false);
                }
                AttemptOutcome::Corrupted { latency_ticks } => {
                    // Indistinguishable from success at the I/O level:
                    // same accounting, no failure recorded here.
                    self.stats.record_ticks(1 + latency_ticks);
                    return Ok(true);
                }
                AttemptOutcome::Failed { latency_ticks } => {
                    self.stats.record_ticks(1 + latency_ticks);
                    self.stats.record_failures(1);
                    if rt.is_quarantined(page) {
                        // This attempt tripped the breaker: report the
                        // I/O failure itself; later reads fail fast with
                        // `PageQuarantined`.
                        self.stats.record_quarantines(1);
                        return Err(ArchiveError::PageIo { page });
                    }
                    if retry < policy.max_retries {
                        retry += 1;
                        self.stats.record_retries(1);
                        self.stats.record_ticks(policy.backoff_ticks(retry));
                        continue;
                    }
                    return Err(ArchiveError::PageIo { page });
                }
            }
        }
    }

    /// Reports a checksum failure on `page` to the circuit breaker.
    /// Returns the error verified readers surface: `PageCorrupt`, after
    /// recording the detection (and, if the breaker tripped, the new
    /// quarantine).
    fn note_corruption(&self, page: usize) -> ArchiveError {
        self.stats.record_corruptions(1);
        self.stats.record_failures(1);
        let newly_quarantined = self
            .fault
            .lock()
            .expect("fault state lock")
            .note_checksum_failure(page);
        if newly_quarantined {
            self.stats.record_quarantines(1);
        }
        ArchiveError::PageCorrupt { page }
    }

    /// Reads one cell, accounting one tuple and one page access.
    ///
    /// This is the *trusting* read path: a silently corrupted page
    /// delivers its flipped bits without complaint, exactly like a legacy
    /// reader with no checksums. Use
    /// [`read_page_verified`](Self::read_page_verified) for detection.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::OutOfBounds`] outside the grid,
    /// [`ArchiveError::PageIo`] when the page's fault outlasts the retry
    /// budget, and [`ArchiveError::PageQuarantined`] once the page's
    /// circuit breaker has tripped.
    pub fn read(&self, row: usize, col: usize) -> Result<f64, ArchiveError> {
        let v = *self.grid.get(row, col)?;
        let page = self.page_of(row, col);
        let corrupted = self.access_page(page)?;
        self.stats.record_tuples(1);
        self.stats.record_pages(1);
        Ok(if corrupted { corrupt_value(v) } else { v })
    }

    /// Reads an entire page as `(coord, value)` tuples, accounting one page
    /// and `len` tuples. Trusting, like [`read`](Self::read): corrupted
    /// payloads are delivered as-is.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::OutOfBounds`] for an invalid page index,
    /// [`ArchiveError::PageIo`] when the page's fault outlasts the retry
    /// budget, and [`ArchiveError::PageQuarantined`] for quarantined pages.
    pub fn read_page(&self, page: usize) -> Result<Vec<(CellCoord, f64)>, ArchiveError> {
        Ok(self.read_page_envelope(page)?.into_payload())
    }

    /// Reads a page as a checksummed [`PageEnvelope`].
    ///
    /// The checksum models a write-time seal: it is computed over the
    /// payload as stored, so a corrupted access yields an envelope whose
    /// payload no longer matches its checksum —
    /// [`verify`](PageEnvelope::verify) returns `false`. Callers that
    /// want automatic retry-on-mismatch should use
    /// [`read_page_verified`](Self::read_page_verified) instead; this
    /// method exposes the raw envelope for layers (e.g. a replicated
    /// source) that handle verification failure themselves.
    ///
    /// # Errors
    ///
    /// Same as [`read_page`](Self::read_page).
    pub fn read_page_envelope(&self, page: usize) -> Result<PageEnvelope, ArchiveError> {
        let (r0, c0, r1, c1) = self.page_extent(page)?;
        let corrupted = self.access_page(page)?;
        let mut out = Vec::with_capacity((r1 - r0) * (c1 - c0));
        for r in r0..r1 {
            for c in c0..c1 {
                out.push((CellCoord::new(r, c), *self.grid.at(r, c)));
            }
        }
        self.stats.record_pages(1);
        self.stats.record_tuples(out.len() as u64);
        let mut env = PageEnvelope::seal(out);
        if corrupted {
            env.corrupt_payload();
        }
        Ok(env)
    }

    /// Reads a page and verifies its checksum, retrying mismatches per the
    /// store's [`RetryPolicy`](crate::fault::RetryPolicy) and feeding
    /// detected corruption into the circuit breaker.
    ///
    /// Each mismatch records one corruption and one failure in
    /// [`AccessStats`]; retries accrue backoff ticks exactly like I/O
    /// retries. Consecutive checksum failures count toward quarantine the
    /// same way I/O failures do.
    ///
    /// # Errors
    ///
    /// Everything [`read_page`](Self::read_page) returns, plus
    /// [`ArchiveError::PageCorrupt`] when every attempt (initial plus
    /// retries) failed verification or the breaker tripped mid-loop.
    pub fn read_page_verified(&self, page: usize) -> Result<Vec<(CellCoord, f64)>, ArchiveError> {
        let policy = self.resilience().retry;
        let mut retry = 0u32;
        loop {
            let env = self.read_page_envelope(page)?;
            if env.verify() {
                return Ok(env.into_payload());
            }
            let err = self.note_corruption(page);
            if self.is_quarantined(page) {
                return Err(err);
            }
            if retry < policy.max_retries {
                retry += 1;
                self.stats.record_retries(1);
                self.stats.record_ticks(policy.backoff_ticks(retry));
                continue;
            }
            return Err(err);
        }
    }

    /// Scans every page in order, calling `f` per tuple. This is the
    /// sequential-scan baseline cost model: every page, every tuple.
    ///
    /// # Errors
    ///
    /// Propagates page failures that outlast the retry budget; tuples
    /// before the failure have already been delivered to `f`.
    pub fn scan<F: FnMut(CellCoord, f64)>(&self, mut f: F) -> Result<(), ArchiveError> {
        for page in 0..self.page_count() {
            for (coord, v) in self.read_page(page)? {
                f(coord, v);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::RetryPolicy;

    fn store_4x4() -> TileStore {
        TileStore::new(Grid2::from_fn(4, 4, |r, c| (r * 4 + c) as f64), 2).unwrap()
    }

    #[test]
    fn page_layout() {
        let s = store_4x4();
        assert_eq!(s.page_count(), 4);
        assert_eq!(s.page_of(0, 0), 0);
        assert_eq!(s.page_of(0, 3), 1);
        assert_eq!(s.page_of(3, 0), 2);
        assert_eq!(s.page_of(3, 3), 3);
    }

    #[test]
    fn page_extent_matches_layout() {
        let s = store_4x4();
        assert_eq!(s.page_extent(0).unwrap(), (0, 0, 2, 2));
        assert_eq!(s.page_extent(3).unwrap(), (2, 2, 4, 4));
        assert!(s.page_extent(4).is_err());
        let ragged = TileStore::new(Grid2::from_fn(5, 3, |r, c| (r * 3 + c) as f64), 2).unwrap();
        assert_eq!(ragged.page_extent(5).unwrap(), (4, 2, 5, 3));
    }

    #[test]
    fn read_page_contents() {
        let s = store_4x4();
        let page = s.read_page(3).unwrap();
        let values: Vec<f64> = page.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, vec![10.0, 11.0, 14.0, 15.0]);
        assert_eq!(s.stats().pages_read(), 1);
        assert_eq!(s.stats().tuples_touched(), 4);
        assert!(s.read_page(4).is_err());
    }

    #[test]
    fn ragged_edges_are_partial_pages() {
        let s = TileStore::new(Grid2::from_fn(5, 3, |r, c| (r * 3 + c) as f64), 2).unwrap();
        assert_eq!(s.page_count(), 6);
        // Bottom-right page covers only cell (4, 2).
        let page = s.read_page(5).unwrap();
        assert_eq!(page.len(), 1);
        assert_eq!(page[0].0, CellCoord::new(4, 2));
        assert_eq!(page[0].1, 14.0);
    }

    #[test]
    fn scan_visits_every_tuple_once() {
        let s = store_4x4();
        let mut seen = Vec::new();
        s.scan(|coord, v| seen.push((coord, v))).unwrap();
        assert_eq!(seen.len(), 16);
        let mut coords: Vec<CellCoord> = seen.iter().map(|(c, _)| *c).collect();
        coords.sort();
        coords.dedup();
        assert_eq!(coords.len(), 16);
        assert_eq!(s.stats().pages_read(), 4);
        assert_eq!(s.stats().tuples_touched(), 16);
    }

    #[test]
    fn fault_injection_surfaces_page_io() {
        let mut s = store_4x4();
        s.fail_page(2);
        assert!(matches!(
            s.read(3, 0),
            Err(ArchiveError::PageIo { page: 2 })
        ));
        let mut count = 0;
        let err = s.scan(|_, _| count += 1).unwrap_err();
        assert_eq!(err, ArchiveError::PageIo { page: 2 });
        assert_eq!(count, 8, "pages 0 and 1 delivered before the failure");
    }

    #[test]
    fn zero_tile_rejected() {
        assert!(TileStore::new(Grid2::filled(2, 2, 0.0), 0).is_err());
    }

    #[test]
    fn transient_fault_heals_within_retry_budget() {
        let s = store_4x4()
            .with_faults(FaultProfile::new(0).transient(1, 2))
            .with_resilience(ResilienceConfig::new(RetryPolicy::retries(2), None));
        assert_eq!(s.read(0, 2).unwrap(), 2.0);
        assert_eq!(s.stats().failures(), 2);
        assert_eq!(s.stats().retries(), 2);
        assert_eq!(s.stats().pages_read(), 1, "only the success is a page read");
        // Backoff 1 + 2 ticks plus three 1-tick attempts.
        assert_eq!(s.stats().ticks_elapsed(), 3 + 3);
        // The page stays healed: no further retries needed.
        assert_eq!(s.read(0, 3).unwrap(), 3.0);
        assert_eq!(s.stats().retries(), 2);
    }

    #[test]
    fn transient_fault_outlasting_retries_is_an_error() {
        let s = store_4x4()
            .with_faults(FaultProfile::new(0).transient(1, 5))
            .with_resilience(ResilienceConfig::new(RetryPolicy::retries(2), None));
        assert_eq!(s.read(0, 2), Err(ArchiveError::PageIo { page: 1 }));
        assert_eq!(s.stats().failures(), 3, "initial attempt plus 2 retries");
        // The next read consumes the remaining two faulty accesses and
        // succeeds on its third attempt.
        assert_eq!(s.read(0, 2).unwrap(), 2.0);
    }

    #[test]
    fn quarantine_kicks_in_and_fails_fast() {
        let s = store_4x4()
            .with_faults(FaultProfile::new(0).permanent(0))
            .with_resilience(ResilienceConfig::new(RetryPolicy::none(), Some(3)));
        assert_eq!(s.read(0, 0), Err(ArchiveError::PageIo { page: 0 }));
        assert_eq!(s.read(0, 0), Err(ArchiveError::PageIo { page: 0 }));
        assert!(!s.is_quarantined(0));
        // Third consecutive failure trips the breaker.
        assert_eq!(s.read(0, 0), Err(ArchiveError::PageIo { page: 0 }));
        assert!(s.is_quarantined(0));
        assert_eq!(s.quarantined_pages().collect::<Vec<_>>(), vec![0]);
        assert_eq!(s.stats().quarantines(), 1);
        let ticks_before = s.stats().ticks_elapsed();
        let failures_before = s.stats().failures();
        // Fail fast: no attempt, no ticks, no new failures.
        assert_eq!(s.read(0, 0), Err(ArchiveError::PageQuarantined { page: 0 }));
        assert_eq!(s.stats().ticks_elapsed(), ticks_before);
        assert_eq!(s.stats().failures(), failures_before);
        // Other pages are unaffected.
        assert_eq!(s.read(0, 2).unwrap(), 2.0);
    }

    #[test]
    fn retries_count_toward_quarantine() {
        let s = store_4x4()
            .with_faults(FaultProfile::new(0).permanent(3))
            .with_resilience(ResilienceConfig::new(RetryPolicy::retries(5), Some(4)));
        // One read's retries alone trip the breaker (4 consecutive failed
        // attempts < 1 + 5 allowed attempts).
        assert_eq!(s.read(2, 2), Err(ArchiveError::PageIo { page: 3 }));
        assert!(s.is_quarantined(3));
        assert_eq!(s.stats().failures(), 4);
        assert_eq!(s.stats().retries(), 3, "no retry after the breaker trips");
    }

    #[test]
    fn injected_latency_accrues_ticks_on_success() {
        let s = store_4x4().with_faults(FaultProfile::new(0).latency(0, 9));
        assert_eq!(s.read(0, 0).unwrap(), 0.0);
        assert_eq!(s.stats().ticks_elapsed(), 10, "1 base + 9 injected");
        assert_eq!(s.read(2, 2).unwrap(), 10.0);
        assert_eq!(s.stats().ticks_elapsed(), 11, "healthy page costs 1 tick");
    }

    #[test]
    fn probabilistic_store_is_deterministic_per_seed() {
        let trace = |seed: u64| {
            let s = store_4x4().with_faults(FaultProfile::new(seed).probabilistic(0, 0.5));
            (0..32).map(|_| s.read(0, 0).is_ok()).collect::<Vec<bool>>()
        };
        assert_eq!(trace(5), trace(5));
        assert_ne!(trace(5), trace(6));
    }

    #[test]
    fn clone_snapshots_fault_state() {
        let s = store_4x4()
            .with_faults(FaultProfile::new(0).transient(1, 2))
            .with_resilience(ResilienceConfig::new(RetryPolicy::none(), None));
        assert!(s.read(0, 2).is_err());
        let t = s.clone();
        // Both observe the second (final) transient failure independently.
        assert!(s.read(0, 2).is_err());
        assert!(t.read(0, 2).is_err());
        assert!(s.read(0, 2).is_ok());
        assert!(t.read(0, 2).is_ok());
    }

    #[test]
    fn trusting_reads_deliver_corrupted_bits_silently() {
        use crate::integrity::corrupt_value;
        let s = store_4x4().with_faults(FaultProfile::new(0).corrupt(0));
        // Both cell and page reads succeed with flipped values, no errors,
        // no failure accounting — the legacy reader cannot tell.
        assert_eq!(s.read(0, 0).unwrap(), corrupt_value(0.0));
        let page = s.read_page(0).unwrap();
        assert_eq!(page[1].1, corrupt_value(1.0));
        assert_eq!(s.stats().failures(), 0);
        assert_eq!(s.stats().corruptions(), 0);
        // Healthy pages are untouched.
        assert_eq!(s.read(0, 2).unwrap(), 2.0);
    }

    #[test]
    fn envelope_seal_matches_payload_health() {
        let s = store_4x4().with_faults(FaultProfile::new(0).corrupt(3));
        assert!(s.read_page_envelope(0).unwrap().verify());
        let env = s.read_page_envelope(3).unwrap();
        assert!(!env.verify(), "corrupted page must fail verification");
    }

    #[test]
    fn verified_read_detects_corruption_and_feeds_breaker() {
        let s = store_4x4()
            .with_faults(FaultProfile::new(0).corrupt(3))
            .with_resilience(ResilienceConfig::new(RetryPolicy::retries(1), Some(3)));
        // Attempt + 1 retry both corrupt: detected, not yet quarantined.
        assert_eq!(
            s.read_page_verified(3),
            Err(ArchiveError::PageCorrupt { page: 3 })
        );
        assert_eq!(s.stats().corruptions(), 2);
        assert_eq!(s.stats().failures(), 2);
        assert!(!s.is_quarantined(3));
        // The third consecutive checksum failure trips the breaker.
        assert_eq!(
            s.read_page_verified(3),
            Err(ArchiveError::PageCorrupt { page: 3 })
        );
        assert!(s.is_quarantined(3));
        assert_eq!(s.stats().quarantines(), 1);
        assert_eq!(
            s.read_page_verified(3),
            Err(ArchiveError::PageQuarantined { page: 3 })
        );
        // Healthy pages verify cleanly through the same path.
        let page = s.read_page_verified(0).unwrap();
        assert_eq!(page[0].1, 0.0);
    }

    #[test]
    fn clear_quarantine_refetches_and_reverifies() {
        let s = store_4x4()
            .with_faults(FaultProfile::new(0).permanent(0))
            .with_resilience(ResilienceConfig::new(RetryPolicy::none(), Some(1)));
        assert!(s.read_page_verified(0).is_err());
        assert_eq!(s.quarantined_pages().collect::<Vec<_>>(), vec![0]);
        assert_eq!(
            s.read_page_verified(0),
            Err(ArchiveError::PageQuarantined { page: 0 })
        );
        let pages_before = s.stats().pages_read();
        s.clear_quarantine();
        assert_eq!(s.quarantined_pages().count(), 0);
        // The cleared page is genuinely re-fetched (and fails again for
        // real — the fault is permanent), not served from breaker state.
        assert_eq!(
            s.read_page_verified(0),
            Err(ArchiveError::PageIo { page: 0 })
        );
        assert_eq!(s.stats().pages_read(), pages_before);
        assert!(s.is_quarantined(0), "breaker re-trips on the fresh failure");
    }

    #[test]
    fn default_config_reads_cost_one_tick_per_page_access() {
        let s = store_4x4();
        s.read_page(0).unwrap();
        s.read(3, 3).unwrap();
        assert_eq!(s.stats().ticks_elapsed(), 2);
        assert_eq!(s.stats().failures(), 0);
        assert_eq!(s.stats().retries(), 0);
        assert_eq!(s.stats().quarantines(), 0);
    }
}
