//! Fault profiles, retry policies, and page quarantine for the tile store.
//!
//! The paper's archives live on late-1990s storage hierarchies — tape
//! robots, striped disks, remote mounts — where a page read can fail
//! transiently (a busy drive), permanently (a bad block), or merely run
//! slow. This module models those regimes deterministically so the
//! progressive engines can be exercised, and benchmarked, under loss:
//!
//! * [`FaultProfile`] — a seeded, per-page map of [`FaultKind`]s plus
//!   injected latency ticks. Probabilistic faults draw from the same
//!   xoshiro generator the synthetic datasets use, so a given profile
//!   replays identically across runs.
//! * [`RetryPolicy`] — a deterministic tick-based retry schedule with
//!   exponential backoff. Time is virtual: every attempt and every
//!   backoff accrues *ticks* into [`AccessStats`](crate::stats::AccessStats),
//!   which execution budgets read as a deadline clock.
//! * [`ResilienceConfig`] — retry policy plus a per-page circuit breaker:
//!   after `quarantine_after` consecutive failed attempts a page is
//!   quarantined and all later reads fail fast with
//!   [`ArchiveError::PageQuarantined`](crate::error::ArchiveError::PageQuarantined),
//!   without consuming retries or ticks.
//!
//! The default configuration (no faults, no retries, breaker disabled)
//! reproduces the pre-resilience store bit for bit.
//!
//! # Fault interaction matrix
//!
//! A page carries at most **one** [`FaultKind`] (the builder is
//! last-wins: `.corrupt(p).transient(p, 2)` leaves `p` transient, the
//! corruption is *replaced*, not stacked — see [`FaultProfile::kind_of`])
//! plus an orthogonal latency. When several mechanisms apply to the same
//! access, precedence is fixed and tested:
//!
//! | combination | behavior |
//! |---|---|
//! | Quarantine × anything | quarantine wins: the access fails fast with no attempt, **no latency ticks**, and no fault-state movement — even on a `Corruption` page. |
//! | Corruption × Latency | the access "succeeds" slow: [`AttemptOutcome::Corrupted`] carries the page's latency ticks, charged on **every** (re-)read since nothing heals. |
//! | Corruption × breaker | silent at the attempt level — the breaker only advances when a verifying reader feeds detections back through `note_checksum_failure`, which shares the same consecutive-failure run as I/O failures. |
//! | Transient × Latency | failing *and* healed accesses both pay the latency; healing is counted in accesses, not ticks. |
//! | Transient × breaker | heal progress (`failed_accesses`) survives both quarantine and [`clear_quarantine`](crate::tile::TileStore::clear_quarantine); a healed page stays healed after the breaker reopens. |
//! | Permanent/Probabilistic × Latency | identical to Transient × Latency: the latency rides on both outcomes. |
//!
//! Read-side kinds model a faulty *device*; [`WriteFault`] models a dying
//! *writer* — the process crashes mid-append and takes all volatile state
//! with it, leaving a possibly-torn byte prefix for
//! [`crate::journal::recover`] to truncate.

use crate::randx;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// How a faulty page misbehaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Every access fails, forever. Models a bad block or lost shard.
    Permanent,
    /// The first `fails_before_heal` accesses fail, then the page heals
    /// permanently. Models a device that recovers after remount.
    Transient {
        /// Number of failing accesses before the page starts succeeding.
        fails_before_heal: u32,
    },
    /// Each access independently fails with probability `p`, drawn from
    /// the profile's seeded generator. Models a flaky interconnect.
    Probabilistic {
        /// Per-access failure probability in `[0, 1]`.
        p: f64,
    },
    /// Every access *succeeds* at the I/O level but delivers a payload
    /// with flipped bits (see
    /// [`corrupt_value`](crate::integrity::corrupt_value)). The store
    /// itself cannot tell — only checksum verification catches it. Models
    /// silent bit rot on an untrusted replica.
    Corruption,
}

/// How an append-journal write dies mid-flight.
///
/// Read faults ([`FaultKind`]) model a device that misbehaves while the
/// process lives; write faults model the *process* dying while bytes are
/// in flight. All three kinds crash the writer: the journal latches a
/// crashed state, the in-memory archive is lost, and only the persisted
/// byte prefix survives for [`crate::journal::recover`] to replay.
/// Frames are numbered from 0 in append order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Frame `frame` persists only its first `persisted_bytes` bytes —
    /// the classic torn write, cut at an arbitrary byte (possibly mid
    /// header, mid value, or mid checksum).
    TornWrite {
        /// 0-based index of the append that tears.
        frame: u64,
        /// Bytes of that frame that reach stable storage.
        persisted_bytes: usize,
    },
    /// Frame `frame` persists its header and the first `tuples` payload
    /// values but never the trailing checksum — a partial record cut at
    /// a tuple boundary, so every persisted byte is individually
    /// plausible.
    PartialRecord {
        /// 0-based index of the append that is cut short.
        frame: u64,
        /// Payload values of that frame that reach stable storage.
        tuples: usize,
    },
    /// The device stops persisting at absolute journal byte `offset`;
    /// whichever append is in flight when the high-water mark is hit
    /// crashes there.
    CrashAtOffset {
        /// Absolute journal offset after which nothing persists.
        offset: usize,
    },
}

#[derive(Debug, Clone, Default)]
struct PageFaultSpec {
    kind: Option<FaultKind>,
    latency_ticks: u64,
}

/// A seeded, per-page fault assignment for a [`TileStore`](crate::tile::TileStore).
///
/// Built fluently; pages not mentioned are healthy. The seed drives only
/// probabilistic faults, so profiles without them are fully deterministic
/// regardless of seed.
///
/// # Examples
///
/// ```
/// use mbir_archive::fault::FaultProfile;
///
/// let profile = FaultProfile::new(42)
///     .permanent(3)
///     .transient(5, 2)
///     .probabilistic(7, 0.25)
///     .latency(9, 10);
/// assert_eq!(profile.faulty_pages(), vec![3, 5, 7]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultProfile {
    seed: u64,
    specs: HashMap<usize, PageFaultSpec>,
}

impl FaultProfile {
    /// An empty profile whose probabilistic draws use `seed`.
    pub fn new(seed: u64) -> Self {
        FaultProfile {
            seed,
            specs: HashMap::new(),
        }
    }

    /// A profile with no faults at all (alias of `new(0)`).
    pub fn healthy() -> Self {
        FaultProfile::default()
    }

    /// Marks `page` as permanently failing.
    pub fn permanent(mut self, page: usize) -> Self {
        self.spec_mut(page).kind = Some(FaultKind::Permanent);
        self
    }

    /// Marks `page` as failing its first `fails_before_heal` accesses and
    /// healthy afterwards.
    pub fn transient(mut self, page: usize, fails_before_heal: u32) -> Self {
        self.spec_mut(page).kind = Some(FaultKind::Transient { fails_before_heal });
        self
    }

    /// Marks `page` as failing each access with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn probabilistic(mut self, page: usize, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0, 1], got {p}"
        );
        self.spec_mut(page).kind = Some(FaultKind::Probabilistic { p });
        self
    }

    /// Marks `page` as silently corrupted: reads succeed but every payload
    /// value comes back with flipped bits. Only checksum verification
    /// ([`crate::integrity`]) detects it.
    pub fn corrupt(mut self, page: usize) -> Self {
        self.spec_mut(page).kind = Some(FaultKind::Corruption);
        self
    }

    /// Adds `ticks` of injected latency to every access of `page`, on top
    /// of the base per-access cost. Composes with any fault kind; a page
    /// with latency but no kind is slow-but-correct.
    pub fn latency(mut self, page: usize, ticks: u64) -> Self {
        self.spec_mut(page).latency_ticks = ticks;
        self
    }

    /// The fault kind currently assigned to `page`, if any. Because the
    /// builder is last-wins, this is always the *most recent* kind set —
    /// the documented way to check what a chain of builder calls left
    /// behind.
    pub fn kind_of(&self, page: usize) -> Option<FaultKind> {
        self.specs.get(&page).and_then(|s| s.kind)
    }

    /// Injected latency ticks charged on every access of `page` (0 for
    /// unmentioned pages). Latency is orthogonal to the kind and
    /// survives kind replacement.
    pub fn latency_of(&self, page: usize) -> u64 {
        self.specs.get(&page).map_or(0, |s| s.latency_ticks)
    }

    /// Pages with a fault kind assigned (latency-only pages excluded),
    /// sorted ascending.
    pub fn faulty_pages(&self) -> Vec<usize> {
        let mut pages: Vec<usize> = self
            .specs
            .iter()
            .filter(|(_, s)| s.kind.is_some())
            .map(|(&p, _)| p)
            .collect();
        pages.sort_unstable();
        pages
    }

    /// True when no page has a fault kind or injected latency.
    pub fn is_healthy(&self) -> bool {
        self.specs
            .values()
            .all(|s| s.kind.is_none() && s.latency_ticks == 0)
    }

    fn spec_mut(&mut self, page: usize) -> &mut PageFaultSpec {
        self.specs.entry(page).or_default()
    }
}

/// Deterministic retry schedule over virtual ticks.
///
/// Attempt `i` (1-based retry count) backs off for
/// `base_backoff_ticks << (i - 1)` ticks, capped at `max_backoff_ticks`.
/// The default policy performs no retries, matching the pre-resilience
/// store.
///
/// # Examples
///
/// ```
/// use mbir_archive::fault::RetryPolicy;
///
/// let policy = RetryPolicy::retries(3).with_backoff(4, 10);
/// assert_eq!(policy.backoff_ticks(1), 4);
/// assert_eq!(policy.backoff_ticks(2), 8);
/// assert_eq!(policy.backoff_ticks(3), 10); // capped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries after the initial attempt (0 = fail immediately).
    pub max_retries: u32,
    /// Backoff before the first retry, in ticks.
    pub base_backoff_ticks: u64,
    /// Upper bound on any single backoff, in ticks.
    pub max_backoff_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No retries: the first failure is final.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff_ticks: 0,
            max_backoff_ticks: 0,
        }
    }

    /// Up to `max_retries` retries with a default 1-tick base backoff
    /// capped at 64 ticks.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_backoff_ticks: 1,
            max_backoff_ticks: 64,
        }
    }

    /// Overrides the backoff schedule (builder style).
    pub fn with_backoff(mut self, base_ticks: u64, max_ticks: u64) -> Self {
        self.base_backoff_ticks = base_ticks;
        self.max_backoff_ticks = max_ticks.max(base_ticks);
        self
    }

    /// Backoff before retry number `retry` (1-based): exponential in the
    /// retry index, saturating, capped at `max_backoff_ticks`. Retry 0
    /// (the initial attempt) has no backoff.
    pub fn backoff_ticks(&self, retry: u32) -> u64 {
        if retry == 0 || self.base_backoff_ticks == 0 {
            return 0;
        }
        let shifted = self
            .base_backoff_ticks
            .checked_shl(retry - 1)
            .unwrap_or(u64::MAX);
        shifted.min(self.max_backoff_ticks)
    }

    /// Worst-case ticks a single read can spend in backoff under this
    /// policy (sum over all retries).
    pub fn worst_case_backoff_ticks(&self) -> u64 {
        (1..=self.max_retries).fold(0u64, |acc, r| acc.saturating_add(self.backoff_ticks(r)))
    }
}

/// Retry policy plus circuit breaker: how hard the store fights a fault
/// before giving up on a page.
///
/// The default (`no retries`, breaker disabled) keeps the store's
/// observable behavior identical to the pre-resilience implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceConfig {
    /// Retry schedule applied to every failed page access.
    pub retry: RetryPolicy,
    /// Consecutive failed attempts after which a page is quarantined;
    /// `None` disables the breaker.
    pub quarantine_after: Option<u32>,
}

impl ResilienceConfig {
    /// No retries, breaker disabled — the pre-resilience behavior.
    pub fn none() -> Self {
        ResilienceConfig::default()
    }

    /// A forgiving profile: `retries` retries per read and quarantine
    /// after `quarantine_after` consecutive failures.
    pub fn new(retry: RetryPolicy, quarantine_after: Option<u32>) -> Self {
        if let Some(m) = quarantine_after {
            assert!(m > 0, "quarantine threshold must be positive");
        }
        ResilienceConfig {
            retry,
            quarantine_after,
        }
    }
}

/// Per-page mutable fault state tracked by the runtime.
#[derive(Debug, Clone, Copy, Default)]
struct PageState {
    /// Failing accesses delivered so far (drives transient healing).
    failed_accesses: u32,
    /// Consecutive failed attempts (drives the circuit breaker; reset on
    /// success).
    consecutive_failures: u32,
    /// Breaker has tripped: all further reads fail fast.
    quarantined: bool,
}

/// Outcome of a single low-level access attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AttemptOutcome {
    /// The attempt succeeded, costing the given latency ticks.
    Ok {
        /// Injected latency ticks for this access.
        latency_ticks: u64,
    },
    /// The attempt failed, costing the given latency ticks.
    Failed {
        /// Injected latency ticks for this access.
        latency_ticks: u64,
    },
    /// The attempt *appeared* to succeed, but the delivered payload is
    /// silently corrupted. The breaker is not advanced here — the store
    /// has no way to know; detection is the verifying reader's job
    /// ([`note_checksum_failure`](FaultRuntime::note_checksum_failure)).
    Corrupted {
        /// Injected latency ticks for this access.
        latency_ticks: u64,
    },
    /// The page is quarantined; no attempt was made and no ticks accrue.
    Quarantined,
}

/// Mutable runtime evaluating a [`FaultProfile`]: advances transient
/// counters, draws probabilistic faults, and runs the circuit breaker.
///
/// Owned by the store behind a lock; exposed only within the crate.
#[derive(Debug, Clone)]
pub(crate) struct FaultRuntime {
    profile: FaultProfile,
    config: ResilienceConfig,
    rng: StdRng,
    states: HashMap<usize, PageState>,
}

impl FaultRuntime {
    pub(crate) fn new(profile: FaultProfile, config: ResilienceConfig) -> Self {
        let rng = StdRng::seed_from_u64(profile.seed);
        FaultRuntime {
            profile,
            config,
            rng,
            states: HashMap::new(),
        }
    }

    pub(crate) fn config(&self) -> ResilienceConfig {
        self.config
    }

    pub(crate) fn set_config(&mut self, config: ResilienceConfig) {
        self.config = config;
    }

    pub(crate) fn add_permanent(&mut self, page: usize) {
        self.profile.spec_mut(page).kind = Some(FaultKind::Permanent);
    }

    pub(crate) fn is_quarantined(&self, page: usize) -> bool {
        self.states.get(&page).is_some_and(|s| s.quarantined)
    }

    pub(crate) fn quarantined_pages(&self) -> Vec<usize> {
        let mut pages: Vec<usize> = self
            .states
            .iter()
            .filter(|(_, s)| s.quarantined)
            .map(|(&p, _)| p)
            .collect();
        pages.sort_unstable();
        pages
    }

    /// Evaluates one access attempt against the profile, updating
    /// transient counters and the circuit breaker. Returns whether the
    /// attempt succeeded and how many injected latency ticks it cost.
    ///
    /// Precedence (see the module-level interaction matrix): quarantine
    /// wins over everything and costs no ticks; corruption comes next and
    /// "succeeds" with latency but without touching transient or breaker
    /// state; the failing kinds are evaluated last, with latency riding
    /// on both outcomes.
    pub(crate) fn attempt(&mut self, page: usize) -> AttemptOutcome {
        if self.is_quarantined(page) {
            return AttemptOutcome::Quarantined;
        }
        let spec = self.profile.specs.get(&page).cloned().unwrap_or_default();
        if spec.kind == Some(FaultKind::Corruption) {
            // Silent at the I/O level: neither the transient counter nor
            // the breaker advances. Consecutive checksum failures are fed
            // back through `note_checksum_failure` by verifying readers.
            return AttemptOutcome::Corrupted {
                latency_ticks: spec.latency_ticks,
            };
        }
        let state = self.states.entry(page).or_default();
        let fails = match spec.kind {
            // Corruption returned above; the arm is kept only for match
            // exhaustiveness and is unreachable.
            None | Some(FaultKind::Corruption) => false,
            Some(FaultKind::Permanent) => true,
            Some(FaultKind::Transient { fails_before_heal }) => {
                state.failed_accesses < fails_before_heal
            }
            Some(FaultKind::Probabilistic { p }) => randx::bernoulli(&mut self.rng, p),
        };
        let state = self.states.entry(page).or_default();
        if fails {
            state.failed_accesses += 1;
            state.consecutive_failures += 1;
            if let Some(m) = self.config.quarantine_after {
                if state.consecutive_failures >= m {
                    state.quarantined = true;
                }
            }
            AttemptOutcome::Failed {
                latency_ticks: spec.latency_ticks,
            }
        } else {
            state.consecutive_failures = 0;
            AttemptOutcome::Ok {
                latency_ticks: spec.latency_ticks,
            }
        }
    }

    /// Feeds one detected checksum failure into the circuit breaker.
    ///
    /// Called by verifying readers after an access came back
    /// [`Corrupted`](AttemptOutcome::Corrupted) (the attempt itself could
    /// not know). Counts toward the same consecutive-failure run as I/O
    /// failures. Returns `true` when this failure *newly* quarantined the
    /// page.
    pub(crate) fn note_checksum_failure(&mut self, page: usize) -> bool {
        let state = self.states.entry(page).or_default();
        if state.quarantined {
            return false;
        }
        state.failed_accesses += 1;
        state.consecutive_failures += 1;
        if let Some(m) = self.config.quarantine_after {
            if state.consecutive_failures >= m {
                state.quarantined = true;
                return true;
            }
        }
        false
    }

    /// Lifts every quarantine and resets consecutive-failure runs, so the
    /// next access re-attempts (and re-verifies) the page. Transient heal
    /// progress (`failed_accesses`) is preserved: a healed page stays
    /// healed.
    pub(crate) fn clear_quarantine(&mut self) {
        for state in self.states.values_mut() {
            state.quarantined = false;
            state.consecutive_failures = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_builder_collects_faults() {
        let p = FaultProfile::new(1)
            .permanent(2)
            .transient(9, 3)
            .probabilistic(4, 0.5)
            .latency(2, 7)
            .latency(11, 5);
        assert_eq!(p.faulty_pages(), vec![2, 4, 9]);
        assert!(!p.is_healthy());
        assert!(FaultProfile::healthy().is_healthy());
        // Latency-only pages are not "faulty" but make the profile unhealthy.
        assert!(!FaultProfile::new(0).latency(1, 1).is_healthy());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn probabilistic_rejects_bad_p() {
        let _ = FaultProfile::new(0).probabilistic(0, 1.5);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy::retries(5).with_backoff(2, 16);
        assert_eq!(p.backoff_ticks(0), 0);
        assert_eq!(p.backoff_ticks(1), 2);
        assert_eq!(p.backoff_ticks(2), 4);
        assert_eq!(p.backoff_ticks(3), 8);
        assert_eq!(p.backoff_ticks(4), 16);
        assert_eq!(p.backoff_ticks(5), 16);
        assert_eq!(p.worst_case_backoff_ticks(), 2 + 4 + 8 + 16 + 16);
        assert_eq!(RetryPolicy::none().backoff_ticks(3), 0);
    }

    #[test]
    fn backoff_shift_saturates() {
        let p = RetryPolicy::retries(80).with_backoff(1, u64::MAX);
        assert_eq!(p.backoff_ticks(60), 1u64 << 59);
        // Shift count beyond the word size saturates at the cap instead of
        // wrapping.
        assert_eq!(p.backoff_ticks(80), u64::MAX);
    }

    #[test]
    fn transient_fault_heals_after_n_accesses() {
        let profile = FaultProfile::new(0).transient(3, 2);
        let mut rt = FaultRuntime::new(profile, ResilienceConfig::none());
        assert!(matches!(rt.attempt(3), AttemptOutcome::Failed { .. }));
        assert!(matches!(rt.attempt(3), AttemptOutcome::Failed { .. }));
        assert!(matches!(rt.attempt(3), AttemptOutcome::Ok { .. }));
        assert!(matches!(rt.attempt(3), AttemptOutcome::Ok { .. }));
        // Healthy pages never fail.
        assert!(matches!(rt.attempt(0), AttemptOutcome::Ok { .. }));
    }

    #[test]
    fn breaker_trips_after_threshold_and_resets_on_success() {
        let profile = FaultProfile::new(0).transient(1, 2).permanent(2);
        let cfg = ResilienceConfig::new(RetryPolicy::none(), Some(3));
        let mut rt = FaultRuntime::new(profile, cfg);
        // Transient heals before the breaker trips; success resets the run.
        assert!(matches!(rt.attempt(1), AttemptOutcome::Failed { .. }));
        assert!(matches!(rt.attempt(1), AttemptOutcome::Failed { .. }));
        assert!(matches!(rt.attempt(1), AttemptOutcome::Ok { .. }));
        assert!(!rt.is_quarantined(1));
        // Permanent fault trips it on the third consecutive failure.
        assert!(matches!(rt.attempt(2), AttemptOutcome::Failed { .. }));
        assert!(matches!(rt.attempt(2), AttemptOutcome::Failed { .. }));
        assert!(!rt.is_quarantined(2));
        assert!(matches!(rt.attempt(2), AttemptOutcome::Failed { .. }));
        assert!(rt.is_quarantined(2));
        assert!(matches!(rt.attempt(2), AttemptOutcome::Quarantined));
        assert_eq!(rt.quarantined_pages(), vec![2]);
    }

    #[test]
    fn probabilistic_faults_are_seed_deterministic() {
        let run = |seed| {
            let profile = FaultProfile::new(seed).probabilistic(0, 0.4);
            let mut rt = FaultRuntime::new(profile, ResilienceConfig::none());
            (0..64)
                .map(|_| matches!(rt.attempt(0), AttemptOutcome::Failed { .. }))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(9), run(9), "same seed, same trace");
        assert_ne!(run(9), run(10), "different seed, different trace");
        let fails = run(9).iter().filter(|&&f| f).count();
        assert!((10..=40).contains(&fails), "p=0.4 of 64: {fails}");
    }

    #[test]
    fn corruption_is_silent_at_the_attempt_level() {
        let profile = FaultProfile::new(0).corrupt(4).latency(4, 6);
        let cfg = ResilienceConfig::new(RetryPolicy::none(), Some(1));
        let mut rt = FaultRuntime::new(profile, cfg);
        // Corrupted attempts never advance the breaker, no matter how many.
        for _ in 0..5 {
            assert_eq!(
                rt.attempt(4),
                AttemptOutcome::Corrupted { latency_ticks: 6 }
            );
        }
        assert!(!rt.is_quarantined(4));
    }

    #[test]
    fn checksum_failures_trip_the_breaker() {
        let profile = FaultProfile::new(0).corrupt(4);
        let cfg = ResilienceConfig::new(RetryPolicy::none(), Some(3));
        let mut rt = FaultRuntime::new(profile, cfg);
        assert!(!rt.note_checksum_failure(4));
        assert!(!rt.note_checksum_failure(4));
        // Third consecutive detected corruption newly quarantines the page…
        assert!(rt.note_checksum_failure(4));
        assert!(rt.is_quarantined(4));
        // …and further reports are not "new".
        assert!(!rt.note_checksum_failure(4));
        assert_eq!(rt.attempt(4), AttemptOutcome::Quarantined);
    }

    #[test]
    fn clear_quarantine_reopens_pages_but_keeps_heal_progress() {
        let profile = FaultProfile::new(0).permanent(1).transient(2, 2);
        let cfg = ResilienceConfig::new(RetryPolicy::none(), Some(2));
        let mut rt = FaultRuntime::new(profile, cfg);
        // Trip both breakers (the transient page fails twice before healing).
        for _ in 0..2 {
            let _ = rt.attempt(1);
            let _ = rt.attempt(2);
        }
        assert_eq!(rt.quarantined_pages(), vec![1, 2]);
        rt.clear_quarantine();
        assert_eq!(rt.quarantined_pages(), Vec::<usize>::new());
        // The permanent page is re-attempted (and fails again for real);
        // the transient page already burned its failures and now succeeds.
        assert!(matches!(rt.attempt(1), AttemptOutcome::Failed { .. }));
        assert!(matches!(rt.attempt(2), AttemptOutcome::Ok { .. }));
    }

    #[test]
    fn latency_applies_to_successes_too() {
        let profile = FaultProfile::new(0).latency(5, 9);
        let mut rt = FaultRuntime::new(profile, ResilienceConfig::none());
        assert_eq!(rt.attempt(5), AttemptOutcome::Ok { latency_ticks: 9 });
        assert_eq!(rt.attempt(6), AttemptOutcome::Ok { latency_ticks: 0 });
    }

    // ---- interaction matrix (Corruption × Latency × Transient) ----

    #[test]
    fn builder_kind_is_last_wins_and_latency_survives() {
        let p = FaultProfile::new(0)
            .corrupt(3)
            .latency(3, 5)
            .transient(3, 2);
        // The corruption was *replaced* by the transient kind, not stacked…
        assert_eq!(
            p.kind_of(3),
            Some(FaultKind::Transient {
                fails_before_heal: 2
            })
        );
        // …while the orthogonal latency survived the replacement.
        assert_eq!(p.latency_of(3), 5);
        assert_eq!(p.kind_of(0), None);
        assert_eq!(p.latency_of(0), 0);
    }

    #[test]
    fn transient_with_latency_charges_failures_and_heals_alike() {
        let profile = FaultProfile::new(0).transient(2, 2).latency(2, 7);
        let mut rt = FaultRuntime::new(profile, ResilienceConfig::none());
        // Failing accesses pay the latency…
        assert_eq!(rt.attempt(2), AttemptOutcome::Failed { latency_ticks: 7 });
        assert_eq!(rt.attempt(2), AttemptOutcome::Failed { latency_ticks: 7 });
        // …and so does the healed page: latency is a device property, not
        // a failure property.
        assert_eq!(rt.attempt(2), AttemptOutcome::Ok { latency_ticks: 7 });
    }

    #[test]
    fn quarantine_beats_corruption_and_costs_no_ticks() {
        let profile = FaultProfile::new(0).corrupt(4).latency(4, 9);
        let cfg = ResilienceConfig::new(RetryPolicy::none(), Some(2));
        let mut rt = FaultRuntime::new(profile, cfg);
        // Two detected corruptions trip the breaker…
        assert!(!rt.note_checksum_failure(4));
        assert!(rt.note_checksum_failure(4));
        // …after which even the slow corrupt page fails fast, latency-free.
        assert_eq!(rt.attempt(4), AttemptOutcome::Quarantined);
        // Reopening the page re-exposes the corruption (with its latency):
        // clearing quarantine never silently "heals" bit rot.
        rt.clear_quarantine();
        assert_eq!(
            rt.attempt(4),
            AttemptOutcome::Corrupted { latency_ticks: 9 }
        );
    }

    #[test]
    fn corruption_never_advances_transient_style_heal_state() {
        // A corrupt page re-corrupts forever: unlike Transient, repeated
        // accesses do not burn toward a heal, and the runtime tracks no
        // failed accesses for it at the attempt level.
        let profile = FaultProfile::new(0).corrupt(1);
        let mut rt =
            FaultRuntime::new(profile, ResilienceConfig::new(RetryPolicy::none(), Some(8)));
        for _ in 0..16 {
            assert!(matches!(rt.attempt(1), AttemptOutcome::Corrupted { .. }));
        }
        assert!(
            !rt.is_quarantined(1),
            "attempts alone never trip the breaker"
        );
    }
}
