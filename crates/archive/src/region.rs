//! Polygon regions and demographic weight layers.
//!
//! §4.1 weighs each location's error cost by "the relative importance of
//! the risk at that location, such as the population of the location".
//! This module supplies the missing piece: vector regions (counties,
//! management zones) carrying attributes, rasterized into per-cell weight
//! grids aligned with the model's risk surface.

use crate::error::ArchiveError;
use crate::extent::GeoExtent;
use crate::grid::Grid2;
use std::fmt;

/// A simple polygon in map coordinates (implicitly closed; no holes).
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<(f64, f64)>,
}

impl Polygon {
    /// Creates a polygon from at least three vertices.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::EmptyDimension`] with fewer than 3 vertices
    /// or non-finite coordinates.
    pub fn new(vertices: Vec<(f64, f64)>) -> Result<Self, ArchiveError> {
        if vertices.len() < 3
            || vertices
                .iter()
                .any(|(x, y)| !x.is_finite() || !y.is_finite())
        {
            return Err(ArchiveError::EmptyDimension);
        }
        Ok(Polygon { vertices })
    }

    /// An axis-aligned rectangle polygon.
    pub fn rectangle(extent: &GeoExtent) -> Self {
        Polygon {
            vertices: vec![
                (extent.west(), extent.south()),
                (extent.east(), extent.south()),
                (extent.east(), extent.north()),
                (extent.west(), extent.north()),
            ],
        }
    }

    /// The vertices.
    pub fn vertices(&self) -> &[(f64, f64)] {
        &self.vertices
    }

    /// Point-in-polygon by the even–odd (ray casting) rule. Boundary points
    /// may fall on either side, which is acceptable for rasterization.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let (xi, yi) = self.vertices[i];
            let (xj, yj) = self.vertices[j];
            if ((yi > y) != (yj > y)) && (x < (xj - xi) * (y - yi) / (yj - yi) + xi) {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// The bounding extent.
    pub fn extent(&self) -> GeoExtent {
        let (mut w, mut s) = self.vertices[0];
        let (mut e, mut n) = self.vertices[0];
        for &(x, y) in &self.vertices[1..] {
            w = w.min(x);
            e = e.max(x);
            s = s.min(y);
            n = n.max(y);
        }
        GeoExtent::new(w, s, e, n)
    }

    /// Signed area (positive for counter-clockwise winding).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let (x1, y1) = self.vertices[i];
            let (x2, y2) = self.vertices[(i + 1) % n];
            acc += x1 * y2 - x2 * y1;
        }
        acc / 2.0
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Polygon[{} vertices, {}]",
            self.vertices.len(),
            self.extent()
        )
    }
}

/// A named region: polygon plus a scalar weight (population, priority).
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Region name.
    pub name: String,
    /// Region geometry.
    pub polygon: Polygon,
    /// Weight density applied to cells inside (e.g. persons per cell).
    pub weight: f64,
}

/// A set of regions rasterizable into a §4.1 weight surface.
#[derive(Debug, Clone, Default)]
pub struct RegionLayer {
    regions: Vec<Region>,
    background_weight: f64,
}

impl RegionLayer {
    /// Creates an empty layer with background weight 0.
    pub fn new() -> Self {
        RegionLayer::default()
    }

    /// Sets the weight of cells outside every region (builder style).
    pub fn with_background(mut self, weight: f64) -> Self {
        self.background_weight = weight.max(0.0);
        self
    }

    /// Adds a region.
    pub fn push(&mut self, region: Region) {
        self.regions.push(region);
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the layer has no regions.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Rasterizes into a `rows x cols` weight grid over `extent`:
    /// each cell takes the weight of the *last* containing region
    /// (later-added regions overlay earlier ones), or the background.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0 || cols == 0`.
    pub fn rasterize(&self, extent: &GeoExtent, rows: usize, cols: usize) -> Grid2<f64> {
        assert!(rows > 0 && cols > 0, "raster dimensions must be non-zero");
        Grid2::from_fn(rows, cols, |r, c| {
            let (x, y) = extent.cell_center(crate::extent::CellCoord::new(r, c), rows, cols);
            self.regions
                .iter()
                .rev()
                .find(|region| region.polygon.contains(x, y))
                .map(|region| region.weight)
                .unwrap_or(self.background_weight)
        })
        .with_extent(*extent)
    }

    /// The region containing `(x, y)`, if any (topmost wins).
    pub fn region_at(&self, x: f64, y: f64) -> Option<&Region> {
        self.regions.iter().rev().find(|r| r.polygon.contains(x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Polygon {
        Polygon::new(vec![(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)]).unwrap()
    }

    #[test]
    fn polygon_validation() {
        assert!(Polygon::new(vec![(0.0, 0.0), (1.0, 1.0)]).is_err());
        assert!(Polygon::new(vec![(0.0, 0.0), (1.0, 1.0), (f64::NAN, 0.0)]).is_err());
        assert!(triangle().signed_area() > 0.0);
        assert_eq!(triangle().signed_area(), 8.0);
    }

    #[test]
    fn point_in_triangle() {
        let t = triangle();
        assert!(t.contains(1.0, 1.0));
        assert!(!t.contains(3.0, 3.0));
        assert!(!t.contains(-0.1, 0.5));
        assert!(!t.contains(5.0, 0.0));
    }

    #[test]
    fn point_in_concave_polygon() {
        // A "U" shape: the notch must be outside.
        let u = Polygon::new(vec![
            (0.0, 0.0),
            (6.0, 0.0),
            (6.0, 6.0),
            (4.0, 6.0),
            (4.0, 2.0),
            (2.0, 2.0),
            (2.0, 6.0),
            (0.0, 6.0),
        ])
        .unwrap();
        assert!(u.contains(1.0, 3.0), "left arm");
        assert!(u.contains(5.0, 3.0), "right arm");
        assert!(u.contains(3.0, 1.0), "base");
        assert!(!u.contains(3.0, 4.0), "notch is outside");
    }

    #[test]
    fn rectangle_polygon_matches_extent() {
        let e = GeoExtent::new(1.0, 2.0, 5.0, 8.0);
        let p = Polygon::rectangle(&e);
        assert!(p.contains(3.0, 5.0));
        assert!(!p.contains(0.0, 5.0));
        assert_eq!(p.extent(), e);
    }

    #[test]
    fn rasterize_weights_with_overlay() {
        let extent = GeoExtent::new(0.0, 0.0, 10.0, 10.0);
        let mut layer = RegionLayer::new().with_background(1.0);
        layer.push(Region {
            name: "county".into(),
            polygon: Polygon::rectangle(&GeoExtent::new(0.0, 0.0, 10.0, 5.0)),
            weight: 10.0,
        });
        layer.push(Region {
            name: "city".into(),
            polygon: Polygon::rectangle(&GeoExtent::new(0.0, 0.0, 5.0, 2.5)),
            weight: 100.0,
        });
        let weights = layer.rasterize(&extent, 8, 8);
        // Top row (north) is background.
        assert_eq!(*weights.at(0, 0), 1.0);
        // Bottom-left cell is the city overlay, not the county.
        assert_eq!(*weights.at(7, 0), 100.0);
        // Bottom-right is county only.
        assert_eq!(*weights.at(7, 7), 10.0);
        assert_eq!(
            layer.region_at(1.0, 1.0).map(|r| r.name.as_str()),
            Some("city")
        );
        assert_eq!(
            layer.region_at(9.0, 1.0).map(|r| r.name.as_str()),
            Some("county")
        );
        assert!(layer.region_at(9.0, 9.0).is_none());
    }
}
