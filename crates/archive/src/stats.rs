//! Access accounting: the paper's speedups are "data touched" ratios.
//!
//! Every retrieval path in the repository reports how many tuples (or
//! pixels) it evaluated and how many pages it pulled from the store. The
//! speedup of method A over baseline B is then
//! `B.tuples_touched / A.tuples_touched` (and likewise for pages), exactly
//! the metric the Onion evaluation quotes (13,000x for top-1 etc.).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe access counters.
///
/// Cloning an `AccessStats` yields a handle to the *same* counters, so one
/// instance can be threaded through a store and its readers.
///
/// # Examples
///
/// ```
/// use mbir_archive::stats::AccessStats;
///
/// let stats = AccessStats::new();
/// stats.record_tuples(10);
/// stats.record_pages(2);
/// assert_eq!(stats.tuples_touched(), 10);
/// assert_eq!(stats.pages_read(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AccessStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    tuples: AtomicU64,
    pages: AtomicU64,
    model_evals: AtomicU64,
    retries: AtomicU64,
    failures: AtomicU64,
    quarantines: AtomicU64,
    corruptions: AtomicU64,
    ticks: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_dedup_waits: AtomicU64,
    hedges: AtomicU64,
    cache_invalidations: AtomicU64,
    appended_pages_seen: AtomicU64,
}

impl AccessStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        AccessStats::default()
    }

    /// Records `n` tuples (pixels, rows, samples) touched.
    pub fn record_tuples(&self, n: u64) {
        self.inner.tuples.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` pages read from backing storage.
    pub fn record_pages(&self, n: u64) {
        self.inner.pages.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` full model evaluations.
    pub fn record_model_evals(&self, n: u64) {
        self.inner.model_evals.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` retried page accesses.
    pub fn record_retries(&self, n: u64) {
        self.inner.retries.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` failed page-access attempts.
    pub fn record_failures(&self, n: u64) {
        self.inner.failures.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` pages newly quarantined by the circuit breaker.
    pub fn record_quarantines(&self, n: u64) {
        self.inner.quarantines.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` page payloads that failed checksum verification
    /// (detected silent corruption).
    pub fn record_corruptions(&self, n: u64) {
        self.inner.corruptions.fetch_add(n, Ordering::Relaxed);
    }

    /// Advances the virtual I/O clock by `n` ticks (page access costs,
    /// injected latency, retry backoff).
    pub fn record_ticks(&self, n: u64) {
        self.inner.ticks.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` page reads served from a cache without touching the
    /// backing store.
    pub fn record_cache_hits(&self, n: u64) {
        self.inner.cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` page reads that missed a cache and went to the backing
    /// store.
    pub fn record_cache_misses(&self, n: u64) {
        self.inner.cache_misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` in-flight dedup waits: cache lookups that found the
    /// page already being materialized by another reader and blocked for
    /// the shared result instead of issuing a duplicate store read. (The
    /// lookup is still counted as a hit once the page arrives — dedup
    /// waits are an overlay, not a third outcome.)
    pub fn record_cache_dedup_waits(&self, n: u64) {
        self.inner.cache_dedup_waits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` hedged page reads: duplicate requests issued to a
    /// backup replica because the primary exceeded its hedge delay.
    pub fn record_hedges(&self, n: u64) {
        self.inner.hedges.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` cached pages dropped because a snapshot-epoch advance
    /// made them stale (append-side cache invalidation).
    pub fn record_cache_invalidations(&self, n: u64) {
        self.inner
            .cache_invalidations
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` page reads that touched pages committed by an append
    /// (pages past the reader's original high-water mark).
    pub fn record_appended_pages_seen(&self, n: u64) {
        self.inner
            .appended_pages_seen
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Tuples touched so far.
    pub fn tuples_touched(&self) -> u64 {
        self.inner.tuples.load(Ordering::Relaxed)
    }

    /// Pages read so far.
    pub fn pages_read(&self) -> u64 {
        self.inner.pages.load(Ordering::Relaxed)
    }

    /// Model evaluations so far.
    pub fn model_evals(&self) -> u64 {
        self.inner.model_evals.load(Ordering::Relaxed)
    }

    /// Page-access retries so far.
    pub fn retries(&self) -> u64 {
        self.inner.retries.load(Ordering::Relaxed)
    }

    /// Failed page-access attempts so far.
    pub fn failures(&self) -> u64 {
        self.inner.failures.load(Ordering::Relaxed)
    }

    /// Pages quarantined so far.
    pub fn quarantines(&self) -> u64 {
        self.inner.quarantines.load(Ordering::Relaxed)
    }

    /// Checksum verification failures so far.
    pub fn corruptions(&self) -> u64 {
        self.inner.corruptions.load(Ordering::Relaxed)
    }

    /// Virtual I/O clock: total ticks accrued by page accesses, injected
    /// latency, and retry backoff. Execution budgets use this as their
    /// deadline clock.
    pub fn ticks_elapsed(&self) -> u64 {
        self.inner.ticks.load(Ordering::Relaxed)
    }

    /// Cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.inner.cache_hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.inner.cache_misses.load(Ordering::Relaxed)
    }

    /// In-flight dedup waits so far (see
    /// [`record_cache_dedup_waits`](Self::record_cache_dedup_waits)).
    pub fn cache_dedup_waits(&self) -> u64 {
        self.inner.cache_dedup_waits.load(Ordering::Relaxed)
    }

    /// Hedged page reads so far.
    pub fn hedges(&self) -> u64 {
        self.inner.hedges.load(Ordering::Relaxed)
    }

    /// Cached pages invalidated by snapshot-epoch advances so far.
    pub fn cache_invalidations(&self) -> u64 {
        self.inner.cache_invalidations.load(Ordering::Relaxed)
    }

    /// Appended (post-high-water-mark) pages seen by readers so far.
    pub fn appended_pages_seen(&self) -> u64 {
        self.inner.appended_pages_seen.load(Ordering::Relaxed)
    }

    /// Fraction of cached lookups served from the cache, or `None` when no
    /// cached lookups happened at all.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let hits = self.cache_hits();
        let total = hits + self.cache_misses();
        if total == 0 {
            return None;
        }
        Some(hits as f64 / total as f64)
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.inner.tuples.store(0, Ordering::Relaxed);
        self.inner.pages.store(0, Ordering::Relaxed);
        self.inner.model_evals.store(0, Ordering::Relaxed);
        self.inner.retries.store(0, Ordering::Relaxed);
        self.inner.failures.store(0, Ordering::Relaxed);
        self.inner.quarantines.store(0, Ordering::Relaxed);
        self.inner.corruptions.store(0, Ordering::Relaxed);
        self.inner.ticks.store(0, Ordering::Relaxed);
        self.inner.cache_hits.store(0, Ordering::Relaxed);
        self.inner.cache_misses.store(0, Ordering::Relaxed);
        self.inner.cache_dedup_waits.store(0, Ordering::Relaxed);
        self.inner.hedges.store(0, Ordering::Relaxed);
        self.inner.cache_invalidations.store(0, Ordering::Relaxed);
        self.inner.appended_pages_seen.store(0, Ordering::Relaxed);
    }

    /// Speedup of `self` relative to `baseline` in tuples touched
    /// (`baseline / self`); `None` when `self` touched nothing.
    pub fn tuple_speedup_vs(&self, baseline: &AccessStats) -> Option<f64> {
        let own = self.tuples_touched();
        if own == 0 {
            return None;
        }
        Some(baseline.tuples_touched() as f64 / own as f64)
    }

    /// Simulated wall time under an I/O cost model — the page-access-based
    /// accounting the paper's era reported (disk seeks dominate, per-tuple
    /// CPU is cheap).
    pub fn simulated_ms(&self, model: &IoModel) -> f64 {
        self.pages_read() as f64 * model.page_ms + self.tuples_touched() as f64 * model.tuple_ms
    }
}

/// A simple I/O cost model: milliseconds per page read and per tuple
/// processed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoModel {
    /// Cost of fetching one page (seek + transfer).
    pub page_ms: f64,
    /// CPU cost of processing one tuple.
    pub tuple_ms: f64,
}

impl IoModel {
    /// A late-1990s disk profile (≈10 ms seek+read per page, 1 µs/tuple) —
    /// the regime in which the paper's page-count speedups were measured.
    pub fn disk_1999() -> Self {
        IoModel {
            page_ms: 10.0,
            tuple_ms: 0.001,
        }
    }

    /// A modern NVMe-like profile.
    pub fn nvme() -> Self {
        IoModel {
            page_ms: 0.05,
            tuple_ms: 0.0002,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = AccessStats::new();
        s.record_tuples(5);
        s.record_tuples(7);
        s.record_pages(1);
        s.record_model_evals(3);
        assert_eq!(s.tuples_touched(), 12);
        assert_eq!(s.pages_read(), 1);
        assert_eq!(s.model_evals(), 3);
        s.reset();
        assert_eq!(s.tuples_touched(), 0);
        assert_eq!(s.pages_read(), 0);
        assert_eq!(s.model_evals(), 0);
    }

    #[test]
    fn clones_share_counters() {
        let a = AccessStats::new();
        let b = a.clone();
        b.record_tuples(4);
        assert_eq!(a.tuples_touched(), 4);
    }

    #[test]
    fn speedup_ratio() {
        let scan = AccessStats::new();
        scan.record_tuples(10_000);
        let indexed = AccessStats::new();
        indexed.record_tuples(10);
        assert_eq!(indexed.tuple_speedup_vs(&scan), Some(1000.0));
        let empty = AccessStats::new();
        assert_eq!(empty.tuple_speedup_vs(&scan), None);
    }

    #[test]
    fn simulated_time_is_page_dominated_on_disk() {
        let s = AccessStats::new();
        s.record_pages(100);
        s.record_tuples(100 * 256);
        let disk = s.simulated_ms(&IoModel::disk_1999());
        // 100 pages x 10ms = 1000ms; tuples contribute ~26ms.
        assert!((disk - 1025.6).abs() < 1.0, "disk {disk}");
        let nvme = s.simulated_ms(&IoModel::nvme());
        assert!(nvme < disk / 50.0, "nvme {nvme} vs disk {disk}");
    }

    #[test]
    fn corruption_counter_accumulates_and_resets() {
        let s = AccessStats::new();
        s.record_corruptions(2);
        s.record_corruptions(1);
        assert_eq!(s.corruptions(), 3);
        s.reset();
        assert_eq!(s.corruptions(), 0);
    }

    #[test]
    fn cache_counters_and_hit_rate() {
        let s = AccessStats::new();
        assert_eq!(s.cache_hit_rate(), None);
        s.record_cache_misses(1);
        s.record_cache_hits(3);
        s.record_cache_dedup_waits(2);
        assert_eq!(s.cache_hits(), 3);
        assert_eq!(s.cache_misses(), 1);
        assert_eq!(s.cache_dedup_waits(), 2);
        assert_eq!(s.cache_hit_rate(), Some(0.75));
        s.reset();
        assert_eq!(s.cache_hits(), 0);
        assert_eq!(s.cache_dedup_waits(), 0);
        assert_eq!(s.cache_hit_rate(), None);
    }

    #[test]
    fn append_counters_accumulate_and_reset() {
        let s = AccessStats::new();
        s.record_cache_invalidations(3);
        s.record_appended_pages_seen(2);
        s.record_appended_pages_seen(5);
        assert_eq!(s.cache_invalidations(), 3);
        assert_eq!(s.appended_pages_seen(), 7);
        s.reset();
        assert_eq!(s.cache_invalidations(), 0);
        assert_eq!(s.appended_pages_seen(), 0);
    }

    #[test]
    fn counters_are_thread_safe() {
        let s = AccessStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = s.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        h.record_tuples(1);
                    }
                });
            }
        });
        assert_eq!(s.tuples_touched(), 4000);
    }
}
