//! Regularly-sampled time series (weather feeds, well production, sensors).

use crate::error::ArchiveError;
use std::fmt;

/// A regularly-sampled time series with a step size in days.
///
/// Index 0 corresponds to `start_day`; sample `i` is at day
/// `start_day + i * step_days`.
///
/// # Examples
///
/// ```
/// use mbir_archive::series::TimeSeries;
///
/// let ts = TimeSeries::new(0, 1, vec![1.0, 2.0, 3.0]).unwrap();
/// assert_eq!(ts.len(), 3);
/// assert_eq!(ts.day_of(2), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries<T> {
    start_day: i64,
    step_days: u32,
    values: Vec<T>,
}

impl<T> TimeSeries<T> {
    /// Creates a series.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::EmptyDimension`] if `step_days == 0` or
    /// `values` is empty.
    pub fn new(start_day: i64, step_days: u32, values: Vec<T>) -> Result<Self, ArchiveError> {
        if step_days == 0 || values.is_empty() {
            return Err(ArchiveError::EmptyDimension);
        }
        Ok(TimeSeries {
            start_day,
            step_days,
            values,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty (never true for a constructed series).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// First sample's day number.
    pub fn start_day(&self) -> i64 {
        self.start_day
    }

    /// Sampling step in days.
    pub fn step_days(&self) -> u32 {
        self.step_days
    }

    /// Day number of sample `i`.
    pub fn day_of(&self, i: usize) -> i64 {
        self.start_day + (i as i64) * i64::from(self.step_days)
    }

    /// Sample at index `i`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::OutOfBounds`] past the end.
    pub fn get(&self, i: usize) -> Result<&T, ArchiveError> {
        self.values.get(i).ok_or(ArchiveError::OutOfBounds {
            row: i,
            col: 0,
            rows: self.values.len(),
            cols: 1,
        })
    }

    /// Borrow of all samples.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Iterator over `(day, &value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (i64, &T)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (self.day_of(i), v))
    }

    /// Applies `f` to every sample, keeping the time axis.
    pub fn map<U, F: FnMut(&T) -> U>(&self, f: F) -> TimeSeries<U> {
        TimeSeries {
            start_day: self.start_day,
            step_days: self.step_days,
            values: self.values.iter().map(f).collect(),
        }
    }

    /// A sub-series covering samples `[from, to)` (clamped).
    ///
    /// Returns `None` for an empty result.
    pub fn slice(&self, from: usize, to: usize) -> Option<TimeSeries<T>>
    where
        T: Clone,
    {
        let to = to.min(self.values.len());
        if from >= to {
            return None;
        }
        Some(TimeSeries {
            start_day: self.day_of(from),
            step_days: self.step_days,
            values: self.values[from..to].to_vec(),
        })
    }
}

impl TimeSeries<f64> {
    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Block-averaged coarsening by `factor` (last partial block averaged
    /// too): the 1-D multi-resolution representation used by progressive
    /// series models.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn coarsen(&self, factor: usize) -> TimeSeries<f64> {
        assert!(factor > 0, "coarsening factor must be non-zero");
        if factor == 1 {
            return self.clone();
        }
        let values: Vec<f64> = self
            .values
            .chunks(factor)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        TimeSeries {
            start_day: self.start_day,
            step_days: self.step_days * factor as u32,
            values,
        }
    }
}

impl<T: fmt::Display> fmt::Display for TimeSeries<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TimeSeries[{} samples from day {} step {}d]",
            self.values.len(),
            self.start_day,
            self.step_days
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates() {
        assert!(TimeSeries::<f64>::new(0, 0, vec![1.0]).is_err());
        assert!(TimeSeries::<f64>::new(0, 1, vec![]).is_err());
        assert!(TimeSeries::new(5, 2, vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn day_mapping() {
        let ts = TimeSeries::new(10, 3, vec![0.0; 4]).unwrap();
        assert_eq!(ts.day_of(0), 10);
        assert_eq!(ts.day_of(3), 19);
        let days: Vec<i64> = ts.iter().map(|(d, _)| d).collect();
        assert_eq!(days, vec![10, 13, 16, 19]);
    }

    #[test]
    fn get_bounds() {
        let ts = TimeSeries::new(0, 1, vec![1, 2]).unwrap();
        assert_eq!(*ts.get(1).unwrap(), 2);
        assert!(ts.get(2).is_err());
    }

    #[test]
    fn slice_clamps_and_retimes() {
        let ts = TimeSeries::new(0, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let s = ts.slice(1, 99).unwrap();
        assert_eq!(s.values(), &[2.0, 3.0, 4.0]);
        assert_eq!(s.start_day(), 2);
        assert!(ts.slice(3, 3).is_none());
    }

    #[test]
    fn coarsen_averages_blocks() {
        let ts = TimeSeries::new(0, 1, vec![1.0, 3.0, 5.0, 7.0, 9.0]).unwrap();
        let c = ts.coarsen(2);
        assert_eq!(c.values(), &[2.0, 6.0, 9.0]);
        assert_eq!(c.step_days(), 2);
        assert!((ts.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn coarsen_by_one_is_identity() {
        let ts = TimeSeries::new(0, 1, vec![1.0, 2.0]).unwrap();
        assert_eq!(ts.coarsen(1), ts);
    }
}
