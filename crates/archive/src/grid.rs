//! Dense 2-D raster grid, the workhorse container for imagery and DEMs.

use crate::error::ArchiveError;
use crate::extent::{CellCoord, GeoExtent};
use std::fmt;

/// A dense, row-major 2-D grid of values with an associated geographic
/// extent.
///
/// `Grid2` is the raw-data (abstraction level 0) representation of every
/// raster modality in the archive: individual satellite bands, elevation,
/// derived feature planes, classification maps, and planted risk surfaces.
///
/// # Examples
///
/// ```
/// use mbir_archive::grid::Grid2;
///
/// let mut g = Grid2::filled(4, 4, 0.0f64);
/// g.set(1, 2, 7.5).unwrap();
/// assert_eq!(*g.get(1, 2).unwrap(), 7.5);
/// assert_eq!(g.len(), 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2<T> {
    rows: usize,
    cols: usize,
    extent: GeoExtent,
    data: Vec<T>,
}

impl<T> Grid2<T> {
    /// Creates a grid from a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::EmptyDimension`] if `rows == 0 || cols == 0`,
    /// and [`ArchiveError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, ArchiveError> {
        if rows == 0 || cols == 0 {
            return Err(ArchiveError::EmptyDimension);
        }
        if data.len() != rows * cols {
            return Err(ArchiveError::DimensionMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Grid2 {
            rows,
            cols,
            extent: GeoExtent::unit(),
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the grid has zero cells (never true for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The geographic extent this grid covers.
    pub fn extent(&self) -> &GeoExtent {
        &self.extent
    }

    /// Sets the geographic extent (builder style).
    pub fn with_extent(mut self, extent: GeoExtent) -> Self {
        self.extent = extent;
        self
    }

    /// Borrow of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the grid, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Value at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::OutOfBounds`] when outside the grid.
    pub fn get(&self, row: usize, col: usize) -> Result<&T, ArchiveError> {
        if row >= self.rows || col >= self.cols {
            return Err(self.oob(row, col));
        }
        Ok(&self.data[row * self.cols + col])
    }

    /// Value at `(row, col)` without bounds checking against the error type;
    /// panics on out-of-range like slice indexing.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()` or `col >= cols()`.
    pub fn at(&self, row: usize, col: usize) -> &T {
        assert!(
            row < self.rows && col < self.cols,
            "grid index ({row}, {col}) out of bounds {}x{}",
            self.rows,
            self.cols
        );
        &self.data[row * self.cols + col]
    }

    /// Stores `value` at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::OutOfBounds`] when outside the grid.
    pub fn set(&mut self, row: usize, col: usize, value: T) -> Result<(), ArchiveError> {
        if row >= self.rows || col >= self.cols {
            return Err(self.oob(row, col));
        }
        self.data[row * self.cols + col] = value;
        Ok(())
    }

    /// Iterator over `(CellCoord, &T)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (CellCoord, &T)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| (CellCoord::new(i / cols, i % cols), v))
    }

    /// Iterator over one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()`.
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row {row} out of bounds {}", self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Applies `f` to every cell, producing a new grid of the same shape and
    /// extent.
    pub fn map<U, F: FnMut(&T) -> U>(&self, f: F) -> Grid2<U> {
        Grid2 {
            rows: self.rows,
            cols: self.cols,
            extent: self.extent,
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Extracts a rectangular window (clamped to the grid bounds).
    ///
    /// Returns `None` when the window origin is outside the grid or has zero
    /// size after clamping.
    pub fn window(&self, origin: CellCoord, rows: usize, cols: usize) -> Option<Grid2<T>>
    where
        T: Clone,
    {
        if origin.row >= self.rows || origin.col >= self.cols || rows == 0 || cols == 0 {
            return None;
        }
        let r_end = (origin.row + rows).min(self.rows);
        let c_end = (origin.col + cols).min(self.cols);
        let mut data = Vec::with_capacity((r_end - origin.row) * (c_end - origin.col));
        for r in origin.row..r_end {
            data.extend_from_slice(&self.data[r * self.cols + origin.col..r * self.cols + c_end]);
        }
        Some(Grid2 {
            rows: r_end - origin.row,
            cols: c_end - origin.col,
            extent: self.extent,
            data,
        })
    }

    fn oob(&self, row: usize, col: usize) -> ArchiveError {
        ArchiveError::OutOfBounds {
            row,
            col,
            rows: self.rows,
            cols: self.cols,
        }
    }
}

impl<T: Clone> Grid2<T> {
    /// Creates a grid filled with copies of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0 || cols == 0`.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be non-zero");
        Grid2 {
            rows,
            cols,
            extent: GeoExtent::unit(),
            data: vec![value; rows * cols],
        }
    }

    /// Creates a grid by evaluating `f(row, col)` at every cell.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0 || cols == 0`.
    pub fn from_fn<F: FnMut(usize, usize) -> T>(rows: usize, cols: usize, mut f: F) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be non-zero");
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Grid2 {
            rows,
            cols,
            extent: GeoExtent::unit(),
            data,
        }
    }
}

impl Grid2<f64> {
    /// Minimum and maximum values; `None` for a grid with NaNs only.
    pub fn min_max(&self) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.data {
            if v.is_nan() {
                continue;
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if lo.is_finite() {
            Some((lo, hi))
        } else {
            None
        }
    }

    /// Arithmetic mean of all values.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Population variance of all values.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.data.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.data.len() as f64
    }

    /// Rescales values linearly into `[lo, hi]`. A constant grid maps to `lo`.
    pub fn normalized(&self, lo: f64, hi: f64) -> Grid2<f64> {
        match self.min_max() {
            Some((mn, mx)) if mx > mn => self.map(|&v| lo + (v - mn) / (mx - mn) * (hi - lo)),
            _ => self.map(|_| lo),
        }
    }
}

impl<T: fmt::Display> fmt::Display for Grid2<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Grid2 {}x{} {}", self.rows, self.cols, self.extent)?;
        // Print at most 8x8 corner to keep Debug output usable.
        for r in 0..self.rows.min(8) {
            for c in 0..self.cols.min(8) {
                write!(f, "{:>8.6} ", self.data[r * self.cols + c])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates() {
        assert!(matches!(
            Grid2::from_vec(0, 3, Vec::<f64>::new()),
            Err(ArchiveError::EmptyDimension)
        ));
        assert!(matches!(
            Grid2::from_vec(2, 2, vec![1.0; 3]),
            Err(ArchiveError::DimensionMismatch {
                expected: 4,
                actual: 3
            })
        ));
        let g = Grid2::from_vec(2, 3, vec![0.0; 6]).unwrap();
        assert_eq!(g.rows(), 2);
        assert_eq!(g.cols(), 3);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut g = Grid2::filled(3, 4, 0i32);
        g.set(2, 3, 42).unwrap();
        assert_eq!(*g.get(2, 3).unwrap(), 42);
        assert!(g.get(3, 0).is_err());
        assert!(g.get(0, 4).is_err());
        assert!(g.set(9, 9, 1).is_err());
    }

    #[test]
    fn from_fn_row_major_order() {
        let g = Grid2::from_fn(2, 3, |r, c| r * 10 + c);
        assert_eq!(g.as_slice(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(g.row(1), &[10, 11, 12]);
    }

    #[test]
    fn iter_yields_coords() {
        let g = Grid2::from_fn(2, 2, |r, c| (r, c));
        let coords: Vec<CellCoord> = g.iter().map(|(cc, _)| cc).collect();
        assert_eq!(
            coords,
            vec![
                CellCoord::new(0, 0),
                CellCoord::new(0, 1),
                CellCoord::new(1, 0),
                CellCoord::new(1, 1)
            ]
        );
    }

    #[test]
    fn window_clamps() {
        let g = Grid2::from_fn(4, 4, |r, c| r * 4 + c);
        let w = g.window(CellCoord::new(2, 2), 5, 5).unwrap();
        assert_eq!(w.rows(), 2);
        assert_eq!(w.cols(), 2);
        assert_eq!(w.as_slice(), &[10, 11, 14, 15]);
        assert!(g.window(CellCoord::new(4, 0), 1, 1).is_none());
        assert!(g.window(CellCoord::new(0, 0), 0, 1).is_none());
    }

    #[test]
    fn stats_and_normalize() {
        let g = Grid2::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(g.min_max(), Some((1.0, 4.0)));
        assert!((g.mean() - 2.5).abs() < 1e-12);
        assert!((g.variance() - 1.25).abs() < 1e-12);
        let n = g.normalized(0.0, 1.0);
        assert_eq!(n.min_max(), Some((0.0, 1.0)));
        let constant = Grid2::filled(2, 2, 5.0);
        assert_eq!(constant.normalized(0.0, 1.0).min_max(), Some((0.0, 0.0)));
    }

    #[test]
    fn map_preserves_shape_and_extent() {
        let e = GeoExtent::new(0.0, 0.0, 100.0, 50.0);
        let g = Grid2::filled(2, 3, 1.5f64).with_extent(e);
        let m = g.map(|v| (v * 2.0) as i64);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.extent(), &e);
        assert_eq!(m.as_slice(), &[3, 3, 3, 3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn at_panics_out_of_bounds() {
        let g = Grid2::filled(2, 2, 0.0);
        let _ = g.at(2, 0);
    }

    #[test]
    fn display_renders_header_and_values() {
        let g = Grid2::filled(2, 2, 1.0);
        let s = g.to_string();
        assert!(s.contains("Grid2 2x2"));
        assert!(s.contains("1.0"));
    }

    #[test]
    fn into_vec_roundtrip() {
        let g = Grid2::from_fn(2, 3, |r, c| r * 3 + c);
        let v = g.clone().into_vec();
        assert_eq!(v, vec![0, 1, 2, 3, 4, 5]);
        let g2 = Grid2::from_vec(2, 3, v).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn min_max_skips_nan_and_handles_all_nan() {
        let g = Grid2::from_vec(1, 3, vec![f64::NAN, 2.0, -1.0]).unwrap();
        assert_eq!(g.min_max(), Some((-1.0, 2.0)));
        let all_nan = Grid2::filled(2, 2, f64::NAN);
        assert_eq!(all_nan.min_max(), None);
    }

    #[test]
    fn as_mut_slice_edits_in_place() {
        let mut g = Grid2::filled(2, 2, 0.0);
        g.as_mut_slice()[3] = 9.0;
        assert_eq!(*g.at(1, 1), 9.0);
    }
}
