//! Archive metadata catalog — the coarsest abstraction level.
//!
//! The paper's progressive representation ladder tops out at *metadata*:
//! before touching any pixel, a retrieval can discard whole datasets whose
//! modality, extent, or time range cannot satisfy the model. The catalog is
//! that ladder rung.

use crate::error::ArchiveError;
use crate::extent::GeoExtent;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a dataset in a catalog.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatasetId(String);

impl DatasetId {
    /// Creates an id from any string-like value.
    pub fn new(id: impl Into<String>) -> Self {
        DatasetId(id.into())
    }

    /// The id text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for DatasetId {
    fn from(s: &str) -> Self {
        DatasetId(s.to_owned())
    }
}

/// Data modality of a catalogued dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Modality {
    /// Multi-spectral imagery (satellite scenes).
    Imagery,
    /// Elevation rasters.
    Elevation,
    /// Station time series (weather, sensors).
    SeriesFeed,
    /// Depth-indexed well logs.
    WellLog,
    /// Vector point/polygon layers.
    Gis,
    /// Tabular records (credit files, incident reports).
    Tabular,
}

impl fmt::Display for Modality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Modality::Imagery => "imagery",
            Modality::Elevation => "elevation",
            Modality::SeriesFeed => "series-feed",
            Modality::WellLog => "well-log",
            Modality::Gis => "gis",
            Modality::Tabular => "tabular",
        };
        f.write_str(name)
    }
}

/// Descriptive metadata for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetMeta {
    /// Dataset identifier.
    pub id: DatasetId,
    /// Human-readable name.
    pub name: String,
    /// Data modality.
    pub modality: Modality,
    /// Geographic coverage.
    pub extent: GeoExtent,
    /// Ground resolution in map units per cell (0 for non-raster data).
    pub resolution: f64,
    /// Covered day range `[first, last]`.
    pub day_range: (i64, i64),
    /// Approximate size in tuples/pixels, used for query planning.
    pub tuple_count: u64,
}

impl DatasetMeta {
    /// Creates metadata with unit extent, zero resolution, empty day range.
    pub fn new(id: impl Into<DatasetId>, name: impl Into<String>, modality: Modality) -> Self {
        DatasetMeta {
            id: id.into(),
            name: name.into(),
            modality,
            extent: GeoExtent::unit(),
            resolution: 0.0,
            day_range: (0, 0),
            tuple_count: 0,
        }
    }

    /// Sets the geographic extent (builder style).
    pub fn with_extent(mut self, extent: GeoExtent) -> Self {
        self.extent = extent;
        self
    }

    /// Sets the day range (builder style).
    pub fn with_days(mut self, first: i64, last: i64) -> Self {
        self.day_range = (first.min(last), first.max(last));
        self
    }

    /// Sets the tuple count (builder style).
    pub fn with_tuples(mut self, tuple_count: u64) -> Self {
        self.tuple_count = tuple_count;
        self
    }
}

/// The archive catalog: id -> metadata, with query helpers.
///
/// # Examples
///
/// ```
/// use mbir_archive::catalog::{Catalog, DatasetMeta, Modality};
///
/// let mut catalog = Catalog::new();
/// catalog.register(DatasetMeta::new("tm-scene-1", "Landsat scene", Modality::Imagery));
/// assert_eq!(catalog.by_modality(Modality::Imagery).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    entries: BTreeMap<DatasetId, DatasetMeta>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers (or replaces) a dataset, returning any previous entry.
    pub fn register(&mut self, meta: DatasetMeta) -> Option<DatasetMeta> {
        self.entries.insert(meta.id.clone(), meta)
    }

    /// Number of datasets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Metadata lookup.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::UnknownDataset`] for an unregistered id.
    pub fn get(&self, id: &DatasetId) -> Result<&DatasetMeta, ArchiveError> {
        self.entries
            .get(id)
            .ok_or_else(|| ArchiveError::UnknownDataset(id.to_string()))
    }

    /// All datasets of one modality, in id order.
    pub fn by_modality(&self, modality: Modality) -> Vec<&DatasetMeta> {
        self.entries
            .values()
            .filter(|m| m.modality == modality)
            .collect()
    }

    /// Datasets whose extent intersects `extent` — the metadata-level screen
    /// used before touching data.
    pub fn covering(&self, extent: &GeoExtent) -> Vec<&DatasetMeta> {
        self.entries
            .values()
            .filter(|m| m.extent.intersects(extent))
            .collect()
    }

    /// Datasets overlapping a day range.
    pub fn in_days(&self, first: i64, last: i64) -> Vec<&DatasetMeta> {
        let (lo, hi) = (first.min(last), first.max(last));
        self.entries
            .values()
            .filter(|m| m.day_range.0 <= hi && lo <= m.day_range.1)
            .collect()
    }

    /// Iterator over all metadata in id order.
    pub fn iter(&self) -> impl Iterator<Item = &DatasetMeta> + '_ {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            DatasetMeta::new("tm1", "scene a", Modality::Imagery)
                .with_extent(GeoExtent::new(0.0, 0.0, 1.0, 1.0))
                .with_days(0, 100)
                .with_tuples(512 * 512),
        );
        c.register(
            DatasetMeta::new("dem1", "terrain", Modality::Elevation)
                .with_extent(GeoExtent::new(0.5, 0.5, 2.0, 2.0))
                .with_days(0, 10_000),
        );
        c.register(
            DatasetMeta::new("wx1", "station", Modality::SeriesFeed)
                .with_extent(GeoExtent::new(5.0, 5.0, 5.1, 5.1))
                .with_days(200, 565),
        );
        c
    }

    #[test]
    fn register_and_lookup() {
        let c = sample_catalog();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&DatasetId::new("tm1")).unwrap().name, "scene a");
        assert!(matches!(
            c.get(&DatasetId::new("nope")),
            Err(ArchiveError::UnknownDataset(_))
        ));
    }

    #[test]
    fn register_replaces() {
        let mut c = sample_catalog();
        let old = c.register(DatasetMeta::new("tm1", "scene b", Modality::Imagery));
        assert_eq!(old.unwrap().name, "scene a");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn modality_filter() {
        let c = sample_catalog();
        assert_eq!(c.by_modality(Modality::Imagery).len(), 1);
        assert_eq!(c.by_modality(Modality::WellLog).len(), 0);
    }

    #[test]
    fn extent_screen() {
        let c = sample_catalog();
        let roi = GeoExtent::new(0.0, 0.0, 0.4, 0.4);
        let hits = c.covering(&roi);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id.as_str(), "tm1");
    }

    #[test]
    fn day_screen() {
        let c = sample_catalog();
        assert_eq!(c.in_days(50, 60).len(), 2);
        assert_eq!(c.in_days(150, 180).len(), 1); // only dem1's wide range
        assert_eq!(c.in_days(300, 300).len(), 2); // dem1 + wx1
    }
}
