//! Page integrity: checksummed envelopes over tile payloads.
//!
//! Production archives treat storage as *untrusted*: a page can come back
//! on time, from the right offset, and still be wrong — a flipped bit in a
//! DMA buffer, a stale replica, a decayed tape block. None of the PR-1
//! fault machinery catches that, because the store itself does not know
//! the payload is bad. This module closes the gap:
//!
//! * [`fnv1a64`] — a hand-rolled FNV-1a 64-bit hash (no dependencies),
//!   fast enough that sealing a page is a single pass over its bytes.
//! * [`PageEnvelope`] — a page payload together with the checksum computed
//!   over it at *seal* time. Readers call [`PageEnvelope::verify`] and
//!   treat a mismatch as a detected corruption — retryable on another
//!   replica, reportable as
//!   [`ArchiveError::PageCorrupt`](crate::error::ArchiveError::PageCorrupt).
//! * [`corrupt_value`] — the deterministic bit-flip the `Corruption` fault
//!   kind ([`crate::fault::FaultKind::Corruption`]) applies to payload
//!   values, chosen so finite values stay finite (the damage is silent at
//!   the type level; only the checksum sees it).
//!
//! The checksum covers coordinates *and* values, so a payload that is
//! bitwise plausible but shifted (right values, wrong cells) also fails
//! verification.

use crate::extent::CellCoord;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Mantissa-only XOR mask used by the `Corruption` fault kind: flips two
/// low-mantissa bits of an `f64`, so corrupted values stay finite (the
/// exponent and sign are untouched) and the damage is invisible without a
/// checksum.
pub const CORRUPTION_MASK: u64 = 0x0000_0000_0040_0021;

/// FNV-1a over a byte slice: the classic fold
/// `h = (h ^ byte) * prime`, seeded with the 64-bit offset basis.
///
/// # Examples
///
/// ```
/// use mbir_archive::integrity::fnv1a64;
///
/// assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
/// assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
/// assert_ne!(fnv1a64(b"page"), fnv1a64(b"pagf"));
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Checksum of a page payload: an FNV-1a-style fold over every tuple's
/// row, column, and value bit pattern, mixed a 64-bit word at a time
/// (`h = (h ^ word) * prime`) rather than byte-wise, so a tuple costs
/// three xor-multiplies instead of 24 byte steps. Tuples round-robin
/// across four independently seeded lanes, which breaks the serial
/// multiply dependency chain (the lanes' folds overlap in the pipeline)
/// while keeping the result deterministic: each word's lane and position
/// are fixed by payload order, so any bit flip, swap, or truncation
/// lands in a definite lane and avalanches through its multiplies. The
/// lanes and the payload length are folded into a single digest at the
/// end.
pub fn payload_checksum(payload: &[(CellCoord, f64)]) -> u64 {
    let mut lanes = [
        FNV_OFFSET,
        FNV_OFFSET.wrapping_mul(FNV_PRIME),
        FNV_OFFSET.rotate_left(17),
        FNV_OFFSET.rotate_left(31),
    ];
    for (i, (coord, value)) in payload.iter().enumerate() {
        let lane = &mut lanes[i & 3];
        let mut mix = |word: u64| {
            *lane ^= word;
            *lane = lane.wrapping_mul(FNV_PRIME);
        };
        mix(coord.row as u64);
        mix(coord.col as u64);
        mix(value.to_bits());
    }
    let mut h = FNV_OFFSET ^ payload.len() as u64;
    for lane in lanes {
        h ^= lane;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Applies the deterministic corruption bit-flip to one value. Involutive:
/// corrupting twice restores the original bits.
pub fn corrupt_value(v: f64) -> f64 {
    f64::from_bits(v.to_bits() ^ CORRUPTION_MASK)
}

/// A page payload sealed with the checksum of its contents.
///
/// The envelope models the write path of a checksumming store: the
/// checksum is computed over the payload *as written*. Anything that
/// mutates the payload afterwards — the `Corruption` fault kind, a flaky
/// transport — leaves the checksum stale, and [`verify`](Self::verify)
/// catches it.
///
/// # Examples
///
/// ```
/// use mbir_archive::extent::CellCoord;
/// use mbir_archive::integrity::{corrupt_value, PageEnvelope};
///
/// let mut env = PageEnvelope::seal(vec![(CellCoord::new(0, 0), 1.5)]);
/// assert!(env.verify());
/// env.corrupt_payload();
/// assert!(!env.verify());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PageEnvelope {
    /// FNV-1a checksum of `payload` at seal time.
    pub checksum: u64,
    /// The page's `(coordinate, value)` tuples.
    pub payload: Vec<(CellCoord, f64)>,
}

impl PageEnvelope {
    /// Seals a payload: computes and stores its checksum.
    pub fn seal(payload: Vec<(CellCoord, f64)>) -> Self {
        PageEnvelope {
            checksum: payload_checksum(&payload),
            payload,
        }
    }

    /// Whether the payload still matches the sealed checksum.
    pub fn verify(&self) -> bool {
        payload_checksum(&self.payload) == self.checksum
    }

    /// Applies the deterministic corruption flip to every payload value,
    /// leaving the checksum untouched — the silent-corruption model.
    pub fn corrupt_payload(&mut self) {
        for (_, v) in &mut self.payload {
            *v = corrupt_value(*v);
        }
    }

    /// Consumes the envelope, returning the payload without re-verifying.
    pub fn into_payload(self) -> Vec<(CellCoord, f64)> {
        self.payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> Vec<(CellCoord, f64)> {
        (0..8)
            .map(|i| (CellCoord::new(i / 4, i % 4), i as f64 * 1.25 - 3.0))
            .collect()
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Reference values from the FNV specification.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn seal_verify_roundtrip() {
        let env = PageEnvelope::seal(payload());
        assert!(env.verify());
        assert_eq!(env.clone().into_payload(), payload());
    }

    #[test]
    fn any_value_flip_is_detected() {
        for i in 0..8 {
            let mut env = PageEnvelope::seal(payload());
            env.payload[i].1 = corrupt_value(env.payload[i].1);
            assert!(!env.verify(), "flip of value {i} undetected");
        }
    }

    #[test]
    fn coordinate_shift_is_detected() {
        let mut env = PageEnvelope::seal(payload());
        // Same values, rotated coordinates: bitwise-plausible, wrong cells.
        let coords: Vec<CellCoord> = env.payload.iter().map(|(c, _)| *c).collect();
        for (i, (c, _)) in env.payload.iter_mut().enumerate() {
            *c = coords[(i + 1) % coords.len()];
        }
        assert!(!env.verify());
    }

    #[test]
    fn corruption_is_involutive_and_finite() {
        for v in [0.0, -1.5, 1e308, -1e-308, 123.456] {
            let c = corrupt_value(v);
            assert_ne!(c.to_bits(), v.to_bits());
            assert!(c.is_finite(), "corrupting {v} produced {c}");
            assert_eq!(corrupt_value(c).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn corrupt_payload_flips_every_value() {
        let mut env = PageEnvelope::seal(payload());
        env.corrupt_payload();
        assert!(!env.verify());
        for ((_, got), (_, want)) in env.payload.iter().zip(payload()) {
            assert_eq!(got.to_bits(), corrupt_value(want).to_bits());
        }
        // Corrupting again restores the original payload exactly.
        env.corrupt_payload();
        assert!(env.verify());
    }

    #[test]
    fn empty_payload_verifies() {
        let env = PageEnvelope::seal(Vec::new());
        assert!(env.verify());
    }
}
