//! Distribution helpers on top of `rand`.
//!
//! The offline dependency set excludes `rand_distr`, so the handful of
//! distributions the generators need (Gaussian, Poisson, exponential) are
//! implemented here directly.

use rand::{Rng, RngExt};

/// Draws a standard normal `N(0, 1)` sample using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u == 0 so ln(u) is finite.
    let u: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let v: f64 = rng.random();
    (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos()
}

/// Draws a normal `N(mean, std_dev^2)` sample.
///
/// # Panics
///
/// Panics if `std_dev` is negative or not finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(
        std_dev >= 0.0 && std_dev.is_finite(),
        "std_dev must be finite and non-negative, got {std_dev}"
    );
    mean + std_dev * standard_normal(rng)
}

/// Draws a Poisson(λ) sample.
///
/// Uses Knuth's product method for small λ and a normal approximation with
/// continuity correction for λ > 30 (the crossover keeps both branches fast
/// and accurate for the rates used by the occurrence generators).
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "lambda must be finite and non-negative, got {lambda}"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let s = normal(rng, lambda, lambda.sqrt());
        return s.round().max(0.0) as u64;
    }
    let limit = (-lambda).exp();
    let mut product: f64 = rng.random();
    let mut count = 0u64;
    while product > limit {
        product *= rng.random::<f64>();
        count += 1;
    }
    count
}

/// Draws a Bernoulli(`p`) sample: `true` with probability `p`.
///
/// Used by probabilistic fault profiles so injected failures share the
/// same generator family as the synthetic data.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    let u: f64 = rng.random();
    u < p
}

/// Draws an exponential sample with the given rate (mean `1/rate`).
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate > 0.0 && rate.is_finite(),
        "rate must be finite and positive, got {rate}"
    );
    let u: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_converge() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn poisson_mean_matches_lambda_small() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 30_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 2.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.08, "mean {mean}");
    }

    #[test]
    fn poisson_mean_matches_lambda_large() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 100.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 100.0).abs() < 0.6, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 30_000;
        let total: f64 = (0..n).map(|_| exponential(&mut rng, 0.5)).sum();
        let mean = total / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn bernoulli_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20_000;
        let hits = (0..n).filter(|_| bernoulli(&mut rng, 0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
        assert!(!bernoulli(&mut rng, 0.0));
        assert!(bernoulli(&mut rng, 1.0));
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn bernoulli_rejects_bad_p() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = bernoulli(&mut rng, 1.5);
    }

    #[test]
    #[should_panic(expected = "std_dev")]
    fn normal_rejects_negative_std() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = normal(&mut rng, 0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn poisson_rejects_negative_lambda() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = poisson(&mut rng, -2.0);
    }
}
