//! Lithology classes and synthetic stratigraphic columns.

use crate::randx;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use std::fmt;

/// Rock types distinguished by the geology knowledge model (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Lithology {
    /// Fine-grained, high gamma-ray response.
    Shale,
    /// Coarse-grained reservoir rock, low gamma.
    Sandstone,
    /// Between shale and sandstone in grain size and gamma.
    Siltstone,
    /// Carbonate, low gamma.
    Limestone,
    /// Organic, very high gamma.
    Coal,
}

impl Lithology {
    /// All lithologies, in declaration order.
    pub const ALL: [Lithology; 5] = [
        Lithology::Shale,
        Lithology::Sandstone,
        Lithology::Siltstone,
        Lithology::Limestone,
        Lithology::Coal,
    ];

    /// Typical gamma-ray response `(mean, std_dev)` in API units.
    ///
    /// Values follow standard petrophysical ranges: shales ~90 API,
    /// clean sandstones ~35 API, siltstones in between.
    pub fn gamma_profile(&self) -> (f64, f64) {
        match self {
            Lithology::Shale => (95.0, 12.0),
            Lithology::Sandstone => (35.0, 8.0),
            Lithology::Siltstone => (62.0, 10.0),
            Lithology::Limestone => (25.0, 6.0),
            Lithology::Coal => (130.0, 15.0),
        }
    }

    /// Small integer code (stable across versions, used by feature planes).
    pub fn code(&self) -> u8 {
        match self {
            Lithology::Shale => 0,
            Lithology::Sandstone => 1,
            Lithology::Siltstone => 2,
            Lithology::Limestone => 3,
            Lithology::Coal => 4,
        }
    }
}

impl fmt::Display for Lithology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Lithology::Shale => "shale",
            Lithology::Sandstone => "sandstone",
            Lithology::Siltstone => "siltstone",
            Lithology::Limestone => "limestone",
            Lithology::Coal => "coal",
        };
        f.write_str(name)
    }
}

/// A contiguous layer in a stratigraphic column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Layer {
    /// Rock type of the layer.
    pub lithology: Lithology,
    /// Layer thickness in feet.
    pub thickness_ft: f64,
}

/// Seeded generator of stratigraphic columns.
///
/// Layers alternate through a Markov chain over lithologies (no self
/// transitions — consecutive identical layers merge physically) with
/// exponential thicknesses. A configurable fraction of generated wells have a
/// *planted* riverbed signature — shale over sandstone over siltstone with
/// thin beds — so retrieval experiments have known positives.
#[derive(Debug, Clone)]
pub struct ColumnGenerator {
    seed: u64,
    mean_thickness_ft: f64,
    plant_riverbed: bool,
}

impl ColumnGenerator {
    /// Creates a generator with 20 ft mean layer thickness.
    pub fn new(seed: u64) -> Self {
        ColumnGenerator {
            seed,
            mean_thickness_ft: 20.0,
            plant_riverbed: false,
        }
    }

    /// Sets the mean layer thickness in feet.
    pub fn with_mean_thickness(mut self, mean_thickness_ft: f64) -> Self {
        self.mean_thickness_ft = mean_thickness_ft.max(1.0);
        self
    }

    /// Plants a riverbed signature (shale / sandstone / siltstone, each
    /// under 10 ft) at a random depth in the column.
    pub fn with_riverbed(mut self) -> Self {
        self.plant_riverbed = true;
        self
    }

    /// Generates a column totalling at least `total_depth_ft` feet.
    ///
    /// # Panics
    ///
    /// Panics if `total_depth_ft <= 0`.
    pub fn generate(&self, total_depth_ft: f64) -> Vec<Layer> {
        assert!(total_depth_ft > 0.0, "total depth must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut layers = Vec::new();
        let mut depth = 0.0;
        let mut current = Lithology::ALL[rng.random_range(0..Lithology::ALL.len())];
        while depth < total_depth_ft {
            let thickness_ft = randx::exponential(&mut rng, 1.0 / self.mean_thickness_ft).max(2.0);
            layers.push(Layer {
                lithology: current,
                thickness_ft,
            });
            depth += thickness_ft;
            current = self.next_lithology(&mut rng, current);
        }
        if self.plant_riverbed && layers.len() >= 3 {
            let pos = rng.random_range(0..layers.len().saturating_sub(2));
            let beds = [Lithology::Shale, Lithology::Sandstone, Lithology::Siltstone];
            for (i, lith) in beds.iter().enumerate() {
                layers[pos + i] = Layer {
                    lithology: *lith,
                    thickness_ft: 4.0 + rng.random::<f64>() * 5.0,
                };
            }
        }
        layers
    }

    fn next_lithology<R: Rng + ?Sized>(&self, rng: &mut R, current: Lithology) -> Lithology {
        // Uniform over the other lithologies, biased toward the
        // shale/sand/silt triad which dominates clastic basins.
        let weights: Vec<(Lithology, f64)> = Lithology::ALL
            .iter()
            .filter(|l| **l != current)
            .map(|l| {
                let w = match l {
                    Lithology::Shale => 3.0,
                    Lithology::Sandstone => 2.5,
                    Lithology::Siltstone => 2.5,
                    Lithology::Limestone => 1.0,
                    Lithology::Coal => 0.5,
                };
                (*l, w)
            })
            .collect();
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        let mut draw = rng.random::<f64>() * total;
        for (l, w) in &weights {
            draw -= w;
            if draw <= 0.0 {
                return *l;
            }
        }
        weights.last().expect("at least one alternative").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_reaches_depth_and_is_deterministic() {
        let a = ColumnGenerator::new(5).generate(500.0);
        let b = ColumnGenerator::new(5).generate(500.0);
        assert_eq!(a, b);
        let total: f64 = a.iter().map(|l| l.thickness_ft).sum();
        assert!(total >= 500.0);
        assert!(a.iter().all(|l| l.thickness_ft >= 2.0));
    }

    #[test]
    fn no_consecutive_identical_layers_without_plant() {
        let layers = ColumnGenerator::new(8).generate(2000.0);
        for pair in layers.windows(2) {
            assert_ne!(pair[0].lithology, pair[1].lithology);
        }
    }

    #[test]
    fn planted_riverbed_is_present() {
        let layers = ColumnGenerator::new(3).with_riverbed().generate(800.0);
        let found = layers.windows(3).any(|w| {
            w[0].lithology == Lithology::Shale
                && w[1].lithology == Lithology::Sandstone
                && w[2].lithology == Lithology::Siltstone
                && w.iter().all(|l| l.thickness_ft < 10.0)
        });
        assert!(found, "riverbed signature missing: {layers:?}");
    }

    #[test]
    fn gamma_profiles_are_ordered_sensibly() {
        let (shale, _) = Lithology::Shale.gamma_profile();
        let (sand, _) = Lithology::Sandstone.gamma_profile();
        let (silt, _) = Lithology::Siltstone.gamma_profile();
        assert!(shale > silt && silt > sand);
    }

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<u8> = Lithology::ALL.iter().map(|l| l.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), Lithology::ALL.len());
    }
}
