//! GIS vector layers: point features with typed attributes.
//!
//! Demographic layers and house/well locations enter the paper's models as
//! point data (houses at risk of HPS, candidate wells). A small typed
//! attribute map keeps the layer self-describing without pulling in a full
//! feature-store dependency.

use crate::extent::GeoExtent;
use std::collections::BTreeMap;
use std::fmt;

/// An attribute value attached to a feature.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AttrValue {
    /// Floating point attribute.
    Float(f64),
    /// Integer attribute.
    Int(i64),
    /// Boolean attribute.
    Bool(bool),
    /// Free-text attribute.
    Text(String),
}

impl AttrValue {
    /// The value as f64, when numeric (bools map to 0/1).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Float(v) => Some(*v),
            AttrValue::Int(v) => Some(*v as f64),
            AttrValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            AttrValue::Text(_) => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
            AttrValue::Text(t) => write!(f, "{t}"),
        }
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Text(v.to_owned())
    }
}

/// A point feature: location plus attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct PointFeature {
    /// Map-space x coordinate.
    pub x: f64,
    /// Map-space y coordinate.
    pub y: f64,
    attrs: BTreeMap<String, AttrValue>,
}

impl PointFeature {
    /// Creates a feature at `(x, y)` with no attributes.
    pub fn new(x: f64, y: f64) -> Self {
        PointFeature {
            x,
            y,
            attrs: BTreeMap::new(),
        }
    }

    /// Adds an attribute (builder style).
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.attrs.insert(key.into(), value.into());
        self
    }

    /// Looks up an attribute.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.get(key)
    }

    /// Numeric view of an attribute.
    pub fn attr_f64(&self, key: &str) -> Option<f64> {
        self.attrs.get(key).and_then(AttrValue::as_f64)
    }

    /// Iterator over attributes in key order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &AttrValue)> + '_ {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Euclidean distance to another feature.
    pub fn distance(&self, other: &PointFeature) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// A named collection of point features.
///
/// # Examples
///
/// ```
/// use mbir_archive::gis::{PointFeature, PointLayer};
///
/// let mut layer = PointLayer::new("houses");
/// layer.push(PointFeature::new(0.2, 0.3).with_attr("population", 4i64));
/// assert_eq!(layer.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PointLayer {
    name: String,
    features: Vec<PointFeature>,
}

impl PointLayer {
    /// Creates an empty layer.
    pub fn new(name: impl Into<String>) -> Self {
        PointLayer {
            name: name.into(),
            features: Vec::new(),
        }
    }

    /// The layer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a feature.
    pub fn push(&mut self, feature: PointFeature) {
        self.features.push(feature);
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the layer has no features.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Iterator over features.
    pub fn iter(&self) -> std::slice::Iter<'_, PointFeature> {
        self.features.iter()
    }

    /// Features inside a geographic extent.
    pub fn within(&self, extent: &GeoExtent) -> Vec<&PointFeature> {
        self.features
            .iter()
            .filter(|p| extent.contains(p.x, p.y))
            .collect()
    }

    /// Features within `radius` of `(x, y)`.
    pub fn near(&self, x: f64, y: f64, radius: f64) -> Vec<&PointFeature> {
        let probe = PointFeature::new(x, y);
        self.features
            .iter()
            .filter(|p| p.distance(&probe) <= radius)
            .collect()
    }

    /// The bounding extent of all features (`None` when empty).
    pub fn extent(&self) -> Option<GeoExtent> {
        let first = self.features.first()?;
        let mut e = GeoExtent::new(first.x, first.y, first.x, first.y);
        for p in &self.features[1..] {
            e = e.union(&GeoExtent::new(p.x, p.y, p.x, p.y));
        }
        Some(e)
    }
}

impl FromIterator<PointFeature> for PointLayer {
    fn from_iter<I: IntoIterator<Item = PointFeature>>(iter: I) -> Self {
        PointLayer {
            name: String::new(),
            features: iter.into_iter().collect(),
        }
    }
}

impl Extend<PointFeature> for PointLayer {
    fn extend<I: IntoIterator<Item = PointFeature>>(&mut self, iter: I) {
        self.features.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attrs_roundtrip() {
        let p = PointFeature::new(1.0, 2.0)
            .with_attr("pop", 120i64)
            .with_attr("bushy", true)
            .with_attr("name", "farm");
        assert_eq!(p.attr_f64("pop"), Some(120.0));
        assert_eq!(p.attr_f64("bushy"), Some(1.0));
        assert_eq!(p.attr_f64("name"), None);
        assert_eq!(p.attr("missing"), None);
        assert_eq!(p.attrs().count(), 3);
    }

    #[test]
    fn spatial_queries() {
        let mut layer = PointLayer::new("test");
        layer.push(PointFeature::new(0.0, 0.0));
        layer.push(PointFeature::new(5.0, 5.0));
        layer.push(PointFeature::new(10.0, 0.0));
        let inside = layer.within(&GeoExtent::new(-1.0, -1.0, 6.0, 6.0));
        assert_eq!(inside.len(), 2);
        let near = layer.near(0.0, 0.0, 7.2);
        assert_eq!(near.len(), 2);
        let near = layer.near(0.0, 0.0, 0.5);
        assert_eq!(near.len(), 1);
    }

    #[test]
    fn extent_covers_all() {
        let layer: PointLayer = vec![
            PointFeature::new(2.0, 3.0),
            PointFeature::new(-1.0, 7.0),
            PointFeature::new(4.0, 0.0),
        ]
        .into_iter()
        .collect();
        let e = layer.extent().unwrap();
        assert_eq!(e, GeoExtent::new(-1.0, 0.0, 4.0, 7.0));
        assert!(PointLayer::new("empty").extent().is_none());
    }

    #[test]
    fn distance_is_euclidean() {
        let a = PointFeature::new(0.0, 0.0);
        let b = PointFeature::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }
}
