//! Synthetic weather-station feeds.
//!
//! The fire-ants finite-state model (paper Fig. 1) consumes exactly two
//! observables per region-day: whether it rained and whether the temperature
//! reached 25 °C. The generator below produces daily series with realistic
//! wet/dry run-length statistics (two-state Markov rain process) and seasonal
//! temperature, which is all the model is sensitive to.

use crate::randx;
use crate::series::TimeSeries;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One day of weather at a station.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeatherDay {
    /// Rainfall in millimetres (0 on dry days).
    pub rain_mm: f64,
    /// Mean temperature in degrees Celsius.
    pub temp_c: f64,
}

impl WeatherDay {
    /// Whether any rain fell.
    pub fn rained(&self) -> bool {
        self.rain_mm > 0.0
    }

    /// Whether the fire-ants temperature threshold (T >= 25 °C) is met.
    pub fn warm(&self) -> bool {
        self.temp_c >= 25.0
    }
}

/// Seeded generator of daily weather series.
///
/// Rain occurrence follows a two-state Markov chain with configurable
/// `p(wet | dry)` and `p(wet | wet)`; rain amounts are exponential.
/// Temperature is a seasonal sinusoid (period 365 d) plus Gaussian noise and
/// a wet-day cooling offset.
///
/// # Examples
///
/// ```
/// use mbir_archive::weather::WeatherGenerator;
///
/// let series = WeatherGenerator::new(7).generate(0, 365);
/// assert_eq!(series.len(), 365);
/// ```
#[derive(Debug, Clone)]
pub struct WeatherGenerator {
    seed: u64,
    p_wet_after_dry: f64,
    p_wet_after_wet: f64,
    mean_rain_mm: f64,
    temp_mean_c: f64,
    temp_amplitude_c: f64,
    temp_noise_c: f64,
}

impl WeatherGenerator {
    /// Creates a generator with a humid-subtropical default climate
    /// (the fire-ant belt of the southern United States).
    pub fn new(seed: u64) -> Self {
        WeatherGenerator {
            seed,
            p_wet_after_dry: 0.25,
            p_wet_after_wet: 0.55,
            mean_rain_mm: 8.0,
            temp_mean_c: 20.0,
            temp_amplitude_c: 10.0,
            temp_noise_c: 2.5,
        }
    }

    /// Sets the Markov rain persistence probabilities (clamped to `[0, 1]`).
    pub fn with_rain_chain(mut self, p_wet_after_dry: f64, p_wet_after_wet: f64) -> Self {
        self.p_wet_after_dry = p_wet_after_dry.clamp(0.0, 1.0);
        self.p_wet_after_wet = p_wet_after_wet.clamp(0.0, 1.0);
        self
    }

    /// Sets the mean rainfall on wet days in millimetres.
    pub fn with_mean_rain(mut self, mean_rain_mm: f64) -> Self {
        self.mean_rain_mm = mean_rain_mm.max(0.1);
        self
    }

    /// Sets the seasonal temperature profile: annual mean, seasonal
    /// amplitude, and day-to-day noise (all °C).
    pub fn with_temperature(mut self, mean_c: f64, amplitude_c: f64, noise_c: f64) -> Self {
        self.temp_mean_c = mean_c;
        self.temp_amplitude_c = amplitude_c;
        self.temp_noise_c = noise_c.abs();
        self
    }

    /// Generates `days` consecutive daily samples starting at `start_day`
    /// (day 0 is mid-winter, day ~182 peak summer).
    ///
    /// # Panics
    ///
    /// Panics if `days == 0`.
    pub fn generate(&self, start_day: i64, days: usize) -> TimeSeries<WeatherDay> {
        assert!(days > 0, "must generate at least one day");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut wet = false;
        let mut values = Vec::with_capacity(days);
        for i in 0..days {
            let day = start_day + i as i64;
            let p = if wet {
                self.p_wet_after_wet
            } else {
                self.p_wet_after_dry
            };
            wet = rng.random::<f64>() < p;
            let rain_mm = if wet {
                randx::exponential(&mut rng, 1.0 / self.mean_rain_mm)
            } else {
                0.0
            };
            let season = (2.0 * std::f64::consts::PI * (day as f64 - 182.0) / 365.0).cos();
            let mut temp_c = self.temp_mean_c
                + self.temp_amplitude_c * season
                + randx::normal(&mut rng, 0.0, self.temp_noise_c);
            if wet {
                temp_c -= 2.0; // wet days run cooler
            }
            values.push(WeatherDay { rain_mm, temp_c });
        }
        TimeSeries::new(start_day, 1, values).expect("days > 0 validated above")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = WeatherGenerator::new(3).generate(0, 200);
        let b = WeatherGenerator::new(3).generate(0, 200);
        assert_eq!(a, b);
        let c = WeatherGenerator::new(4).generate(0, 200);
        assert_ne!(a, c);
    }

    #[test]
    fn wet_fraction_matches_chain_stationary_distribution() {
        // Stationary wet fraction = p_wd / (1 - p_ww + p_wd).
        let generator = WeatherGenerator::new(11).with_rain_chain(0.2, 0.6);
        let series = generator.generate(0, 20_000);
        let wet =
            series.values().iter().filter(|d| d.rained()).count() as f64 / series.len() as f64;
        let expected = 0.2 / (1.0 - 0.6 + 0.2);
        assert!(
            (wet - expected).abs() < 0.02,
            "wet {wet} expected {expected}"
        );
    }

    #[test]
    fn summer_is_warmer_than_winter() {
        let series = WeatherGenerator::new(5)
            .with_temperature(20.0, 10.0, 1.0)
            .generate(0, 365);
        let winter: f64 = (0..30).map(|i| series.get(i).unwrap().temp_c).sum::<f64>() / 30.0;
        let summer: f64 = (170..200)
            .map(|i| series.get(i).unwrap().temp_c)
            .sum::<f64>()
            / 30.0;
        assert!(summer > winter + 10.0, "summer {summer} winter {winter}");
    }

    #[test]
    fn dry_days_have_zero_rain() {
        let series = WeatherGenerator::new(1).generate(0, 500);
        for (_, d) in series.iter() {
            if !d.rained() {
                assert_eq!(d.rain_mm, 0.0);
            } else {
                assert!(d.rain_mm > 0.0);
            }
        }
    }

    #[test]
    fn mean_rain_scales_wet_day_amounts() {
        let light = WeatherGenerator::new(3)
            .with_mean_rain(2.0)
            .generate(0, 5000);
        let heavy = WeatherGenerator::new(3)
            .with_mean_rain(20.0)
            .generate(0, 5000);
        let mean_of = |s: &TimeSeries<WeatherDay>| {
            let wet: Vec<f64> = s
                .values()
                .iter()
                .filter(|d| d.rained())
                .map(|d| d.rain_mm)
                .collect();
            wet.iter().sum::<f64>() / wet.len() as f64
        };
        let (ml, mh) = (mean_of(&light), mean_of(&heavy));
        assert!((ml - 2.0).abs() < 0.3, "light mean {ml}");
        assert!((mh - 20.0).abs() < 2.0, "heavy mean {mh}");
    }

    #[test]
    fn warm_threshold_is_25c() {
        let d = WeatherDay {
            rain_mm: 0.0,
            temp_c: 25.0,
        };
        assert!(d.warm());
        let d = WeatherDay {
            rain_mm: 0.0,
            temp_c: 24.9,
        };
        assert!(!d.warm());
    }
}
