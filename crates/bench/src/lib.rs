//! Shared workload builders for the experiment benches and the `repro`
//! binary. Every builder is seeded and deterministic, so criterion benches
//! and EXPERIMENTS.md tables are regenerated from identical inputs.

use mbir_archive::dem::Dem;
use mbir_archive::grid::Grid2;
use mbir_archive::scene::{BandId, SyntheticScene};
use mbir_archive::synth::{gaussian_tuples, GaussianField};
use mbir_archive::tile::TileStore;
use mbir_models::linear::{HpsRiskModel, LinearModel, ProgressiveLinearModel};
use mbir_progressive::pyramid::AggregatePyramid;
use mbir_progressive::semantics::{GaussianClassifier, LandCover};

/// The E1 workload: the Onion paper's "three-parameter Gaussian distributed
/// data sets" plus a canonical query direction.
pub fn onion_workload(seed: u64, n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    (gaussian_tuples(seed, n, 3), vec![0.443, 0.222, 0.153])
}

/// The R7 workload: Gaussian tuples at an arbitrary dimensionality plus a
/// mixed-magnitude query direction, for the quantized-kernel sweeps. The
/// direction reuses the E1 lead coefficient and decays linearly so every
/// dimension contributes without any one dominating — the regime where a
/// coarse i8 bound has to be tight to prune at all.
pub fn quant_workload(seed: u64, n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let direction: Vec<f64> = (0..d).map(|j| 0.443 - 0.061 * j as f64).collect();
    (gaussian_tuples(seed, n, d), direction)
}

/// The E2 workload: a two-band scene with planted spatial coherence and a
/// fitted two-class land-cover classifier.
pub fn classification_world(
    seed: u64,
    rows: usize,
    cols: usize,
) -> (Vec<Grid2<f64>>, Vec<AggregatePyramid>, GaussianClassifier) {
    let bands: Vec<Grid2<f64>> = (0..2)
        .map(|i| {
            GaussianField::new(seed + i)
                .with_roughness(0.35)
                .generate(rows, cols)
                .normalized(0.0, 255.0)
        })
        .collect();
    let pyramids = bands.iter().map(AggregatePyramid::build).collect();
    let mut clf = GaussianClassifier::new(2);
    clf.fit_class(
        LandCover::Forest,
        &[vec![60.0, 80.0], vec![70.0, 95.0], vec![55.0, 85.0]],
    );
    clf.fit_class(
        LandCover::BareSoil,
        &[vec![180.0, 150.0], vec![195.0, 165.0], vec![175.0, 140.0]],
    );
    (bands, pyramids, clf)
}

/// The E3 workload: a fine grid with a distinctive planted tile, its 2x
/// coarse reduction, and the tile size used for matching.
pub fn texture_world(seed: u64, side: usize, tile: usize) -> (Grid2<f64>, Grid2<f64>, usize) {
    let base = GaussianField::new(seed)
        .with_roughness(0.5)
        .generate(side, side)
        .normalized(0.0, 100.0);
    // Plant a high-frequency checkerboard patch with a distinctive mean.
    let planted_tile = (side / tile - 2, side / tile - 1);
    let fine = Grid2::from_fn(side, side, |r, c| {
        if r / tile == planted_tile.0 && c / tile == planted_tile.1 {
            150.0 + ((r + c) % 2) as f64 * 60.0
        } else {
            *base.at(r, c)
        }
    });
    let coarse = Grid2::from_fn(side / 2, side / 2, |r, c| {
        (fine.at(2 * r, 2 * c)
            + fine.at(2 * r + 1, 2 * c)
            + fine.at(2 * r, 2 * c + 1)
            + fine.at(2 * r + 1, 2 * c + 1))
            / 4.0
    });
    (fine, coarse, tile)
}

/// The E4 workload: per-component fuzzy score lists for SPROC.
pub fn sproc_workload(seed: u64, components: usize, objects: usize) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..components)
        .map(|_| (0..objects).map(|_| next()).collect())
        .collect()
}

/// The E5/E6 workload: the full HPS world — co-registered scene + DEM
/// pyramids, the published model, and its progressive decomposition.
pub fn hps_world(
    seed: u64,
    rows: usize,
    cols: usize,
) -> (Vec<AggregatePyramid>, HpsRiskModel, ProgressiveLinearModel) {
    let scene = SyntheticScene::new(seed, rows, cols).generate();
    let dem = Dem::synthetic(seed + 1, rows, cols, 0.0, 2500.0);
    let pyramids: Vec<AggregatePyramid> = vec![
        AggregatePyramid::build(scene.band(BandId::TM4).expect("band present")),
        AggregatePyramid::build(scene.band(BandId::TM5).expect("band present")),
        AggregatePyramid::build(scene.band(BandId::TM7).expect("band present")),
        AggregatePyramid::build(dem.grid()),
    ];
    let model = HpsRiskModel::paper();
    let ranges: Vec<(f64, f64)> = pyramids
        .iter()
        .map(|p| {
            let root = p.root();
            (root.min, root.max)
        })
        .collect();
    let progressive =
        ProgressiveLinearModel::new(model.model().clone(), &ranges).expect("ranges match arity");
    (pyramids, model, progressive)
}

/// The R1 workload: the HPS world with its base bands additionally held
/// in paged [`TileStore`]s, for the resilience benches and the
/// repro-under-fault experiment. The stores carry no faults; callers
/// attach profiles with [`TileStore::with_faults`].
pub fn hps_paged_world(
    seed: u64,
    rows: usize,
    cols: usize,
    tile: usize,
) -> (
    Vec<AggregatePyramid>,
    Vec<TileStore>,
    HpsRiskModel,
    ProgressiveLinearModel,
) {
    let scene = SyntheticScene::new(seed, rows, cols).generate();
    let dem = Dem::synthetic(seed + 1, rows, cols, 0.0, 2500.0);
    let bands: Vec<Grid2<f64>> = vec![
        scene.band(BandId::TM4).expect("band present").clone(),
        scene.band(BandId::TM5).expect("band present").clone(),
        scene.band(BandId::TM7).expect("band present").clone(),
        dem.grid().clone(),
    ];
    let pyramids: Vec<AggregatePyramid> = bands.iter().map(AggregatePyramid::build).collect();
    let stores: Vec<TileStore> = bands
        .into_iter()
        .map(|b| TileStore::new(b, tile).expect("valid tile size"))
        .collect();
    let model = HpsRiskModel::paper();
    let ranges: Vec<(f64, f64)> = pyramids
        .iter()
        .map(|p| {
            let root = p.root();
            (root.min, root.max)
        })
        .collect();
    let progressive =
        ProgressiveLinearModel::new(model.model().clone(), &ranges).expect("ranges match arity");
    (pyramids, stores, model, progressive)
}

/// The R2 workload: a rough (low-coherence) multi-band world whose pyramid
/// descent cannot prune aggressively, so the frontier is wide and the
/// parallel engines have real work to split. Bands are also held in paged
/// [`TileStore`]s sharing one [`AccessStats`] so batch runs can report
/// cache hit rates.
pub fn parallel_world(
    seed: u64,
    side: usize,
    arity: usize,
    tile: usize,
) -> (
    Vec<AggregatePyramid>,
    LinearModel,
    Vec<TileStore>,
    mbir_archive::stats::AccessStats,
) {
    let bands: Vec<Grid2<f64>> = (0..arity)
        .map(|i| {
            GaussianField::new(seed + i as u64)
                .with_roughness(0.85)
                .generate(side, side)
                .normalized(0.0, 100.0)
        })
        .collect();
    let pyramids: Vec<AggregatePyramid> = bands.iter().map(AggregatePyramid::build).collect();
    let stats = mbir_archive::stats::AccessStats::new();
    let stores: Vec<TileStore> = bands
        .into_iter()
        .map(|b| {
            TileStore::new(b, tile)
                .expect("valid tile size")
                .with_stats(stats.clone())
        })
        .collect();
    // Mixed-sign coefficients: no single band dominates, which keeps the
    // level bounds loose and the descent busy.
    let coeffs: Vec<f64> = (0..arity)
        .map(|i| match i % 4 {
            0 => 1.0,
            1 => -0.8,
            2 => 0.6,
            _ => -0.4,
        })
        .collect();
    let model = LinearModel::new(coeffs, 0.0).expect("valid coefficients");
    (pyramids, model, stores, stats)
}

/// The R4 chaos world: N independent replicas of the HPS paged archive
/// (the `hps_paged_world` bands), each replica group sharing one stats
/// handle, plus the pyramids and risk model. Replicas hold bit-identical
/// data — corruption and loss are injected per replica by the caller.
#[allow(clippy::type_complexity)]
pub fn replicated_world(
    seed: u64,
    rows: usize,
    cols: usize,
    tile: usize,
    replicas: usize,
) -> (
    Vec<AggregatePyramid>,
    HpsRiskModel,
    Vec<(Vec<TileStore>, mbir_archive::stats::AccessStats)>,
) {
    let scene = SyntheticScene::new(seed, rows, cols).generate();
    let dem = Dem::synthetic(seed + 1, rows, cols, 0.0, 2500.0);
    let bands: Vec<Grid2<f64>> = vec![
        scene.band(BandId::TM4).expect("band present").clone(),
        scene.band(BandId::TM5).expect("band present").clone(),
        scene.band(BandId::TM7).expect("band present").clone(),
        dem.grid().clone(),
    ];
    let pyramids: Vec<AggregatePyramid> = bands.iter().map(AggregatePyramid::build).collect();
    let groups: Vec<(Vec<TileStore>, mbir_archive::stats::AccessStats)> = (0..replicas)
        .map(|_| {
            let stats = mbir_archive::stats::AccessStats::new();
            let stores: Vec<TileStore> = bands
                .iter()
                .map(|b| {
                    TileStore::new(b.clone(), tile)
                        .expect("valid tile size")
                        .with_stats(stats.clone())
                })
                .collect();
            (stores, stats)
        })
        .collect();
    (pyramids, HpsRiskModel::paper(), groups)
}

/// One shard of the R6 fault-domain world: the shard's band pyramids plus
/// N replica store groups over the same band (each group shares one stats
/// handle — one tick clock and page ledger per replica).
pub struct ShardWorld {
    /// Per-attribute pyramids built over the shard's row band.
    pub pyramids: Vec<AggregatePyramid>,
    /// Replica groups: each a full set of band stores plus the group's
    /// shared access stats. Faults are injected per group by the caller.
    pub groups: Vec<(Vec<TileStore>, mbir_archive::stats::AccessStats)>,
    /// First global row of the shard's band.
    pub row_offset: usize,
}

/// The R6 scatter-gather world: the HPS archive split into tile-aligned
/// row-band shards by a [`ShardPlan`](mbir_archive::shard::ShardPlan),
/// each shard an independent failure domain with its own band pyramids
/// and its own replica groups. Also returns the unsharded global pyramids
/// (the bit-identity reference) and the plan itself.
#[allow(clippy::type_complexity)]
pub fn sharded_world(
    seed: u64,
    rows: usize,
    cols: usize,
    tile: usize,
    shards: usize,
    replicas: usize,
) -> (
    Vec<AggregatePyramid>,
    HpsRiskModel,
    Vec<ShardWorld>,
    mbir_archive::shard::ShardPlan,
) {
    let plan = mbir_archive::shard::ShardPlan::row_bands(rows, cols, shards, tile)
        .expect("valid shard plan");
    let (global_pyramids, model, worlds) = sharded_world_for_plan(seed, &plan, replicas);
    (global_pyramids, model, worlds, plan)
}

/// The HPS attribute grids (TM4/TM5/TM7 reflectances plus elevation) the
/// sharded worlds are built from — deterministic in `seed`.
pub fn hps_attribute_grids(seed: u64, rows: usize, cols: usize) -> Vec<Grid2<f64>> {
    let scene = SyntheticScene::new(seed, rows, cols).generate();
    let dem = Dem::synthetic(seed + 1, rows, cols, 0.0, 2500.0);
    vec![
        scene.band(BandId::TM4).expect("band present").clone(),
        scene.band(BandId::TM5).expect("band present").clone(),
        scene.band(BandId::TM7).expect("band present").clone(),
        dem.grid().clone(),
    ]
}

/// Like [`sharded_world`], but over a caller-supplied [`ShardPlan`](mbir_archive::shard::ShardPlan)
/// — the R9 resharding harness uses this to build the *destination*
/// topology directly as the bit-identity reference for a completed
/// migration.
#[allow(clippy::type_complexity)]
pub fn sharded_world_for_plan(
    seed: u64,
    plan: &mbir_archive::shard::ShardPlan,
    replicas: usize,
) -> (Vec<AggregatePyramid>, HpsRiskModel, Vec<ShardWorld>) {
    let (rows, cols) = plan.shape();
    let tile = plan.tile_size();
    let bands = hps_attribute_grids(seed, rows, cols);
    let global_pyramids: Vec<AggregatePyramid> =
        bands.iter().map(AggregatePyramid::build).collect();
    let worlds = plan
        .bands()
        .iter()
        .map(|band| {
            let slices: Vec<Grid2<f64>> = bands
                .iter()
                .map(|b| plan.extract_band(b, band.shard).expect("band in range"))
                .collect();
            let groups = (0..replicas)
                .map(|_| {
                    let stats = mbir_archive::stats::AccessStats::new();
                    let stores: Vec<TileStore> = slices
                        .iter()
                        .map(|s| {
                            TileStore::new(s.clone(), tile)
                                .expect("valid tile size")
                                .with_stats(stats.clone())
                        })
                        .collect();
                    (stores, stats)
                })
                .collect();
            ShardWorld {
                pyramids: slices.iter().map(AggregatePyramid::build).collect(),
                groups,
                row_offset: band.row_offset,
            }
        })
        .collect();
    (global_pyramids, HpsRiskModel::paper(), worlds)
}

/// A wide linear model (many attributes, skewed coefficients) over smooth
/// fields — the regime where progressive-model staging pays off; used by
/// the E6 ablation.
pub fn wide_model_world(
    seed: u64,
    rows: usize,
    cols: usize,
    arity: usize,
) -> (Vec<AggregatePyramid>, LinearModel, ProgressiveLinearModel) {
    let pyramids: Vec<AggregatePyramid> = (0..arity)
        .map(|i| {
            AggregatePyramid::build(
                &GaussianField::new(seed + i as u64)
                    .with_roughness(0.4)
                    .generate(rows, cols)
                    .normalized(0.0, 100.0),
            )
        })
        .collect();
    // Geometrically decaying coefficients: a few dominate.
    let coeffs: Vec<f64> = (0..arity).map(|i| 2.0 * 0.5f64.powi(i as i32)).collect();
    let model = LinearModel::new(coeffs, 0.0).expect("valid coefficients");
    let ranges: Vec<(f64, f64)> = pyramids
        .iter()
        .map(|p| {
            let root = p.root();
            (root.min, root.max)
        })
        .collect();
    let progressive =
        ProgressiveLinearModel::new(model.clone(), &ranges).expect("ranges match arity");
    (pyramids, model, progressive)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        let (a, _) = onion_workload(1, 100);
        let (b, _) = onion_workload(1, 100);
        assert_eq!(a, b);
        assert_eq!(sproc_workload(2, 3, 10), sproc_workload(2, 3, 10));
        let (qa, da) = quant_workload(7, 50, 8);
        let (qb, db) = quant_workload(7, 50, 8);
        assert_eq!(qa, qb);
        assert_eq!(da, db);
        assert_eq!(qa[0].len(), 8);
        assert_eq!(da.len(), 8);
    }

    #[test]
    fn hps_world_shapes_agree() {
        let (pyramids, model, prog) = hps_world(5, 32, 32);
        assert_eq!(pyramids.len(), model.model().arity());
        assert_eq!(prog.stages(), 4);
        assert_eq!(pyramids[0].base_shape(), (32, 32));
    }

    #[test]
    fn texture_world_has_planted_patch() {
        let (fine, coarse, tile) = texture_world(3, 128, 16);
        assert_eq!(fine.rows(), 128);
        assert_eq!(coarse.rows(), 64);
        assert_eq!(tile, 16);
        // The planted patch has a higher mean than the background.
        let patch = fine
            .window(mbir_archive::extent::CellCoord::new(6 * 16, 7 * 16), 16, 16)
            .unwrap();
        assert!(patch.mean() > fine.mean() + 20.0);
    }

    #[test]
    fn parallel_world_is_deterministic_and_paged() {
        let (pyr_a, model_a, stores_a, _) = parallel_world(29, 64, 4, 16);
        let (pyr_b, model_b, _, _) = parallel_world(29, 64, 4, 16);
        assert_eq!(model_a.coefficients(), model_b.coefficients());
        assert_eq!(pyr_a.len(), 4);
        for (a, b) in pyr_a.iter().zip(&pyr_b) {
            assert_eq!(a.root().mean, b.root().mean);
        }
        assert_eq!(stores_a.len(), 4);
        assert!(stores_a[0].page_count() > 1);
    }

    #[test]
    fn wide_model_coefficients_decay() {
        let (_, model, prog) = wide_model_world(1, 16, 16, 8);
        let c = model.coefficients();
        assert!(c[0] > c[7] * 50.0);
        assert_eq!(prog.term_order()[0], 0);
    }
}
