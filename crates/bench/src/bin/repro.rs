//! Regenerates every experiment table of the paper reproduction.
//!
//! Usage: `repro [e1|e2|e3|e4|e5|e6|e7|f1|f3|f4|f5|a1|a2|r1|r2|r3|r4|r5|r6|r7|r8|r9|r10|all]
//! [--threads N] [--legacy] [--seed N] [--load L] [--shards S]
//! [--kill-shards F] [--small]` (default: all). Output is
//! Markdown, pasted into EXPERIMENTS.md. The R2 experiment additionally
//! writes machine-readable scaling numbers to `BENCH_parallel.json`;
//! `--threads N` caps the thread counts it sweeps (default: the pool's
//! detected parallelism). The R3 experiment writes kernel-vs-legacy
//! throughput to `BENCH_kernels.json`; `--legacy` makes it measure and print
//! only the legacy paths without touching the JSON. The R4 chaos harness
//! composes corruption + transient + latency + replica-kill fault cocktails
//! over a replicated HPS archive (`--seed N` picks the cocktail, default 7),
//! asserts the soundness and <2% checksum-overhead gates, and writes
//! `BENCH_chaos.json`. The R5 overload harness drives a mixed-priority query
//! storm through the admission controller over a replicated archive with
//! hedged reads (`--load L` scales submissions per service cycle, default
//! 4), asserts that completed queries are bit-identical to unloaded runs at
//! every thread count, and writes `BENCH_overload.json`. The R6 shard harness
//! scatter-gathers over a row-band-sharded archive: healthy runs must be
//! bit-identical to the unsharded resilient engine for shards ∈ {1, 4, 16}
//! and threads ∈ {1, 2, 4, 8}; `--shards S --kill-shards F` then kills F
//! whole fault domains (always including the winner's) and gates on zero
//! wrong answers, sound bounds, typed `InsufficientShards` quorum errors,
//! and straggler hedging, writing `BENCH_shard.json`. The R7 quantization
//! harness sweeps the i8 coarse-pass scan over d ∈ {2, 3, 8} x n ∈ {10k,
//! 100k, 1M}, measures the pruned Onion query against the legacy and flat
//! kernel paths at the E1 scale (gating on >= 2x over legacy), checks the
//! core engines' CoarseGrid pass for bit-identity at threads ∈ {1, 2, 4,
//! 8}, and rewrites `BENCH_kernels.json` at `schema_version` 2 with a
//! per-variant `configs` array of throughput and prune rates. The R8
//! batched-execution harness scatter-gathers a Q=32 batch over a
//! 10.5M-cell, 16-shard archive through one shared per-shard descent,
//! asserts per-query bit-identity against 32 independent scatter-gather
//! runs, gates on >= 3x fewer pages and >= 2x aggregate throughput,
//! surfaces the page-cache hit/miss/dedup counters, and writes
//! `BENCH_batch.json`; `--small` shrinks the world for CI (identity
//! still asserted, the perf gates become informational). The R9 resharding
//! harness drives an epoch-fenced live topology change (splitting the
//! winner's band) through Planned → Copying → DualRead → CutOver →
//! Retired with chaos injected in every state, gating on healthy
//! bit-identity to both the pre-migration plan and a directly built
//! destination topology, zero wrong answers under copy faults and
//! shard kills, typed epoch fencing, and a wall-deadline abort that
//! rolls back bit-identically; writes `BENCH_reshard.json`. The R10
//! append harness crashes the journal writer at *every* byte offset of a
//! multi-commit journal — plus torn-write and partial-record cuts inside
//! every frame — and gates on each recovery being bit-identical (journal
//! bytes, grids, pyramids, snapshot) to a freshly built archive of the
//! committed prefix; it then drives live appends under concurrent
//! queries, gating on snapshot answers bit-identical to clean archives of
//! the same epoch at threads ∈ {1, 2, 4, 8} and shards ∈ {1, 4} with zero
//! wrong answers, checks epoch-keyed cache invalidation only touches the
//! append frontier, replays a standing continuous query across a crash,
//! and writes `BENCH_append.json`; `--small` shrinks the sweep for CI.

use mbir_archive::fault::{FaultProfile, ResilienceConfig, RetryPolicy};
use mbir_archive::grid::Grid2;
use mbir_archive::synth::OccurrenceSampler;
use mbir_archive::tile::TileStore;
use mbir_archive::weather::WeatherGenerator;
use mbir_archive::welllog::WellLog;
use mbir_bench::{
    classification_world, hps_paged_world, hps_world, onion_workload, parallel_world,
    quant_workload, replicated_world, sharded_world, sharded_world_for_plan, sproc_workload,
    texture_world, wide_model_world,
};
use mbir_core::coarse::CoarseGrid;
use mbir_core::engine::{combined_top_k, naive_grid_top_k, pyramid_top_k, staged_top_k};
use mbir_core::lifecycle::{
    AdmissionController, AdmissionPolicy, CancelToken, ClassCounters, LifecycleState, Priority,
    SessionId,
};
use mbir_core::metrics::{
    degradation_summary, merge_shard_summaries, precision_recall_at_k, scaling_table,
    sharded_degradation_summary, threshold_sweep,
};
use mbir_core::parallel::{
    grid_query_with_source, par_pyramid_top_k, par_resilient_top_k, par_resilient_top_k_coarse,
    par_staged_top_k, QueryBatch, WorkerPool,
};
use mbir_core::query::{Objective, TopKQuery};
use mbir_core::replica::{ReplicaConfig, ReplicatedSource};
use mbir_core::resilient::{
    resilient_top_k, resilient_top_k_cancellable, resilient_top_k_coarse, BudgetStop,
    ExecutionBudget,
};
use mbir_core::shard::{
    batched_scatter_gather_top_k, scatter_gather_top_k, ArchiveShard, ScatterPolicy, ShardError,
    ShardOutcome, ShardedArchive,
};
use mbir_core::source::{CachedTileSource, CellSource, TileSource};
use mbir_core::workflow::{run_workflow, WorkflowConfig};
use mbir_index::onion::OnionIndex;
use mbir_index::quant::QuantizedStore;
use mbir_index::rstar::RStarTree;
use mbir_index::scan::{scan_top_k, scan_top_k_flat, scan_top_k_quant};
use mbir_index::sproc::SprocIndex;
use mbir_index::store::PointStore;
use mbir_models::bayes::hps_net::{hps_network, risk_given_observations};
use mbir_models::fsm::fire_ants::screened_fly_detection;
use mbir_models::knowledge::geology::RiverbedModel;
use mbir_models::linear::{LinearModel, ProgressiveLinearModel};
use mbir_progressive::features::{progressive_texture_match, tile_features, TileFeatures};
use mbir_progressive::pyramid::AggregatePyramid;
use std::time::Instant;

fn main() {
    let mut which = "all".to_owned();
    let mut threads: Option<usize> = None;
    let mut legacy_only = false;
    let mut seed = 7u64;
    let mut load = 4usize;
    let mut shards = 4usize;
    let mut kill_shards = 1usize;
    let mut small = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threads" {
            threads = args.get(i + 1).and_then(|v| v.parse().ok());
            if threads.is_none() {
                eprintln!("--threads needs a positive integer");
                std::process::exit(2);
            }
            i += 2;
        } else if args[i] == "--seed" {
            match args.get(i + 1).and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed needs a non-negative integer");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else if args[i] == "--load" {
            match args.get(i + 1).and_then(|v| v.parse().ok()) {
                Some(l) if l > 0 => load = l,
                _ => {
                    eprintln!("--load needs a positive integer");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else if args[i] == "--shards" {
            match args.get(i + 1).and_then(|v| v.parse().ok()) {
                Some(s) if s > 0 => shards = s,
                _ => {
                    eprintln!("--shards needs a positive integer");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else if args[i] == "--kill-shards" {
            match args.get(i + 1).and_then(|v| v.parse().ok()) {
                Some(f) => kill_shards = f,
                None => {
                    eprintln!("--kill-shards needs a positive integer");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else if args[i] == "--legacy" {
            legacy_only = true;
            i += 1;
        } else if args[i] == "--small" {
            small = true;
            i += 1;
        } else {
            which = args[i].clone();
            i += 1;
        }
    }
    let threads = threads.unwrap_or_else(|| WorkerPool::with_default_parallelism().threads());
    let run = |name: &str| which == "all" || which == name;
    if run("e1") {
        e1_onion();
    }
    if run("e2") {
        e2_progressive_classification();
    }
    if run("e3") {
        e3_progressive_texture();
    }
    if run("e4") {
        e4_sproc();
    }
    if run("e5") {
        e5_accuracy();
    }
    if run("e6") {
        e6_combined_speedup();
    }
    if run("e7") {
        e7_rstar_baseline();
    }
    if run("f1") {
        f1_fire_ants();
    }
    if run("f3") {
        f3_hps_network();
    }
    if run("f4") {
        f4_geology();
    }
    if run("f5") {
        f5_workflow();
    }
    if run("a1") {
        a1_onion_ablation();
    }
    if run("a2") {
        a2_coherence_ablation();
    }
    if run("r1") {
        r1_resilience();
    }
    if run("r2") {
        r2_parallel(threads);
    }
    if run("r3") {
        r3_kernels(legacy_only);
    }
    if run("r4") {
        r4_chaos(seed);
    }
    if run("r5") {
        r5_overload(seed, load);
    }
    if run("r6") {
        if kill_shards == 0 || kill_shards >= shards {
            eprintln!("--kill-shards must be in 1..shards (the chaos gate needs a victim)");
            std::process::exit(2);
        }
        r6_shard(seed, shards, kill_shards);
    }
    if run("r7") {
        r7_quant(seed);
    }
    if run("r8") {
        r8_batch(seed, threads, small);
    }
    if run("r9") {
        r9_reshard(seed);
    }
    if run("r10") {
        r10_append(seed, small);
    }
}

/// Delegating source that cancels `token` once the inner source's
/// cumulative page counter reaches `after` — the storm's deterministic
/// "client hangs up mid-query" injection, at page granularity.
struct CancelAtPage<'a, S: CellSource> {
    inner: &'a S,
    token: CancelToken,
    after: u64,
}

impl<S: CellSource> CellSource for CancelAtPage<'_, S> {
    fn base_cell(
        &self,
        attr: usize,
        row: usize,
        col: usize,
    ) -> Result<f64, mbir_archive::error::ArchiveError> {
        let v = self.inner.base_cell(attr, row, col);
        if self.inner.pages_read() >= self.after {
            self.token.cancel();
        }
        v
    }
    fn page_of(&self, row: usize, col: usize) -> Option<usize> {
        self.inner.page_of(row, col)
    }
    fn pages_read(&self) -> u64 {
        self.inner.pages_read()
    }
    fn ticks_elapsed(&self) -> u64 {
        self.inner.ticks_elapsed()
    }
}

/// Index of `p` (0..=1) into an ascending sample; 0 when empty.
fn percentile_ticks(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// R5 — overload harness: a mixed-priority query storm over a 2-way
/// replicated HPS archive, driven through the admission controller on the
/// simulated tick clock. Replica 0 drags every page so hedged reads fire
/// and the fast replica wins the race; queued BestEffort work is shed
/// with a typed `Overloaded` error once the backlog policy trips; some
/// clients hang up while queued and some mid-query (cooperative
/// cancellation). Asserts the zero-wrong-answers gate — every query that
/// completes is bit-identical to the unloaded answer, re-verified with
/// the parallel engine at 1/2/4/8 threads — and that hedging never
/// double-counts replica health. Writes `BENCH_overload.json`.
fn r5_overload(seed: u64, load: usize) {
    println!(
        "\n## R5 — Overload harness: admission, cancellation, hedged reads (seed {seed}, load {load})\n"
    );
    let (rows, cols, tile, n_replicas) = (128usize, 128usize, 16usize, 2usize);
    let (pyramids, model, groups) = replicated_world(seed, rows, cols, tile, n_replicas);
    let page_count = groups[0].0[0].page_count();
    let max_k = 5usize;
    let strict: Vec<_> = (1..=max_k)
        .map(|kq| pyramid_top_k(model.model(), &pyramids, kq).expect("valid inputs"))
        .collect();
    let budget = ExecutionBudget::unlimited();

    let page_mix = |x: usize, salt: u64| -> u64 {
        seed.wrapping_add(salt)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(x as u64)
            .wrapping_mul(0x5851_f42d_4c95_7f2d)
            >> 32
    };
    let prio_of = |i: usize| match page_mix(i, 10) % 3 {
        0 => Priority::Interactive,
        1 => Priority::Batch,
        _ => Priority::BestEffort,
    };
    let k_of = |i: usize| 1 + (page_mix(i, 11) as usize) % max_k;

    // Replica 0 drags every page (latency 3 -> 4 ticks per load), replica
    // 1 is fast (1 tick). With a 2-tick hedge delay every cold primary
    // load hedges and the backup's 3-tick finish beats the primary's 4.
    let drag = (0..page_count).fold(FaultProfile::new(seed), |p, pg| p.latency(pg, 3));
    let storm_groups: Vec<Vec<TileStore>> = groups
        .iter()
        .enumerate()
        .map(|(gi, (stores, _))| {
            stores
                .iter()
                .map(|s| {
                    if gi == 0 {
                        s.clone().with_faults(drag.clone())
                    } else {
                        s.clone()
                    }
                })
                .collect()
        })
        .collect();
    // A deliberately small cache keeps the storm I/O-bound: hot pages
    // churn through the LRU, every cold reload re-races the replicas, and
    // queue wait shows up in the simulated latency percentiles.
    let config = ReplicaConfig::default()
        .with_cache_pages((page_count / 8).max(1))
        .with_hedge_after_ticks(2);
    let src = ReplicatedSource::new(storm_groups.iter().map(|g| g.as_slice()).collect(), config)
        .expect("aligned replicas");
    // The storm's clock: simulated I/O ticks accumulated across both
    // replica groups (hedged losers still burned their ticks).
    let clock = || -> u64 { groups.iter().map(|(_, st)| st.ticks_elapsed()).sum() };

    let policy = AdmissionPolicy::default()
        .with_max_in_flight(2)
        .with_max_queue_depth(8)
        .with_max_queued_ticks(256)
        .with_expected_ticks_per_query(64);
    let capacity = policy.max_in_flight;
    let ctl = AdmissionController::new(policy);

    // The storm: every round submits `load` queries and services at most
    // `capacity`, so load > capacity grows the backlog until the policy
    // sheds BestEffort work.
    let n_queries = 24 * load;
    let mut next = 0usize;
    let mut outstanding: Vec<(SessionId, usize, u64)> = Vec::new();
    let mut latencies: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut wrong = 0usize;
    let mut round = 0u64;
    while next < n_queries || ctl.queue_depth() > 0 {
        for _ in 0..load {
            if next >= n_queries {
                break;
            }
            let i = next;
            next += 1;
            match ctl.submit(prio_of(i), clock()) {
                Ok(id) => outstanding.push((id, i, round)),
                // Shed fail-fast: the typed error is the whole cost — no
                // session, no token, no engine work.
                Err(_overloaded) => {}
            }
        }
        // Impatient clients give up while still queued.
        for &(id, i, submitted_round) in &outstanding {
            if ctl.state(id) == Some(LifecycleState::Queued)
                && round >= submitted_round + 2
                && page_mix(i, 12) % 8 == 5
            {
                ctl.cancel(id, clock());
            }
        }
        // One service cycle: up to `capacity` admitted queries run.
        for _ in 0..capacity {
            let Some(id) = ctl.try_admit(clock()) else {
                break;
            };
            let (_, i, _) = *outstanding
                .iter()
                .find(|(sid, _, _)| *sid == id)
                .expect("admitted session is tracked");
            let kq = k_of(i);
            let token = ctl.begin(id);
            let r = match page_mix(i, 13) % 8 {
                // Client hung up before the engine started.
                1 => {
                    token.cancel();
                    resilient_top_k_cancellable(model.model(), &pyramids, kq, &src, &budget, &token)
                        .expect("never aborts")
                }
                // Client hangs up a page or two into the run.
                2 => {
                    let wrapped = CancelAtPage {
                        inner: &src,
                        token: token.clone(),
                        after: src.pages_read() + 1 + page_mix(i, 14) % 4,
                    };
                    resilient_top_k_cancellable(
                        model.model(),
                        &pyramids,
                        kq,
                        &wrapped,
                        &budget,
                        &token,
                    )
                    .expect("never aborts")
                }
                _ => {
                    resilient_top_k_cancellable(model.model(), &pyramids, kq, &src, &budget, &token)
                        .expect("never aborts")
                }
            };
            if r.budget_stop == Some(BudgetStop::Cancelled) {
                ctl.cancel(id, clock());
            } else {
                ctl.complete(id, clock());
                // Zero-wrong-answers gate: a completed query under
                // overload is the unloaded answer, bit for bit.
                let want = &strict[kq - 1];
                let identical = r.completeness == 1.0
                    && r.results.len() == want.results.len()
                    && r.results
                        .iter()
                        .zip(&want.results)
                        .all(|(a, b)| a.cell == b.cell && a.score == b.score && a.exact);
                if !identical {
                    wrong += 1;
                }
                let info = ctl.session(id).expect("completed session");
                let lat = info
                    .finished_at
                    .expect("completed session has a finish time")
                    .saturating_sub(info.queued_at);
                latencies[prio_of(i).index()].push(lat);
            }
        }
        outstanding.retain(|&(id, _, _)| {
            !matches!(
                ctl.state(id),
                Some(LifecycleState::Done) | Some(LifecycleState::Cancelled)
            )
        });
        round += 1;
    }
    assert_eq!(wrong, 0, "overload must never change a completed answer");
    assert!(outstanding.is_empty(), "storm drained every session");

    // Hedging accounting: replica 0 (the laggard) never wins a race and
    // is never charged for a cancelled hedge loser — its health ledger
    // stays empty while the fast replica absorbs the served pages.
    let hedged_reads = src.hedged_reads();
    assert!(hedged_reads > 0, "the dragging replica must trigger hedges");
    let health = src.replica_health();
    assert_eq!(
        (health[0].pages_served, health[0].failures),
        (0, 0),
        "hedge losers must leave no health record"
    );
    assert!(health[1].pages_served > 0);

    // Per-class accounting closes: every submission was shed, cancelled,
    // or completed, and only BestEffort was ever shed.
    let counters: Vec<ClassCounters> = Priority::ALL.iter().map(|p| ctl.counters(*p)).collect();
    for (p, c) in Priority::ALL.iter().zip(&counters) {
        assert_eq!(
            c.submitted,
            c.shed + c.cancelled + c.completed,
            "{p} ledger must close"
        );
    }
    assert_eq!(counters[0].shed, 0, "interactive work is never shed");
    assert_eq!(counters[1].shed, 0, "batch work is never shed");
    if load > capacity {
        assert!(
            counters[2].shed > 0,
            "sustained load {load} over capacity {capacity} must shed best-effort work"
        );
    }
    let total_submitted: u64 = counters.iter().map(|c| c.submitted).sum();
    assert_eq!(total_submitted, n_queries as u64);

    // Thread invariance of completed answers: the same queries on fresh
    // replicas (same drag profile, no storm) at 1/2/4/8 threads.
    let mut thread_invariant = true;
    for kq in 1..=max_k {
        for threads in [1usize, 2, 4, 8] {
            let fresh_groups: Vec<Vec<TileStore>> = groups
                .iter()
                .enumerate()
                .map(|(gi, (stores, _))| {
                    stores
                        .iter()
                        .map(|s| {
                            if gi == 0 {
                                s.clone().with_faults(drag.clone())
                            } else {
                                s.clone()
                            }
                        })
                        .collect()
                })
                .collect();
            let config = ReplicaConfig::default()
                .with_cache_pages(page_count)
                .with_hedge_after_ticks(2);
            let fresh_src =
                ReplicatedSource::new(fresh_groups.iter().map(|g| g.as_slice()).collect(), config)
                    .expect("aligned replicas");
            let pool = WorkerPool::new(threads);
            let par = par_resilient_top_k(model.model(), &pyramids, kq, &fresh_src, &budget, &pool)
                .expect("healthy run");
            let want = &strict[kq - 1];
            thread_invariant &= par.completeness == 1.0
                && par
                    .results
                    .iter()
                    .zip(&want.results)
                    .all(|(a, b)| a.cell == b.cell && a.score == b.score && a.exact);
        }
    }
    assert!(
        thread_invariant,
        "completed answers must be bit-identical at every thread count"
    );

    let sorted: Vec<Vec<u64>> = latencies
        .iter()
        .map(|l| {
            let mut l = l.clone();
            l.sort_unstable();
            l
        })
        .collect();
    println!("| class | submitted | shed | cancelled | completed | p50 ticks | p99 ticks |");
    println!("|---|---|---|---|---|---|---|");
    for (p, c) in Priority::ALL.iter().zip(&counters) {
        let s = &sorted[p.index()];
        println!(
            "| {p} | {} | {} | {} | {} | {} | {} |",
            c.submitted,
            c.shed,
            c.cancelled,
            c.completed,
            percentile_ticks(s, 0.50),
            percentile_ticks(s, 0.99),
        );
    }
    let cancelled_total: u64 = counters.iter().map(|c| c.cancelled).sum();
    let shed_total: u64 = counters.iter().map(|c| c.shed).sum();
    // One unloaded reference run carries the storm's lifecycle counters
    // into the shared degradation-summary shape.
    let unloaded =
        resilient_top_k(model.model(), &pyramids, max_k, &src, &budget).expect("healthy run");
    let summary =
        degradation_summary(&unloaded).with_lifecycle(shed_total, cancelled_total, hedged_reads);
    println!(
        "\nzero wrong answers: yes; thread-invariant at 1/2/4/8: yes; \
         hedged reads {}; shed {}; cancelled {} (summary counters: {}/{}/{}).",
        hedged_reads,
        shed_total,
        cancelled_total,
        summary.shed_queries,
        summary.cancelled_queries,
        summary.hedged_reads,
    );

    // Machine-readable output (hand-rolled JSON; std only).
    let class_json = |p: Priority| -> String {
        let c = &counters[p.index()];
        let s = &sorted[p.index()];
        format!(
            "{{\"submitted\":{},\"shed\":{},\"cancelled\":{},\"completed\":{},\
             \"p50_ticks\":{},\"p99_ticks\":{}}}",
            c.submitted,
            c.shed,
            c.cancelled,
            c.completed,
            percentile_ticks(s, 0.50),
            percentile_ticks(s, 0.99),
        )
    };
    let json = format!(
        "{{\n  \"experiment\": \"r5_overload\",\n  \"seed\": {seed},\n  \"load\": {load},\n  \
         \"world\": {{\"rows\": {rows}, \"cols\": {cols}, \"tile\": {tile}, \"replicas\": \
         {n_replicas}, \"pages\": {page_count}}},\n  \"policy\": {{\"max_in_flight\": {}, \
         \"max_queue_depth\": {}, \"max_queued_ticks\": {}, \"expected_ticks_per_query\": {}}},\n  \
         \"queries\": {n_queries},\n  \"zero_wrong_answers\": true,\n  \
         \"thread_invariant\": {thread_invariant},\n  \"hedged_reads\": {hedged_reads},\n  \
         \"per_priority\": {{\n    \"interactive\": {},\n    \"batch\": {},\n    \
         \"best_effort\": {}\n  }}\n}}\n",
        ctl.policy().max_in_flight,
        ctl.policy().max_queue_depth,
        ctl.policy().max_queued_ticks,
        ctl.policy().expected_ticks_per_query,
        class_json(Priority::Interactive),
        class_json(Priority::Batch),
        class_json(Priority::BestEffort),
    );
    match std::fs::write("BENCH_overload.json", &json) {
        Ok(()) => println!("\nwrote BENCH_overload.json"),
        Err(e) => eprintln!("\ncould not write BENCH_overload.json: {e}"),
    }
}

/// R4 — chaos harness: a 3-way replicated, checksummed HPS archive under
/// composed fault cocktails (silent corruption + transient flakes +
/// latency + a full replica kill) with a fixed seed. Asserts the gates:
/// healthy replicated runs are bit-identical to the direct path with <2%
/// end-to-end checksum overhead; masked chaos leaves the top-K unchanged;
/// unmasked chaos degrades with bounds that still contain the true score;
/// an expired wall deadline degrades identically at every thread count.
/// Writes `BENCH_chaos.json`.
fn r4_chaos(seed: u64) {
    println!("\n## R4 — Chaos harness: replicated integrity under composed faults (seed {seed})\n");
    let (rows, cols, tile, k, n_replicas) = (256usize, 256usize, 16usize, 10usize, 3usize);
    let (pyramids, model, groups) = replicated_world(seed, rows, cols, tile, n_replicas);
    let page_count = groups[0].0[0].page_count();
    let strict = pyramid_top_k(model.model(), &pyramids, k).expect("valid inputs");
    let truth = strict.results[0].score;
    let budget = ExecutionBudget::unlimited();

    // Fresh stores per run (fault schedules and caches are consumable):
    // one optional profile per replica, plus 2 internal retries so
    // healing transients stay invisible below the failover layer.
    let fresh = |profiles: &[Option<&FaultProfile>]| -> Vec<Vec<TileStore>> {
        groups
            .iter()
            .zip(profiles)
            .map(|((stores, _), prof)| {
                stores
                    .iter()
                    .map(|s| match prof {
                        Some(p) => s
                            .clone()
                            .with_faults((*p).clone())
                            .with_resilience(ResilienceConfig::new(RetryPolicy::retries(2), None)),
                        None => s.clone(),
                    })
                    .collect()
            })
            .collect()
    };
    fn source_of<'a>(
        groups: &'a [Vec<TileStore>],
        cache_pages: usize,
        verify: bool,
    ) -> ReplicatedSource<'a> {
        let mut config = ReplicaConfig::default().with_cache_pages(cache_pages);
        if !verify {
            config = config.without_verification();
        }
        ReplicatedSource::new(groups.iter().map(|g| g.as_slice()).collect(), config)
            .expect("aligned replicas")
    }

    // Gate 1: with every replica healthy the checksummed replicated path
    // is bit-identical to the direct source, and checksumming costs <2%
    // of the end-to-end query.
    let healthy = fresh(&[None, None, None]);
    let direct = TileSource::new(&healthy[0]).expect("aligned stores");
    let reference =
        resilient_top_k(model.model(), &pyramids, k, &direct, &budget).expect("healthy run");
    {
        let src = source_of(&healthy, page_count, true);
        let replicated =
            resilient_top_k(model.model(), &pyramids, k, &src, &budget).expect("healthy run");
        assert_eq!(
            replicated, reference,
            "healthy replicated run must be bit-identical to the direct path"
        );
    }
    // End-to-end overhead is measured over an analysis *session*: one
    // replicated source serves ten rounds of a top-K sweep (k = 1..=10),
    // the Fig. 5 hypothesize → retrieve → revise loop re-querying the same
    // archive. Pages verify once at first load and are cache hits after,
    // which is the deployment pattern the <2% gate is about — checksumming
    // is a per-page-load cost, not a per-access one.
    const PAIRS: usize = 25;
    const SESSION_ROUNDS: usize = 10;
    let run_session = |verify: bool| -> u64 {
        let groups = fresh(&[None, None, None]);
        let src = source_of(&groups, page_count, verify);
        let t0 = Instant::now();
        let mut last = None;
        for _ in 0..SESSION_ROUNDS {
            for kq in 1..=k {
                last = Some(
                    resilient_top_k(model.model(), &pyramids, kq, &src, &budget).expect("healthy"),
                );
            }
        }
        let ns = t0.elapsed().as_nanos() as u64;
        assert_eq!(last.expect("k >= 1").results, reference.results);
        ns
    };
    // Shared-machine scheduler noise is strictly additive (a preempted
    // session runs up to ~25% long; nothing ever runs *faster* than the
    // clean floor), so the estimator is the per-side *minimum* over many
    // interleaved samples: both sides hit their clean floor several times
    // in 25 reps, and the floors — unlike means or medians of a
    // fat-right-tailed distribution — are sharp. Pairs alternate ABBA so
    // any first-position warm-up bias cancels too.
    run_session(false);
    run_session(true);
    let pairs: Vec<(u64, u64)> = (0..PAIRS)
        .map(|i| {
            if i % 2 == 0 {
                let off = run_session(false);
                (off, run_session(true))
            } else {
                let on = run_session(true);
                (run_session(false), on)
            }
        })
        .collect();
    if std::env::var_os("R4_DEBUG_PAIRS").is_some() {
        for (i, &(off, on)) in pairs.iter().enumerate() {
            eprintln!(
                "pair {i:2} {} off={off} on={on} ratio={:+.4}",
                if i % 2 == 0 { "AB" } else { "BA" },
                (on as f64 - off as f64) / off as f64
            );
        }
    }
    let verify_off_ns = pairs.iter().map(|&(off, _)| off).min().expect("pairs");
    let verify_on_ns = pairs.iter().map(|&(_, on)| on).min().expect("pairs");
    let overhead = (verify_on_ns as f64 - verify_off_ns as f64) / verify_off_ns as f64;
    assert!(
        overhead < 0.02,
        "checksum overhead gate: {:.2}% >= 2% (on {} ns, off {} ns)",
        overhead * 100.0,
        verify_on_ns,
        verify_off_ns
    );

    // The composed cocktail, keyed off the seed so `--seed` reshuffles
    // which pages are hit.
    let page_mix = |page: usize, salt: u64| -> u64 {
        seed.wrapping_add(salt)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(page as u64)
            .wrapping_mul(0x5851_f42d_4c95_7f2d)
            >> 32
    };
    let kill_all = (0..page_count).fold(FaultProfile::new(seed), |p, pg| p.permanent(pg));
    let corrupt_some = (0..page_count).fold(FaultProfile::new(seed + 1), |p, pg| {
        match page_mix(pg, 1) % 4 {
            0 => p.corrupt(pg),
            1 => p.latency(pg, 3),
            _ => p,
        }
    });
    let flaky_all = (0..page_count).fold(FaultProfile::new(seed + 2), |p, pg| {
        let p = p.transient(pg, 1);
        if page_mix(pg, 2) % 4 == 0 {
            p.latency(pg, 2)
        } else {
            p
        }
    });

    // Scenario A — masked chaos: replica 0 is killed outright, replica 1
    // serves silent corruption on ~1/4 of its pages, replica 2 flakes
    // once per page; every page is still servable by someone.
    let masked_groups = fresh(&[Some(&kill_all), Some(&corrupt_some), Some(&flaky_all)]);
    let masked_src = source_of(&masked_groups, page_count, true);
    let masked = resilient_top_k(model.model(), &pyramids, k, &masked_src, &budget)
        .expect("masked chaos run");
    assert_eq!(masked.completeness, 1.0, "masked chaos must stay complete");
    assert!(masked.skipped_pages.is_empty());
    for (hit, want) in masked.results.iter().zip(&strict.results) {
        assert_eq!(hit.cell, want.cell, "masked chaos must not move the top-K");
        assert_eq!(
            hit.score, want.score,
            "masked chaos must not perturb scores"
        );
    }

    // Scenario B — unmasked chaos: the true winner's page is corrupt or
    // dead on *every* replica; the engine must degrade with sound bounds.
    let winner = strict.results[0].cell;
    let winner_page = groups[0].0[0].page_of(winner.row, winner.col);
    let p0 = (0..page_count).fold(FaultProfile::new(seed + 3), |p, pg| p.transient(pg, 1));
    let unmasked_groups = fresh(&[
        Some(&p0.corrupt(winner_page)),
        Some(&FaultProfile::new(seed + 4).permanent(winner_page)),
        Some(&FaultProfile::new(seed + 5).corrupt(winner_page)),
    ]);
    let unmasked_src = source_of(&unmasked_groups, page_count, true);
    let unmasked = resilient_top_k(model.model(), &pyramids, k, &unmasked_src, &budget)
        .expect("unmasked chaos run");
    assert!(unmasked.completeness < 1.0, "winner page is unservable");
    assert!(unmasked.skipped_pages.contains(&winner_page));
    let covered = |r: &mbir_core::resilient::ResilientTopK| {
        r.results
            .iter()
            .any(|h| h.bounds.lo <= truth && truth <= h.bounds.hi)
    };
    assert!(
        covered(&unmasked),
        "degraded bounds must contain the true winner score"
    );
    for hit in &unmasked.results {
        assert!(hit.bounds.lo <= hit.score && hit.score <= hit.bounds.hi);
    }

    // Scenario C — an already-expired wall deadline: every engine stops at
    // its first checkpoint, and the degraded answer is identical at every
    // thread count.
    let deadline_budget =
        ExecutionBudget::unlimited().with_wall_deadline(std::time::Duration::ZERO);
    let deadline_groups = fresh(&[None, None, None]);
    let deadline_src = source_of(&deadline_groups, page_count, true);
    let deadline_seq =
        resilient_top_k(model.model(), &pyramids, k, &deadline_src, &deadline_budget)
            .expect("deadline run");
    assert_eq!(deadline_seq.budget_stop, Some(BudgetStop::WallClock));
    let mut thread_invariant = true;
    for threads in [1usize, 2, 4, 8] {
        let pool = WorkerPool::new(threads);
        let par = par_resilient_top_k(
            model.model(),
            &pyramids,
            k,
            &deadline_src,
            &deadline_budget,
            &pool,
        )
        .expect("deadline run");
        assert_eq!(par.budget_stop, Some(BudgetStop::WallClock));
        thread_invariant &=
            par.results == deadline_seq.results && par.completeness == deadline_seq.completeness;
    }
    assert!(
        thread_invariant,
        "deadline degradation must be thread-count invariant"
    );

    let scenarios = [
        (
            "masked chaos (kill + corrupt + flakes)",
            &masked,
            covered(&masked),
        ),
        (
            "unmasked chaos (winner page dead everywhere)",
            &unmasked,
            covered(&unmasked),
        ),
        (
            "expired wall deadline (healthy replicas)",
            &deadline_seq,
            covered(&deadline_seq),
        ),
    ];
    println!("| scenario | completeness | skipped pages | inexact hits | widest bound | budget stop | top-1 in bounds |");
    println!("|---|---|---|---|---|---|---|");
    for (label, r, cov) in &scenarios {
        let s = degradation_summary(r);
        println!(
            "| {label} | {:.3} | {} | {} | {:.3} | {} | {} |",
            s.completeness,
            s.skipped_pages,
            s.inexact_hits,
            s.widest_bound,
            r.budget_stop.map_or("-".to_owned(), |x| x.to_string()),
            if *cov { "yes" } else { "no" },
        );
    }
    println!(
        "\nhealthy replicated run bit-identical to direct path: yes; \
         checksum overhead {:.2}% (gate <2%); replica failovers and breaker \
         trips absorbed every masked fault.",
        overhead * 100.0
    );

    // Machine-readable output (hand-rolled JSON; std only).
    let scenario_json = |r: &mbir_core::resilient::ResilientTopK, cov: bool| -> String {
        let s = degradation_summary(r);
        format!(
            "{{\"completeness\":{:.6},\"skipped_pages\":{},\"inexact_hits\":{},\
             \"widest_bound\":{:.6},\"budget_stopped\":{},\"top1_in_bounds\":{}}}",
            s.completeness, s.skipped_pages, s.inexact_hits, s.widest_bound, s.budget_stopped, cov
        )
    };
    let json = format!(
        "{{\n  \"experiment\": \"r4_chaos\",\n  \"seed\": {seed},\n  \"world\": {{\"rows\": {rows}, \
         \"cols\": {cols}, \"tile\": {tile}, \"replicas\": {n_replicas}, \"pages\": {page_count}}},\n  \
         \"bit_identical_healthy\": true,\n  \"checksum_overhead\": {{\"verify_off_ns\": {verify_off_ns}, \
         \"verify_on_ns\": {verify_on_ns}, \"overhead_frac\": {overhead:.6}, \"gate\": 0.02}},\n  \
         \"scenarios\": {{\n    \"masked_chaos\": {},\n    \"unmasked_chaos\": {},\n    \
         \"deadline_zero\": {}\n  }},\n  \"deadline_thread_invariant\": {thread_invariant}\n}}\n",
        scenario_json(&masked, covered(&masked)),
        scenario_json(&unmasked, covered(&unmasked)),
        scenario_json(&deadline_seq, covered(&deadline_seq)),
    );
    match std::fs::write("BENCH_chaos.json", &json) {
        Ok(()) => println!("\nwrote BENCH_chaos.json"),
        Err(e) => eprintln!("\ncould not write BENCH_chaos.json: {e}"),
    }
}

/// R6 — fault-domain sharded scatter-gather. Gates, in order: healthy
/// scatter-gather is bit-identical to the unsharded resilient engine for
/// shards ∈ {1, 4, 16} × threads ∈ {1, 2, 4, 8}; killing `kill_shards`
/// whole fault domains (always including the winner's, so the loss can
/// never be masked by pruning) yields zero wrong answers — every hit's
/// score inside its bounds, every exact score verifiable against base
/// data, the true winner covered by some reported bound — at every thread
/// count; `require_all` surfaces the kill as a typed `InsufficientShards`
/// error while `quorum(S-F)` still answers; a slow shard trips its soft
/// deadline and is hedged back to a bit-identical answer. Prints the
/// per-shard latency/completeness table and writes `BENCH_shard.json`.
fn r6_shard(seed: u64, shards: usize, kill_shards: usize) {
    println!(
        "\n## R6 — Sharded scatter-gather: fault domains, stragglers, quorum \
         (seed {seed}, shards {shards}, kill {kill_shards})\n"
    );
    let (rows, cols, tile, k, n_replicas) = (256usize, 256usize, 16usize, 10usize, 2usize);
    let budget = ExecutionBudget::unlimited();

    // The unsharded reference over the same synthetic scene.
    let (global_pyramids, model, ref_groups) = replicated_world(seed, rows, cols, tile, 1);
    let reference_src = TileSource::new(&ref_groups[0].0).expect("aligned stores");
    let reference = resilient_top_k(model.model(), &global_pyramids, k, &reference_src, &budget)
        .expect("healthy reference");
    let truth = reference.results[0].score;
    let truth_of = |cell: mbir_archive::extent::CellCoord| -> f64 {
        let x: Vec<f64> = global_pyramids
            .iter()
            .map(|p| p.cell(0, cell.row, cell.col).expect("cell in range").mean)
            .collect();
        model.model().evaluate(&x)
    };

    // Builds per-shard ReplicatedSources over (optionally faulted) store
    // groups and runs the body with the assembled archive.
    let with_sharded_archive =
        |worlds: &[mbir_bench::ShardWorld],
         faults: &dyn Fn(usize) -> Option<FaultProfile>,
         body: &mut dyn FnMut(&ShardedArchive<'_, ReplicatedSource<'_>>)| {
            let groups: Vec<Vec<Vec<TileStore>>> = worlds
                .iter()
                .enumerate()
                .map(|(s, w)| {
                    w.groups
                        .iter()
                        .map(|(g, _)| match faults(s) {
                            Some(profile) => g
                                .iter()
                                .map(|st| st.clone().with_faults(profile.clone()))
                                .collect(),
                            None => g.clone(),
                        })
                        .collect()
                })
                .collect();
            let sources: Vec<ReplicatedSource<'_>> = groups
                .iter()
                .map(|gs| {
                    ReplicatedSource::new(
                        gs.iter().map(|g| g.as_slice()).collect(),
                        ReplicaConfig::default(),
                    )
                    .expect("aligned replicas")
                })
                .collect();
            let handles: Vec<ArchiveShard<'_, ReplicatedSource<'_>>> = worlds
                .iter()
                .zip(&sources)
                .map(|(w, src)| ArchiveShard::new(&w.pyramids, src, w.row_offset))
                .collect();
            let archive = ShardedArchive::new(handles).expect("contiguous bands");
            body(&archive);
        };

    // Gate 1: healthy bit-identity across shard counts × thread counts.
    let identity_shards = [1usize, 4, 16];
    let identity_threads = [1usize, 2, 4, 8];
    for shard_count in identity_shards {
        let (_, _, worlds, _) = sharded_world(seed, rows, cols, tile, shard_count, n_replicas);
        with_sharded_archive(&worlds, &|_| None, &mut |archive| {
            for threads in identity_threads {
                let pool = WorkerPool::new(threads);
                let r = scatter_gather_top_k(
                    model.model(),
                    archive,
                    k,
                    &budget,
                    &ScatterPolicy::require_all(),
                    &pool,
                )
                .expect("healthy scatter");
                assert_eq!(
                    r.results, reference.results,
                    "healthy bit-identity: shards={shard_count} threads={threads}"
                );
                assert_eq!(r.completeness, 1.0);
                assert!(r.shards.iter().all(|s| s.outcome == ShardOutcome::Complete));
            }
        });
    }
    println!(
        "healthy scatter-gather bit-identical to the unsharded resilient engine \
         for shards x threads = {identity_shards:?} x {identity_threads:?}: yes\n"
    );

    // Gate 2: shard-kill chaos. The winner's fault domain always dies (so
    // pruning can never mask the loss); additional victims rotate by seed.
    let (_, _, worlds, plan) = sharded_world(seed, rows, cols, tile, shards, n_replicas);
    let winner_shard = plan
        .shard_of_row(reference.results[0].cell.row)
        .expect("winner inside the grid");
    let mut killed = vec![winner_shard];
    let mut next = (seed as usize) % shards;
    while killed.len() < kill_shards {
        if !killed.contains(&next) {
            killed.push(next);
        }
        next = (next + 1) % shards;
    }
    killed.sort_unstable();
    let page_count = worlds[0].groups[0].0[0].page_count();
    let kill_profile = |s: usize| -> Option<FaultProfile> {
        killed
            .contains(&s)
            .then(|| (0..page_count).fold(FaultProfile::new(seed), |p, pg| p.permanent(pg)))
    };
    let mut chaos_table: Vec<mbir_core::shard::ShardReport> = Vec::new();
    let mut chaos_completeness = 1.0f64;
    let mut quorum_tally = (0usize, 0usize);
    for threads in identity_threads {
        with_sharded_archive(&worlds, &kill_profile, &mut |archive| {
            let pool = WorkerPool::new(threads);
            let r = scatter_gather_top_k(
                model.model(),
                archive,
                k,
                &budget,
                &ScatterPolicy::best_effort(),
                &pool,
            )
            .expect("best-effort scatter under shard kill");
            // Zero wrong answers: scores inside bounds, exact scores real.
            for hit in &r.results {
                assert!(
                    hit.bounds.lo <= hit.score && hit.score <= hit.bounds.hi,
                    "hit score outside its own bounds"
                );
                if hit.exact {
                    assert_eq!(
                        hit.score,
                        truth_of(hit.cell),
                        "exact hit must match base data at {:?}",
                        hit.cell
                    );
                }
            }
            assert!(
                r.results
                    .iter()
                    .any(|h| h.bounds.lo <= truth && truth <= h.bounds.hi),
                "true winner score must stay inside some reported bound"
            );
            assert_eq!(
                r.shards[winner_shard].outcome,
                ShardOutcome::Failed,
                "the winner's dead fault domain must classify as failed"
            );
            assert!(r.completeness < 1.0, "a dead shard lowers completeness");
            // Per-shard summaries must merge back to the global scorecard.
            let parts: Vec<(mbir_core::metrics::DegradationSummary, u64)> = r
                .shards
                .iter()
                .map(|s| {
                    (
                        mbir_core::metrics::DegradationSummary {
                            completeness: s.completeness,
                            skipped_pages: s.skipped_pages.len(),
                            inexact_hits: 0,
                            widest_bound: 0.0,
                            budget_stopped: s.budget_stop.is_some(),
                            shed_queries: 0,
                            cancelled_queries: 0,
                            hedged_reads: 0,
                            pages_read: s.pages_read,
                            quarantined_pages: 0,
                            cache_hits: 0,
                            cache_misses: 0,
                            cache_dedup_waits: 0,
                            appended_pages_seen: 0,
                            epoch_invalidated_cache_entries: 0,
                        },
                        s.cells,
                    )
                })
                .collect();
            let merged = merge_shard_summaries(&parts);
            assert!(
                (merged.completeness - r.completeness).abs() < 1e-9,
                "cell-weighted shard completeness must merge to the global one"
            );
            assert_eq!(
                merged.pages_read,
                r.shards.iter().map(|s| s.pages_read).sum::<u64>(),
                "page counts conserve across the merge"
            );
            // Quorum: require-all must fail typed, quorum(S-F) must pass.
            match scatter_gather_top_k(
                model.model(),
                archive,
                k,
                &budget,
                &ScatterPolicy::require_all(),
                &pool,
            ) {
                Err(ShardError::Insufficient(e)) => {
                    assert!(e.failed.contains(&winner_shard));
                    assert_eq!(e.required, shards);
                    assert!(e.responded < shards);
                    if threads == 1 {
                        quorum_tally = (e.responded, e.required);
                    }
                }
                other => panic!(
                    "require-all over dead shards must fail typed, got {:?}",
                    other.map(|r| r.results.len())
                ),
            }
            let q = scatter_gather_top_k(
                model.model(),
                archive,
                k,
                &budget,
                &ScatterPolicy::quorum(shards - kill_shards),
                &pool,
            )
            .expect("quorum(S-F) must still answer");
            assert!(q.is_degraded());
            // The printed table and JSON come from the single-threaded
            // iteration: the merged answer is thread-invariant, but a
            // shard's attempted reads (and thus its retry ticks) depend
            // on when the other shards' bounds arrive, which only a
            // sequential wave makes run-to-run reproducible.
            if threads == 1 {
                chaos_completeness = r.completeness;
                chaos_table = r.shards.clone();
            }
        });
    }
    print!("{}", mbir_core::shard::ShardTable::new(&chaos_table));
    println!(
        "\nkilled shards {killed:?} (winner domain {winner_shard}): zero wrong answers at \
         threads {identity_threads:?}; require-all failed typed ({} of {} responded); \
         quorum({}) answered degraded (completeness {:.3}).",
        quorum_tally.0,
        quorum_tally.1,
        shards - kill_shards,
        chaos_completeness,
    );

    // Gate 3: straggler hedging. The winner's domain turns slow, not dead:
    // its primary attempt trips the per-shard soft deadline, the hedged
    // re-dispatch finishes clean, and the merge is bit-identical again.
    let mut straggler_hedged = false;
    let mut straggler_won = false;
    let slow_profile = |s: usize| -> Option<FaultProfile> {
        (s == winner_shard)
            .then(|| (0..page_count).fold(FaultProfile::new(seed), |p, pg| p.latency(pg, 10_000)))
    };
    with_sharded_archive(&worlds, &slow_profile, &mut |archive| {
        // Single-threaded for a reproducible pages-read figure; the soft
        // deadline rides the shard's own tick clock, so straggler
        // detection is identical at any worker count.
        let pool = WorkerPool::new(1);
        let policy = ScatterPolicy::require_all()
            .with_soft_deadline_ticks(5_000)
            .with_hedged_stragglers();
        let r = scatter_gather_top_k(model.model(), archive, k, &budget, &policy, &pool)
            .expect("hedged scatter");
        let report = &r.shards[winner_shard];
        assert!(report.hedged, "slow winner domain must be hedged");
        assert!(report.hedge_won, "the clean hedge attempt must win");
        assert_eq!(
            r.results, reference.results,
            "hedged answer must be bit-identical to the reference"
        );
        straggler_hedged = report.hedged;
        straggler_won = report.hedge_won;
        let summary = sharded_degradation_summary(&r);
        println!(
            "straggler domain {winner_shard} hedged: yes; hedge won: yes; merged summary \
             completeness {:.3}, pages read {}.",
            summary.completeness, summary.pages_read,
        );
    });

    // Machine-readable output (hand-rolled JSON; std only).
    let per_shard: Vec<String> = chaos_table.iter().map(shard_report_json).collect();
    let killed_list: Vec<String> = killed.iter().map(usize::to_string).collect();
    let json = format!(
        "{{\n  \"experiment\": \"r6_shard\",\n  \"seed\": {seed},\n  \"world\": {{\"rows\": {rows}, \
         \"cols\": {cols}, \"tile\": {tile}, \"replicas\": {n_replicas}, \"pages_per_shard\": \
         {page_count}}},\n  \"identity\": {{\"shards\": [1, 4, 16], \"threads\": [1, 2, 4, 8], \
         \"bit_identical\": true}},\n  \"chaos\": {{\"shards\": {shards}, \"killed\": [{}], \
         \"winner_shard\": {winner_shard}, \"zero_wrong_answers\": true, \"winner_covered\": true, \
         \"completeness\": {chaos_completeness:.6}, \"quorum_error\": {{\"responded\": {}, \
         \"required\": {}}},\n    \"per_shard\": [\n      {}\n    ]}},\n  \"straggler\": \
         {{\"hedged\": {straggler_hedged}, \"hedge_won\": {straggler_won}, \
         \"bit_identical_after_hedge\": true}}\n}}\n",
        killed_list.join(", "),
        quorum_tally.0,
        quorum_tally.1,
        per_shard.join(",\n      "),
    );
    match std::fs::write("BENCH_shard.json", &json) {
        Ok(()) => println!("\nwrote BENCH_shard.json"),
        Err(e) => eprintln!("\ncould not write BENCH_shard.json: {e}"),
    }
}

/// One `ShardReport` as a hand-rolled JSON object (std only) — shared by
/// the r6 and r9 harnesses.
fn shard_report_json(s: &mbir_core::shard::ShardReport) -> String {
    format!(
        "{{\"shard\":{},\"outcome\":\"{}\",\"completeness\":{:.6},\"exact_hits\":{},\
         \"skipped_pages\":{},\"pages_read\":{},\"ticks\":{},\"hedged\":{}}}",
        s.shard,
        s.outcome,
        s.completeness,
        s.exact_hits,
        s.skipped_pages.len(),
        s.pages_read,
        s.ticks,
        s.hedged,
    )
}

/// R9 — live resharding: epoch-fenced topology changes with chaos-proof
/// migration. The winner's source band is split in two through the
/// coordinator's Planned → Copying → DualRead → CutOver → Retired state
/// machine. Gates, in order: (a) the healthy migration is invisible —
/// dual-read answers are bit-identical to the pre-migration plan, and the
/// post-cut-over archive (carried-over source bands + migrated copies) is
/// bit-identical to a destination topology built directly from the raw
/// grids; (b) chaos injected in every migration state — transient,
/// corrupt, and latency copy faults during Copying (healed by retries,
/// caught by checksums, quarantined, then recopied from a clean replica),
/// the migrating source shard killed during DualRead (covered wholesale
/// by its destination copies), both sides killed (degraded but sound),
/// and a post-cut-over kill — yields zero wrong answers: the true winner
/// always stays inside some reported bound; (c) a wall-deadline abort
/// rolls back to the source epoch with results bit-identical to never
/// having started. Epoch fencing is typed end to end: a query pinned to
/// the destination epoch against the source archive fails with
/// `EpochMismatch`, and a mid-migration quorum failure is an
/// `InsufficientShards` stamped with the serving epoch. Writes
/// `BENCH_reshard.json`.
fn r9_reshard(seed: u64) {
    use mbir_archive::shard::EpochedShardPlan;
    use mbir_core::reshard::{
        AbortReason, CopyOutcome, MigrationState, ReshardCoordinator, ReshardPolicy,
    };
    use mbir_core::shard::{scatter_gather_top_k_dual, ShardTable};
    use mbir_core::source::QuarantineScrub;

    println!("\n## R9 — Live resharding: epoch-fenced topology change under chaos (seed {seed})\n");
    let (rows, cols, tile, k) = (256usize, 256usize, 16usize, 10usize);
    let budget = ExecutionBudget::unlimited();
    let identity_threads = [1usize, 2, 4];

    let (_, model, worlds, from_plan) = sharded_world(seed, rows, cols, tile, 4, 1);
    let page_count = worlds[0].groups[0].0[0].page_count();

    // Source-epoch archive over plain tile sources (one replica group).
    let source_stores: Vec<&[TileStore]> =
        worlds.iter().map(|w| w.groups[0].0.as_slice()).collect();
    let source_sources: Vec<TileSource<'_>> = source_stores
        .iter()
        .map(|g| TileSource::new(g).expect("aligned stores"))
        .collect();
    let source_handles: Vec<ArchiveShard<'_, TileSource<'_>>> = worlds
        .iter()
        .zip(&source_sources)
        .map(|(w, src)| ArchiveShard::new(&w.pyramids, src, w.row_offset))
        .collect();
    let source_archive = ShardedArchive::new(source_handles).expect("contiguous bands");
    let pool = WorkerPool::new(1);
    let reference = scatter_gather_top_k(
        model.model(),
        &source_archive,
        k,
        &budget,
        &ScatterPolicy::require_all(),
        &pool,
    )
    .expect("healthy source scatter");
    let truth = reference.results[0].score;
    let winner_shard = from_plan
        .shard_of_row(reference.results[0].cell.row)
        .expect("winner inside the grid");

    // The topology change: split the winner's band in two.
    let dest_plan = from_plan.split_band(winner_shard).expect("band splits");
    let mut coord = ReshardCoordinator::new(
        EpochedShardPlan::initial(from_plan.clone()),
        dest_plan.clone(),
        ReshardPolicy::default(),
    )
    .expect("same shape and tile");
    println!(
        "migration: split band {winner_shard} ({} -> {} shards), epoch {} -> {}\n",
        from_plan.shard_count(),
        dest_plan.shard_count(),
        coord.from_epoch(),
        coord.to_epoch(),
    );

    // --- Copying-state chaos: transient + latency faults heal through
    // coordinator retries; a corrupt page is caught by the checksum,
    // quarantines the band, and a clean-replica recopy completes it.
    let chaos_copy: Vec<Vec<TileStore>> = worlds
        .iter()
        .enumerate()
        .map(|(s, w)| {
            w.groups[0]
                .0
                .iter()
                .enumerate()
                .map(|(a, st)| {
                    if s == winner_shard && a == 0 {
                        st.clone().with_faults(
                            FaultProfile::new(seed)
                                .transient(0, 2)
                                .latency(1, 5)
                                .corrupt(2),
                        )
                    } else {
                        st.clone()
                    }
                })
                .collect()
        })
        .collect();
    let chaos_refs: Vec<&[TileStore]> = chaos_copy.iter().map(Vec::as_slice).collect();
    coord.begin_copy().expect("planned -> copying");
    let outcome = coord.run_copy(&chaos_refs, None).expect("copy runs");
    let quarantined_bands = match &outcome {
        CopyOutcome::Quarantined(bands) => bands.clone(),
        other => panic!("corrupt page must quarantine its band, got {other:?}"),
    };
    let checksum_failures: u64 = coord
        .copy_reports()
        .iter()
        .map(|b| b.checksum_failures)
        .sum();
    let copy_retries: u64 = coord.copy_reports().iter().map(|b| b.retries).sum();
    assert!(
        checksum_failures > 0,
        "silent corruption must be caught in flight"
    );
    assert!(copy_retries > 0, "transient faults must be retried");
    coord.clear_copy_quarantine();
    let clean_outcome = coord.run_copy(&source_stores, None).expect("clean recopy");
    assert_eq!(
        clean_outcome,
        CopyOutcome::Complete,
        "clean replica completes the copy"
    );
    let copy_ticks = coord.ticks_spent();
    println!(
        "copy chaos: bands {quarantined_bands:?} quarantined after {checksum_failures} checksum \
         catches and {copy_retries} retries; clean-replica recopy complete ({copy_ticks} ticks).\n"
    );

    // --- DualRead: both sides live. Healthy dual-read must be
    // bit-identical to the pre-migration plan at every thread count.
    coord.enter_dual_read().expect("all bands copied");
    let groups = coord.dual_read_groups().expect("in dual-read");
    let migrated = coord.migrated_bands();
    let dual_sources: Vec<TileSource<'_>> = migrated
        .iter()
        .map(|b| TileSource::new(b.stores()).expect("aligned copies"))
        .collect();
    let dest_handles: Vec<ArchiveShard<'_, TileSource<'_>>> = migrated
        .iter()
        .zip(&dual_sources)
        .map(|(b, src)| ArchiveShard::new(b.pyramids(), src, b.row_offset()))
        .collect();
    for threads in identity_threads {
        let pool = WorkerPool::new(threads);
        let r = scatter_gather_top_k_dual(
            model.model(),
            &source_archive,
            &dest_handles,
            &groups,
            k,
            &budget,
            &ScatterPolicy::require_all(),
            &pool,
        )
        .expect("healthy dual-read");
        assert_eq!(
            r.results, reference.results,
            "healthy dual-read must be bit-identical to the pre-migration plan (threads {threads})"
        );
        assert_eq!(r.completeness, 1.0);
    }
    println!(
        "healthy dual-read bit-identical to the pre-migration plan at threads \
         {identity_threads:?}: yes\n"
    );

    // Epoch fence: a query pinned to the destination epoch is rejected
    // typed before any shard runs.
    let fence_err = scatter_gather_top_k(
        model.model(),
        &source_archive,
        k,
        &budget,
        &ScatterPolicy::require_all().at_epoch(coord.to_epoch()),
        &pool,
    );
    let fence_typed =
        matches!(&fence_err, Err(ShardError::Epoch(e)) if e.requested == coord.to_epoch());
    assert!(
        fence_typed,
        "epoch fence must fail typed, got {fence_err:?}"
    );

    // DualRead chaos: kill the migrating source shard. Its rows are
    // covered wholesale by the destination copies — zero wrong answers,
    // and the winner (who lives in the killed band) stays in bounds.
    let kill_all = || (0..page_count).fold(FaultProfile::new(seed), |p, pg| p.permanent(pg));
    let killed_stores: Vec<Vec<TileStore>> = worlds
        .iter()
        .enumerate()
        .map(|(s, w)| {
            w.groups[0]
                .0
                .iter()
                .map(|st| {
                    if s == winner_shard {
                        st.clone().with_faults(kill_all())
                    } else {
                        st.clone()
                    }
                })
                .collect()
        })
        .collect();
    let killed_sources: Vec<TileSource<'_>> = killed_stores
        .iter()
        .map(|g| TileSource::new(g).expect("aligned stores"))
        .collect();
    let killed_handles: Vec<ArchiveShard<'_, TileSource<'_>>> = worlds
        .iter()
        .zip(&killed_sources)
        .map(|(w, src)| ArchiveShard::new(&w.pyramids, src, w.row_offset))
        .collect();
    let killed_archive = ShardedArchive::new(killed_handles).expect("contiguous bands");
    let mut covered_table: Vec<mbir_core::shard::ShardReport> = Vec::new();
    let mut covered_completeness = 0.0f64;
    for threads in identity_threads {
        let pool = WorkerPool::new(threads);
        let r = scatter_gather_top_k_dual(
            model.model(),
            &killed_archive,
            &dest_handles,
            &groups,
            k,
            &budget,
            &ScatterPolicy::best_effort(),
            &pool,
        )
        .expect("covered dual-read");
        for hit in &r.results {
            assert!(
                hit.bounds.lo <= hit.score && hit.score <= hit.bounds.hi,
                "hit score outside its own bounds"
            );
        }
        assert!(
            r.results
                .iter()
                .any(|h| h.bounds.lo <= truth && truth <= h.bounds.hi),
            "true winner must stay inside some reported bound under source kill"
        );
        assert_eq!(
            r.shards[winner_shard].outcome,
            ShardOutcome::Covered,
            "the killed migrating shard must be covered by its destination copies"
        );
        assert_eq!(
            r.results, reference.results,
            "a fully covered kill serves bit-identical results from the copies (threads {threads})"
        );
        if threads == 1 {
            covered_table = r.shards.clone();
            covered_completeness = r.completeness;
        }
    }
    print!("{}", ShardTable::new(&covered_table));
    println!(
        "\nsource shard {winner_shard} killed during dual-read: covered by destination copies, \
         completeness {covered_completeness:.3}, zero wrong answers at threads {identity_threads:?}.\n"
    );

    // Kill both sides of the migration group: no cover is possible, the
    // merge degrades — but soundly, and require-all fails typed with the
    // serving epoch stamped.
    let killed_dest_stores: Vec<Vec<TileStore>> = migrated
        .iter()
        .map(|b| {
            b.stores()
                .iter()
                .map(|st| {
                    st.clone().with_faults(
                        (0..st.page_count()).fold(FaultProfile::new(seed), |p, pg| p.permanent(pg)),
                    )
                })
                .collect()
        })
        .collect();
    let killed_dest_sources: Vec<TileSource<'_>> = killed_dest_stores
        .iter()
        .map(|g| TileSource::new(g).expect("aligned copies"))
        .collect();
    let killed_dest_handles: Vec<ArchiveShard<'_, TileSource<'_>>> = migrated
        .iter()
        .zip(&killed_dest_sources)
        .map(|(b, src)| ArchiveShard::new(b.pyramids(), src, b.row_offset()))
        .collect();
    let both = scatter_gather_top_k_dual(
        model.model(),
        &killed_archive,
        &killed_dest_handles,
        &groups,
        k,
        &budget,
        &ScatterPolicy::best_effort(),
        &pool,
    )
    .expect("uncovered dual-read still answers best-effort");
    assert!(
        both.is_degraded(),
        "killing both sides must degrade the answer"
    );
    assert!(
        both.results
            .iter()
            .any(|h| h.bounds.lo <= truth && truth <= h.bounds.hi),
        "true winner must stay inside some reported bound even with both sides dead"
    );
    let quorum = scatter_gather_top_k_dual(
        model.model(),
        &killed_archive,
        &killed_dest_handles,
        &groups,
        k,
        &budget,
        &ScatterPolicy::require_all(),
        &pool,
    );
    let (q_responded, q_required) = match quorum {
        Err(ShardError::Insufficient(e)) => {
            assert!(e.failed.contains(&winner_shard));
            assert_eq!(
                e.epoch,
                coord.from_epoch(),
                "quorum error carries the serving epoch"
            );
            (e.responded, e.required)
        }
        other => panic!(
            "uncovered kill under require-all must fail typed, got {:?}",
            other.map(|r| r.results.len())
        ),
    };
    println!(
        "both sides of the migration group killed: degraded-but-sound best-effort answer; \
         require-all failed typed ({q_responded} of {q_required} responded at epoch {}).\n",
        coord.from_epoch(),
    );

    // --- CutOver: the destination epoch goes live atomically. The mixed
    // archive (carried-over source bands + migrated copies) must be
    // bit-identical to a destination topology built directly from the
    // raw grids.
    coord.cut_over().expect("dual-read -> cut-over");
    assert_eq!(coord.active_epoch(), coord.to_epoch());
    let migrated = coord.migrated_bands();
    let (_, _, direct_worlds) = sharded_world_for_plan(seed, &dest_plan, 1);
    let direct_sources: Vec<TileSource<'_>> = direct_worlds
        .iter()
        .map(|w| TileSource::new(&w.groups[0].0).expect("aligned stores"))
        .collect();
    let direct_handles: Vec<ArchiveShard<'_, TileSource<'_>>> = direct_worlds
        .iter()
        .zip(&direct_sources)
        .map(|(w, src)| ArchiveShard::new(&w.pyramids, src, w.row_offset))
        .collect();
    let direct_archive = ShardedArchive::new(direct_handles)
        .expect("contiguous bands")
        .with_epoch(coord.to_epoch());
    let direct = scatter_gather_top_k(
        model.model(),
        &direct_archive,
        k,
        &budget,
        &ScatterPolicy::require_all().at_epoch(coord.to_epoch()),
        &pool,
    )
    .expect("healthy direct destination scatter");

    // Assemble the post-cut-over archive: carried-over bands keep their
    // source pyramids and stores; migrating bands use the copies.
    enum BandRef<'a> {
        Carried(usize),
        Migrated(&'a mbir_core::reshard::MigratedBand),
    }
    let mut band_refs: Vec<BandRef<'_>> = Vec::new();
    for b in 0..dest_plan.shard_count() {
        if let Some(&(_, src)) = coord.carried_over().iter().find(|&&(d, _)| d == b) {
            band_refs.push(BandRef::Carried(src));
        } else {
            let pos = coord
                .migrating_dest_bands()
                .iter()
                .position(|&m| m == b)
                .expect("band is carried or migrating");
            band_refs.push(BandRef::Migrated(migrated[pos]));
        }
    }
    let cutover_sources: Vec<TileSource<'_>> = band_refs
        .iter()
        .map(|r| match r {
            BandRef::Carried(s) => {
                TileSource::new(&worlds[*s].groups[0].0).expect("aligned stores")
            }
            BandRef::Migrated(b) => TileSource::new(b.stores()).expect("aligned copies"),
        })
        .collect();
    let cutover_handles: Vec<ArchiveShard<'_, TileSource<'_>>> = band_refs
        .iter()
        .zip(&cutover_sources)
        .enumerate()
        .map(|(b, (r, src))| {
            let offset = dest_plan.bands()[b].row_offset;
            match r {
                BandRef::Carried(s) => ArchiveShard::new(&worlds[*s].pyramids, src, offset),
                BandRef::Migrated(m) => ArchiveShard::new(m.pyramids(), src, offset),
            }
        })
        .collect();
    let cutover_archive = ShardedArchive::new(cutover_handles)
        .expect("contiguous bands")
        .with_epoch(coord.active_epoch());
    for threads in identity_threads {
        let pool = WorkerPool::new(threads);
        let r = scatter_gather_top_k(
            model.model(),
            &cutover_archive,
            k,
            &budget,
            &ScatterPolicy::require_all().at_epoch(coord.to_epoch()),
            &pool,
        )
        .expect("healthy post-cut-over scatter");
        assert_eq!(
            r.results, direct.results,
            "post-cut-over archive must be bit-identical to the directly built destination \
             topology (threads {threads})"
        );
        assert_eq!(r.completeness, 1.0);
    }
    println!(
        "cut over to epoch {}: migrated archive bit-identical to the directly built \
         destination topology at threads {identity_threads:?}: yes\n",
        coord.to_epoch(),
    );

    // Post-cut-over chaos: kill one of the new bands — plain r6-style
    // degradation, no dual-read needed any more.
    let post_kill_shard = coord.migrating_dest_bands()[0];
    let post_stores: Vec<Vec<TileStore>> = band_refs
        .iter()
        .enumerate()
        .map(|(b, r)| {
            let base: Vec<TileStore> = match r {
                BandRef::Carried(s) => worlds[*s].groups[0].0.clone(),
                BandRef::Migrated(m) => m.stores().to_vec(),
            };
            if b == post_kill_shard {
                base.into_iter()
                    .map(|st| {
                        let pages = st.page_count();
                        st.with_faults(
                            (0..pages).fold(FaultProfile::new(seed), |p, pg| p.permanent(pg)),
                        )
                    })
                    .collect()
            } else {
                base
            }
        })
        .collect();
    let post_sources: Vec<TileSource<'_>> = post_stores
        .iter()
        .map(|g| TileSource::new(g).expect("aligned stores"))
        .collect();
    let post_handles: Vec<ArchiveShard<'_, TileSource<'_>>> = band_refs
        .iter()
        .zip(&post_sources)
        .enumerate()
        .map(|(b, (r, src))| {
            let offset = dest_plan.bands()[b].row_offset;
            match r {
                BandRef::Carried(s) => ArchiveShard::new(&worlds[*s].pyramids, src, offset),
                BandRef::Migrated(m) => ArchiveShard::new(m.pyramids(), src, offset),
            }
        })
        .collect();
    let post_archive = ShardedArchive::new(post_handles)
        .expect("contiguous bands")
        .with_epoch(coord.active_epoch());
    let post = scatter_gather_top_k(
        model.model(),
        &post_archive,
        k,
        &budget,
        &ScatterPolicy::best_effort(),
        &pool,
    )
    .expect("post-cut-over best effort");
    assert!(
        post.results
            .iter()
            .any(|h| h.bounds.lo <= truth && truth <= h.bounds.hi),
        "true winner must stay inside some reported bound after a post-cut-over kill"
    );
    assert_eq!(post.shards[post_kill_shard].outcome, ShardOutcome::Failed);
    println!(
        "post-cut-over kill of new band {post_kill_shard}: degraded-but-sound \
         (completeness {:.3}), winner still covered.\n",
        post.completeness,
    );

    // --- Retire: scrub the retired source owners' page quarantine (it is
    // keyed by the old band layout and would suppress healthy reads when
    // the stores are reused). A pre-quarantined page proves the scrub.
    let retiring = coord.retiring_source_bands();
    let scrub_stores: Vec<Vec<TileStore>> = retiring
        .iter()
        .map(|&s| {
            let stores: Vec<TileStore> = worlds[s].groups[0]
                .0
                .iter()
                .map(|st| {
                    st.clone()
                        .with_faults(FaultProfile::new(seed).permanent(0))
                        .with_resilience(ResilienceConfig::new(RetryPolicy::none(), Some(1)))
                })
                .collect();
            // Trip the quarantine: one failing read per store.
            for st in &stores {
                let _ = st.read_page(0);
            }
            stores
        })
        .collect();
    let scrub_sources: Vec<TileSource<'_>> = scrub_stores
        .iter()
        .map(|g| TileSource::new(g).expect("aligned stores"))
        .collect();
    let scrub_refs: Vec<&dyn QuarantineScrub> = scrub_sources
        .iter()
        .map(|s| s as &dyn QuarantineScrub)
        .collect();
    let quarantined_before: u64 = scrub_sources.iter().map(|s| s.quarantined_pages()).sum();
    let cleared = coord.retire(&scrub_refs).expect("cut-over -> retired");
    assert_eq!(coord.state(), MigrationState::Retired);
    assert_eq!(
        cleared, quarantined_before,
        "retire reports every cleared page"
    );
    assert!(cleared > 0, "the staged quarantine must be scrubbed");
    assert_eq!(
        scrub_sources
            .iter()
            .map(|s| s.quarantined_pages())
            .sum::<u64>(),
        0,
        "no stale quarantine survives retirement"
    );
    println!("retired source bands {retiring:?}: scrubbed {cleared} stale quarantined pages.\n");
    let migration_report = coord.report();

    // --- Abort path: a second migration hits a wall deadline mid-copy
    // and rolls back; the source epoch answers bit-identically to never
    // having started.
    let mut abort_coord = ReshardCoordinator::new(
        EpochedShardPlan::initial(from_plan.clone()),
        from_plan.split_band(winner_shard).expect("band splits"),
        ReshardPolicy::default().with_wall_deadline_ticks(10),
    )
    .expect("same shape and tile");
    let slow_copy: Vec<Vec<TileStore>> = worlds
        .iter()
        .enumerate()
        .map(|(s, w)| {
            w.groups[0]
                .0
                .iter()
                .map(|st| {
                    if s == winner_shard {
                        st.clone().with_faults(
                            (0..page_count)
                                .fold(FaultProfile::new(seed), |p, pg| p.latency(pg, 500)),
                        )
                    } else {
                        st.clone()
                    }
                })
                .collect()
        })
        .collect();
    let slow_refs: Vec<&[TileStore]> = slow_copy.iter().map(Vec::as_slice).collect();
    abort_coord.begin_copy().expect("planned -> copying");
    let abort_outcome = abort_coord.run_copy(&slow_refs, None).expect("copy runs");
    assert_eq!(abort_outcome, CopyOutcome::DeadlineExceeded);
    assert_eq!(abort_coord.state(), MigrationState::Aborted);
    assert_eq!(abort_coord.abort_reason(), Some(AbortReason::WallDeadline));
    assert_eq!(abort_coord.active_epoch(), abort_coord.from_epoch());
    assert!(
        abort_coord.migrated_bands().is_empty(),
        "partial copies dropped on abort"
    );
    let after_abort = scatter_gather_top_k(
        model.model(),
        &source_archive,
        k,
        &budget,
        &ScatterPolicy::require_all().at_epoch(abort_coord.from_epoch()),
        &pool,
    )
    .expect("source epoch still serves after abort");
    assert_eq!(
        after_abort.results, reference.results,
        "aborted migration must leave source-epoch answers bit-identical to never having started"
    );
    println!(
        "wall-deadline abort after {} ticks: rolled back to epoch {}, source answers \
         bit-identical to never having started.\n",
        abort_coord.ticks_spent(),
        abort_coord.from_epoch(),
    );

    // Machine-readable output (hand-rolled JSON; std only).
    let per_band: Vec<String> = migration_report
        .bands
        .iter()
        .map(|b| {
            format!(
                "{{\"dest_band\":{},\"attempts\":{},\"pages_copied\":{},\"retries\":{},\
                 \"io_failures\":{},\"checksum_failures\":{},\"quarantined\":{},\"complete\":{}}}",
                b.dest_band,
                b.attempts,
                b.pages_copied,
                b.retries,
                b.io_failures,
                b.checksum_failures,
                b.quarantined,
                b.complete,
            )
        })
        .collect();
    let covered_json: Vec<String> = covered_table.iter().map(shard_report_json).collect();
    let migrating_list: Vec<String> = migration_report
        .migrating_dest_bands
        .iter()
        .map(usize::to_string)
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"r9_reshard\",\n  \"seed\": {seed},\n  \"world\": {{\"rows\": {rows}, \
         \"cols\": {cols}, \"tile\": {tile}, \"source_shards\": {}, \"dest_shards\": {}, \
         \"pages_per_shard\": {page_count}}},\n  \"migration\": {{\"from_epoch\": {}, \"to_epoch\": {}, \
         \"state\": \"{}\", \"split_band\": {winner_shard}, \"migrating_dest_bands\": [{}], \
         \"ticks_spent\": {},\n    \"per_band\": [\n      {}\n    ]}},\n  \"copy_chaos\": \
         {{\"quarantined_bands\": {}, \"checksum_failures\": {checksum_failures}, \"retries\": \
         {copy_retries}, \"clean_recopy_complete\": true}},\n  \"dual_read\": {{\"healthy_bit_identical\": \
         true, \"covered_kill_bit_identical\": true, \"covered_completeness\": \
         {covered_completeness:.6}, \"both_sides_killed_sound\": true, \"quorum_error\": \
         {{\"responded\": {q_responded}, \"required\": {q_required}, \"epoch\": {}}},\n    \
         \"per_shard\": [\n      {}\n    ]}},\n  \"cut_over\": {{\"bit_identical_to_direct_build\": \
         true, \"post_kill_sound\": true, \"post_kill_completeness\": {:.6}}},\n  \"retire\": \
         {{\"retired_bands\": {}, \"scrubbed_quarantined_pages\": {cleared}}},\n  \"abort\": \
         {{\"reason\": \"wall-deadline\", \"ticks_spent\": {}, \"rolled_back_to_epoch\": {}, \
         \"rollback_bit_identical\": true}},\n  \"fence\": {{\"typed_epoch_mismatch\": true}}\n}}\n",
        from_plan.shard_count(),
        dest_plan.shard_count(),
        migration_report.from_epoch.get(),
        migration_report.to_epoch.get(),
        migration_report.state,
        migrating_list.join(", "),
        migration_report.ticks_spent,
        per_band.join(",\n      "),
        format!("[{}]", quarantined_bands.iter().map(usize::to_string).collect::<Vec<_>>().join(", ")),
        coord.from_epoch().get(),
        covered_json.join(",\n      "),
        post.completeness,
        format!("[{}]", retiring.iter().map(usize::to_string).collect::<Vec<_>>().join(", ")),
        abort_coord.ticks_spent(),
        abort_coord.from_epoch().get(),
    );
    match std::fs::write("BENCH_reshard.json", &json) {
        Ok(()) => println!("wrote BENCH_reshard.json"),
        Err(e) => eprintln!("could not write BENCH_reshard.json: {e}"),
    }
}

/// R8 — batched multi-query scatter-gather at archive scale: a Q=32 batch
/// of perturbed query directions over a 10.5M-cell grid in 16 row-band
/// shards, answered by *one* shared per-shard descent
/// ([`batched_scatter_gather_top_k`]) and compared against 32 independent
/// [`scatter_gather_top_k`] runs. Gates: every query's batched answer is
/// bit-identical to its solo run (always); at full scale the batch reads
/// >= 3x fewer pages and delivers >= 2x aggregate throughput. Prints the
/// solo-vs-batched table with the page-cache hit/miss/dedup counters and
/// writes `BENCH_batch.json`. With `--small` the world shrinks for CI and
/// the perf gates turn informational.
fn r8_batch(seed: u64, threads: usize, small: bool) {
    let (rows, cols, tile, shards) = if small {
        (256usize, 256usize, 16usize, 16usize)
    } else {
        (4096usize, 2560usize, 32usize, 16usize)
    };
    let (k, q_count) = (10usize, 32usize);
    let cells = (rows * cols) as u64;
    println!(
        "\n## R8 — Batched multi-query scatter-gather: shared descent over \
         {cells} cells x {shards} shards, Q={q_count} (seed {seed}, threads {threads}{})\n",
        if small { ", small" } else { "" }
    );
    println!("emulated remote storage: 1000 us per base-page fetch (cache misses only)\n");

    // A smooth scene with a deterministic ripple: upper-level bounds stay
    // slightly loose near the optimum, so every query reads a handful of
    // pages instead of resolving from the pyramid alone.
    let field = |attr: usize, r: usize, c: usize| -> f64 {
        let phase = (seed % 17) as f64 * 0.29 + attr as f64 * 1.7;
        let base = ((r as f64 / 37.0 + phase).sin() + (c as f64 / 53.0 - phase).cos()) * 40.0;
        let ripple = (((r * 31 + c * 17 + attr * 7) % 97) as f64 / 97.0 - 0.5) * 6.0;
        base + ripple + 100.0
    };

    struct BatchShardWorld {
        pyramids: Vec<AggregatePyramid>,
        stores: Vec<TileStore>,
        stats: mbir_archive::stats::AccessStats,
        row_offset: usize,
    }
    let band_rows = rows / shards;
    let worlds: Vec<BatchShardWorld> = (0..shards)
        .map(|s| {
            let offset = s * band_rows;
            let stats = mbir_archive::stats::AccessStats::new();
            let mut pyramids = Vec::with_capacity(2);
            let mut stores = Vec::with_capacity(2);
            for attr in 0..2 {
                let band = Grid2::from_fn(band_rows, cols, |r, c| field(attr, offset + r, c));
                pyramids.push(AggregatePyramid::build(&band));
                stores.push(
                    TileStore::new(band, tile)
                        .expect("valid tile size")
                        .with_stats(stats.clone()),
                );
            }
            BatchShardWorld {
                pyramids,
                stores,
                stats,
                row_offset: offset,
            }
        })
        .collect();

    // Q=32 gently perturbed query directions — the cache-aware batching
    // regime: distinct answers, heavily overlapping descents.
    let models: Vec<LinearModel> = (0..q_count)
        .map(|qi| {
            let t = qi as f64;
            LinearModel::new(vec![1.0 + 0.004 * t, -0.62 + 0.003 * t], 0.05 * t)
                .expect("valid coefficients")
        })
        .collect();
    let budget = ExecutionBudget::unlimited();
    let policy = ScatterPolicy::require_all();
    let pool = WorkerPool::new(threads);

    // At archive scale base pages live on remote storage; in-memory tile
    // stores would make page fetches free and hide exactly the cost the
    // batch amortizes. Charge every cache miss a fixed wall-clock fetch
    // latency (the order of a fast object-store round trip) so MCell/s
    // reflects the storage cost model the rest of the repo expresses in
    // virtual ticks.
    let page_delay = std::time::Duration::from_micros(1000);
    struct EmulatedRemoteSource<'a> {
        inner: CachedTileSource<'a>,
        page_delay: std::time::Duration,
    }
    impl CellSource for EmulatedRemoteSource<'_> {
        fn base_cell(
            &self,
            attr: usize,
            row: usize,
            col: usize,
        ) -> Result<f64, mbir_archive::error::ArchiveError> {
            let before = self.inner.pages_read();
            let out = self.inner.base_cell(attr, row, col);
            let fetched = self.inner.pages_read().saturating_sub(before);
            if fetched > 0 {
                std::thread::sleep(self.page_delay * fetched as u32);
            }
            out
        }
        fn page_of(&self, row: usize, col: usize) -> Option<usize> {
            self.inner.page_of(row, col)
        }
        fn pages_read(&self) -> u64 {
            self.inner.pages_read()
        }
        fn ticks_elapsed(&self) -> u64 {
            self.inner.ticks_elapsed()
        }
    }

    // Fresh page caches per run (cold for every solo query and cold once
    // for the batch) keep the comparison honest.
    let with_batch_archive =
        |body: &mut dyn FnMut(&ShardedArchive<'_, EmulatedRemoteSource<'_>>)| {
            let sources: Vec<EmulatedRemoteSource<'_>> = worlds
                .iter()
                .map(|w| EmulatedRemoteSource {
                    inner: CachedTileSource::new(&w.stores, 1024).expect("aligned stores"),
                    page_delay,
                })
                .collect();
            let handles: Vec<ArchiveShard<'_, EmulatedRemoteSource<'_>>> = worlds
                .iter()
                .zip(&sources)
                .map(|(w, src)| ArchiveShard::new(&w.pyramids, src, w.row_offset))
                .collect();
            let archive = ShardedArchive::new(handles).expect("contiguous bands");
            body(&archive);
        };
    let cache_totals = || -> (u64, u64, u64) {
        worlds.iter().fold((0, 0, 0), |(h, m, d), w| {
            (
                h + w.stats.cache_hits(),
                m + w.stats.cache_misses(),
                d + w.stats.cache_dedup_waits(),
            )
        })
    };

    // Solo baseline: Q independent scatter-gather runs.
    let mut solo_results = Vec::with_capacity(q_count);
    let mut solo_pages = 0u64;
    let mut solo_ms: Vec<f64> = Vec::with_capacity(q_count);
    let cache_before = cache_totals();
    for model in &models {
        with_batch_archive(&mut |archive| {
            let t0 = Instant::now();
            let r = scatter_gather_top_k(model, archive, k, &budget, &policy, &pool)
                .expect("healthy solo scatter");
            solo_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            solo_pages += r.shards.iter().map(|s| s.pages_read).sum::<u64>();
            assert_eq!(r.completeness, 1.0, "solo scatter must resolve fully");
            solo_results.push(r.results);
        });
    }
    let cache_after = cache_totals();
    let solo_cache = (
        cache_after.0 - cache_before.0,
        cache_after.1 - cache_before.1,
        cache_after.2 - cache_before.2,
    );
    let solo_total_ms: f64 = solo_ms.iter().sum();
    let mut solo_sorted = solo_ms.clone();
    solo_sorted.sort_by(f64::total_cmp);
    let pct = |p: f64| solo_sorted[((solo_sorted.len() - 1) as f64 * p).round() as usize];
    let (solo_p50, solo_p99) = (pct(0.5), pct(0.99));

    // Batched run: one shared descent per shard serves all Q queries.
    let mut batch_pages = 0u64;
    let mut batch_ms = 0.0f64;
    let mut batch_counters = (0u64, 0u64, 0u64, 0u64); // fetched, requests, evals, breqs
    let cache_before = cache_totals();
    with_batch_archive(&mut |archive| {
        let t0 = Instant::now();
        let batch = batched_scatter_gather_top_k(&models, archive, k, &budget, &policy, &pool)
            .expect("healthy batched scatter");
        batch_ms = t0.elapsed().as_secs_f64() * 1e3;
        batch_pages = batch.pages_read;
        batch_counters = (
            batch.cells_fetched,
            batch.cell_requests,
            batch.bound_evals,
            batch.bound_requests,
        );
        for (q, solo) in solo_results.iter().enumerate() {
            assert_eq!(
                &batch.queries[q].results, solo,
                "batched answer must be bit-identical to the solo run (q={q})"
            );
            assert_eq!(batch.queries[q].completeness, 1.0);
            assert!(batch.queries[q]
                .shards
                .iter()
                .all(|s| s.outcome == ShardOutcome::Complete));
        }
        // Satellite view: the merged degradation summary with the page
        // cache folded in (batch-phase deltas are added below).
        let summary = sharded_degradation_summary(&batch.queries[0]);
        println!(
            "merged summary (q0): completeness {:.3}, pages read {}, skipped {}",
            summary.completeness, summary.pages_read, summary.skipped_pages
        );
    });
    let cache_after = cache_totals();
    let batch_cache = (
        cache_after.0 - cache_before.0,
        cache_after.1 - cache_before.1,
        cache_after.2 - cache_before.2,
    );

    let agg = |ms: f64| (q_count as u64 * cells) as f64 / 1e6 / (ms / 1e3);
    println!(
        "\n| mode | pages read | cache hit/miss/dedup | wall ms | agg Mcell/s | p50 ms/query | p99 ms/query |"
    );
    println!("|---|---|---|---|---|---|---|");
    println!(
        "| solo x{q_count} | {solo_pages} | {}/{}/{} | {solo_total_ms:.1} | {:.1} | {solo_p50:.2} | {solo_p99:.2} |",
        solo_cache.0,
        solo_cache.1,
        solo_cache.2,
        agg(solo_total_ms),
    );
    println!(
        "| batched Q={q_count} | {batch_pages} | {}/{}/{} | {batch_ms:.1} | {:.1} | {:.2} | {:.2} |",
        batch_cache.0,
        batch_cache.1,
        batch_cache.2,
        agg(batch_ms),
        batch_ms / q_count as f64,
        batch_ms / q_count as f64,
    );
    println!(
        "\nbatched sharing: {} cell requests over {} fetches ({:.1}x), {} bound requests over {} evals ({:.1}x)",
        batch_counters.1,
        batch_counters.0,
        batch_counters.1 as f64 / batch_counters.0.max(1) as f64,
        batch_counters.3,
        batch_counters.2,
        batch_counters.3 as f64 / batch_counters.2.max(1) as f64,
    );

    let page_ratio = solo_pages as f64 / batch_pages.max(1) as f64;
    let throughput_ratio = solo_total_ms / batch_ms.max(1e-9);
    let enforce = !small && cells >= 10_000_000;
    if enforce {
        assert!(
            page_ratio >= 3.0,
            "page amortization gate: batch must read >= 3x fewer pages, got {page_ratio:.2}x"
        );
        assert!(
            throughput_ratio >= 2.0,
            "throughput gate: batch must be >= 2x faster in aggregate, got {throughput_ratio:.2}x"
        );
    }
    println!(
        "per-query bit-identity: yes; page amortization {page_ratio:.1}x (gate >= 3x: {}); \
         aggregate throughput {throughput_ratio:.1}x (gate >= 2x: {})",
        if !enforce { "informational" } else { "pass" },
        if !enforce { "informational" } else { "pass" },
    );

    let json = format!(
        "{{\n  \"experiment\": \"r8_batch\",\n  \"schema_version\": 1,\n  \"seed\": {seed},\n  \
         \"world\": {{\"rows\": {rows}, \"cols\": {cols}, \"cells\": {cells}, \"tile\": {tile}, \
         \"shards\": {shards}, \"q\": {q_count}, \"k\": {k}, \"threads\": {threads}, \
         \"page_fetch_us\": 1000, \"small\": {small}}},\n  \"solo\": {{\"pages_read\": {solo_pages}, \"wall_ms\": \
         {solo_total_ms:.3}, \"mcells_per_s\": {:.3}, \"p50_ms\": {solo_p50:.3}, \"p99_ms\": \
         {solo_p99:.3}, \"cache_hits\": {}, \"cache_misses\": {}, \"cache_dedup_waits\": {}}},\n  \
         \"batched\": {{\"pages_read\": {batch_pages}, \"cells_fetched\": {}, \"cell_requests\": \
         {}, \"bound_evals\": {}, \"bound_requests\": {}, \"wall_ms\": {batch_ms:.3}, \
         \"mcells_per_s\": {:.3}, \"per_query_ms\": {:.3}, \"cache_hits\": {}, \"cache_misses\": \
         {}, \"cache_dedup_waits\": {}}},\n  \"gates\": {{\"bit_identical\": true, \
         \"page_ratio\": {page_ratio:.3}, \"throughput_ratio\": {throughput_ratio:.3}, \
         \"enforced\": {enforce}}}\n}}\n",
        agg(solo_total_ms),
        solo_cache.0,
        solo_cache.1,
        solo_cache.2,
        batch_counters.0,
        batch_counters.1,
        batch_counters.2,
        batch_counters.3,
        agg(batch_ms),
        batch_ms / q_count as f64,
        batch_cache.0,
        batch_cache.1,
        batch_cache.2,
    );
    match std::fs::write("BENCH_batch.json", &json) {
        Ok(()) => println!("\nwrote BENCH_batch.json"),
        Err(e) => eprintln!("\ncould not write BENCH_batch.json: {e}"),
    }
}

/// R3 — flat columnar kernels vs the legacy nested-Vec hot paths. Measures
/// the sequential scan and the Onion build/query at d=3, n=100k (the E1
/// workload scale), asserts bit-identical results, and writes both sides
/// plus speedup ratios to `BENCH_kernels.json`. With `--legacy` it times
/// and prints only the legacy paths and leaves the JSON alone.
fn r3_kernels(legacy_only: bool) {
    println!("\n## R3 — Flat columnar kernels vs legacy nested-Vec paths\n");
    let n = 100_000usize;
    let d = 3usize;
    let k = 10usize;
    let (points, dir) = onion_workload(7, n);
    let store = PointStore::from_rows(&points).expect("well-formed workload");
    const REPS: u32 = 3;
    let time_ns = |f: &mut dyn FnMut()| -> u64 {
        let mut best = u64::MAX;
        for _ in 0..REPS {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_nanos() as u64);
        }
        best
    };
    let melem_per_s = |ns: u64| n as f64 / (ns as f64 / 1e9) / 1e6;

    // Sequential scan: flat kernel vs closure-per-point over nested Vecs.
    let legacy_scan = scan_top_k(&points, k, |p| dir.iter().zip(p).map(|(a, v)| a * v).sum());
    let scan_legacy_ns = time_ns(&mut || {
        let _ = scan_top_k(&points, k, |p| dir.iter().zip(p).map(|(a, v)| a * v).sum());
    });

    // Onion build + query: kernel-backed store vs end-to-end nested Vecs.
    let legacy_index =
        OnionIndex::build_legacy_with(points.clone(), 24, 16, 7).expect("valid workload");
    let legacy_query = legacy_index.top_k_max_legacy(&dir, k).expect("valid query");
    let onion_build_legacy_ns = time_ns(&mut || {
        let _ = OnionIndex::build_legacy_with(points.clone(), 24, 16, 7).expect("valid workload");
    });
    let onion_query_legacy_ns = time_ns(&mut || {
        let _ = legacy_index.top_k_max_legacy(&dir, k).expect("valid query");
    });

    if legacy_only {
        println!("(--legacy: kernel paths not measured)\n");
        println!("| hot path | legacy ms | legacy Melem/s |");
        println!("|---|---|---|");
        for (label, ns) in [
            ("sequential scan", scan_legacy_ns),
            ("onion build", onion_build_legacy_ns),
            ("onion query", onion_query_legacy_ns),
        ] {
            println!(
                "| {label} | {:.3} | {:.1} |",
                ns as f64 / 1e6,
                melem_per_s(ns)
            );
        }
        return;
    }

    let kernel_scan = scan_top_k_flat(&store, &dir, k);
    assert_eq!(
        kernel_scan, legacy_scan,
        "flat scan must be bit-identical to the legacy scan"
    );
    let scan_kernel_ns = time_ns(&mut || {
        let _ = scan_top_k_flat(&store, &dir, k);
    });

    let kernel_index = OnionIndex::build_with(points.clone(), 24, 16, 7).expect("valid workload");
    assert_eq!(
        kernel_index.layer_sizes(),
        legacy_index.layer_sizes(),
        "kernel build must peel identical layers"
    );
    let kernel_query = kernel_index.top_k_max(&dir, k).expect("valid query");
    assert_eq!(
        kernel_query.results, legacy_query.results,
        "kernel query must be bit-identical to the legacy query"
    );
    let onion_build_kernel_ns = time_ns(&mut || {
        let _ = OnionIndex::build_with(points.clone(), 24, 16, 7).expect("valid workload");
    });
    let onion_query_kernel_ns = time_ns(&mut || {
        let _ = kernel_index.top_k_max(&dir, k).expect("valid query");
    });

    let rows = [
        ("sequential scan", scan_kernel_ns, scan_legacy_ns),
        ("onion build", onion_build_kernel_ns, onion_build_legacy_ns),
        ("onion query", onion_query_kernel_ns, onion_query_legacy_ns),
    ];
    println!("| hot path | legacy ms | kernel ms | legacy Melem/s | kernel Melem/s | speedup |");
    println!("|---|---|---|---|---|---|");
    for (label, kernel_ns, legacy_ns) in rows {
        println!(
            "| {label} | {:.3} | {:.3} | {:.1} | {:.1} | {:.2}x |",
            legacy_ns as f64 / 1e6,
            kernel_ns as f64 / 1e6,
            melem_per_s(legacy_ns),
            melem_per_s(kernel_ns),
            legacy_ns as f64 / kernel_ns as f64
        );
    }
    println!("\nAll kernel results asserted bit-identical to legacy before timing (d={d}, n={n}, k={k}).");

    // Machine-readable output (hand-rolled JSON; std only).
    let path_json = |kernel_ns: u64, legacy_ns: u64| -> String {
        format!(
            "{{\"legacy_ns\":{legacy_ns},\"kernel_ns\":{kernel_ns},\
             \"legacy_melem_per_s\":{:.3},\"kernel_melem_per_s\":{:.3},\"speedup\":{:.4}}}",
            melem_per_s(legacy_ns),
            melem_per_s(kernel_ns),
            legacy_ns as f64 / kernel_ns as f64
        )
    };
    let json = format!(
        "{{\n  \"experiment\": \"r3_kernels\",\n  \"world\": {{\"n\": {n}, \"d\": {d}, \
         \"k\": {k}}},\n  \"bit_identical\": true,\n  \"hot_paths\": {{\n    \
         \"sequential_scan\": {},\n    \"onion_build\": {},\n    \"onion_query\": {}\n  }}\n}}\n",
        path_json(scan_kernel_ns, scan_legacy_ns),
        path_json(onion_build_kernel_ns, onion_build_legacy_ns),
        path_json(onion_query_kernel_ns, onion_query_legacy_ns),
    );
    match std::fs::write("BENCH_kernels.json", &json) {
        Ok(()) => println!("\nwrote BENCH_kernels.json"),
        Err(e) => eprintln!("\ncould not write BENCH_kernels.json: {e}"),
    }
}

/// R7 — the i8 quantized coarse pass, end to end. Sweeps the pruned scan
/// over d x n variants (bit-identity asserted per variant), measures the
/// coarse-pruned Onion query against the legacy and flat-kernel paths at
/// the E1 scale (gating on >= 2x over legacy), verifies the core engines'
/// [`CoarseGrid`] pass is bit-identical sequentially and at every thread
/// count, and rewrites `BENCH_kernels.json` at `schema_version` 2: the R3
/// hot paths plus a `configs` array with per-variant throughput and prune
/// rates.
fn r7_quant(seed: u64) {
    println!("\n## R7 — Quantized coarse-pass pruning sweep\n");
    let k = 10usize;
    const REPS: u32 = 3;
    let time_ns = |f: &mut dyn FnMut()| -> u64 {
        let mut best = u64::MAX;
        for _ in 0..REPS {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_nanos() as u64);
        }
        best
    };

    // Scan sweep: the pruned scan against the exact flat kernel, one
    // variant per (d, n). Everything is asserted bit-identical before any
    // timing is believed.
    struct ScanRow {
        d: usize,
        n: usize,
        exact_ns: u64,
        quant_ns: u64,
        prune_rate: f64,
    }
    let mut rows: Vec<ScanRow> = Vec::new();
    println!("| d | n | exact ms | quant ms | exact Melem/s | quant Melem/s | speedup | prune |");
    println!("|---|---|---|---|---|---|---|---|");
    for d in [2usize, 3, 8] {
        for n in [10_000usize, 100_000, 1_000_000] {
            let (points, dir) = quant_workload(seed, n, d);
            let store = PointStore::from_rows(&points).expect("well-formed workload");
            let quant = QuantizedStore::build(&store);
            let exact = scan_top_k_flat(&store, &dir, k);
            let (pruned, report) = scan_top_k_quant(&store, &quant, &dir, k);
            assert_eq!(
                pruned.results, exact.results,
                "quant scan must be bit-identical (d={d}, n={n})"
            );
            let exact_ns = time_ns(&mut || {
                let _ = scan_top_k_flat(&store, &dir, k);
            });
            let quant_ns = time_ns(&mut || {
                let _ = scan_top_k_quant(&store, &quant, &dir, k);
            });
            let melem = |ns: u64| n as f64 / (ns as f64 / 1e9) / 1e6;
            println!(
                "| {d} | {n} | {:.3} | {:.3} | {:.1} | {:.1} | {:.2}x | {:.3} |",
                exact_ns as f64 / 1e6,
                quant_ns as f64 / 1e6,
                melem(exact_ns),
                melem(quant_ns),
                exact_ns as f64 / quant_ns as f64,
                report.prune_rate()
            );
            rows.push(ScanRow {
                d,
                n,
                exact_ns,
                quant_ns,
                prune_rate: report.prune_rate(),
            });
        }
    }

    // Onion query at the E1 scale: legacy nested-Vec, flat kernel, and
    // the quantized coarse-pruned walk, all answering identically.
    let onion_n = 100_000usize;
    let onion_d = 3usize;
    let (points, dir) = onion_workload(seed, onion_n);
    let legacy_index =
        OnionIndex::build_legacy_with(points.clone(), 24, 16, 7).expect("valid workload");
    let kernel_index = OnionIndex::build_with(points.clone(), 24, 16, 7).expect("valid workload");
    let quant_index =
        OnionIndex::build_quantized_with(points, 24, 16, 7, 1).expect("valid workload");
    let legacy_query = legacy_index.top_k_max_legacy(&dir, k).expect("valid query");
    let kernel_query = kernel_index.top_k_max(&dir, k).expect("valid query");
    let (quant_query, onion_report) = quant_index
        .top_k_max_quant_report(&dir, k)
        .expect("valid query");
    assert_eq!(kernel_query.results, legacy_query.results);
    assert_eq!(
        quant_query.results, legacy_query.results,
        "quant onion query must be bit-identical to legacy"
    );
    let onion_legacy_ns = time_ns(&mut || {
        let _ = legacy_index.top_k_max_legacy(&dir, k).expect("valid query");
    });
    let onion_kernel_ns = time_ns(&mut || {
        let _ = kernel_index.top_k_max(&dir, k).expect("valid query");
    });
    let onion_quant_ns = time_ns(&mut || {
        let _ = quant_index.top_k_max_quant(&dir, k).expect("valid query");
    });
    let onion_speedup = onion_legacy_ns as f64 / onion_quant_ns as f64;
    println!(
        "\nOnion query (d={onion_d}, n={onion_n}): legacy {:.3} ms, kernel {:.3} ms, \
         quant {:.3} ms — {:.2}x over legacy, prune rate {:.3}",
        onion_legacy_ns as f64 / 1e6,
        onion_kernel_ns as f64 / 1e6,
        onion_quant_ns as f64 / 1e6,
        onion_speedup,
        onion_report.prune_rate()
    );
    assert!(
        onion_speedup >= 2.0,
        "quantized onion query must be >= 2x over legacy, got {onion_speedup:.2}x"
    );

    // Core engines: the CoarseGrid pass must change nothing but effort,
    // sequentially and at every thread count.
    let (pyramids, model, stores, _) = parallel_world(seed, 256, 4, 16);
    let coarse = CoarseGrid::build(&pyramids).expect("pyramids agree");
    let src = TileSource::new(&stores).expect("aligned stores");
    let budget = ExecutionBudget::unlimited();
    let plain = resilient_top_k(&model, &pyramids, k, &src, &budget).expect("healthy run");
    let seq =
        resilient_top_k_coarse(&model, &pyramids, k, &src, &budget, &coarse).expect("healthy run");
    assert_eq!(seq.results, plain.results, "sequential coarse pass");
    assert_eq!(seq.completeness, plain.completeness);
    for threads in [1usize, 2, 4, 8] {
        let pool = WorkerPool::new(threads);
        let par = par_resilient_top_k_coarse(&model, &pyramids, k, &src, &budget, &coarse, &pool)
            .expect("healthy run");
        assert_eq!(
            par.results, plain.results,
            "parallel coarse pass at {threads} threads"
        );
        assert_eq!(par.completeness, plain.completeness);
    }
    println!(
        "\nCore CoarseGrid pass: bit-identical to the plain resilient engine \
         sequentially and at threads (1, 2, 4, 8) on the rough 256x256 world."
    );

    // Machine-readable output, schema_version 2: R3-shaped hot paths plus
    // the per-variant sweep.
    let melem = |n: usize, ns: u64| n as f64 / (ns as f64 / 1e9) / 1e6;
    let configs: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"d\":{},\"n\":{},\"scan\":{{\"exact_ns\":{},\"quant_ns\":{},\
                 \"exact_melem_per_s\":{:.3},\"quant_melem_per_s\":{:.3},\"speedup\":{:.4}}},\
                 \"prune_rate\":{:.6}}}",
                r.d,
                r.n,
                r.exact_ns,
                r.quant_ns,
                melem(r.n, r.exact_ns),
                melem(r.n, r.quant_ns),
                r.exact_ns as f64 / r.quant_ns as f64,
                r.prune_rate
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"r7_quant\",\n  \"schema_version\": 2,\n  \
         \"world\": {{\"onion_n\": {onion_n}, \"onion_d\": {onion_d}, \"k\": {k}, \
         \"seed\": {seed}}},\n  \"bit_identical\": true,\n  \"hot_paths\": {{\n    \
         \"onion_query\": {{\"legacy_ns\":{onion_legacy_ns},\"kernel_ns\":{onion_kernel_ns},\
         \"quant_ns\":{onion_quant_ns},\"speedup_quant_vs_legacy\":{:.4},\
         \"prune_rate\":{:.6}}}\n  }},\n  \"configs\": [\n    {}\n  ]\n}}\n",
        onion_speedup,
        onion_report.prune_rate(),
        configs.join(",\n    "),
    );
    match std::fs::write("BENCH_kernels.json", &json) {
        Ok(()) => println!("\nwrote BENCH_kernels.json (schema_version 2)"),
        Err(e) => eprintln!("\ncould not write BENCH_kernels.json: {e}"),
    }
}

/// R2 — parallel execution scaling: wall time, speedup, and efficiency of
/// each worker-pool engine across thread counts, plus batch cache hit
/// rates. Every parallel result is asserted bit-identical to its
/// sequential counterpart before timings are reported. Also writes the
/// numbers to `BENCH_parallel.json` for machines.
fn r2_parallel(max_threads: usize) {
    println!("\n## R2 — Parallel execution scaling\n");
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let side = 512usize;
    let arity = 4usize;
    let k = 10usize;
    let (pyramids, model, stores, stats) = parallel_world(29, side, arity, 16);
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t == 1 || t <= max_threads.max(1))
        .collect();
    const REPS: u32 = 3;
    let time_ns = |f: &mut dyn FnMut()| -> u64 {
        let mut best = u64::MAX;
        for _ in 0..REPS {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_nanos() as u64);
        }
        best
    };

    // Engine 1: parallel pyramid descent.
    let seq = pyramid_top_k(&model, &pyramids, k).expect("valid inputs");
    let mut pyramid_points: Vec<(usize, u64)> = Vec::new();
    for &t in &thread_counts {
        let pool = WorkerPool::new(t);
        let r = par_pyramid_top_k(&model, &pyramids, k, &pool).expect("valid inputs");
        assert_eq!(r.results, seq.results, "par_pyramid must be bit-identical");
        let ns = time_ns(&mut || {
            let _ = par_pyramid_top_k(&model, &pyramids, k, &pool).expect("valid inputs");
        });
        pyramid_points.push((t, ns));
    }

    // Engine 2: parallel staged scan over the flattened base level.
    let ranges: Vec<(f64, f64)> = pyramids
        .iter()
        .map(|p| {
            let root = p.root();
            (root.min, root.max)
        })
        .collect();
    let progressive =
        ProgressiveLinearModel::new(model.clone(), &ranges).expect("ranges match arity");
    let tuples: Vec<Vec<f64>> = (0..side * side)
        .map(|i| {
            pyramids
                .iter()
                .map(|p| p.cell(0, i / side, i % side).expect("in-bounds").mean)
                .collect()
        })
        .collect();
    let seq_staged = staged_top_k(&progressive, &tuples, k).expect("valid inputs");
    let mut staged_points: Vec<(usize, u64)> = Vec::new();
    for &t in &thread_counts {
        let pool = WorkerPool::new(t);
        let r = par_staged_top_k(&progressive, &tuples, k, &pool).expect("valid inputs");
        assert_eq!(
            r.results, seq_staged.results,
            "par_staged must be bit-identical"
        );
        let ns = time_ns(&mut || {
            let _ = par_staged_top_k(&progressive, &tuples, k, &pool).expect("valid inputs");
        });
        staged_points.push((t, ns));
    }

    // Engine 3: batched queries over one cached archive.
    let n_queries = 8usize;
    let batch_of = || {
        let mut batch = QueryBatch::new(&model, &pyramids);
        for q in 0..n_queries {
            let query = if q % 2 == 0 {
                TopKQuery::max(k + q).expect("valid k")
            } else {
                TopKQuery::new(k + q, Objective::Minimize).expect("valid k")
            };
            batch.admit(query);
        }
        batch
    };
    let plain_src = TileSource::new(&stores).expect("aligned stores");
    let sequential_batch: Vec<_> = batch_of()
        .queries()
        .iter()
        .map(|q| grid_query_with_source(&model, &pyramids, *q, &plain_src).expect("valid query"))
        .collect();
    let mut batch_points: Vec<(usize, u64)> = Vec::new();
    let mut cache_hit_rate = 0.0f64;
    for &t in &thread_counts {
        let pool = WorkerPool::new(t);
        let cached = CachedTileSource::new(&stores, 64).expect("aligned stores");
        stats.reset();
        let results = batch_of().run(&cached, &pool);
        for (r, s) in results.iter().zip(&sequential_batch) {
            assert_eq!(
                r.as_ref().expect("healthy archive").results,
                s.results,
                "batch must be bit-identical"
            );
        }
        cache_hit_rate = stats.cache_hit_rate().unwrap_or(0.0);
        let ns = time_ns(&mut || {
            let cached = CachedTileSource::new(&stores, 64).expect("aligned stores");
            let _ = batch_of().run(&cached, &pool);
        });
        batch_points.push((t, ns));
    }

    let engines = [
        ("par_pyramid_top_k", &pyramid_points),
        ("par_staged_top_k", &staged_points),
        ("query_batch", &batch_points),
    ];
    for (name, points) in engines {
        println!("### {name}\n");
        println!("| threads | wall ms | speedup | efficiency |");
        println!("|---|---|---|---|");
        for row in scaling_table(points) {
            println!(
                "| {} | {:.3} | {:.2}x | {:.2} |",
                row.threads,
                row.wall_ns as f64 / 1e6,
                row.speedup,
                row.efficiency
            );
        }
        println!();
    }
    println!("host CPUs: {host_cpus}; batch cache hit rate: {cache_hit_rate:.3}");
    println!("All parallel results asserted bit-identical to sequential before timing.");

    // Machine-readable output (hand-rolled JSON; std only).
    let scaling_json = |points: &[(usize, u64)]| -> String {
        let rows: Vec<String> = scaling_table(points)
            .iter()
            .map(|r| {
                format!(
                    "{{\"threads\":{},\"wall_ns\":{},\"speedup\":{:.4},\"efficiency\":{:.4}}}",
                    r.threads, r.wall_ns, r.speedup, r.efficiency
                )
            })
            .collect();
        format!("[{}]", rows.join(","))
    };
    let json = format!(
        "{{\n  \"experiment\": \"r2_parallel\",\n  \"host_cpus\": {host_cpus},\n  \
         \"max_threads\": {max_threads},\n  \"world\": {{\"side\": {side}, \"arity\": {arity}, \
         \"k\": {k}}},\n  \"bit_identical\": true,\n  \"engines\": {{\n    \
         \"par_pyramid_top_k\": {},\n    \"par_staged_top_k\": {},\n    \"query_batch\": {}\n  \
         }},\n  \"query_batch_queries\": {n_queries},\n  \"cache_hit_rate\": {cache_hit_rate:.4}\n}}\n",
        scaling_json(&pyramid_points),
        scaling_json(&staged_points),
        scaling_json(&batch_points),
    );
    match std::fs::write("BENCH_parallel.json", &json) {
        Ok(()) => println!("\nwrote BENCH_parallel.json"),
        Err(e) => eprintln!("\ncould not write BENCH_parallel.json: {e}"),
    }
}

/// R1 — retrieval under fault injection: completeness, skipped pages, and
/// budget stops instead of aborted queries.
fn r1_resilience() {
    println!("\n## R1 — Resilient retrieval under archive faults\n");
    let side = 128usize;
    let k = 10usize;
    let (pyramids, stores, model, _) = hps_paged_world(13, side, side, 16);
    let page_count = stores[0].page_count();
    let strict = pyramid_top_k(model.model(), &pyramids, k).expect("valid");

    let with_profile = |profile: FaultProfile, config: ResilienceConfig| -> Vec<TileStore> {
        stores
            .iter()
            .map(|s| {
                s.clone()
                    .with_faults(profile.clone())
                    .with_resilience(config)
            })
            .collect()
    };
    // Measure the healthy run first so the fault scenarios are calibrated
    // to pages the query actually needs, not arbitrary page numbers.
    let healthy = with_profile(FaultProfile::new(1), ResilienceConfig::none());
    let healthy_src = TileSource::new(&healthy).expect("aligned");
    resilient_top_k(
        model.model(),
        &pyramids,
        k,
        &healthy_src,
        &ExecutionBudget::unlimited(),
    )
    .expect("healthy run");
    let pages_needed = healthy_src.pages_read().max(2);
    let hot_pages: Vec<usize> = strict
        .results
        .iter()
        .map(|sc| stores[0].page_of(sc.cell.row, sc.cell.col))
        .collect();

    let retry2 = ResilienceConfig::new(RetryPolicy::retries(2), Some(4));
    let scenarios: Vec<(String, Vec<TileStore>, ExecutionBudget)> = vec![
        (
            "healthy, unlimited".to_owned(),
            healthy,
            ExecutionBudget::unlimited(),
        ),
        (
            "transient flakes (heal after 1), 2 retries".to_owned(),
            with_profile(
                (0..page_count).fold(FaultProfile::new(2), |p, pg| p.transient(pg, 1)),
                retry2,
            ),
            ExecutionBudget::unlimited(),
        ),
        (
            "hot pages lost, 2 retries + quarantine".to_owned(),
            with_profile(
                hot_pages
                    .iter()
                    .fold(FaultProfile::new(3), |p, pg| p.permanent(*pg)),
                retry2,
            ),
            ExecutionBudget::unlimited(),
        ),
        (
            format!(
                "healthy, page budget {} of {pages_needed}",
                pages_needed / 2
            ),
            with_profile(FaultProfile::new(4), ResilienceConfig::none()),
            ExecutionBudget::unlimited().with_max_page_reads(pages_needed / 2),
        ),
        (
            "slow pages (20 ticks), half-time deadline".to_owned(),
            with_profile(
                (0..page_count).fold(FaultProfile::new(5), |p, pg| p.latency(pg, 20)),
                ResilienceConfig::none(),
            ),
            // Healthy cost is 1 tick/access; with latency it is 21.
            ExecutionBudget::unlimited().with_deadline_ticks(pages_needed * 21 / 2),
        ),
    ];

    println!("| scenario | completeness | skipped pages | exact hits | degraded | budget stop | top-1 in bounds |");
    println!("|---|---|---|---|---|---|---|");
    for (label, faulty_stores, budget) in &scenarios {
        let src = TileSource::new(faulty_stores).expect("aligned");
        let r = resilient_top_k(model.model(), &pyramids, k, &src, budget).expect("never aborts");
        let exact = r.results.iter().filter(|h| h.exact).count();
        let covered = r.results.iter().any(|h| {
            h.bounds.lo <= strict.results[0].score && strict.results[0].score <= h.bounds.hi
        });
        println!(
            "| {label} | {:.3} | {} | {} | {} | {} | {} |",
            r.completeness,
            r.skipped_pages.len(),
            exact,
            r.results.len() - exact,
            r.budget_stop.map_or("-".to_owned(), |s| s.to_string()),
            if covered { "yes" } else { "no" },
        );
    }
    println!("\nEvery scenario returns {k} ranked entries with sound score bounds;");
    println!("degradation is reported, never silent, and no query aborts.");
}

/// A1 — ablation: which Onion design choices carry the speedup?
/// (hint support vs generic bounds; number of peeled layers).
fn a1_onion_ablation() {
    println!("\n## A1 — Ablation: Onion bound type and layer budget\n");
    let n = 200_000usize;
    let (points, dir) = onion_workload(17, n);
    let k = 10;
    let scan = scan_top_k(&points, k, |p| dir.iter().zip(p).map(|(a, v)| a * v).sum());
    println!("| variant | layers built | tuples examined | speedup |");
    println!("|---|---|---|---|");
    for (label, hints, max_layers) in [
        ("generic bounds, 64 layers", false, 64usize),
        ("generic bounds, 8 layers", false, 8),
        ("hinted, 64 layers", true, 64),
        ("hinted, 8 layers", true, 8),
        ("hinted, 2 layers", true, 2),
    ] {
        let hint_vec = if hints { vec![dir.clone()] } else { vec![] };
        let index = OnionIndex::build_with_hints(points.clone(), &hint_vec, max_layers, 32, 7)
            .expect("valid workload");
        let r = index.top_k_max(&dir, k).expect("valid query");
        assert!(r.score_equivalent(&scan, 1e-9), "{label} must stay exact");
        println!(
            "| {label} | {} | {} | {:.0}x |",
            index.layer_count(),
            r.stats.tuples_examined,
            r.stats.speedup_vs(&scan.stats).unwrap_or(0.0)
        );
    }
    println!("\nEvery variant is exact; the ablation only moves the work.");
}

/// A2 — ablation: progressive-data speedup vs spatial coherence.
fn a2_coherence_ablation() {
    use mbir_archive::synth::GaussianField;
    use mbir_progressive::pyramid::AggregatePyramid;
    println!("\n## A2 — Ablation: pyramid engine speedup vs spatial coherence\n");
    println!("| field roughness | lag-1 autocorrelation | p_d speedup |");
    println!("|---|---|---|");
    for roughness in [0.2f64, 0.4, 0.6, 0.8, 1.0] {
        let grids: Vec<_> = (0..3)
            .map(|i| {
                GaussianField::new(31 + i)
                    .with_roughness(roughness)
                    .generate(256, 256)
                    .normalized(0.0, 100.0)
            })
            .collect();
        // Lag-1 autocorrelation of the first field (coherence measure).
        let g = &grids[0];
        let m = g.mean();
        let mut num = 0.0;
        let mut den = 0.0;
        for r in 0..g.rows() {
            for c in 0..g.cols() {
                let d = g.at(r, c) - m;
                den += d * d;
                if c + 1 < g.cols() {
                    num += d * (g.at(r, c + 1) - m);
                }
            }
        }
        let autocorr = num / den;
        let pyramids: Vec<AggregatePyramid> = grids.iter().map(AggregatePyramid::build).collect();
        let model = LinearModel::new(vec![1.0, 0.6, 0.3], 0.0).expect("valid");
        let fast = pyramid_top_k(&model, &pyramids, 10).expect("valid inputs");
        println!(
            "| {roughness:.1} | {autocorr:.3} | {:.1}x |",
            fast.effort.speedup()
        );
    }
    println!("\nThe progressive-data mechanism is a bet on spatial coherence; uncorrelated data defeats it (speedup < 1 means bound evaluations outweighed the savings).");
}

/// E1 — Onion vs sequential scan on 3-attribute Gaussian data (§3.2).
fn e1_onion() {
    println!("\n## E1 — Onion index vs sequential scan (3-attr Gaussian, §3.2)\n");
    println!("| N | K | scan tuples | onion tuples | speedup (tuples) | scan ms | onion ms | speedup (time) | 1999-disk speedup |");
    println!("|---|---|---|---|---|---|---|---|---|");
    // Layers are stored contiguously (the Onion paper's layout), so pages
    // read = examined tuples / page capacity for both access paths.
    const TUPLES_PER_PAGE: u64 = 256;
    let io = mbir_archive::stats::IoModel::disk_1999();
    let sim = |tuples: u64| {
        let stats = mbir_archive::stats::AccessStats::new();
        stats.record_tuples(tuples);
        stats.record_pages(tuples.div_ceil(TUPLES_PER_PAGE));
        stats.simulated_ms(&io)
    };
    for n in [10_000usize, 100_000, 1_000_000] {
        let (points, dir) = onion_workload(1, n);
        let index =
            OnionIndex::build_with_hints(points.clone(), std::slice::from_ref(&dir), 64, 32, 7)
                .expect("valid workload");
        for k in [1usize, 10, 100] {
            let t0 = Instant::now();
            let scan = scan_top_k(&points, k, |p| dir.iter().zip(p).map(|(a, v)| a * v).sum());
            let scan_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t0 = Instant::now();
            let onion = index.top_k_max(&dir, k).expect("valid query");
            let onion_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert!(onion.score_equivalent(&scan, 1e-9), "onion must be exact");
            println!(
                "| {} | {} | {} | {} | {:.0}x | {:.2} | {:.3} | {:.0}x | {:.0}x |",
                n,
                k,
                scan.stats.tuples_examined,
                onion.stats.tuples_examined,
                onion.stats.speedup_vs(&scan.stats).unwrap_or(0.0),
                scan_ms,
                onion_ms,
                scan_ms / onion_ms.max(1e-6),
                sim(scan.stats.tuples_examined) / sim(onion.stats.tuples_examined).max(1e-9)
            );
        }
    }
    println!("\npaper claim: ~13,000x top-1 and ~1,400x top-10 (page accesses, their testbed).");
}

/// E2 — progressive classification speedup (§3.1 / ref 13, ~30x claimed).
fn e2_progressive_classification() {
    println!("\n## E2 — Progressive classification on pyramids (§3.1 / [13])\n");
    println!("| scene | full evals | progressive evals | speedup | exact? |");
    println!("|---|---|---|---|---|");
    for side in [128usize, 256, 512] {
        let (bands, pyramids, clf) = classification_world(2, side, side);
        let mut full_work = 0u64;
        let full = clf.classify_grid(&bands, &mut full_work);
        let (prog, prog_work) = clf.classify_progressive(&pyramids);
        println!(
            "| {side}x{side} | {full_work} | {prog_work} | {:.1}x | {} |",
            full_work as f64 / prog_work as f64,
            full == prog
        );
    }
    println!("\npaper claim: ~30x ([13], compressed-domain EOS classification).");
}

/// E3 — progressive texture matching (§3.1 / ref 12, 4–8x claimed).
///
/// Work is counted in *pixels processed by feature extraction*: the naive
/// path extracts fine features for every tile (`tiles x tile^2` pixels);
/// the progressive path extracts coarse features for every tile at the
/// reduced resolution (`tiles x (tile/s)^2` pixels) plus fine features for
/// the tiles that survive the screen. With a 2x reduction the speedup is
/// bounded by 4x, with 4x by 16x — the paper's 4–8x band.
fn e3_progressive_texture() {
    println!("\n## E3 — Progressive texture matching (§3.1 / [12])\n");
    println!("| scene | reduction | naive pixels | progressive pixels | speedup | hit found |");
    println!("|---|---|---|---|---|---|");
    for side in [512usize, 1024] {
        let tile = 32;
        let (fine, coarse2, tile) = texture_world(3, side, tile);
        // A further 2x reduction for the 4x screen.
        let coarse4 = Grid2::from_fn(side / 4, side / 4, |r, c| {
            (coarse2.at(2 * r, 2 * c)
                + coarse2.at(2 * r + 1, 2 * c)
                + coarse2.at(2 * r, 2 * c + 1)
                + coarse2.at(2 * r + 1, 2 * c + 1))
                / 4.0
        });
        let tiles = (side / tile) * (side / tile);
        let planted = (side / tile - 2, side / tile - 1);
        let query_window = fine
            .window(
                mbir_archive::extent::CellCoord::new(planted.0 * tile, planted.1 * tile),
                tile,
                tile,
            )
            .expect("planted tile in range");
        let query_fine = TileFeatures::of(&query_window);
        for (scale, coarse) in [(2usize, &coarse2), (4usize, &coarse4)] {
            let ct = tile / scale;
            let query_coarse_window = coarse
                .window(
                    mbir_archive::extent::CellCoord::new(planted.0 * ct, planted.1 * ct),
                    ct,
                    ct,
                )
                .expect("planted tile in range");
            let query_coarse = TileFeatures::of(&query_coarse_window);
            let naive_pixels = tile_features(&fine, tile).len() * tile * tile;
            let (hits, fine_work) =
                progressive_texture_match(&fine, coarse, &query_coarse, &query_fine, tile, 1, 2.0);
            let progressive_pixels = tiles * ct * ct + fine_work * tile * tile;
            println!(
                "| {side}x{side} | {scale}x | {naive_pixels} | {progressive_pixels} | {:.1}x | {} |",
                naive_pixels as f64 / progressive_pixels as f64,
                hits.first() == Some(&planted)
            );
        }
    }
    println!("\npaper claim: 4–8x ([12], progressive texture matching on EOS imagery).");
}

/// E4 — SPROC complexity (§3.2: `O(L^M)` -> `O(MKL^2)` -> sorted lists).
fn e4_sproc() {
    println!("\n## E4 — SPROC fuzzy Cartesian queries (§3.2 / [15][16])\n");
    println!("| L | M | K | brute comparisons | DP comparisons | fast comparisons | DP==brute | fast==brute |");
    println!("|---|---|---|---|---|---|---|---|");
    for (l, m, k) in [
        (8usize, 3usize, 5usize),
        (16, 3, 5),
        (32, 3, 5),
        (16, 4, 5),
        (64, 3, 10),
    ] {
        let index = SprocIndex::new(sproc_workload(4, m, l)).expect("valid workload");
        let brute = index
            .brute_force(k, None, 100_000_000)
            .expect("within limit");
        let dp = index.top_k_dp(k, None).expect("valid query");
        let fast = index.top_k_independent(k).expect("valid query");
        println!(
            "| {l} | {m} | {k} | {} | {} | {} | {} | {} |",
            brute.stats.comparisons,
            dp.stats.comparisons,
            fast.stats.comparisons,
            dp.score_equivalent(&brute, 1e-9),
            fast.score_equivalent(&brute, 1e-9)
        );
    }
    // Larger instances where brute force is infeasible: DP vs fast only.
    println!("\n| L | M | K | DP comparisons | fast comparisons | fast speedup | agree |");
    println!("|---|---|---|---|---|---|---|");
    for (l, m, k) in [(500usize, 3usize, 10usize), (1000, 4, 10), (2000, 3, 25)] {
        let index = SprocIndex::new(sproc_workload(9, m, l)).expect("valid workload");
        let dp = index.top_k_dp(k, None).expect("valid query");
        let fast = index.top_k_independent(k).expect("valid query");
        println!(
            "| {l} | {m} | {k} | {} | {} | {:.0}x | {} |",
            dp.stats.comparisons,
            fast.stats.comparisons,
            dp.stats.comparisons as f64 / fast.stats.comparisons as f64,
            fast.score_equivalent(&dp, 1e-9)
        );
    }
}

/// E5 — §4.1 accuracy: cost sweep + precision/recall of top-K retrieval.
fn e5_accuracy() {
    println!("\n## E5 — Model accuracy (§4.1)\n");
    let (pyramids, model, _) = hps_world(5, 128, 128);
    let risk = Grid2::from_fn(128, 128, |r, c| {
        let x: Vec<f64> = pyramids
            .iter()
            .map(|p| p.cell(0, r, c).expect("in-bounds").mean)
            .collect();
        model.model().evaluate(&x)
    });
    let normalized = risk.normalized(0.0, 1.0);
    let occurrences = OccurrenceSampler::new(6)
        .with_base_rate(2.0)
        .sample(&normalized.map(|&v| if v > 0.8 { v } else { 0.0 }));

    println!("### cost sweep (c_m = 10, c_f = 1)\n");
    println!("| threshold | misses | false alarms | miss rate | FA rate | C_T |");
    println!("|---|---|---|---|---|---|");
    let (lo, hi) = risk.min_max().expect("non-empty");
    let thresholds: Vec<f64> = (0..=8).map(|i| lo + (hi - lo) * i as f64 / 8.0).collect();
    for (t, r) in
        threshold_sweep(&risk, &occurrences, None, 10.0, 1.0, &thresholds).expect("aligned grids")
    {
        println!(
            "| {:.1} | {} | {} | {:.3} | {:.3} | {:.0} |",
            t, r.misses, r.false_alarms, r.miss_rate, r.false_alarm_rate, r.total_cost
        );
    }

    println!("\n### precision / recall of top-K retrieval\n");
    println!("| K | precision | recall |");
    println!("|---|---|---|");
    for k in [10usize, 50, 100, 250, 500, 1000] {
        let pr = precision_recall_at_k(&risk, &occurrences, k).expect("aligned grids");
        println!("| {k} | {:.3} | {:.3} |", pr.precision, pr.recall);
    }
}

/// E6 — §4.2 efficiency: p_m, p_d and their composition.
fn e6_combined_speedup() {
    println!("\n## E6 — Progressive model x progressive data (§4.2)\n");
    println!("| world | arity | naive mul-adds | model-only (p_m) | data-only (p_d) | combined | combined speedup |");
    println!("|---|---|---|---|---|---|---|");
    for (rows, arity) in [(256usize, 4usize), (256, 8), (256, 16)] {
        let (pyramids, model, progressive) = wide_model_world(11, rows, rows, arity);
        let k = 10;
        let naive = naive_grid_top_k(&model, &pyramids, k).expect("valid inputs");
        // Model-only: staged scan over the flattened pixels.
        let tuples: Vec<Vec<f64>> = (0..rows * rows)
            .map(|i| {
                pyramids
                    .iter()
                    .map(|p| p.cell(0, i / rows, i % rows).expect("in-bounds").mean)
                    .collect()
            })
            .collect();
        let model_only = staged_top_k(&progressive, &tuples, k).expect("valid inputs");
        let data_only = pyramid_top_k(&model, &pyramids, k).expect("valid inputs");
        let both = combined_top_k(&progressive, &pyramids, k).expect("valid inputs");
        // All exact.
        for (a, b) in both.results.iter().zip(&naive.results) {
            assert!((a.score - b.score).abs() < 1e-9);
        }
        println!(
            "| {rows}x{rows} | {arity} | {} | {} ({:.1}x) | {} ({:.1}x) | {} | {:.1}x |",
            naive.effort.naive_multiply_adds,
            model_only.effort.multiply_adds,
            model_only.effort.speedup(),
            data_only.effort.multiply_adds,
            data_only.effort.speedup(),
            both.effort.multiply_adds,
            both.effort.speedup()
        );
    }
    println!("\npaper: total complexity O(nN) -> O(nN/(p_m p_d)).");
}

/// E7 — R*-tree is sub-optimal for model queries (§3.2).
fn e7_rstar_baseline() {
    println!("\n## E7 — Spatial index (R*-tree) vs model-specific index (§3.2)\n");
    println!("| N | K | scan tuples | rstar tuples | onion (hinted) tuples |");
    println!("|---|---|---|---|---|");
    for n in [10_000usize, 50_000] {
        let (points, dir) = onion_workload(13, n);
        let rstar = RStarTree::bulk(points.clone()).expect("valid points");
        let onion =
            OnionIndex::build_with_hints(points.clone(), std::slice::from_ref(&dir), 64, 32, 7)
                .expect("valid points");
        for k in [1usize, 10] {
            let scan = scan_top_k(&points, k, |p| dir.iter().zip(p).map(|(a, v)| a * v).sum());
            let r = rstar.top_k_max(&dir, k).expect("valid query");
            let o = onion.top_k_max(&dir, k).expect("valid query");
            assert!(r.score_equivalent(&scan, 1e-9));
            assert!(o.score_equivalent(&scan, 1e-9));
            println!(
                "| {n} | {k} | {} | {} | {} |",
                scan.stats.tuples_examined, r.stats.tuples_examined, o.stats.tuples_examined
            );
        }
    }
}

/// F1 — the fire-ants FSM over a climate grid + progressive screening.
fn f1_fire_ants() {
    println!("\n## F1 — Fire-ants finite-state model (Fig. 1)\n");
    let regions: Vec<_> = (0..400u64)
        .map(|seed| {
            let mean_temp = 5.0 + (seed % 20) as f64;
            WeatherGenerator::new(seed)
                .with_temperature(mean_temp, 8.0, 2.0)
                .generate(0, 365)
        })
        .collect();
    let (all_events, stats) = screened_fly_detection(&regions, 30).expect("valid block size");
    let firing = all_events.iter().filter(|e| !e.is_empty()).count();
    let events: usize = all_events.iter().map(Vec::len).sum();
    println!("| regions | screened out by coarse summary | FSM runs | firing regions | events |");
    println!("|---|---|---|---|---|");
    println!(
        "| {} | {} | {} | {firing} | {events} |",
        stats.regions,
        stats.screened_out,
        stats.regions - stats.screened_out
    );
    println!(
        "\ndaily readings avoided by screening: {} of {} ({:.1}x data-touched speedup)",
        stats.readings_total - stats.readings_processed,
        stats.readings_total,
        stats.speedup()
    );
}

/// F3 — the HPS high-risk-house Bayesian network (Figs. 2–3).
fn f3_hps_network() {
    println!("\n## F3 — High-risk-house Bayesian network (Fig. 3)\n");
    let (net, nodes) = hps_network();
    println!("| house | bushes | wet season | dry season | P(high risk) |");
    println!("|---|---|---|---|---|");
    for mask in 0..16u32 {
        let b = |bit: u32| mask & (1 << bit) != 0;
        let p =
            risk_given_observations(&net, &nodes, b(3), b(2), b(1), b(0)).expect("valid evidence");
        println!("| {} | {} | {} | {} | {:.4} |", b(3), b(2), b(1), b(0), p);
    }
}

/// F4 — the geology riverbed knowledge model (Fig. 4).
fn f4_geology() {
    println!("\n## F4 — Riverbed knowledge model (Fig. 4)\n");
    let n_wells = 100usize;
    let model = RiverbedModel::paper();
    let wells: Vec<WellLog> = (0..n_wells)
        .map(|i| {
            if i % 5 == 0 {
                WellLog::synthetic_with_riverbed(i as u64, 600.0)
            } else {
                WellLog::synthetic(i as u64, 600.0)
            }
        })
        .collect();
    let mut ranked: Vec<(usize, f64)> = wells
        .iter()
        .enumerate()
        .map(|(i, w)| (i, model.well_score(w)))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let planted = |i: usize| i.is_multiple_of(5);
    println!("| K | planted wells in top-K | precision |");
    println!("|---|---|---|");
    for k in [5usize, 10, 20] {
        let hits = ranked[..k].iter().filter(|(i, _)| planted(*i)).count();
        println!("| {k} | {hits} | {:.2} |", hits as f64 / k as f64);
    }
    println!(
        "\n(20 of {n_wells} wells carry the planted shale/sandstone/siltstone + gamma>45 \
         signature; random stratigraphy can legitimately contain the same sequence.)"
    );
}

/// F5 — the Fig. 5 workflow loop.
fn f5_workflow() {
    println!("\n## F5 — Hypothesize -> calibrate -> retrieve -> revise (Fig. 5)\n");
    let (pyramids, _, _) = hps_world(21, 96, 96);
    // Planted truth over the four attributes: risk is vegetation-driven
    // (bands in 0..255), elevation (0..2500 m) nearly irrelevant — note the
    // coefficient scales so each term's *contribution* reflects that.
    let truth = LinearModel::new(vec![0.5, 0.25, 0.15, 0.001], 0.0).expect("valid");
    let risk = Grid2::from_fn(96, 96, |r, c| {
        let x: Vec<f64> = pyramids
            .iter()
            .map(|p| p.cell(0, r, c).expect("in-bounds").mean)
            .collect();
        truth.evaluate(&x)
    })
    .normalized(0.0, 1.0);
    let occurrences = OccurrenceSampler::new(22)
        .with_base_rate(3.0)
        .sample(&risk.map(|&v| if v > 0.7 { v } else { 0.0 }));
    // A genuinely wrong hypothesis: bets on elevation (an attribute that is
    // independent of the bands) while the truth is vegetation-driven.
    let hypothesis = LinearModel::new(vec![0.0, 0.0, 0.0, 1.0], 0.0).expect("valid");
    let run = run_workflow(
        &pyramids,
        &occurrences,
        hypothesis,
        WorkflowConfig {
            k: 40,
            iterations: 8,
            seed: 4,
            exploration: 150,
        },
    )
    .expect("valid workflow");
    println!("| iteration | precision | recall | labelled cells |");
    println!("|---|---|---|---|");
    for rec in &run.iterations {
        println!(
            "| {} | {:.3} | {:.3} | {} |",
            rec.iteration, rec.precision, rec.recall, rec.labelled
        );
    }
    println!("\nfinal model: {}", run.final_model);
}

/// R10 — crash-consistent appends: the journal writer is killed at every
/// byte offset (plus torn-write and partial-record cuts inside every
/// frame) and each recovery must be bit-identical to a freshly built
/// archive of the committed prefix; live appends then run under
/// concurrent queries with snapshot answers gated bit-identical at
/// threads ∈ {1, 2, 4, 8} and shards ∈ {1, 4}. Writes `BENCH_append.json`.
fn r10_append(seed: u64, small: bool) {
    use mbir_archive::fault::WriteFault;
    use mbir_archive::journal::FRAME_HEADER_LEN;
    use mbir_archive::shard::ShardPlan;
    use mbir_core::continuous::ContinuousQueryDriver;
    use mbir_core::snapshot::{EpochSnapshot, LiveArchive};
    use mbir_models::fsm::fire_ants::{fire_ants_fsm, DayClass};

    println!(
        "\n## R10 — Crash-consistent appends: chaos recovery and snapshot isolation (seed {seed})\n"
    );

    // Content keyed by absolute coordinates so the archive after any number
    // of commits equals one `from_fn` build over the full height.
    let cell = move |attr: usize, row: usize, col: usize| -> f64 {
        let h = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((attr as u64) << 40)
            .wrapping_add((row as u64) << 20)
            .wrapping_add(col as u64)
            .wrapping_mul(0x5851_f42d_4c95_7f2d);
        ((h >> 16) % 10_000) as f64 / 50.0 - 100.0
    };
    let grids_to = move |attrs: usize, rows: usize, cols: usize| -> Vec<Grid2<f64>> {
        (0..attrs)
            .map(|a| Grid2::from_fn(rows, cols, |r, c| cell(a, r, c)))
            .collect()
    };
    let band_at = move |attrs: usize, offset: usize, h: usize, cols: usize| -> Vec<Grid2<f64>> {
        (0..attrs)
            .map(|a| Grid2::from_fn(h, cols, |r, c| cell(a, offset + r, c)))
            .collect()
    };
    let clean_archive =
        move |attrs: usize, base: usize, heights: &[usize], cols: usize, tile: usize| {
            let mut live = LiveArchive::new(grids_to(attrs, base, cols), tile).expect("valid base");
            let mut offset = base;
            for &h in heights {
                live.append(&band_at(attrs, offset, h, cols))
                    .expect("clean append");
                offset += h;
            }
            live
        };

    fn snapshots_bit_eq(a: &EpochSnapshot, b: &EpochSnapshot) -> bool {
        a.epoch() == b.epoch()
            && a.stores().iter().zip(b.stores()).all(|(x, y)| {
                x.rows() == y.rows()
                    && (0..x.rows()).all(|r| {
                        (0..x.cols()).all(|c| {
                            x.read(r, c).unwrap().to_bits() == y.read(r, c).unwrap().to_bits()
                        })
                    })
            })
    }

    // --- Phase 1: the crash sweep, over a compact journal so "every byte
    // offset" stays tractable.
    let (attrs, cols, tile, base_rows) = (2usize, 6usize, 2usize, 4usize);
    let commits = if small { 3usize } else { 6 };
    let heights: Vec<usize> = (0..commits).map(|i| tile * (1 + i % 2)).collect();
    let clean = clean_archive(attrs, base_rows, &heights, cols, tile);
    let total = clean.journal_bytes().len();
    let clean_prefixes: Vec<LiveArchive> = (0..=commits)
        .map(|n| clean_archive(attrs, base_rows, &heights[..n], cols, tile))
        .collect();

    let sweep_start = Instant::now();
    let mut recoveries = 0usize;
    let mut dropped_partial_total = 0usize;
    let mut run_to_crash = |fault: WriteFault, label: &str| {
        let mut live = LiveArchive::new(grids_to(attrs, base_rows, cols), tile)
            .expect("valid base")
            .with_write_fault(fault);
        let mut offset = base_rows;
        let mut committed = 0usize;
        for &h in &heights {
            match live.append(&band_at(attrs, offset, h, cols)) {
                Ok(_) => {
                    offset += h;
                    committed += 1;
                }
                Err(_) => break,
            }
        }
        let (rec, report) =
            LiveArchive::recover(grids_to(attrs, base_rows, cols), tile, live.journal_bytes())
                .expect("recovery never fails on a valid base");
        assert_eq!(
            report.applied as usize, committed,
            "{label}: recovery must restore exactly the committed epochs"
        );
        assert_eq!(
            report.committed_bytes + report.dropped_bytes,
            live.journal_bytes().len(),
            "{label}: byte ledger must balance"
        );
        let reference = &clean_prefixes[committed];
        assert_eq!(
            rec.journal_bytes(),
            reference.journal_bytes(),
            "{label}: recovered journal must be bit-identical to a clean archive"
        );
        assert!(
            snapshots_bit_eq(&rec.snapshot(), &reference.snapshot()),
            "{label}: recovered snapshot must be bit-identical to a clean archive"
        );
        recoveries += 1;
        dropped_partial_total += report.dropped_partial_records;
    };
    for cut in 0..=total {
        run_to_crash(WriteFault::CrashAtOffset { offset: cut }, "crash-at-offset");
    }
    let crash_offsets = total + 1;

    // Torn writes and partial records inside every frame of the journal.
    let mut frame_geom: Vec<(u64, usize)> = Vec::new(); // (frame index, band tuples)
    {
        let mut frame = 0u64;
        for &h in &heights {
            for _ in 0..attrs {
                frame_geom.push((frame, h * cols));
                frame += 1;
            }
        }
    }
    let mut torn_cuts = 0usize;
    let mut partial_cuts = 0usize;
    for &(frame, tuples) in &frame_geom {
        let frame_len = FRAME_HEADER_LEN + tuples * 8 + 8;
        for persisted in [
            0,
            1,
            FRAME_HEADER_LEN - 1,
            FRAME_HEADER_LEN,
            frame_len / 2,
            frame_len - 1,
        ] {
            run_to_crash(
                WriteFault::TornWrite {
                    frame,
                    persisted_bytes: persisted,
                },
                "torn-write",
            );
            torn_cuts += 1;
        }
        for kept in [0, 1, tuples / 2, tuples.saturating_sub(1)] {
            run_to_crash(
                WriteFault::PartialRecord {
                    frame,
                    tuples: kept,
                },
                "partial-record",
            );
            partial_cuts += 1;
        }
    }
    println!("| crash kind | injections | recoveries bit-identical |");
    println!("|---|---|---|");
    println!("| crash-at-offset (every journal byte) | {crash_offsets} | yes |");
    println!("| torn write (per frame x 6 cuts) | {torn_cuts} | yes |");
    println!("| partial record (per frame x 4 cuts) | {partial_cuts} | yes |");
    let sweep_ms = sweep_start.elapsed().as_secs_f64() * 1e3;
    println!(
        "\n{recoveries} recoveries verified in {sweep_ms:.0} ms \
         ({dropped_partial_total} torn commit groups dropped whole).\n"
    );

    // --- Phase 2: live appends under snapshot-isolated queries.
    let (q_cols, q_tile, q_base) = if small {
        (16usize, 4usize, 16usize)
    } else {
        (64, 8, 64)
    };
    let q_commits = if small { 3usize } else { 6 };
    let band_h = q_tile * 2;
    let model = LinearModel::new(vec![1.0, 0.7], 0.1).expect("valid model");
    let budget = ExecutionBudget::unlimited();
    let k = 10usize;
    let thread_counts = [1usize, 2, 4, 8];
    let shard_counts = [1usize, 4];

    let mut live = LiveArchive::new(grids_to(attrs, q_base, q_cols), q_tile).expect("valid base");
    let frozen = live.snapshot(); // epoch 0, held across every append
    let frozen_answer = frozen
        .query_top_k(&model, k, &budget)
        .expect("epoch-0 query");
    let mut queries = 0usize;
    let mut append_ms = 0.0f64;
    println!("| epoch | rows | threads 1/2/4/8 | shards 1/4 | wrong answers |");
    println!("|---|---|---|---|---|");
    for commit in 0..q_commits {
        let offset = q_base + commit * band_h;
        let t0 = Instant::now();
        live.append(&band_at(attrs, offset, band_h, q_cols))
            .expect("live append");
        append_ms += t0.elapsed().as_secs_f64() * 1e3;
        let snap = live.snapshot();
        let rows = snap.rows();

        // The clean reference for this epoch, built in one shot.
        let grids = grids_to(attrs, rows, q_cols);
        let pyramids: Vec<AggregatePyramid> = grids.iter().map(AggregatePyramid::build).collect();
        let stores: Vec<TileStore> = grids
            .iter()
            .map(|g| TileStore::new(g.clone(), q_tile).expect("valid store"))
            .collect();
        let src = TileSource::new(&stores).expect("aligned stores");
        let reference = resilient_top_k(&model, &pyramids, k, &src, &budget).expect("reference");

        let seq = snap
            .query_top_k(&model, k, &budget)
            .expect("snapshot query");
        assert_eq!(
            seq.results, reference.results,
            "sequential snapshot identity"
        );
        queries += 1;

        let snap_src = TileSource::new(snap.stores()).expect("snapshot stores");
        for threads in thread_counts {
            let pool = WorkerPool::new(threads);
            let par = par_resilient_top_k(&model, snap.pyramids(), k, &snap_src, &budget, &pool)
                .expect("parallel snapshot query");
            assert_eq!(
                par.results, reference.results,
                "threads {threads}: snapshot answer must be bit-identical"
            );
            queries += 1;
        }
        for shards in shard_counts {
            let plan = ShardPlan::row_bands(rows, q_cols, shards, q_tile).expect("plan");
            let band_grids: Vec<Vec<Grid2<f64>>> = plan
                .bands()
                .iter()
                .map(|b| {
                    grids
                        .iter()
                        .map(|g| plan.extract_band(g, b.shard).unwrap())
                        .collect()
                })
                .collect();
            let band_pyramids: Vec<Vec<AggregatePyramid>> = band_grids
                .iter()
                .map(|gs| gs.iter().map(AggregatePyramid::build).collect())
                .collect();
            let band_stores: Vec<Vec<TileStore>> = band_grids
                .iter()
                .map(|gs| {
                    gs.iter()
                        .map(|g| TileStore::new(g.clone(), q_tile).unwrap())
                        .collect()
                })
                .collect();
            let band_sources: Vec<TileSource<'_>> = band_stores
                .iter()
                .map(|s| TileSource::new(s).expect("band stores"))
                .collect();
            let handles: Vec<ArchiveShard<'_, TileSource<'_>>> = band_pyramids
                .iter()
                .zip(&band_sources)
                .zip(plan.bands())
                .map(|((p, s), b)| ArchiveShard::new(p, s, b.row_offset))
                .collect();
            let archive = ShardedArchive::new(handles).expect("contiguous bands");
            let pool = WorkerPool::new(4);
            let r = scatter_gather_top_k(
                &model,
                &archive,
                k,
                &budget,
                &ScatterPolicy::require_all(),
                &pool,
            )
            .expect("sharded snapshot query");
            assert_eq!(
                r.results, reference.results,
                "shards {shards}: snapshot answer must be bit-identical"
            );
            queries += 1;
        }
        println!(
            "| {} | {rows} | bit-identical | bit-identical | 0 |",
            snap.epoch().epoch
        );
    }
    // The epoch-0 snapshot never moved while the archive grew under it.
    assert_eq!(frozen.rows(), q_base);
    let frozen_again = frozen
        .query_top_k(&model, k, &budget)
        .expect("stale re-query");
    assert_eq!(
        frozen_again.results, frozen_answer.results,
        "a held snapshot must keep answering for its own epoch"
    );
    println!(
        "\n{queries} snapshot queries, zero wrong answers; epoch-0 snapshot still answers \
         for its own {q_base} rows after {q_commits} commits. Mean append+publish latency: \
         {:.2} ms.\n",
        append_ms / q_commits as f64
    );

    // --- Phase 3: epoch-keyed cache invalidation touches only the frontier.
    let snap = live.snapshot();
    let cache = CachedTileSource::new(snap.stores(), 1024).expect("cache");
    let stats = live.stats();
    stats.reset();
    for row in (0..snap.rows()).step_by(q_tile) {
        for colt in (0..q_cols).step_by(q_tile) {
            cache.base_cell(0, row, colt).expect("warm read");
        }
    }
    let warmed = stats.cache_misses();
    let frontier = live.first_page_of_row(snap.rows() - band_h);
    let invalidated = cache.advance_epoch(frontier);
    cache.base_cell(0, 0, 0).expect("prefix read");
    let prefix_hit = stats.cache_hits() >= 1;
    cache
        .base_cell(0, snap.rows() - band_h, 0)
        .expect("frontier read");
    assert!(
        prefix_hit,
        "committed-prefix pages must stay cached across the epoch advance"
    );
    assert_eq!(
        invalidated as u64,
        stats.cache_invalidations(),
        "invalidation accounting must match the advance"
    );
    assert_eq!(
        stats.appended_pages_seen(),
        1,
        "exactly the re-read frontier page counts as an append-side read"
    );
    println!(
        "cache: {warmed} pages warmed, {invalidated} dropped at the frontier (pages >= {frontier}), \
         prefix pages still hot, {} append-side re-read.\n",
        stats.appended_pages_seen()
    );

    // --- Phase 4: a standing continuous query across a mid-stream crash.
    let (w_cols, w_tile, w_base, w_band) = (3usize, 4usize, 8usize, 8usize);
    let w_commits = if small { 3usize } else { 8 };
    let total_days = w_base + w_commits * w_band;
    // A summer window, so rain → dry → dry → warm spells (and thus fly
    // alerts) actually occur at every seed.
    let series = WeatherGenerator::new(seed)
        .with_temperature(24.0, 8.0, 2.0)
        .generate(150, total_days);
    let days = series.values();
    let weather_bands = |range: std::ops::Range<usize>| -> Vec<Grid2<f64>> {
        vec![
            Grid2::from_fn(range.len(), w_cols, |r, _| days[range.start + r].rain_mm),
            Grid2::from_fn(range.len(), w_cols, |r, _| days[range.start + r].temp_c),
        ]
    };
    let mut w_clean = LiveArchive::new(weather_bands(0..w_base), w_tile).expect("weather base");
    for i in 0..w_commits {
        let start = w_base + i * w_band;
        w_clean
            .append(&weather_bands(start..start + w_band))
            .expect("weather append");
    }
    // Kill the writer two thirds of the way through the journal.
    let cut = w_clean.journal_bytes().len() * 2 / 3;
    let mut w_live = LiveArchive::new(weather_bands(0..w_base), w_tile)
        .expect("weather base")
        .with_write_fault(WriteFault::CrashAtOffset { offset: cut });
    let mut driver = ContinuousQueryDriver::new(0, 1, 1);
    let mut alerts = driver.poll(&w_live.snapshot()).expect("base poll");
    for i in 0..w_commits {
        let start = w_base + i * w_band;
        if w_live
            .append(&weather_bands(start..start + w_band))
            .is_err()
        {
            break;
        }
        alerts.extend(driver.poll(&w_live.snapshot()).expect("live poll"));
    }
    let (w_rec, w_report) =
        LiveArchive::recover(weather_bands(0..w_base), w_tile, w_live.journal_bytes())
            .expect("weather recovery");
    alerts.extend(driver.poll(&w_rec.snapshot()).expect("post-recovery poll"));
    let committed_days = w_base + w_report.applied as usize * w_band;
    let (fsm, _) = fire_ants_fsm();
    let symbols: Vec<DayClass> = days[..committed_days].iter().map(DayClass::of).collect();
    let batch = fsm.acceptance_events(&symbols).expect("batch detection");
    assert_eq!(
        alerts, batch,
        "standing-query alerts across crash + recovery must equal batch detection"
    );
    println!(
        "standing query: {} alerts across {} committed days (crash at journal byte {cut}, \
         {} epochs recovered) — identical to batch detection.\n",
        alerts.len(),
        committed_days,
        w_report.applied
    );

    // Machine-readable output (hand-rolled JSON; std only).
    let json = format!(
        "{{\n  \"experiment\": \"r10_append\",\n  \"seed\": {seed},\n  \"small\": {small},\n  \
         \"crash_sweep\": {{\"journal_bytes\": {total}, \"commits\": {commits}, \
         \"crash_offsets\": {crash_offsets}, \"torn_writes\": {torn_cuts}, \
         \"partial_records\": {partial_cuts}, \"recoveries\": {recoveries}, \
         \"dropped_partial_records\": {dropped_partial_total}, \
         \"bit_identical\": true, \"sweep_ms\": {sweep_ms:.1}}},\n  \
         \"snapshot_identity\": {{\"epochs\": {q_commits}, \"rows_final\": {}, \
         \"threads\": [1, 2, 4, 8], \"shards\": [1, 4], \"queries\": {queries}, \
         \"wrong_answers\": 0, \"stale_snapshot_frozen\": true, \
         \"mean_append_ms\": {:.3}}},\n  \
         \"cache\": {{\"pages_warmed\": {warmed}, \"frontier_page\": {frontier}, \
         \"invalidated\": {invalidated}, \"appended_pages_seen\": {}, \
         \"prefix_stays_cached\": true}},\n  \
         \"continuous\": {{\"committed_days\": {committed_days}, \"alerts\": {}, \
         \"recovered_epochs\": {}, \"schedule_independent\": true}}\n}}\n",
        live.rows(),
        append_ms / q_commits as f64,
        stats.appended_pages_seen(),
        alerts.len(),
        w_report.applied,
    );
    match std::fs::write("BENCH_append.json", &json) {
        Ok(()) => println!("wrote BENCH_append.json"),
        Err(e) => eprintln!("could not write BENCH_append.json: {e}"),
    }
}
