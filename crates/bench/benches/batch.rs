//! Criterion benches for batched multi-query execution: the shared-frontier
//! descent against Q independent solo runs, on two workload shapes.
//!
//! * `overlap` — gently perturbed query directions whose descents visit
//!   almost the same cells: the regime the batch is built for, where one
//!   physical pass amortizes page reads and bound-box fetches across Q.
//! * `disjoint` — the adversarial zero-overlap batch: eight query
//!   directions fanned around the attribute circle, so no two descents
//!   agree on which regions are promising and memoization never pays. The
//!   memo governor retires the bound memo within its sampling window and
//!   the engine degrades to query-major serial drains with the solo loop
//!   shape, so the batch must stay within 5% of the solo total here
//!   (measured ~1.00x; never extra cell visits in either mode).
//!
//! The repro binary (`repro r8`) produces the EXPERIMENTS.md /
//! BENCH_batch.json numbers at archive scale with an emulated remote page
//! cost; these benches exist for statistically careful local comparisons of
//! the pure in-memory engine overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbir_archive::grid::Grid2;
use mbir_archive::tile::TileStore;
use mbir_core::batched::batched_top_k;
use mbir_core::parallel::{par_batched_top_k, WorkerPool};
use mbir_core::resilient::{resilient_top_k, ExecutionBudget};
use mbir_core::source::TileSource;
use mbir_models::linear::LinearModel;
use mbir_progressive::pyramid::AggregatePyramid;

const SIDE: usize = 256;
const TILE: usize = 16;
const K: usize = 10;
const Q: usize = 8;

fn world() -> (Vec<AggregatePyramid>, Vec<TileStore>) {
    let grids: Vec<Grid2<f64>> = (0..2)
        .map(|attr| {
            Grid2::from_fn(SIDE, SIDE, |r, c| {
                let phase = attr as f64 * 1.7;
                ((r as f64 / 23.0 + phase).sin() + (c as f64 / 31.0 - phase).cos()) * 40.0
                    + (((r * 31 + c * 17 + attr * 7) % 97) as f64 / 97.0 - 0.5) * 6.0
            })
        })
        .collect();
    let pyramids = grids.iter().map(AggregatePyramid::build).collect();
    let stores = grids
        .into_iter()
        .map(|g| TileStore::new(g, TILE).expect("valid tile size"))
        .collect();
    (pyramids, stores)
}

/// Q gently perturbed directions: heavy descent overlap.
fn overlap_batch() -> Vec<LinearModel> {
    (0..Q)
        .map(|qi| {
            let t = qi as f64;
            LinearModel::new(vec![1.0 + 0.02 * t, -0.6 + 0.015 * t], 0.05 * t).expect("valid")
        })
        .collect()
}

/// Q directions fanned around the 2-attribute circle: optima in different
/// grid regions, (near-)zero page overlap.
fn disjoint_batch() -> Vec<LinearModel> {
    // Eight distinct query directions, none parallel: the worst case for
    // shared traversal, since no two queries agree on which regions are
    // promising. The offset keeps every coefficient away from the axes.
    (0..Q)
        .map(|qi| {
            let theta = std::f64::consts::PI * (2.0 * qi as f64 + 0.5) / Q as f64;
            let scale = 1.0 + 0.1 * qi as f64;
            LinearModel::new(
                vec![theta.cos() * scale, theta.sin() * scale],
                0.1 * qi as f64,
            )
            .expect("valid")
        })
        .collect()
}

fn bench_batched_vs_solo(c: &mut Criterion) {
    let (pyramids, stores) = world();
    let budget = ExecutionBudget::unlimited();
    let mut group = c.benchmark_group("batched_top_k");
    for (name, models) in [("overlap", overlap_batch()), ("disjoint", disjoint_batch())] {
        group.bench_function(BenchmarkId::new("solo", name), |b| {
            b.iter(|| {
                models
                    .iter()
                    .map(|m| {
                        let src = TileSource::new(&stores).expect("aligned");
                        resilient_top_k(m, &pyramids, K, &src, &budget).expect("healthy")
                    })
                    .collect::<Vec<_>>()
            })
        });
        group.bench_function(BenchmarkId::new("batched", name), |b| {
            b.iter(|| {
                let src = TileSource::new(&stores).expect("aligned");
                batched_top_k(&models, &pyramids, K, &src, &budget).expect("healthy")
            })
        });
    }
    group.finish();
}

fn bench_par_batched(c: &mut Criterion) {
    let (pyramids, stores) = world();
    let budget = ExecutionBudget::unlimited();
    let models = overlap_batch();
    let mut group = c.benchmark_group("par_batched_top_k");
    for threads in [1usize, 2, 4] {
        let pool = WorkerPool::new(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &pool, |b, pool| {
            b.iter(|| {
                let src = TileSource::new(&stores).expect("aligned");
                par_batched_top_k(&models, &pyramids, K, &src, &budget, pool).expect("healthy")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batched_vs_solo, bench_par_batched);
criterion_main!(benches);
