//! R3 bench: flat columnar scoring kernels vs the legacy nested-Vec
//! paths, across the dimensionalities and scales the paper's workloads
//! use. Three hot paths are measured: the sequential scan, the Onion
//! build sweep, and the Onion query walk.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbir_archive::synth::gaussian_tuples;
use mbir_index::onion::OnionIndex;
use mbir_index::scan::{scan_top_k, scan_top_k_flat};
use mbir_index::store::PointStore;
use std::hint::black_box;

/// A unit-ish direction deterministic in the dimension.
fn direction(d: usize) -> Vec<f64> {
    (0..d).map(|j| 0.443 - 0.061 * j as f64).collect()
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("r3_scan");
    for &d in &[2usize, 3, 8, 16] {
        for &n in &[10_000usize, 100_000] {
            let points = gaussian_tuples(7, n, d);
            let store = PointStore::from_rows(&points).expect("well-formed");
            let dir = direction(d);
            group.bench_with_input(BenchmarkId::new(format!("flat_d{d}"), n), &n, |b, _| {
                b.iter(|| scan_top_k_flat(black_box(&store), black_box(&dir), 10))
            });
            group.bench_with_input(BenchmarkId::new(format!("legacy_d{d}"), n), &n, |b, _| {
                b.iter(|| {
                    scan_top_k(black_box(&points), 10, |p| {
                        dir.iter().zip(p).map(|(a, v)| a * v).sum()
                    })
                })
            });
        }
    }
    group.finish();
}

fn bench_onion(c: &mut Criterion) {
    let mut group = c.benchmark_group("r3_onion");
    group.sample_size(10);
    let d = 3usize;
    let n = 100_000usize;
    let points = gaussian_tuples(7, n, d);
    let dir = direction(d);
    group.bench_function("build_kernel_100k", |b| {
        b.iter(|| OnionIndex::build_with(black_box(points.clone()), 24, 16, 7).expect("valid"))
    });
    group.bench_function("build_legacy_100k", |b| {
        b.iter(|| {
            OnionIndex::build_legacy_with(black_box(points.clone()), 24, 16, 7).expect("valid")
        })
    });
    let onion = OnionIndex::build_with(points, 24, 16, 7).expect("valid");
    group.bench_function("query_kernel_100k", |b| {
        b.iter(|| onion.top_k_max(black_box(&dir), 10).expect("valid"))
    });
    group.bench_function("query_legacy_100k", |b| {
        b.iter(|| onion.top_k_max_legacy(black_box(&dir), 10).expect("valid"))
    });
    group.finish();
}

criterion_group!(benches, bench_scan, bench_onion);
criterion_main!(benches);
