//! F1 bench: full fire-ants FSM runs vs coarse block-summary screening.

use criterion::{criterion_group, criterion_main, Criterion};
use mbir_archive::weather::WeatherGenerator;
use mbir_models::fsm::fire_ants::{detect_fly_days, may_have_fly_event, BlockSummary};
use std::hint::black_box;

fn bench_fsm(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_fire_ants");
    group.sample_size(20);
    let regions: Vec<_> = (0..100u64)
        .map(|seed| {
            let mean_temp = 5.0 + (seed % 20) as f64;
            WeatherGenerator::new(seed)
                .with_temperature(mean_temp, 8.0, 2.0)
                .generate(0, 365)
        })
        .collect();
    // Pre-computed block summaries (these live in the coarse archive level).
    let summaries: Vec<BlockSummary> = regions
        .iter()
        .map(|series| {
            series
                .values()
                .chunks(30)
                .map(BlockSummary::of)
                .reduce(|a, b| a.merge(&b))
                .expect("non-empty")
        })
        .collect();

    group.bench_function("fsm_all_regions", |b| {
        b.iter(|| {
            regions
                .iter()
                .map(|s| detect_fly_days(black_box(s)).expect("total machine").len())
                .sum::<usize>()
        })
    });
    group.bench_function("screen_then_fsm", |b| {
        b.iter(|| {
            regions
                .iter()
                .zip(&summaries)
                .filter(|(_, summary)| may_have_fly_event(summary))
                .map(|(s, _)| detect_fly_days(black_box(s)).expect("total machine").len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fsm);
criterion_main!(benches);
