//! R1 bench: overhead of the resilient engine.
//!
//! The contract is that resilience is (nearly) free when nothing goes
//! wrong: `resilient_top_k` over a healthy source with an unlimited budget
//! should stay within ~5% of the strict `pyramid_top_k` it generalizes.
//! The faulty variants are informational — they measure the degraded path
//! (retries, quarantine bookkeeping, frontier salvage), not a regression
//! gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbir_archive::fault::{FaultProfile, ResilienceConfig, RetryPolicy};
use mbir_archive::tile::TileStore;
use mbir_bench::hps_paged_world;
use mbir_core::engine::pyramid_top_k;
use mbir_core::resilient::{resilient_top_k, ExecutionBudget};
use mbir_core::source::{PyramidSource, TileSource};
use std::hint::black_box;

fn bench_resilient(c: &mut Criterion) {
    let mut group = c.benchmark_group("r1_resilient");
    group.sample_size(20);
    let side = 256usize;
    let tile = 32usize;
    let k = 10;
    let budget = ExecutionBudget::unlimited();

    let (pyramids, stores, model, _) = hps_paged_world(5, side, side, tile);

    // Baseline: the strict engine the resilient one must not slow down.
    group.bench_with_input(BenchmarkId::new("strict_pyramid", side), &side, |b, _| {
        b.iter(|| pyramid_top_k(model.model(), black_box(&pyramids), k).expect("valid"))
    });

    // Fault-free overhead, in-memory source: same data path as the strict
    // engine, plus the budget checkpoints. Target: < 5% over baseline.
    let pyr_src = PyramidSource::new(&pyramids);
    group.bench_with_input(
        BenchmarkId::new("resilient_pyramid_source", side),
        &side,
        |b, _| {
            b.iter(|| {
                resilient_top_k(model.model(), black_box(&pyramids), k, &pyr_src, &budget)
                    .expect("valid")
            })
        },
    );

    // Fault-free overhead, paged source: adds the tile-store read path
    // (page accounting + fault-state lock) for base-level cells.
    let tile_src = TileSource::new(&stores).expect("aligned stores");
    group.bench_with_input(
        BenchmarkId::new("resilient_tile_source", side),
        &side,
        |b, _| {
            b.iter(|| {
                resilient_top_k(model.model(), black_box(&pyramids), k, &tile_src, &budget)
                    .expect("valid")
            })
        },
    );

    // Degraded path: a spread of permanently lost pages plus retries.
    let page_count = stores[0].page_count();
    let profile = (0..page_count)
        .step_by(7)
        .fold(FaultProfile::new(9), |p, page| p.permanent(page));
    let faulty: Vec<TileStore> = stores
        .iter()
        .map(|s| {
            s.clone()
                .with_faults(profile.clone())
                .with_resilience(ResilienceConfig::new(RetryPolicy::retries(2), Some(3)))
        })
        .collect();
    let faulty_src = TileSource::new(&faulty).expect("aligned stores");
    group.bench_with_input(
        BenchmarkId::new("resilient_lossy_archive", side),
        &side,
        |b, _| {
            b.iter(|| {
                resilient_top_k(model.model(), black_box(&pyramids), k, &faulty_src, &budget)
                    .expect("valid")
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_resilient);
criterion_main!(benches);
