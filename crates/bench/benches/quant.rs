//! R7 bench: the i8 quantized coarse pass vs the exact flat kernels, on
//! both friendly and adversarial inputs. Three groups:
//!
//! * `r7_scan` — pruned scan vs exact flat scan across d x n variants.
//! * `r7_onion` — coarse-pruned Onion query walk vs the flat-kernel and
//!   legacy walks at the E1 scale.
//! * `r7_adversarial` — the same pruned paths on a worst-case direction
//!   chosen so quantized upper bounds clear the floor almost everywhere
//!   and nothing prunes: the honest ceiling on the coarse pass's
//!   overhead, not a victory lap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbir_bench::quant_workload;
use mbir_index::onion::OnionIndex;
use mbir_index::quant::QuantizedStore;
use mbir_index::scan::{scan_top_k_flat, scan_top_k_quant};
use mbir_index::store::PointStore;
use std::hint::black_box;

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("r7_scan");
    for &d in &[2usize, 3, 8] {
        for &n in &[10_000usize, 100_000] {
            let (points, dir) = quant_workload(7, n, d);
            let store = PointStore::from_rows(&points).expect("well-formed");
            let quant = QuantizedStore::build(&store);
            group.bench_with_input(BenchmarkId::new(format!("exact_d{d}"), n), &n, |b, _| {
                b.iter(|| scan_top_k_flat(black_box(&store), black_box(&dir), 10))
            });
            group.bench_with_input(BenchmarkId::new(format!("quant_d{d}"), n), &n, |b, _| {
                b.iter(|| {
                    scan_top_k_quant(black_box(&store), black_box(&quant), black_box(&dir), 10)
                })
            });
        }
    }
    group.finish();
}

fn bench_onion(c: &mut Criterion) {
    let mut group = c.benchmark_group("r7_onion");
    group.sample_size(10);
    let n = 100_000usize;
    let (points, dir) = quant_workload(7, n, 3);
    let onion = OnionIndex::build_quantized_with(points, 24, 16, 7, 1).expect("valid");
    group.bench_function("query_quant_100k", |b| {
        b.iter(|| onion.top_k_max_quant(black_box(&dir), 10).expect("valid"))
    });
    group.bench_function("query_kernel_100k", |b| {
        b.iter(|| onion.top_k_max(black_box(&dir), 10).expect("valid"))
    });
    group.bench_function("query_legacy_100k", |b| {
        b.iter(|| onion.top_k_max_legacy(black_box(&dir), 10).expect("valid"))
    });
    group.finish();
}

/// The adversarial direction: all mass on one axis. Every block's spread
/// along that axis straddles the top scores, the quantized bounds stay
/// above the floor, and the coarse pass degenerates to pure overhead —
/// the number to watch is how little slower `quant_*` is than `exact_*`.
fn bench_adversarial(c: &mut Criterion) {
    let mut group = c.benchmark_group("r7_adversarial");
    group.sample_size(20);
    let n = 100_000usize;
    let d = 3usize;
    let (points, _) = quant_workload(7, n, d);
    // Sort-free worst case: a direction orthogonal-ish to the layout so
    // per-block [lo, hi] score intervals all overlap the global top.
    let mut dir = vec![0.0f64; d];
    dir[d - 1] = 1.0;
    let store = PointStore::from_rows(&points).expect("well-formed");
    let quant = QuantizedStore::build(&store);
    group.bench_function("scan_exact_100k", |b| {
        b.iter(|| scan_top_k_flat(black_box(&store), black_box(&dir), 10))
    });
    group.bench_function("scan_quant_100k", |b| {
        b.iter(|| scan_top_k_quant(black_box(&store), black_box(&quant), black_box(&dir), 10))
    });
    let onion = OnionIndex::build_quantized_with(points, 24, 16, 7, 1).expect("valid");
    group.bench_function("onion_kernel_100k", |b| {
        b.iter(|| onion.top_k_max(black_box(&dir), 10).expect("valid"))
    });
    group.bench_function("onion_quant_100k", |b| {
        b.iter(|| onion.top_k_max_quant(black_box(&dir), 10).expect("valid"))
    });
    group.finish();
}

criterion_group!(benches, bench_scan, bench_onion, bench_adversarial);
criterion_main!(benches);
