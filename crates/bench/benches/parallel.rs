//! Criterion benches for the parallel execution layer: per-engine wall
//! time across thread counts plus the cached batch path. The repro binary
//! (`repro r2`) produces the EXPERIMENTS.md / BENCH_parallel.json numbers;
//! these benches exist for statistically careful local comparisons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbir_bench::parallel_world;
use mbir_core::engine::pyramid_top_k;
use mbir_core::parallel::{par_pyramid_top_k, QueryBatch, WorkerPool};
use mbir_core::query::TopKQuery;
use mbir_core::source::CachedTileSource;

fn bench_par_pyramid(c: &mut Criterion) {
    let (pyramids, model, _, _) = parallel_world(29, 128, 4, 16);
    let k = 10;
    let mut group = c.benchmark_group("par_pyramid_top_k");
    group.bench_function("sequential", |b| {
        b.iter(|| pyramid_top_k(&model, &pyramids, k).expect("valid inputs"))
    });
    for threads in [1usize, 2, 4] {
        let pool = WorkerPool::new(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &pool, |b, pool| {
            b.iter(|| par_pyramid_top_k(&model, &pyramids, k, pool).expect("valid"))
        });
    }
    group.finish();
}

fn bench_query_batch(c: &mut Criterion) {
    let (pyramids, model, stores, _) = parallel_world(29, 128, 4, 16);
    let mut group = c.benchmark_group("query_batch");
    for threads in [1usize, 2, 4] {
        let pool = WorkerPool::new(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &pool, |b, pool| {
            b.iter(|| {
                let cached = CachedTileSource::new(&stores, 64).expect("aligned");
                let mut batch = QueryBatch::new(&model, &pyramids);
                for q in 0..4 {
                    batch.admit(TopKQuery::max(5 + q).expect("valid k"));
                }
                batch.run(&cached, pool)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_par_pyramid, bench_query_batch);
criterion_main!(benches);
