//! E4 bench: brute force vs SPROC DP vs sorted-list frontier walk.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbir_bench::sproc_workload;
use mbir_index::sproc::SprocIndex;
use std::hint::black_box;

fn bench_sproc(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_sproc");
    group.sample_size(20);
    // Small instance where all three strategies are feasible.
    let small = SprocIndex::new(sproc_workload(4, 3, 24)).expect("valid workload");
    group.bench_function("brute_L24_M3_K5", |b| {
        b.iter(|| {
            small
                .brute_force(black_box(5), None, 100_000_000)
                .expect("within limit")
        })
    });
    group.bench_function("dp_L24_M3_K5", |b| {
        b.iter(|| small.top_k_dp(black_box(5), None).expect("valid query"))
    });
    group.bench_function("fast_L24_M3_K5", |b| {
        b.iter(|| small.top_k_independent(black_box(5)).expect("valid query"))
    });
    // Larger instances: DP vs fast.
    for l in [200usize, 1000] {
        let index = SprocIndex::new(sproc_workload(9, 3, l)).expect("valid workload");
        group.bench_with_input(BenchmarkId::new("dp", l), &l, |b, _| {
            b.iter(|| index.top_k_dp(black_box(10), None).expect("valid query"))
        });
        group.bench_with_input(BenchmarkId::new("fast", l), &l, |b, _| {
            b.iter(|| index.top_k_independent(black_box(10)).expect("valid query"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sproc);
criterion_main!(benches);
