//! E3 bench: naive vs progressive texture matching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbir_archive::extent::CellCoord;
use mbir_bench::texture_world;
use mbir_progressive::features::{progressive_texture_match, tile_features, TileFeatures};
use std::hint::black_box;

fn bench_texture(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_texture");
    group.sample_size(20);
    for side in [256usize, 512] {
        let tile = 32;
        let (fine, coarse, tile) = texture_world(3, side, tile);
        let planted = (side / tile - 2, side / tile - 1);
        let query_fine = TileFeatures::of(
            &fine
                .window(
                    CellCoord::new(planted.0 * tile, planted.1 * tile),
                    tile,
                    tile,
                )
                .expect("planted tile in range"),
        );
        let query_coarse = TileFeatures::of(
            &coarse
                .window(
                    CellCoord::new(planted.0 * tile / 2, planted.1 * tile / 2),
                    tile / 2,
                    tile / 2,
                )
                .expect("planted tile in range"),
        );
        group.bench_with_input(BenchmarkId::new("naive_all_tiles", side), &side, |b, _| {
            b.iter(|| {
                let feats = tile_features(black_box(&fine), tile);
                feats.into_iter().min_by(|a, b| {
                    a.2.distance(&query_fine)
                        .total_cmp(&b.2.distance(&query_fine))
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("progressive", side), &side, |b, _| {
            b.iter(|| {
                progressive_texture_match(
                    black_box(&fine),
                    &coarse,
                    &query_coarse,
                    &query_fine,
                    tile,
                    1,
                    2.0,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_texture);
criterion_main!(benches);
