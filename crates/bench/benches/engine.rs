//! E6 bench: naive scan vs progressive-model vs progressive-data vs
//! combined engines on the HPS world.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbir_bench::{hps_world, wide_model_world};
use mbir_core::engine::{combined_top_k, naive_grid_top_k, pyramid_top_k, staged_top_k};
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_engine");
    group.sample_size(20);
    let side = 256usize;
    let k = 10;

    let (pyramids, model, progressive) = hps_world(5, side, side);
    group.bench_with_input(BenchmarkId::new("naive_hps", side), &side, |b, _| {
        b.iter(|| naive_grid_top_k(model.model(), black_box(&pyramids), k).expect("valid"))
    });
    group.bench_with_input(BenchmarkId::new("pyramid_hps", side), &side, |b, _| {
        b.iter(|| pyramid_top_k(model.model(), black_box(&pyramids), k).expect("valid"))
    });
    group.bench_with_input(BenchmarkId::new("combined_hps", side), &side, |b, _| {
        b.iter(|| combined_top_k(&progressive, black_box(&pyramids), k).expect("valid"))
    });

    // Wide-model world exercises the staged tuple engine.
    let (wide_pyramids, _, wide_progressive) = wide_model_world(11, 128, 128, 12);
    let tuples: Vec<Vec<f64>> = (0..128 * 128)
        .map(|i| {
            wide_pyramids
                .iter()
                .map(|p| p.cell(0, i / 128, i % 128).expect("in-bounds").mean)
                .collect()
        })
        .collect();
    group.bench_function("staged_wide_128", |b| {
        b.iter(|| staged_top_k(&wide_progressive, black_box(&tuples), k).expect("valid"))
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
