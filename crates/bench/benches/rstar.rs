//! E7 bench: R*-tree range queries and best-first top-K vs Onion and scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbir_bench::onion_workload;
use mbir_index::onion::OnionIndex;
use mbir_index::rstar::{RStarTree, Rect};
use mbir_index::scan::scan_top_k;
use std::hint::black_box;

fn bench_rstar(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_rstar");
    group.sample_size(20);
    let n = 20_000usize;
    let (points, dir) = onion_workload(13, n);
    let rstar = RStarTree::bulk(points.clone()).expect("valid points");
    let onion = OnionIndex::build_with_hints(points.clone(), std::slice::from_ref(&dir), 64, 32, 7)
        .expect("valid");

    for k in [1usize, 10] {
        group.bench_with_input(BenchmarkId::new("scan_topk", k), &k, |b, &k| {
            b.iter(|| {
                scan_top_k(black_box(&points), k, |p| {
                    dir.iter().zip(p).map(|(a, v)| a * v).sum()
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("rstar_topk", k), &k, |b, &k| {
            b.iter(|| rstar.top_k_max(black_box(&dir), k).expect("valid query"))
        });
        group.bench_with_input(BenchmarkId::new("onion_topk", k), &k, |b, &k| {
            b.iter(|| onion.top_k_max(black_box(&dir), k).expect("valid query"))
        });
    }

    // The R*-tree's home game: spatial range queries.
    let query = Rect::new(&[0.0, 0.0, 0.0], &[0.5, 0.5, 0.5]);
    group.bench_function("rstar_range", |b| b.iter(|| rstar.range(black_box(&query))));
    group.bench_function("scan_range", |b| {
        b.iter(|| {
            points
                .iter()
                .enumerate()
                .filter(|(_, p)| query.contains(p))
                .map(|(i, _)| i)
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rstar);
criterion_main!(benches);
