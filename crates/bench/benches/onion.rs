//! E1 bench: Onion top-K vs sequential scan on 3-attribute Gaussian data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbir_bench::onion_workload;
use mbir_index::onion::OnionIndex;
use mbir_index::scan::scan_top_k;
use std::hint::black_box;

fn bench_onion(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_onion");
    for n in [10_000usize, 100_000] {
        let (points, dir) = onion_workload(1, n);
        let index =
            OnionIndex::build_with_hints(points.clone(), std::slice::from_ref(&dir), 64, 32, 7)
                .expect("valid workload");
        for k in [1usize, 10] {
            group.bench_with_input(BenchmarkId::new(format!("scan_n{n}"), k), &k, |b, &k| {
                b.iter(|| {
                    scan_top_k(black_box(&points), k, |p| {
                        dir.iter().zip(p).map(|(a, v)| a * v).sum()
                    })
                })
            });
            group.bench_with_input(BenchmarkId::new(format!("onion_n{n}"), k), &k, |b, &k| {
                b.iter(|| index.top_k_max(black_box(&dir), k).expect("valid query"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_onion);
criterion_main!(benches);
