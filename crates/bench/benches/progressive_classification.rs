//! E2 bench: full-resolution vs progressive classification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbir_bench::classification_world;
use std::hint::black_box;

fn bench_classification(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_classification");
    group.sample_size(20);
    for side in [128usize, 256] {
        let (bands, pyramids, clf) = classification_world(2, side, side);
        group.bench_with_input(BenchmarkId::new("full", side), &side, |b, _| {
            b.iter(|| {
                let mut work = 0u64;
                clf.classify_grid(black_box(&bands), &mut work)
            })
        });
        group.bench_with_input(BenchmarkId::new("progressive", side), &side, |b, _| {
            b.iter(|| clf.classify_progressive(black_box(&pyramids)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classification);
criterion_main!(benches);
