//! Snapshot-isolated live archives: crash-consistent appends published as
//! immutable epochs.
//!
//! [`LiveArchive`] is the query-side face of the append subsystem
//! ([`mbir_archive::append`]): a multi-attribute grid archive that grows by
//! journaled, tile-row-aligned appends and publishes every committed state
//! as an immutable, `Arc`-shared [`EpochSnapshot`]. Queries — sequential,
//! parallel, batched, or sharded — run against a snapshot and therefore
//! against exactly one committed prefix, no matter how many appends land
//! while they execute.
//!
//! # The publish protocol
//!
//! An append commits in three strictly ordered steps:
//!
//! 1. **Journal durable** — every attribute's band is framed and
//!    checksummed into one shared [`AppendJournal`] (one record per
//!    attribute, all carrying the same row offset). A crash here (an armed
//!    [`WriteFault`](mbir_archive::fault::WriteFault)) leaves at most a
//!    torn suffix that recovery provably truncates.
//! 2. **Build** — the working grids are extended, the per-attribute
//!    pyramids are patched incrementally
//!    ([`AggregatePyramid::extend_rows`], bit-identical to a full
//!    rebuild), and fresh [`TileStore`]s are constructed. Nothing is
//!    visible to readers yet.
//! 3. **Swap** — one atomic pointer swap publishes the new
//!    [`EpochSnapshot`]. A reader observes either the old epoch or the
//!    new one, complete — never a half-built state.
//!
//! Because appends are tile-row aligned, every page of a committed prefix
//! is immutable: snapshots of different epochs share page *contents* for
//! their common prefix, which is what lets
//! [`CachedTileSource::advance_epoch`](crate::source::CachedTileSource::advance_epoch)
//! keep prefix pages cached across commits and invalidate only the append
//! frontier.
//!
//! # Crash recovery
//!
//! [`LiveArchive::recover`] replays a journal onto the base grids. The
//! journal layer truncates at the first invalid frame
//! ([`mbir_archive::journal::recover`]); on top of that, a commit here is
//! a *group* of one record per attribute, so a crash that lands between
//! two attribute records leaves a trailing partial group that recovery
//! also drops (counted separately in [`LiveRecoveryReport`]). The result
//! is exactly the committed-epoch prefix: bit-identical grids, pyramids,
//! and journal bytes to an archive that never crashed.

use crate::error::CoreError;
use mbir_archive::fault::WriteFault;
use mbir_archive::grid::Grid2;
use mbir_archive::journal::{recover as recover_journal, AppendJournal, TruncationReason};
use mbir_archive::stats::AccessStats;
use mbir_archive::tile::TileStore;
use mbir_progressive::pyramid::AggregatePyramid;
use std::sync::{Arc, Mutex};

/// Identifier of one committed prefix: the commit epoch (0 = base) and the
/// row high-water mark it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotEpoch {
    /// Commit epoch: number of committed appends since the base.
    pub epoch: u64,
    /// Committed rows (every attribute has exactly this many).
    pub rows: usize,
}

/// One published epoch: the pyramids and tile stores of a committed
/// prefix, immutable and shareable across threads.
///
/// Every engine family runs against a snapshot: build a
/// [`TileSource`](crate::source::TileSource) or
/// [`CachedTileSource`](crate::source::CachedTileSource) over
/// [`stores`](Self::stores) and pass [`pyramids`](Self::pyramids) to the
/// sequential, parallel, batched, or sharded entry points.
#[derive(Debug)]
pub struct EpochSnapshot {
    epoch: SnapshotEpoch,
    pyramids: Vec<AggregatePyramid>,
    stores: Vec<TileStore>,
}

impl EpochSnapshot {
    /// The epoch this snapshot publishes.
    pub fn epoch(&self) -> SnapshotEpoch {
        self.epoch
    }

    /// Committed rows visible to this snapshot.
    pub fn rows(&self) -> usize {
        self.epoch.rows
    }

    /// Per-attribute aggregate pyramids over exactly the committed prefix.
    pub fn pyramids(&self) -> &[AggregatePyramid] {
        &self.pyramids
    }

    /// Per-attribute tile stores over exactly the committed prefix.
    pub fn stores(&self) -> &[TileStore] {
        &self.stores
    }

    /// Convenience strict-resilient query against this snapshot: a
    /// [`TileSource`](crate::source::TileSource) over the snapshot stores
    /// driving [`resilient_top_k`](crate::resilient::resilient_top_k).
    ///
    /// # Errors
    ///
    /// Same as [`resilient_top_k`](crate::resilient::resilient_top_k).
    pub fn query_top_k(
        &self,
        model: &mbir_models::linear::LinearModel,
        k: usize,
        budget: &crate::resilient::ExecutionBudget,
    ) -> Result<crate::resilient::ResilientTopK, CoreError> {
        let source = crate::source::TileSource::new(&self.stores)?;
        crate::resilient::resilient_top_k(model, &self.pyramids, k, &source, budget)
    }
}

/// A cloneable handle to the latest published snapshot — what reader
/// threads hold while a writer keeps appending.
#[derive(Debug, Clone)]
pub struct SnapshotHandle {
    published: Arc<Mutex<Arc<EpochSnapshot>>>,
}

impl SnapshotHandle {
    /// The latest published snapshot (a cheap `Arc` clone; the brief lock
    /// covers only the pointer read, never a build).
    pub fn current(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.published.lock().expect("snapshot swap lock"))
    }
}

/// How a [`LiveArchive::recover`] replay ended.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveRecoveryReport {
    /// Commit epochs restored (full attribute groups applied).
    pub applied: u64,
    /// Byte length of the valid committed journal prefix (full groups).
    pub committed_bytes: usize,
    /// Journal bytes discarded past the committed prefix.
    pub dropped_bytes: usize,
    /// Frame-valid records dropped because their commit group was torn
    /// (the crash landed between two attribute records of one append).
    pub dropped_partial_records: usize,
    /// Why the journal-level scan stopped.
    pub truncation: TruncationReason,
}

/// A multi-attribute archive that grows by journaled appends and publishes
/// immutable [`EpochSnapshot`]s.
///
/// # Examples
///
/// ```
/// use mbir_archive::grid::Grid2;
/// use mbir_core::snapshot::LiveArchive;
///
/// let bases = vec![Grid2::filled(4, 8, 1.0), Grid2::filled(4, 8, 2.0)];
/// let mut live = LiveArchive::new(bases, 4).unwrap();
/// let reader = live.handle();
/// let before = reader.current();
///
/// live.append(&[Grid2::filled(4, 8, 3.0), Grid2::filled(4, 8, 4.0)]).unwrap();
///
/// // The old snapshot still reads its own committed prefix...
/// assert_eq!(before.rows(), 4);
/// // ...while new readers see the new epoch, complete.
/// assert_eq!(reader.current().rows(), 8);
/// ```
#[derive(Debug)]
pub struct LiveArchive {
    tile: usize,
    cols: usize,
    grids: Vec<Grid2<f64>>,
    pyramids: Vec<AggregatePyramid>,
    journal: AppendJournal,
    epoch: u64,
    stats: AccessStats,
    published: Arc<Mutex<Arc<EpochSnapshot>>>,
}

impl LiveArchive {
    /// Wraps the per-attribute base grids for appending and publishes
    /// epoch 0.
    ///
    /// # Errors
    ///
    /// [`CoreError::Query`] when no bases are supplied, the bases disagree
    /// on shape, `tile` is zero, or the base row count is not a multiple
    /// of `tile` (appends must start on a tile boundary so committed
    /// pages are never rewritten).
    pub fn new(bases: Vec<Grid2<f64>>, tile: usize) -> Result<Self, CoreError> {
        let first = bases
            .first()
            .ok_or_else(|| CoreError::Query("no base grids supplied".into()))?;
        let (rows, cols) = (first.rows(), first.cols());
        if bases.iter().any(|g| g.rows() != rows || g.cols() != cols) {
            return Err(CoreError::Query("base grids must share a shape".into()));
        }
        if tile == 0 {
            return Err(CoreError::Query("tile size must be > 0".into()));
        }
        if rows % tile != 0 {
            return Err(CoreError::Query(format!(
                "base rows {rows} not a multiple of tile {tile}"
            )));
        }
        let pyramids: Vec<AggregatePyramid> = bases.iter().map(AggregatePyramid::build).collect();
        let live = LiveArchive {
            tile,
            cols,
            grids: bases,
            pyramids,
            journal: AppendJournal::new(),
            epoch: 0,
            stats: AccessStats::new(),
            published: Arc::new(Mutex::new(Arc::new(EpochSnapshot {
                epoch: SnapshotEpoch { epoch: 0, rows: 0 },
                pyramids: Vec::new(),
                stores: Vec::new(),
            }))),
        };
        let initial = live.build_snapshot()?;
        *live.published.lock().expect("snapshot swap lock") = Arc::new(initial);
        Ok(live)
    }

    /// Arms a write fault on the shared journal (builder style) — the
    /// chaos harness's crash injection point.
    pub fn with_write_fault(mut self, fault: WriteFault) -> Self {
        self.journal = std::mem::take(&mut self.journal).with_write_fault(fault);
        self
    }

    /// A cloneable handle reader threads use to pick up the latest
    /// published epoch while this archive keeps appending.
    pub fn handle(&self) -> SnapshotHandle {
        SnapshotHandle {
            published: Arc::clone(&self.published),
        }
    }

    /// The latest published snapshot.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.handle().current()
    }

    /// Number of attributes.
    pub fn attrs(&self) -> usize {
        self.grids.len()
    }

    /// Committed rows.
    pub fn rows(&self) -> usize {
        self.grids[0].rows()
    }

    /// Columns per attribute.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Tile size (appends are multiples of this many rows).
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Current commit epoch (0 = base, +1 per committed append).
    pub fn epoch(&self) -> SnapshotEpoch {
        SnapshotEpoch {
            epoch: self.epoch,
            rows: self.rows(),
        }
    }

    /// Whether the journal writer has crashed (an armed write fault
    /// fired); a crashed archive accepts no further appends.
    pub fn has_crashed(&self) -> bool {
        self.journal.has_crashed()
    }

    /// The shared journal bytes — what survives a crash.
    pub fn journal_bytes(&self) -> &[u8] {
        self.journal.bytes()
    }

    /// The stats handle attached to every published snapshot's stores, so
    /// page / cache / append counters aggregate across epochs.
    pub fn stats(&self) -> AccessStats {
        self.stats.clone()
    }

    /// First page index dirtied by rows at or past `row` — what a reader
    /// passes to
    /// [`CachedTileSource::advance_epoch`](crate::source::CachedTileSource::advance_epoch)
    /// after observing a commit, so only the append frontier leaves its
    /// cache.
    pub fn first_page_of_row(&self, row: usize) -> usize {
        let tiles_per_row = self.cols.div_ceil(self.tile);
        (row / self.tile) * tiles_per_row
    }

    fn build_snapshot(&self) -> Result<EpochSnapshot, CoreError> {
        let stores = self
            .grids
            .iter()
            .map(|g| TileStore::new(g.clone(), self.tile).map(|s| s.with_stats(self.stats.clone())))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(EpochSnapshot {
            epoch: SnapshotEpoch {
                epoch: self.epoch,
                rows: self.rows(),
            },
            pyramids: self.pyramids.clone(),
            stores,
        })
    }

    /// Appends one band per attribute as a single commit: journals every
    /// band (step 1), extends the working grids and pyramids and builds
    /// fresh stores (step 2), then atomically publishes the new epoch
    /// (step 3). Returns the new epoch.
    ///
    /// # Errors
    ///
    /// [`CoreError::Query`] when the band count, widths, or tile-aligned
    /// heights don't match — nothing is written.
    /// [`CoreError::Archive`] wrapping
    /// [`JournalCrashed`](mbir_archive::error::ArchiveError::JournalCrashed)
    /// when an armed write fault fires (or already fired): the published
    /// snapshot and working state are unchanged, exactly like a dead
    /// process — recovery sees only what the journal persisted.
    pub fn append(&mut self, bands: &[Grid2<f64>]) -> Result<SnapshotEpoch, CoreError> {
        if bands.len() != self.grids.len() {
            return Err(CoreError::Query(format!(
                "append carries {} bands, archive has {} attributes",
                bands.len(),
                self.grids.len()
            )));
        }
        let height = bands.first().map(|b| b.rows()).unwrap_or(0);
        if height == 0 || !height.is_multiple_of(self.tile) {
            return Err(CoreError::Query(format!(
                "band height {height} not a positive multiple of tile {}",
                self.tile
            )));
        }
        if bands
            .iter()
            .any(|b| b.rows() != height || b.cols() != self.cols)
        {
            return Err(CoreError::Query(
                "append bands must share the archive width and one height".into(),
            ));
        }
        // Step 1: journal every attribute's band. A crash mid-group leaves
        // a torn group that recovery drops whole.
        let row_offset = self.rows();
        for band in bands {
            self.journal.append(row_offset, band)?;
        }
        // Step 2: build the next epoch's state off to the side.
        for (grid, band) in self.grids.iter_mut().zip(bands) {
            let mut data = Vec::with_capacity(grid.len() + band.len());
            data.extend_from_slice(grid.as_slice());
            data.extend_from_slice(band.as_slice());
            *grid = Grid2::from_vec(row_offset + height, self.cols, data)
                .expect("append geometry validated above");
        }
        for (pyramid, band) in self.pyramids.iter_mut().zip(bands) {
            pyramid.extend_rows(band)?;
        }
        self.epoch += 1;
        let snapshot = self.build_snapshot()?;
        // Step 3: one atomic swap publishes the complete epoch.
        *self.published.lock().expect("snapshot swap lock") = Arc::new(snapshot);
        Ok(self.epoch())
    }

    /// Replays journal bytes onto the base grids, restoring exactly the
    /// committed prefix: only full attribute groups that splice
    /// contiguously are applied, and the restored archive's grids,
    /// pyramids, published snapshot, and journal bytes are bit-identical
    /// to an archive that committed those epochs and never crashed.
    ///
    /// # Errors
    ///
    /// [`CoreError::Query`] when `bases` / `tile` themselves are invalid
    /// (as in [`new`](Self::new)).
    pub fn recover(
        bases: Vec<Grid2<f64>>,
        tile: usize,
        journal_bytes: &[u8],
    ) -> Result<(Self, LiveRecoveryReport), CoreError> {
        let mut live = LiveArchive::new(bases, tile)?;
        let attrs = live.attrs();
        let recovered = recover_journal(journal_bytes);
        let mut truncation = recovered.truncation;
        let mut dropped_partial_records = 0usize;
        let mut applied_groups: Vec<&[mbir_archive::journal::AppendRecord]> = Vec::new();
        for group in recovered.records.chunks(attrs) {
            let expected_rows = live.rows()
                + applied_groups
                    .iter()
                    .map(|g| g[0].band.rows())
                    .sum::<usize>();
            let height = group[0].band.rows();
            let whole = group.len() == attrs;
            let fits = whole
                && height > 0
                && height % tile == 0
                && group.iter().all(|r| {
                    r.row_offset == expected_rows
                        && r.band.cols() == live.cols
                        && r.band.rows() == height
                });
            if !fits {
                if whole {
                    // A full group that does not splice is an invalid
                    // suffix, exactly like a bad frame.
                    truncation = TruncationReason::BadGeometry;
                } else {
                    dropped_partial_records = group.len();
                }
                break;
            }
            applied_groups.push(group);
        }
        // Replay the surviving groups through the normal append path so
        // the restored journal bytes (and everything else) are
        // bit-identical to a never-crashed archive.
        let groups: Vec<Vec<Grid2<f64>>> = applied_groups
            .iter()
            .map(|g| g.iter().map(|r| r.band.clone()).collect())
            .collect();
        for bands in &groups {
            live.append(bands).expect("recovered group was validated");
        }
        let committed_bytes = live.journal.bytes().len();
        debug_assert!(journal_bytes.starts_with(live.journal.bytes()));
        let report = LiveRecoveryReport {
            applied: live.epoch,
            committed_bytes,
            dropped_bytes: journal_bytes.len() - committed_bytes,
            dropped_partial_records,
            truncation,
        };
        Ok((live, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilient::ExecutionBudget;
    use mbir_models::linear::LinearModel;

    fn base(attr: u64) -> Grid2<f64> {
        Grid2::from_fn(4, 6, |r, c| (attr * 100) as f64 + (r * 6 + c) as f64)
    }

    fn band(attr: u64, commit: u64) -> Grid2<f64> {
        Grid2::from_fn(2, 6, |r, c| {
            (attr * 100) as f64 - ((commit * 12) as f64) - (r * 6 + c) as f64
        })
    }

    /// A clean archive that committed the same appends without ever
    /// crashing — the bit-identity reference.
    fn clean_after(commits: u64) -> LiveArchive {
        let mut live = LiveArchive::new(vec![base(0), base(1)], 2).unwrap();
        for commit in 0..commits {
            live.append(&[band(0, commit), band(1, commit)]).unwrap();
        }
        live
    }

    fn snapshots_eq(a: &EpochSnapshot, b: &EpochSnapshot) -> bool {
        a.epoch() == b.epoch()
            && a.pyramids().len() == b.pyramids().len()
            && a.pyramids()
                .iter()
                .zip(b.pyramids())
                .all(|(x, y)| x.levels() == y.levels())
            && a.stores().iter().zip(b.stores()).all(|(x, y)| {
                x.rows() == y.rows()
                    && (0..x.rows()).all(|r| {
                        (0..x.cols()).all(|c| {
                            x.read(r, c).unwrap().to_bits() == y.read(r, c).unwrap().to_bits()
                        })
                    })
            })
    }

    #[test]
    fn validates_bases_and_bands() {
        assert!(LiveArchive::new(vec![], 2).is_err());
        assert!(LiveArchive::new(vec![base(0)], 0).is_err());
        assert!(LiveArchive::new(vec![base(0)], 3).is_err(), "4 % 3 != 0");
        assert!(LiveArchive::new(vec![base(0), Grid2::filled(4, 5, 0.0)], 2).is_err());
        let mut live = LiveArchive::new(vec![base(0), base(1)], 2).unwrap();
        assert!(live.append(&[band(0, 0)]).is_err(), "band count");
        assert!(
            live.append(&[band(0, 0), Grid2::filled(1, 6, 0.0)])
                .is_err(),
            "height not tile-aligned"
        );
        assert!(
            live.append(&[band(0, 0), Grid2::filled(2, 5, 0.0)])
                .is_err(),
            "width mismatch"
        );
        assert_eq!(live.epoch().epoch, 0, "failed appends commit nothing");
        assert_eq!(live.snapshot().rows(), 4);
    }

    #[test]
    fn appends_publish_complete_epochs_and_old_snapshots_stay_frozen() {
        let mut live = LiveArchive::new(vec![base(0), base(1)], 2).unwrap();
        let reader = live.handle();
        let epoch0 = reader.current();
        assert_eq!(epoch0.epoch(), SnapshotEpoch { epoch: 0, rows: 4 });

        live.append(&[band(0, 0), band(1, 0)]).unwrap();
        live.append(&[band(0, 1), band(1, 1)]).unwrap();
        let epoch2 = reader.current();
        assert_eq!(epoch2.epoch(), SnapshotEpoch { epoch: 2, rows: 8 });

        // The old snapshot still reads exactly its prefix.
        assert_eq!(epoch0.rows(), 4);
        assert_eq!(epoch0.stores()[0].rows(), 4);
        // Shared prefix is bit-identical across epochs.
        for r in 0..4 {
            for c in 0..6 {
                assert_eq!(
                    epoch0.stores()[1].read(r, c).unwrap().to_bits(),
                    epoch2.stores()[1].read(r, c).unwrap().to_bits()
                );
            }
        }
        // The new epoch is bit-identical to a freshly built archive.
        assert!(snapshots_eq(&epoch2, &clean_after(2).snapshot()));
        // Queries against each snapshot see their own committed prefix.
        let model = LinearModel::new(vec![1.0, -1.0], 0.0).unwrap();
        let budget = ExecutionBudget::unlimited();
        let r0 = epoch0.query_top_k(&model, 3, &budget).unwrap();
        let r2 = epoch2.query_top_k(&model, 3, &budget).unwrap();
        assert_eq!(r0.completeness, 1.0);
        assert_eq!(r2.completeness, 1.0);
        let clean = clean_after(2).snapshot();
        let rc = clean.query_top_k(&model, 3, &budget).unwrap();
        for (a, b) in r2.results.iter().zip(&rc.results) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn crashed_append_changes_nothing_and_recovery_restores_the_prefix() {
        // Crash while journaling the *second* attribute of commit 2: the
        // journal keeps commit 0, commit 1, and a torn group.
        let mut live = LiveArchive::new(vec![base(0), base(1)], 2)
            .unwrap()
            .with_write_fault(WriteFault::TornWrite {
                frame: 5,
                persisted_bytes: 7,
            });
        live.append(&[band(0, 0), band(1, 0)]).unwrap();
        live.append(&[band(0, 1), band(1, 1)]).unwrap();
        let before = live.snapshot();
        let err = live.append(&[band(0, 2), band(1, 2)]).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Archive(mbir_archive::error::ArchiveError::JournalCrashed { .. })
        ));
        assert!(live.has_crashed());
        // Published state never moved past the last full commit.
        assert!(Arc::ptr_eq(&before, &live.snapshot()));
        assert_eq!(live.epoch().epoch, 2);
        // A dead writer stays dead.
        assert!(live.append(&[band(0, 2), band(1, 2)]).is_err());

        let (rec, report) =
            LiveArchive::recover(vec![base(0), base(1)], 2, live.journal_bytes()).unwrap();
        assert_eq!(report.applied, 2);
        assert_eq!(report.truncation, TruncationReason::TornFrame);
        // Frame 4 (commit 2, attr 0) verified but its group is torn.
        assert_eq!(report.dropped_partial_records, 1);
        assert!(report.dropped_bytes > 0);
        let clean = clean_after(2);
        assert_eq!(rec.journal_bytes(), clean.journal_bytes());
        assert!(snapshots_eq(&rec.snapshot(), &clean.snapshot()));
    }

    #[test]
    fn every_crash_offset_recovers_a_committed_prefix() {
        // Build the clean 3-commit journal once, then crash at every byte
        // offset: recovery must always restore a prefix of whole commits,
        // bit-identical to the clean archive of that many commits.
        let clean = clean_after(3);
        let total = clean.journal_bytes().len();
        let clean_prefixes: Vec<LiveArchive> = (0..=3).map(clean_after).collect();
        for cut in 0..=total {
            let mut live = LiveArchive::new(vec![base(0), base(1)], 2)
                .unwrap()
                .with_write_fault(WriteFault::CrashAtOffset { offset: cut });
            let mut committed = 0u64;
            for commit in 0..3 {
                match live.append(&[band(0, commit), band(1, commit)]) {
                    Ok(_) => committed += 1,
                    Err(_) => break,
                }
            }
            let (rec, report) =
                LiveArchive::recover(vec![base(0), base(1)], 2, live.journal_bytes()).unwrap();
            assert!(
                report.applied <= committed || committed < 3,
                "cut {cut}: recovered more than the writer committed"
            );
            let reference = &clean_prefixes[report.applied as usize];
            assert_eq!(
                rec.journal_bytes(),
                reference.journal_bytes(),
                "cut {cut}: journal bytes must match a clean archive"
            );
            assert!(
                snapshots_eq(&rec.snapshot(), &reference.snapshot()),
                "cut {cut}: snapshot must match a clean archive"
            );
            assert_eq!(
                report.committed_bytes + report.dropped_bytes,
                live.journal_bytes().len(),
                "cut {cut}: byte ledger must balance"
            );
        }
    }

    #[test]
    fn readers_during_appends_see_only_complete_epochs() {
        // One writer commits bands while reader threads continuously pull
        // snapshots and verify internal consistency: the row count, the
        // epoch, and the pyramids always describe the same committed
        // prefix, and a re-query of the snapshot is exact.
        let live = Mutex::new(LiveArchive::new(vec![base(0), base(1)], 2).unwrap());
        let reader = live.lock().unwrap().handle();
        let model = LinearModel::new(vec![1.0, 1.0], 0.0).unwrap();
        let budget = ExecutionBudget::unlimited();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reader = reader.clone();
                let model = &model;
                let budget = &budget;
                scope.spawn(move || {
                    for _ in 0..40 {
                        let snap = reader.current();
                        let epoch = snap.epoch();
                        assert_eq!(epoch.rows, 4 + epoch.epoch as usize * 2);
                        assert_eq!(snap.stores()[0].rows(), epoch.rows);
                        assert_eq!(snap.stores()[1].rows(), epoch.rows);
                        let r = snap.query_top_k(model, 2, budget).unwrap();
                        assert_eq!(r.completeness, 1.0, "epoch {}", epoch.epoch);
                    }
                });
            }
            scope.spawn(|| {
                for commit in 0..8 {
                    live.lock()
                        .unwrap()
                        .append(&[band(0, commit), band(1, commit)])
                        .unwrap();
                }
            });
        });
        assert_eq!(reader.current().epoch().epoch, 8);
    }

    #[test]
    fn first_page_of_row_marks_the_append_frontier() {
        let live = LiveArchive::new(vec![base(0)], 2).unwrap();
        // 6 cols, tile 2 -> 3 tiles per tile-row.
        assert_eq!(live.first_page_of_row(0), 0);
        assert_eq!(live.first_page_of_row(2), 3);
        assert_eq!(live.first_page_of_row(4), 6);
    }
}
