//! Model accuracy metrics (paper §4.1).
//!
//! Two views of accuracy:
//!
//! * **Decision costs** — misses (high-risk ground truth classified low)
//!   and false alarms (low-risk classified high), with per-type costs
//!   `c_m`, `c_f`, location weights `w(x,y)`, and the weighted total
//!   `C_T = Σ w(x,y) C(x,y)`.
//! * **Retrieval quality** — precision and recall of the top-K cells
//!   ranked by model risk against observed occurrences (`O(x,y) > 0`).
//!
//! Note on the paper's formulas: §4.1 writes `P_m = Prob[R > T | O = 0]`
//! and `P_f = Prob[R < T | O > 0]`, which *swaps* the usual definitions
//! (a miss is a truly-risky location predicted safe). This module uses the
//! standard semantics — miss ⇔ `R < T ∧ O > 0`, false alarm ⇔
//! `R ≥ T ∧ O = 0` — and EXPERIMENTS.md records the discrepancy.

use crate::error::CoreError;
use mbir_archive::extent::CellCoord;
use mbir_archive::grid::Grid2;

/// Cost parameters for the §4.1 decision-cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Cost `c_m` of a miss.
    pub miss_cost: f64,
    /// Cost `c_f` of a false alarm.
    pub false_alarm_cost: f64,
    /// Decision threshold `T` on the risk value.
    pub threshold: f64,
}

/// Outcome of a cost evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostReport {
    /// Number of miss cells.
    pub misses: u64,
    /// Number of false-alarm cells.
    pub false_alarms: u64,
    /// Empirical miss rate `P[R < T | O > 0]`.
    pub miss_rate: f64,
    /// Empirical false-alarm rate `P[R >= T | O = 0]`.
    pub false_alarm_rate: f64,
    /// The weighted total cost `C_T`.
    pub total_cost: f64,
}

/// Evaluates the §4.1 cost model of a risk surface against observed
/// occurrences, with optional per-location weights (population etc.;
/// `None` = uniform weight 1).
///
/// # Errors
///
/// Returns [`CoreError::Query`] when the grids are misaligned.
pub fn total_cost(
    risk: &Grid2<f64>,
    occurrences: &Grid2<u32>,
    weights: Option<&Grid2<f64>>,
    params: CostParams,
) -> Result<CostReport, CoreError> {
    let aligned = risk.rows() == occurrences.rows() && risk.cols() == occurrences.cols();
    if !aligned {
        return Err(CoreError::Query(
            "risk and occurrence grids misaligned".into(),
        ));
    }
    if let Some(w) = weights {
        if w.rows() != risk.rows() || w.cols() != risk.cols() {
            return Err(CoreError::Query("weight grid misaligned".into()));
        }
    }
    let mut report = CostReport::default();
    let mut positives = 0u64;
    let mut negatives = 0u64;
    for r in 0..risk.rows() {
        for c in 0..risk.cols() {
            let predicted_high = *risk.at(r, c) >= params.threshold;
            let observed = *occurrences.at(r, c) > 0;
            let w = weights.map(|g| *g.at(r, c)).unwrap_or(1.0);
            if observed {
                positives += 1;
                if !predicted_high {
                    report.misses += 1;
                    report.total_cost += w * params.miss_cost;
                }
            } else {
                negatives += 1;
                if predicted_high {
                    report.false_alarms += 1;
                    report.total_cost += w * params.false_alarm_cost;
                }
            }
        }
    }
    report.miss_rate = if positives > 0 {
        report.misses as f64 / positives as f64
    } else {
        0.0
    };
    report.false_alarm_rate = if negatives > 0 {
        report.false_alarms as f64 / negatives as f64
    } else {
        0.0
    };
    Ok(report)
}

/// Sweeps the decision threshold, returning `(threshold, report)` pairs —
/// the miss/false-alarm trade-off curve §4.1 describes.
///
/// # Errors
///
/// Same alignment requirements as [`total_cost`].
pub fn threshold_sweep(
    risk: &Grid2<f64>,
    occurrences: &Grid2<u32>,
    weights: Option<&Grid2<f64>>,
    miss_cost: f64,
    false_alarm_cost: f64,
    thresholds: &[f64],
) -> Result<Vec<(f64, CostReport)>, CoreError> {
    thresholds
        .iter()
        .map(|&threshold| {
            total_cost(
                risk,
                occurrences,
                weights,
                CostParams {
                    miss_cost,
                    false_alarm_cost,
                    threshold,
                },
            )
            .map(|r| (threshold, r))
        })
        .collect()
}

/// Precision/recall of a top-K retrieval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrReport {
    /// Number of cells retrieved.
    pub k: usize,
    /// Retrieved cells that are correct (`O > 0`).
    pub hits: u64,
    /// Total correct cells in the region.
    pub relevant: u64,
    /// `hits / k`.
    pub precision: f64,
    /// `hits / relevant`.
    pub recall: f64,
}

/// Precision and recall of retrieving the top-K risk cells (§4.1: "the
/// correct results are defined as those locations within a region where
/// O(x,y) > 0 ... the top-K retrieval is really based on the ordering of
/// R(x,y)").
///
/// # Errors
///
/// Returns [`CoreError::Query`] for misaligned grids or `k == 0`.
pub fn precision_recall_at_k(
    risk: &Grid2<f64>,
    occurrences: &Grid2<u32>,
    k: usize,
) -> Result<PrReport, CoreError> {
    if k == 0 {
        return Err(CoreError::Query("k must be >= 1".into()));
    }
    if risk.rows() != occurrences.rows() || risk.cols() != occurrences.cols() {
        return Err(CoreError::Query(
            "risk and occurrence grids misaligned".into(),
        ));
    }
    let mut scored: Vec<(f64, CellCoord)> = risk.iter().map(|(cc, &v)| (v, cc)).collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let k = k.min(scored.len());
    let hits = scored[..k]
        .iter()
        .filter(|(_, cc)| *occurrences.at(cc.row, cc.col) > 0)
        .count() as u64;
    let relevant = occurrences.iter().filter(|(_, &o)| o > 0).count() as u64;
    Ok(PrReport {
        k,
        hits,
        relevant,
        precision: hits as f64 / k as f64,
        recall: if relevant > 0 {
            hits as f64 / relevant as f64
        } else {
            0.0
        },
    })
}

/// One point on a receiver-operating-characteristic curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// True-positive rate (`1 - miss rate`).
    pub tpr: f64,
    /// False-positive rate (= false-alarm rate).
    pub fpr: f64,
}

/// The ROC curve of a risk surface against observed occurrences, computed
/// exactly from the sorted score sweep, plus the area under it.
///
/// This extends §4.1's two-error-rate analysis to the full trade-off curve;
/// AUC summarizes how well `R(x,y)` orders risky above safe locations
/// independent of any threshold.
///
/// # Errors
///
/// Returns [`CoreError::Query`] for misaligned grids or when either class
/// (occurrence / no-occurrence) is empty.
pub fn roc_curve(
    risk: &Grid2<f64>,
    occurrences: &Grid2<u32>,
) -> Result<(Vec<RocPoint>, f64), CoreError> {
    if risk.rows() != occurrences.rows() || risk.cols() != occurrences.cols() {
        return Err(CoreError::Query(
            "risk and occurrence grids misaligned".into(),
        ));
    }
    let mut scored: Vec<(f64, bool)> = risk
        .iter()
        .map(|(cc, &v)| (v, *occurrences.at(cc.row, cc.col) > 0))
        .collect();
    let positives = scored.iter().filter(|(_, p)| *p).count() as f64;
    let negatives = scored.len() as f64 - positives;
    if positives == 0.0 || negatives == 0.0 {
        return Err(CoreError::Query(
            "ROC needs both positive and negative cells".into(),
        ));
    }
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut points = Vec::with_capacity(scored.len() + 1);
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut auc = 0.0;
    let mut prev_fpr = 0.0;
    let mut prev_tpr = 0.0;
    let mut i = 0;
    points.push(RocPoint {
        threshold: f64::INFINITY,
        tpr: 0.0,
        fpr: 0.0,
    });
    while i < scored.len() {
        // Advance through ties as one step so the curve is well-defined.
        let t = scored[i].0;
        while i < scored.len() && scored[i].0 == t {
            if scored[i].1 {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        let tpr = tp / positives;
        let fpr = fp / negatives;
        auc += (fpr - prev_fpr) * (tpr + prev_tpr) / 2.0;
        prev_fpr = fpr;
        prev_tpr = tpr;
        points.push(RocPoint {
            threshold: t,
            tpr,
            fpr,
        });
    }
    Ok((points, auc))
}

/// One row of a thread-scaling table: wall time at a thread count plus
/// the derived speedup and efficiency against the table's 1-thread (or
/// first-row) baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingRow {
    /// Worker threads used.
    pub threads: usize,
    /// Measured wall time in nanoseconds.
    pub wall_ns: u64,
    /// `baseline wall / this wall` (1.0 for the baseline row).
    pub speedup: f64,
    /// `speedup / threads` — 1.0 is perfect linear scaling.
    pub efficiency: f64,
}

/// Derives a scaling table from `(threads, wall_ns)` measurements; the
/// first point is the baseline. Rows with a zero wall time (clock
/// granularity) report speedup 1.0 rather than infinity. Returns an empty
/// table for no points.
pub fn scaling_table(points: &[(usize, u64)]) -> Vec<ScalingRow> {
    let Some(&(_, base_ns)) = points.first() else {
        return Vec::new();
    };
    points
        .iter()
        .map(|&(threads, wall_ns)| {
            let speedup = if wall_ns == 0 {
                1.0
            } else {
                base_ns as f64 / wall_ns as f64
            };
            ScalingRow {
                threads,
                wall_ns,
                speedup,
                efficiency: speedup / threads.max(1) as f64,
            }
        })
        .collect()
}

/// Compact description of how far a resilient answer drifted from exact —
/// the chaos harness's per-run scorecard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationSummary {
    /// Fraction of base cells provably accounted for (1.0 = exact).
    pub completeness: f64,
    /// Pages whose cells were lost from the answer.
    pub skipped_pages: usize,
    /// Reported hits whose score is a degraded estimate, not an exact
    /// evaluation.
    pub inexact_hits: usize,
    /// Widest reported `hi - lo` score interval (0.0 when every hit is a
    /// point).
    pub widest_bound: f64,
    /// Whether a budget dimension (including the wall-clock deadline)
    /// stopped the run early.
    pub budget_stopped: bool,
    /// Queries rejected up front by admission control (typed
    /// [`Overloaded`](crate::lifecycle::Overloaded) errors). Always 0
    /// from [`degradation_summary`]; folded in via
    /// [`with_lifecycle`](Self::with_lifecycle).
    pub shed_queries: u64,
    /// Queries cancelled mid-flight via their
    /// [`CancelToken`](crate::lifecycle::CancelToken). Always 0 from
    /// [`degradation_summary`]; folded in via
    /// [`with_lifecycle`](Self::with_lifecycle).
    pub cancelled_queries: u64,
    /// Hedged replica reads issued (see
    /// [`ReplicatedSource::hedged_reads`](crate::replica::ReplicatedSource::hedged_reads)).
    /// Always 0 from [`degradation_summary`]; folded in via
    /// [`with_lifecycle`](Self::with_lifecycle).
    pub hedged_reads: u64,
    /// Pages actually read through the source during the run. Always 0
    /// from [`degradation_summary`] — the run report does not carry I/O
    /// totals — and folded in via [`with_io`](Self::with_io).
    pub pages_read: u64,
    /// Pages sitting in quarantine at the end of the run. Always 0 from
    /// [`degradation_summary`]; folded in via [`with_io`](Self::with_io).
    pub quarantined_pages: u64,
    /// Page lookups served from a shared cache
    /// ([`CachedTileSource`](crate::source::CachedTileSource)) without
    /// touching the backing stores. Always 0 from [`degradation_summary`];
    /// folded in via [`with_cache`](Self::with_cache).
    pub cache_hits: u64,
    /// Page lookups that missed the cache and materialized the page from
    /// the stores. Always 0 from [`degradation_summary`]; folded in via
    /// [`with_cache`](Self::with_cache).
    pub cache_misses: u64,
    /// Lookups that found the page already being materialized by another
    /// reader and waited for the shared result instead of issuing a
    /// duplicate store read (an overlay of `cache_hits`, not a third
    /// outcome). Always 0 from [`degradation_summary`]; folded in via
    /// [`with_cache`](Self::with_cache).
    pub cache_dedup_waits: u64,
    /// Page materializations past the reader's original append high-water
    /// mark — reads that touched pages committed by an append (see
    /// [`AccessStats::appended_pages_seen`](mbir_archive::stats::AccessStats::appended_pages_seen)).
    /// Always 0 from [`degradation_summary`]; folded in via
    /// [`with_append`](Self::with_append).
    pub appended_pages_seen: u64,
    /// Cached pages dropped because a snapshot-epoch advance made them
    /// stale (see
    /// [`CachedTileSource::advance_epoch`](crate::source::CachedTileSource::advance_epoch)).
    /// Always 0 from [`degradation_summary`]; folded in via
    /// [`with_append`](Self::with_append).
    pub epoch_invalidated_cache_entries: u64,
}

impl DegradationSummary {
    /// Folds lifecycle-layer degradation counters into the scorecard
    /// (builder style), so one report covers every degradation source:
    /// lost pages, budget stops, shed admissions, cancellations, and
    /// hedged reads.
    pub fn with_lifecycle(mut self, shed: u64, cancelled: u64, hedged: u64) -> Self {
        self.shed_queries = shed;
        self.cancelled_queries = cancelled;
        self.hedged_reads = hedged;
        self
    }

    /// Folds storage-layer I/O counters into the scorecard (builder
    /// style): pages read and pages left quarantined. With
    /// [`skipped_pages`](Self::skipped_pages) these close the page ledger
    /// that [`merge_shard_summaries`] conserves.
    pub fn with_io(mut self, pages_read: u64, quarantined_pages: u64) -> Self {
        self.pages_read = pages_read;
        self.quarantined_pages = quarantined_pages;
        self
    }

    /// Folds page-cache counters into the scorecard (builder style):
    /// hits, misses, and in-flight dedup waits from the
    /// [`AccessStats`](mbir_archive::stats::AccessStats) behind a
    /// [`CachedTileSource`](crate::source::CachedTileSource). With
    /// [`pages_read`](Self::pages_read) these make batching wins
    /// observable — amortized reads show up as hits and dedup waits, not
    /// as a mysteriously low page count.
    pub fn with_cache(mut self, hits: u64, misses: u64, dedup_waits: u64) -> Self {
        self.cache_hits = hits;
        self.cache_misses = misses;
        self.cache_dedup_waits = dedup_waits;
        self
    }

    /// Folds append-side counters into the scorecard (builder style):
    /// pages seen past the original append high-water mark and cache
    /// entries invalidated by snapshot-epoch advances. Together they make
    /// live-append churn observable next to the fault-degradation fields —
    /// a run that re-read its whole cache after every commit shows it
    /// here, not as a mysteriously low hit rate.
    pub fn with_append(mut self, appended_seen: u64, invalidated: u64) -> Self {
        self.appended_pages_seen = appended_seen;
        self.epoch_invalidated_cache_entries = invalidated;
        self
    }
}

/// Summarizes a [`ResilientTopK`](crate::resilient::ResilientTopK) for
/// degradation reporting. Lifecycle counters (shed / cancelled / hedged)
/// start at zero — one run report cannot see them — and are folded in by
/// the harness via [`DegradationSummary::with_lifecycle`].
pub fn degradation_summary(report: &crate::resilient::ResilientTopK) -> DegradationSummary {
    DegradationSummary {
        completeness: report.completeness,
        skipped_pages: report.skipped_pages.len(),
        inexact_hits: report.results.iter().filter(|h| !h.exact).count(),
        widest_bound: report
            .results
            .iter()
            .map(|h| h.bounds.hi - h.bounds.lo)
            .fold(0.0, f64::max),
        budget_stopped: report.budget_stop.is_some(),
        shed_queries: 0,
        cancelled_queries: 0,
        hedged_reads: 0,
        pages_read: 0,
        quarantined_pages: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_dedup_waits: 0,
        appended_pages_seen: 0,
        epoch_invalidated_cache_entries: 0,
    }
}

/// Summarizes a [`ShardedTopK`](crate::shard::ShardedTopK) the same way
/// [`degradation_summary`] summarizes an unsharded run, with the winning
/// attempts' page reads already folded in. Per-shard completeness flows
/// through the merged report's cell-weighted completeness; quarantine and
/// lifecycle counters are folded in by the harness.
pub fn sharded_degradation_summary(report: &crate::shard::ShardedTopK) -> DegradationSummary {
    DegradationSummary {
        completeness: report.completeness,
        skipped_pages: report.skipped_pages.len(),
        inexact_hits: report.results.iter().filter(|h| !h.exact).count(),
        widest_bound: report
            .results
            .iter()
            .map(|h| h.bounds.hi - h.bounds.lo)
            .fold(0.0, f64::max),
        budget_stopped: report.budget_stop.is_some(),
        shed_queries: 0,
        cancelled_queries: 0,
        hedged_reads: 0,
        pages_read: report.shards.iter().map(|s| s.pages_read).sum(),
        quarantined_pages: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_dedup_waits: 0,
        appended_pages_seen: 0,
        epoch_invalidated_cache_entries: 0,
    }
}

/// Merges per-shard degradation scorecards into one, each paired with its
/// shard's base-cell count for weighting. The merge *conserves* every
/// count: pages read, skipped, and quarantined (plus the lifecycle
/// counters) are exact sums over the parts, completeness is the
/// cell-weighted mean, the widest bound is the max, and `budget_stopped`
/// is true when any shard stopped early. An empty slice merges to the
/// pristine summary (completeness 1.0, all counters zero).
pub fn merge_shard_summaries(parts: &[(DegradationSummary, u64)]) -> DegradationSummary {
    let total_cells: u64 = parts.iter().map(|(_, cells)| cells).sum();
    let mut merged = DegradationSummary {
        completeness: 1.0,
        skipped_pages: 0,
        inexact_hits: 0,
        widest_bound: 0.0,
        budget_stopped: false,
        shed_queries: 0,
        cancelled_queries: 0,
        hedged_reads: 0,
        pages_read: 0,
        quarantined_pages: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_dedup_waits: 0,
        appended_pages_seen: 0,
        epoch_invalidated_cache_entries: 0,
    };
    if total_cells == 0 {
        return merged;
    }
    let mut weighted = 0.0;
    for (part, cells) in parts {
        weighted += part.completeness * *cells as f64;
        merged.skipped_pages += part.skipped_pages;
        merged.inexact_hits += part.inexact_hits;
        merged.widest_bound = merged.widest_bound.max(part.widest_bound);
        merged.budget_stopped |= part.budget_stopped;
        merged.shed_queries += part.shed_queries;
        merged.cancelled_queries += part.cancelled_queries;
        merged.hedged_reads += part.hedged_reads;
        merged.pages_read += part.pages_read;
        merged.quarantined_pages += part.quarantined_pages;
        merged.cache_hits += part.cache_hits;
        merged.cache_misses += part.cache_misses;
        merged.cache_dedup_waits += part.cache_dedup_waits;
        merged.appended_pages_seen += part.appended_pages_seen;
        merged.epoch_invalidated_cache_entries += part.epoch_invalidated_cache_entries;
    }
    merged.completeness = weighted / total_cells as f64;
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Risk = column index; occurrences planted in the right half.
    fn fixtures() -> (Grid2<f64>, Grid2<u32>) {
        let risk = Grid2::from_fn(4, 10, |_, c| c as f64);
        let occ = Grid2::from_fn(4, 10, |_, c| u32::from(c >= 5));
        (risk, occ)
    }

    #[test]
    fn perfect_threshold_costs_nothing() {
        let (risk, occ) = fixtures();
        let report = total_cost(
            &risk,
            &occ,
            None,
            CostParams {
                miss_cost: 10.0,
                false_alarm_cost: 1.0,
                threshold: 5.0,
            },
        )
        .unwrap();
        assert_eq!(report.misses, 0);
        assert_eq!(report.false_alarms, 0);
        assert_eq!(report.total_cost, 0.0);
    }

    #[test]
    fn threshold_trades_misses_for_false_alarms() {
        let (risk, occ) = fixtures();
        let sweep = threshold_sweep(&risk, &occ, None, 10.0, 1.0, &[2.0, 5.0, 8.0]).unwrap();
        let (_, low_t) = sweep[0];
        let (_, mid_t) = sweep[1];
        let (_, high_t) = sweep[2];
        // Low threshold: everything flagged -> false alarms, no misses.
        assert_eq!(low_t.misses, 0);
        assert!(low_t.false_alarms > 0);
        // High threshold: misses, no false alarms.
        assert!(high_t.misses > 0);
        assert_eq!(high_t.false_alarms, 0);
        // The well-placed threshold minimizes cost.
        assert!(mid_t.total_cost < low_t.total_cost);
        assert!(mid_t.total_cost < high_t.total_cost);
    }

    #[test]
    fn asymmetric_costs_shift_the_optimum() {
        let (risk, occ) = fixtures();
        // When misses are catastrophic, a lower threshold (more alarms) is
        // cheaper overall.
        let thresholds: Vec<f64> = (0..10).map(|t| t as f64).collect();
        let costly_miss = threshold_sweep(&risk, &occ, None, 100.0, 1.0, &thresholds).unwrap();
        let costly_alarm = threshold_sweep(&risk, &occ, None, 1.0, 100.0, &thresholds).unwrap();
        let argmin = |sweep: &[(f64, CostReport)]| {
            sweep
                .iter()
                .min_by(|a, b| a.1.total_cost.total_cmp(&b.1.total_cost))
                .unwrap()
                .0
        };
        assert!(argmin(&costly_miss) <= argmin(&costly_alarm));
    }

    #[test]
    fn weights_scale_costs() {
        let (risk, occ) = fixtures();
        let weights = Grid2::filled(4, 10, 3.0);
        let params = CostParams {
            miss_cost: 1.0,
            false_alarm_cost: 1.0,
            threshold: 9.5, // everything with O>0 except col 9 missed
        };
        let unweighted = total_cost(&risk, &occ, None, params).unwrap();
        let weighted = total_cost(&risk, &occ, Some(&weights), params).unwrap();
        assert!((weighted.total_cost - 3.0 * unweighted.total_cost).abs() < 1e-9);
    }

    #[test]
    fn misaligned_grids_rejected() {
        let (risk, _) = fixtures();
        let occ = Grid2::filled(2, 2, 0u32);
        assert!(total_cost(
            &risk,
            &occ,
            None,
            CostParams {
                miss_cost: 1.0,
                false_alarm_cost: 1.0,
                threshold: 0.5
            }
        )
        .is_err());
        assert!(precision_recall_at_k(&risk, &occ, 3).is_err());
    }

    #[test]
    fn precision_recall_on_planted_data() {
        let (risk, occ) = fixtures();
        // Top-20 risk cells are exactly the 20 occurrence cells (cols 5-9).
        let pr = precision_recall_at_k(&risk, &occ, 20).unwrap();
        assert_eq!(pr.hits, 20);
        assert_eq!(pr.relevant, 20);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        // Top-40 must include all 20 irrelevant cells too.
        let pr = precision_recall_at_k(&risk, &occ, 40).unwrap();
        assert_eq!(pr.precision, 0.5);
        assert_eq!(pr.recall, 1.0);
        // Top-10: perfect precision, half recall.
        let pr = precision_recall_at_k(&risk, &occ, 10).unwrap();
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 0.5);
    }

    #[test]
    fn roc_of_perfect_ranker_is_unit_auc() {
        let (risk, occ) = fixtures();
        let (points, auc) = roc_curve(&risk, &occ).unwrap();
        assert!((auc - 1.0).abs() < 1e-12, "auc {auc}");
        assert_eq!(points.first().unwrap().tpr, 0.0);
        let last = points.last().unwrap();
        assert_eq!((last.tpr, last.fpr), (1.0, 1.0));
    }

    #[test]
    fn roc_of_anti_ranker_is_zero_auc() {
        let (risk, occ) = fixtures();
        let inverted = risk.map(|&v| -v);
        let (_, auc) = roc_curve(&inverted, &occ).unwrap();
        assert!(auc < 1e-12, "auc {auc}");
    }

    #[test]
    fn roc_of_constant_ranker_is_half_auc() {
        let (_, occ) = fixtures();
        let flat = Grid2::filled(4, 10, 1.0);
        let (points, auc) = roc_curve(&flat, &occ).unwrap();
        assert!((auc - 0.5).abs() < 1e-12, "auc {auc}");
        // One tie-step from (0,0) to (1,1).
        assert_eq!(points.len(), 2);
    }

    #[test]
    fn roc_requires_both_classes() {
        let risk = Grid2::filled(2, 2, 1.0);
        let all_positive = Grid2::filled(2, 2, 3u32);
        let all_negative = Grid2::filled(2, 2, 0u32);
        assert!(roc_curve(&risk, &all_positive).is_err());
        assert!(roc_curve(&risk, &all_negative).is_err());
        let misaligned = Grid2::filled(1, 2, 0u32);
        assert!(roc_curve(&risk, &misaligned).is_err());
    }

    #[test]
    fn roc_is_monotone() {
        let (pyr_risk, occ) = fixtures();
        // Add noise-free but shuffled scores to exercise interior points.
        let noisy = pyr_risk.map(|&v| (v * 7.0) % 13.0);
        let (points, auc) = roc_curve(&noisy, &occ).unwrap();
        for pair in points.windows(2) {
            assert!(pair[1].tpr >= pair[0].tpr - 1e-12);
            assert!(pair[1].fpr >= pair[0].fpr - 1e-12);
        }
        assert!((0.0..=1.0).contains(&auc));
    }

    #[test]
    fn empty_relevant_set_yields_zero_recall() {
        let risk = Grid2::filled(2, 2, 1.0);
        let occ = Grid2::filled(2, 2, 0u32);
        let pr = precision_recall_at_k(&risk, &occ, 2).unwrap();
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 0.0);
        assert!(precision_recall_at_k(&risk, &occ, 0).is_err());
    }

    #[test]
    fn degradation_summary_reads_the_report_faithfully() {
        use crate::engine::EffortReport;
        use crate::resilient::{BudgetStop, ResilientHit, ResilientTopK, ScoreBounds};
        let hit = |score: f64, lo: f64, hi: f64, exact: bool| ResilientHit {
            cell: CellCoord::new(0, 0),
            level: 0,
            score,
            bounds: ScoreBounds { lo, hi },
            exact,
        };
        let report = ResilientTopK {
            results: vec![hit(5.0, 5.0, 5.0, true), hit(3.0, 1.0, 4.5, false)],
            effort: EffortReport::default(),
            completeness: 0.75,
            skipped_pages: vec![2, 9],
            budget_stop: Some(BudgetStop::WallClock),
        };
        let s = degradation_summary(&report);
        assert_eq!(s.completeness, 0.75);
        assert_eq!(s.skipped_pages, 2);
        assert_eq!(s.inexact_hits, 1);
        assert!((s.widest_bound - 3.5).abs() < 1e-12);
        assert!(s.budget_stopped);
        assert_eq!(
            (s.shed_queries, s.cancelled_queries, s.hedged_reads),
            (0, 0, 0)
        );
        assert_eq!((s.pages_read, s.quarantined_pages), (0, 0));

        // Lifecycle counters fold in without disturbing the run fields.
        let folded = s.with_lifecycle(3, 2, 7);
        assert_eq!(folded.shed_queries, 3);
        assert_eq!(folded.cancelled_queries, 2);
        assert_eq!(folded.hedged_reads, 7);
        assert_eq!(folded.completeness, s.completeness);
        assert_eq!(folded.skipped_pages, s.skipped_pages);

        // So do the storage-layer I/O counters.
        let folded = folded.with_io(41, 3);
        assert_eq!(folded.pages_read, 41);
        assert_eq!(folded.quarantined_pages, 3);
        assert_eq!(folded.shed_queries, 3);
        assert_eq!(folded.completeness, s.completeness);

        // And the page-cache counters.
        assert_eq!(
            (
                folded.cache_hits,
                folded.cache_misses,
                folded.cache_dedup_waits
            ),
            (0, 0, 0)
        );
        let folded = folded.with_cache(60, 4, 9);
        assert_eq!(folded.cache_hits, 60);
        assert_eq!(folded.cache_misses, 4);
        assert_eq!(folded.cache_dedup_waits, 9);
        assert_eq!(folded.pages_read, 41);
        assert_eq!(folded.completeness, s.completeness);

        // And the append-side counters.
        assert_eq!(
            (
                folded.appended_pages_seen,
                folded.epoch_invalidated_cache_entries
            ),
            (0, 0)
        );
        let folded = folded.with_append(5, 2);
        assert_eq!(folded.appended_pages_seen, 5);
        assert_eq!(folded.epoch_invalidated_cache_entries, 2);
        assert_eq!(folded.cache_hits, 60);
        assert_eq!(folded.completeness, s.completeness);

        let exact = ResilientTopK {
            results: vec![hit(5.0, 5.0, 5.0, true)],
            effort: EffortReport::default(),
            completeness: 1.0,
            skipped_pages: vec![],
            budget_stop: None,
        };
        let s = degradation_summary(&exact);
        assert_eq!(s.widest_bound, 0.0);
        assert!(!s.budget_stopped);
        assert_eq!(s.inexact_hits, 0);
    }

    #[test]
    fn merged_shard_summaries_conserve_counts_and_weight_completeness() {
        let part =
            |completeness: f64, skipped: usize, read: u64, quarantined: u64| DegradationSummary {
                completeness,
                skipped_pages: skipped,
                inexact_hits: skipped,
                widest_bound: completeness * 2.0,
                budget_stopped: skipped > 0,
                shed_queries: 1,
                cancelled_queries: 2,
                hedged_reads: 3,
                pages_read: read,
                quarantined_pages: quarantined,
                cache_hits: read * 2,
                cache_misses: read,
                cache_dedup_waits: quarantined,
                appended_pages_seen: read / 2,
                epoch_invalidated_cache_entries: quarantined * 2,
            };
        let parts = [
            (part(1.0, 0, 10, 0), 100u64),
            (part(0.5, 4, 6, 2), 100),
            (part(0.0, 8, 0, 8), 200),
        ];
        let merged = merge_shard_summaries(&parts);
        // Counts are conserved exactly across the merge.
        assert_eq!(merged.skipped_pages, 12);
        assert_eq!(merged.pages_read, 16);
        assert_eq!(merged.quarantined_pages, 10);
        assert_eq!(merged.inexact_hits, 12);
        assert_eq!(
            (
                merged.shed_queries,
                merged.cancelled_queries,
                merged.hedged_reads
            ),
            (3, 6, 9)
        );
        assert_eq!(
            (
                merged.cache_hits,
                merged.cache_misses,
                merged.cache_dedup_waits
            ),
            (32, 16, 10)
        );
        assert_eq!(
            (
                merged.appended_pages_seen,
                merged.epoch_invalidated_cache_entries
            ),
            (8, 20)
        );
        // Completeness is the cell-weighted mean: (100 + 50 + 0) / 400.
        assert!((merged.completeness - 0.375).abs() < 1e-12);
        assert_eq!(merged.widest_bound, 2.0);
        assert!(merged.budget_stopped);
        // Empty merge is pristine.
        let empty = merge_shard_summaries(&[]);
        assert_eq!(empty.completeness, 1.0);
        assert_eq!(empty.pages_read, 0);
        assert!(!empty.budget_stopped);
    }

    #[test]
    fn scaling_table_derives_speedup_and_efficiency() {
        let rows = scaling_table(&[(1, 800), (2, 400), (4, 250), (8, 0)]);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].speedup, 1.0);
        assert_eq!(rows[0].efficiency, 1.0);
        assert_eq!(rows[1].speedup, 2.0);
        assert_eq!(rows[1].efficiency, 1.0);
        assert!((rows[2].speedup - 3.2).abs() < 1e-12);
        assert!((rows[2].efficiency - 0.8).abs() < 1e-12);
        assert_eq!(rows[3].speedup, 1.0, "zero wall time stays finite");
        assert!(scaling_table(&[]).is_empty());
    }
}
