#![warn(missing_docs)]
//! # mbir-core
//!
//! The model-based information retrieval framework of the ICDCS 2000 paper
//! (§3): execute a model *progressively* over *progressively represented*
//! data, with sound pruning, so that top-K retrieval touches a fraction of
//! the archive.
//!
//! * [`engine`] — the progressive execution engine: staged-model scans
//!   (`p_m`), pyramid quad-descent (`p_d`), and the combined engine whose
//!   cost is `O(nN / (p_m p_d))` (§4.2). Every engine is *exact*: pruning
//!   uses sound interval bounds, and equivalence with a full scan is
//!   property-tested.
//! * [`metrics`] — §4.1 model accuracy: miss / false-alarm costs `C(x,y)`,
//!   the weighted total `C_T`, threshold sweeps, and precision/recall of
//!   top-K retrieval against observed occurrences.
//! * [`workflow`] — the Fig. 5 loop: hypothesize → calibrate → retrieve →
//!   revise through relevance feedback → apply to a larger archive.
//! * [`source`] / [`resilient`] — fallible base-level access through the
//!   paged archive, and the budgeted, fault-tolerant engine that degrades
//!   gracefully (partial results with sound bounds and an explicit
//!   completeness fraction) instead of aborting on lost pages.
//! * [`coarse`] — i8 quantized coarse-pass cell bounds over the pyramid
//!   levels, mirroring [`mbir_index::quant`] one layer up: the resilient
//!   engines reject child regions strictly below the top-K floor before
//!   the exact interval bound runs. Prune-only, so answers stay
//!   bit-identical.
//! * [`parallel`] — the hardware-parallel layer: a scoped worker pool,
//!   partitioned counterparts of the strict and resilient engines sharing
//!   their pruning bound through a lock-free [`SharedBound`], and batched
//!   multi-query execution over one shared (optionally page-cached)
//!   archive. Bit-identical to the sequential engines at every thread
//!   count.
//! * [`lifecycle`] — the overload layer: cooperative [`CancelToken`]s
//!   polled by the resilient engines at page granularity, and an
//!   [`AdmissionController`] with per-priority queues and best-effort
//!   load shedding behind a typed [`Overloaded`] rejection.
//! * [`shard`] — fault-domain sharded scatter-gather: row-band shards,
//!   each with its own pyramids and page source, fanned out over the
//!   worker pool with cross-shard bound propagation, straggler hedging,
//!   and quorum completion policies behind a typed
//!   [`InsufficientShards`] error. Healthy runs are bit-identical to the
//!   unsharded resilient engine; degraded shards widen bounds instead of
//!   silently flipping the fused top-K.
//! * [`batched`] — batched multi-query execution: one shared pyramid
//!   descent serves Q queries, fetching each base cell and range box at
//!   most once per batch behind governed memo tables, scheduling by
//!   global upper bound while cross-query reuse lasts and degrading to
//!   solo-shaped query-major drains when a governor proves it doesn't.
//!   Every per-query answer is bit-identical to its solo
//!   [`resilient`](crate::resilient) run; threaded through the parallel
//!   workers and the sharded scatter-gather.
//! * [`snapshot`] — crash-consistent live appends: a [`LiveArchive`]
//!   grows by journaled, tile-row-aligned appends (one checksummed frame
//!   per attribute per commit) and publishes every committed state as an
//!   immutable, `Arc`-shared [`EpochSnapshot`] — journal-durable, then
//!   build, then one atomic swap. Queries of any engine family run
//!   against a snapshot and therefore one committed prefix; recovery
//!   replays the journal to exactly the committed epochs, bit-identical
//!   to an archive that never crashed.
//! * [`continuous`] — standing continuous queries: a
//!   [`ContinuousQueryDriver`] re-arms the paper's Fig. 1 fire-ants FSM
//!   over each snapshot's newly committed rows, with alerts provably
//!   independent of the poll schedule.
//! * [`reshard`] — epoch-fenced live resharding: a [`ReshardCoordinator`]
//!   drives split/merge/move of tile-aligned row bands through
//!   Planned → Copying → DualRead → CutOver → Retired, with
//!   checksum-verified band copies, retry/backoff and copy quarantine,
//!   wall-deadline abort back to the source epoch, and a dual-read
//!   scatter that keeps degraded merges sound while healthy queries stay
//!   bit-identical to the pre-migration plan.
//!
//! ```
//! use mbir_archive::grid::Grid2;
//! use mbir_core::engine::pyramid_top_k;
//! use mbir_models::linear::LinearModel;
//! use mbir_progressive::pyramid::AggregatePyramid;
//!
//! let band = Grid2::from_fn(32, 32, |r, c| (r * 32 + c) as f64);
//! let pyramids = vec![AggregatePyramid::build(&band)];
//! let model = LinearModel::new(vec![1.0], 0.0).unwrap();
//! let report = pyramid_top_k(&model, &pyramids, 3).unwrap();
//! assert_eq!(report.results[0].cell.row, 31);
//! assert!(report.effort.speedup() > 1.0);
//! ```

pub mod batched;
pub mod coarse;
pub mod continuous;
pub mod engine;
pub mod error;
pub mod lifecycle;
pub mod metrics;
pub mod parallel;
pub mod plan;
pub mod query;
pub mod replica;
pub mod reshard;
pub mod resilient;
pub mod shard;
pub mod snapshot;
pub mod source;
pub mod temporal;
pub mod workflow;

pub use batched::{
    batched_top_k, batched_top_k_cancellable, batched_top_k_coarse, batched_top_k_with_scratch,
    BatchScratch, BatchedTopK,
};
pub use coarse::CoarseGrid;
pub use continuous::{ContinuousDetector, ContinuousQueryDriver};
pub use engine::{
    combined_top_k, combined_top_k_with_source, grid_query, pyramid_top_k,
    pyramid_top_k_with_source, staged_grid_top_k, staged_top_k, EffortReport,
};
pub use error::CoreError;
pub use lifecycle::{
    AdmissionController, AdmissionPolicy, CancelToken, ClassCounters, LifecycleState, Overloaded,
    Priority, SessionId,
};
pub use metrics::{
    degradation_summary, merge_shard_summaries, precision_recall_at_k, roc_curve, scaling_table,
    sharded_degradation_summary, total_cost, CostParams, CostReport, DegradationSummary, PrReport,
    RocPoint, ScalingRow,
};
pub use parallel::{
    grid_query_with_scratch, grid_query_with_source, par_batched_top_k,
    par_batched_top_k_cancellable, par_batched_top_k_coarse, par_pyramid_top_k,
    par_pyramid_top_k_with_source, par_resilient_top_k, par_resilient_top_k_cancellable,
    par_resilient_top_k_coarse, par_staged_top_k, QueryBatch, ScratchPool, SharedBound, WorkerPool,
};
pub use plan::{
    execute_planned, execute_planned_parallel, plan_grid_query, EngineChoice, PlannerConfig,
    QueryPlan,
};
pub use query::{Objective, TopKQuery};
pub use replica::{BreakerState, ReplicaConfig, ReplicaHealth, ReplicatedSource};
pub use reshard::{
    AbortReason, BandCopyReport, CopyOutcome, MigratedBand, MigrationState, ReshardCoordinator,
    ReshardPolicy, ReshardReport,
};
pub use resilient::{
    resilient_top_k, resilient_top_k_cancellable, resilient_top_k_coarse,
    resilient_top_k_coarse_with_scratch, BudgetStop, ExecutionBudget, ResilientHit, ResilientTopK,
    ScoreBounds, WallDeadline,
};
pub use shard::{
    batched_scatter_gather_top_k, batched_scatter_gather_top_k_cancellable, scatter_gather_top_k,
    scatter_gather_top_k_cancellable, scatter_gather_top_k_dual,
    scatter_gather_top_k_dual_cancellable, ArchiveShard, BatchedShardedTopK, CompletionPolicy,
    DualReadGroup, EpochMismatch, InsufficientShards, ScatterPolicy, ShardError, ShardOutcome,
    ShardReport, ShardTable, ShardedArchive, ShardedTopK,
};
pub use snapshot::{EpochSnapshot, LiveArchive, LiveRecoveryReport, SnapshotEpoch, SnapshotHandle};
pub use source::{CachedTileSource, CellSource, PyramidSource, QuarantineScrub, TileSource};
pub use temporal::{FrameTopK, TemporalRiskTracker};
