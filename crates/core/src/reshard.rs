//! Epoch-fenced live resharding: topology changes over a serving archive
//! with no stop-the-world rebuild and no partial routing ever visible.
//!
//! The ROADMAP's north star — heavy traffic over a growing archive —
//! means the shard topology of [`crate::shard`] must be able to change
//! *while queries are in flight*. This module drives that change as an
//! explicit state machine over [`TopologyEpoch`]-stamped plans:
//!
//! ```text
//! Planned ──begin_copy──▶ Copying ──enter_dual_read──▶ DualRead
//!    │                      │  ▲                          │
//!    │   (wall deadline,    │  └── clear_copy_quarantine  │ cut_over
//!    │    cancellation,     │                             ▼
//!    └──── caller) ────────▶│◀───── abort ──────────── CutOver
//!                           ▼                             │ retire
//!                        Aborted                          ▼
//!                  (source epoch keeps serving)        Retired
//! ```
//!
//! * **Epoch fencing.** The source and destination [`ShardPlan`]s are
//!   wrapped in [`EpochedShardPlan`]s; [`active_plan`] only ever returns
//!   the source plan before `CutOver` and the destination plan after, so
//!   a router can never observe a half-applied topology. Queries pin
//!   their epoch via [`ScatterPolicy::at_epoch`](crate::shard::ScatterPolicy::at_epoch)
//!   and are rejected with a typed
//!   [`EpochMismatch`](crate::shard::EpochMismatch) when the topology
//!   moved underneath them.
//! * **Chaos-proof copies.** [`run_copy`] assembles each migrating
//!   destination band from the source shards' pages through
//!   [`TileStore::read_page_verified`], so a copy that silently corrupts
//!   in flight is caught by the PR 4 page-envelope checksums rather than
//!   poisoning the new topology. Failed page reads retry with backoff on
//!   the coordinator's own tick ledger; a band whose copy keeps failing
//!   is quarantined after a bounded number of attempts, and a wall
//!   deadline (or cancellation) aborts the whole migration back to the
//!   source epoch with every partial copy dropped.
//! * **Dual-read soundness.** Between `enter_dual_read` and `cut_over`
//!   the copies exist on both sides; [`dual_read_groups`] hands
//!   [`scatter_gather_top_k_dual`](crate::shard::scatter_gather_top_k_dual)
//!   the migration groups so a migrating shard killed mid-flight can be
//!   served from its destination copy — with sound merged bounds, and
//!   bit-identical results to the pre-migration plan whenever the source
//!   side is healthy (see DESIGN.md §16 for the argument).
//! * **Quarantine hygiene.** [`retire`] scrubs the per-page quarantine
//!   of the retired source owners through [`QuarantineScrub`]: the page
//!   ids in those ledgers are only meaningful under the old band layout,
//!   and a stale entry would suppress reads of healthy data when the
//!   stores are reused.
//!
//! Copied band data is a bit-exact `f64` copy of the source rows, so the
//! destination pyramids built here are identical to pyramids built
//! directly over the destination plan — which is why a healthy migration
//! is bit-identical to having planned the destination topology from the
//! start (repro r9's first gate).
//!
//! [`active_plan`]: ReshardCoordinator::active_plan
//! [`run_copy`]: ReshardCoordinator::run_copy
//! [`dual_read_groups`]: ReshardCoordinator::dual_read_groups
//! [`retire`]: ReshardCoordinator::retire

use crate::error::CoreError;
use crate::lifecycle::CancelToken;
use crate::shard::DualReadGroup;
use crate::source::QuarantineScrub;
use mbir_archive::error::ArchiveError;
use mbir_archive::fault::RetryPolicy;
use mbir_archive::grid::Grid2;
use mbir_archive::shard::{plan_diff, EpochedShardPlan, PlanDiff, ShardPlan, TopologyEpoch};
use mbir_archive::tile::TileStore;
use mbir_progressive::pyramid::AggregatePyramid;
use std::collections::BTreeSet;
use std::fmt;

/// Where a migration stands. See the module docs for the transition
/// diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationState {
    /// Planned but no data moved; the source epoch serves alone.
    Planned,
    /// Band copies are being assembled (or retrying after quarantine).
    Copying,
    /// Every migrating band is copied; queries may fan out to both
    /// sides through the dual-read scatter.
    DualRead,
    /// The destination epoch is live; the source copies still exist.
    CutOver,
    /// Retired source owners are scrubbed; the migration is finished.
    Retired,
    /// Rolled back to the source epoch; partial copies were dropped.
    Aborted,
}

impl fmt::Display for MigrationState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MigrationState::Planned => "planned",
            MigrationState::Copying => "copying",
            MigrationState::DualRead => "dual-read",
            MigrationState::CutOver => "cut-over",
            MigrationState::Retired => "retired",
            MigrationState::Aborted => "aborted",
        })
    }
}

/// Why a migration was rolled back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The copy phase exceeded [`ReshardPolicy::wall_deadline_ticks`].
    WallDeadline,
    /// A [`CancelToken`] was cancelled during the copy phase.
    Cancelled,
    /// The caller aborted explicitly (e.g. after band quarantine).
    Requested,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AbortReason::WallDeadline => "wall-deadline",
            AbortReason::Cancelled => "cancelled",
            AbortReason::Requested => "requested",
        })
    }
}

/// Retry, quarantine, and deadline knobs for the copy phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReshardPolicy {
    /// Coordinator-level retry of a failed page copy (on top of whatever
    /// resilience the source stores run internally). Backoff accrues on
    /// the coordinator's [`ticks_spent`](ReshardCoordinator::ticks_spent)
    /// ledger.
    pub retry: RetryPolicy,
    /// Whole-band copy attempts before the band is quarantined (each
    /// attempt re-reads the band from scratch; a page that exhausts its
    /// retries fails the attempt). Minimum 1.
    pub band_attempts: u32,
    /// Abort the migration when the coordinator's copy ledger exceeds
    /// this many ticks (page I/O, injected latency, and backoff all
    /// count). `None` never aborts on time.
    pub wall_deadline_ticks: Option<u64>,
}

impl Default for ReshardPolicy {
    fn default() -> Self {
        ReshardPolicy {
            retry: RetryPolicy::retries(2).with_backoff(4, 64),
            band_attempts: 2,
            wall_deadline_ticks: None,
        }
    }
}

impl ReshardPolicy {
    /// Sets the wall deadline in ticks (builder style).
    pub fn with_wall_deadline_ticks(mut self, ticks: u64) -> Self {
        self.wall_deadline_ticks = Some(ticks);
        self
    }
}

/// One migrated destination band: its copied attribute stores and the
/// pyramids built over the copy. Owned by the coordinator from the end
/// of a successful copy until [`ReshardCoordinator::take_migrated`] (or
/// an abort drops it).
#[derive(Debug)]
pub struct MigratedBand {
    dest_band: usize,
    row_offset: usize,
    rows: usize,
    pyramids: Vec<AggregatePyramid>,
    stores: Vec<TileStore>,
}

impl MigratedBand {
    /// Destination-plan band index this copy serves.
    pub fn dest_band(&self) -> usize {
        self.dest_band
    }

    /// Global row of the band's first row.
    pub fn row_offset(&self) -> usize {
        self.row_offset
    }

    /// Band height in rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Attribute pyramids built over the copied band (bit-identical to
    /// pyramids built directly over the destination plan's band).
    pub fn pyramids(&self) -> &[AggregatePyramid] {
        &self.pyramids
    }

    /// The copied per-attribute tile stores.
    pub fn stores(&self) -> &[TileStore] {
        &self.stores
    }
}

/// Per-band accounting of the copy phase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BandCopyReport {
    /// Destination-plan band index.
    pub dest_band: usize,
    /// Whole-band attempts so far (reset by
    /// [`ReshardCoordinator::clear_copy_quarantine`]).
    pub attempts: u32,
    /// Pages copied successfully (across all attempts).
    pub pages_copied: u64,
    /// Coordinator-level page retries issued.
    pub retries: u64,
    /// Page reads that failed on I/O or quarantine.
    pub io_failures: u64,
    /// Page reads whose envelope failed checksum verification — silent
    /// corruption caught in flight.
    pub checksum_failures: u64,
    /// Whether the band is currently quarantined.
    pub quarantined: bool,
    /// Whether the band's copy completed and verified.
    pub complete: bool,
}

/// Verdict of one [`ReshardCoordinator::run_copy`] pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CopyOutcome {
    /// Every migrating band is copied and verified.
    Complete,
    /// These destination bands exhausted their attempts and are
    /// quarantined; the rest are copied. The caller can switch sources
    /// and [`clear_copy_quarantine`](ReshardCoordinator::clear_copy_quarantine),
    /// or [`abort`](ReshardCoordinator::abort).
    Quarantined(Vec<usize>),
    /// The wall deadline expired; the migration aborted and rolled back.
    DeadlineExceeded,
    /// The cancel token fired; the migration aborted and rolled back.
    Cancelled,
}

/// Snapshot of a migration for logging and the bench harness.
#[derive(Debug, Clone, PartialEq)]
pub struct ReshardReport {
    /// Epoch of the source topology.
    pub from_epoch: TopologyEpoch,
    /// Epoch the destination topology serves once cut over.
    pub to_epoch: TopologyEpoch,
    /// Current state.
    pub state: MigrationState,
    /// Destination band indices that need (or needed) copies.
    pub migrating_dest_bands: Vec<usize>,
    /// Per-band copy accounting, in migrating-band order.
    pub bands: Vec<BandCopyReport>,
    /// Ticks the copy phase has accrued (page I/O plus backoff).
    pub ticks_spent: u64,
    /// Why the migration aborted, if it did.
    pub abort: Option<AbortReason>,
}

/// Drives one topology change (split / merge / boundary move of
/// tile-aligned row bands) through the epoch-fenced state machine. See
/// the module docs.
#[derive(Debug)]
pub struct ReshardCoordinator {
    from: EpochedShardPlan,
    to: EpochedShardPlan,
    diff: PlanDiff,
    policy: ReshardPolicy,
    state: MigrationState,
    /// Migrating destination band indices, in row order.
    migrating: Vec<usize>,
    /// Copies, parallel to `migrating`.
    copied: Vec<Option<MigratedBand>>,
    /// Copy accounting, parallel to `migrating`.
    reports: Vec<BandCopyReport>,
    /// Positions (into `migrating`) currently quarantined.
    quarantined: BTreeSet<usize>,
    ticks_spent: u64,
    abort: Option<AbortReason>,
}

impl ReshardCoordinator {
    /// Plans a migration from `from` to the destination plan `dest`,
    /// which is stamped as the successor epoch. Starts in
    /// [`MigrationState::Planned`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Archive`] when the destination disagrees with the
    /// source on grid shape or tile size.
    pub fn new(
        from: EpochedShardPlan,
        dest: ShardPlan,
        policy: ReshardPolicy,
    ) -> Result<Self, CoreError> {
        let to = from.successor(dest).map_err(CoreError::Archive)?;
        let diff = plan_diff(from.plan(), to.plan()).map_err(CoreError::Archive)?;
        let migrating = diff.migrating_dest_bands();
        let reports = migrating
            .iter()
            .map(|&b| BandCopyReport {
                dest_band: b,
                ..BandCopyReport::default()
            })
            .collect();
        let copied = migrating.iter().map(|_| None).collect();
        Ok(ReshardCoordinator {
            from,
            to,
            diff,
            policy,
            state: MigrationState::Planned,
            migrating,
            copied,
            reports,
            quarantined: BTreeSet::new(),
            ticks_spent: 0,
            abort: None,
        })
    }

    /// Current state.
    pub fn state(&self) -> MigrationState {
        self.state
    }

    /// Epoch of the source topology.
    pub fn from_epoch(&self) -> TopologyEpoch {
        self.from.epoch()
    }

    /// Epoch the destination topology serves once cut over.
    pub fn to_epoch(&self) -> TopologyEpoch {
        self.to.epoch()
    }

    /// The epoch serving live traffic *right now*: the source epoch in
    /// every state before [`MigrationState::CutOver`] (including
    /// `DualRead` — the dual fan-out is an opt-in extra, routing is
    /// still the source's) and after an abort; the destination epoch
    /// from `CutOver` on.
    pub fn active_epoch(&self) -> TopologyEpoch {
        self.active_plan().epoch()
    }

    /// The epoch-stamped plan serving live traffic right now. Only ever
    /// the full source plan or the full destination plan — no partial
    /// routing is representable, in any state.
    pub fn active_plan(&self) -> &EpochedShardPlan {
        match self.state {
            MigrationState::CutOver | MigrationState::Retired => &self.to,
            _ => &self.from,
        }
    }

    /// The destination plan (regardless of which epoch is active).
    pub fn dest_plan(&self) -> &ShardPlan {
        self.to.plan()
    }

    /// The plan difference driving this migration.
    pub fn diff(&self) -> &PlanDiff {
        &self.diff
    }

    /// Destination band indices needing copies, in row order.
    pub fn migrating_dest_bands(&self) -> &[usize] {
        &self.migrating
    }

    /// Source band indices whose rows migrate away (retired from their
    /// owner once the change completes).
    pub fn retiring_source_bands(&self) -> Vec<usize> {
        self.diff.migrating_source_bands()
    }

    /// `(dest_band, source_band)` pairs whose geometry is unchanged: the
    /// destination band reuses the source band's pyramids and stores.
    pub fn carried_over(&self) -> &[(usize, usize)] {
        &self.diff.carried_over
    }

    /// Per-band copy accounting, in migrating-band order.
    pub fn copy_reports(&self) -> &[BandCopyReport] {
        &self.reports
    }

    /// Ticks the copy phase has accrued on the coordinator's ledger.
    pub fn ticks_spent(&self) -> u64 {
        self.ticks_spent
    }

    /// Why the migration aborted, if it did.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        self.abort
    }

    /// Snapshot for logging and the bench harness.
    pub fn report(&self) -> ReshardReport {
        ReshardReport {
            from_epoch: self.from_epoch(),
            to_epoch: self.to_epoch(),
            state: self.state,
            migrating_dest_bands: self.migrating.clone(),
            bands: self.reports.clone(),
            ticks_spent: self.ticks_spent,
            abort: self.abort,
        }
    }

    fn expect_state(&self, want: MigrationState, doing: &str) -> Result<(), CoreError> {
        if self.state != want {
            return Err(CoreError::Query(format!(
                "reshard: cannot {doing} in state {} (requires {want})",
                self.state
            )));
        }
        Ok(())
    }

    /// [`MigrationState::Planned`] → [`MigrationState::Copying`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Query`] outside `Planned`.
    pub fn begin_copy(&mut self) -> Result<(), CoreError> {
        self.expect_state(MigrationState::Planned, "begin the copy phase")?;
        self.state = MigrationState::Copying;
        Ok(())
    }

    /// Copies every pending migrating band out of `sources` (one slice
    /// of per-attribute stores per *source* shard, in band order),
    /// verifying every page's checksum in flight. Page failures retry
    /// with backoff per [`ReshardPolicy::retry`]; a band that fails
    /// [`ReshardPolicy::band_attempts`] whole-band attempts is
    /// quarantined; the wall deadline and `cancel` both abort the whole
    /// migration (state [`MigrationState::Aborted`], partial copies
    /// dropped, source epoch untouched).
    ///
    /// Idempotent over completed bands: a second pass only works on
    /// bands that are neither copied nor quarantined, so the caller can
    /// re-run after [`clear_copy_quarantine`](Self::clear_copy_quarantine)
    /// with healthier sources.
    ///
    /// # Errors
    ///
    /// [`CoreError::Query`] outside `Copying` or when `sources` does not
    /// match the source plan (count, arity, band shapes);
    /// [`CoreError::Archive`] only for non-fault archive bugs (fault-type
    /// page errors are handled, not propagated).
    pub fn run_copy(
        &mut self,
        sources: &[&[TileStore]],
        cancel: Option<&CancelToken>,
    ) -> Result<CopyOutcome, CoreError> {
        self.expect_state(MigrationState::Copying, "run the copy phase")?;
        let plan_cols = self.from.plan().shape().1;
        let tile = self.from.plan().tile_size();
        if sources.len() != self.from.plan().shard_count() {
            return Err(CoreError::Query(format!(
                "reshard: {} source store sets for {} source shards",
                sources.len(),
                self.from.plan().shard_count()
            )));
        }
        let arity = sources[0].len();
        if arity == 0 {
            return Err(CoreError::Query("reshard: empty source store set".into()));
        }
        for (s, band) in self.from.plan().bands().iter().enumerate() {
            if sources[s].len() != arity {
                return Err(CoreError::Query(format!(
                    "reshard: source shard {s} has {} stores, shard 0 has {arity}",
                    sources[s].len()
                )));
            }
            for store in sources[s] {
                if store.rows() != band.rows
                    || store.cols() != plan_cols
                    || store.tile_size() != tile
                {
                    return Err(CoreError::Query(format!(
                        "reshard: source shard {s} store shape {}x{} tile {} does not match its band ({}x{plan_cols} tile {tile})",
                        store.rows(),
                        store.cols(),
                        store.tile_size(),
                        band.rows,
                    )));
                }
            }
        }

        'bands: for p in 0..self.migrating.len() {
            if self.copied[p].is_some() || self.quarantined.contains(&p) {
                continue;
            }
            let dest_band = self.to.plan().bands()[self.migrating[p]];
            let slices = self
                .from
                .plan()
                .band_slices(dest_band.row_offset, dest_band.rows)
                .map_err(CoreError::Archive)?;
            loop {
                self.reports[p].attempts += 1;
                let mut buffers: Vec<Vec<f64>> = (0..arity)
                    .map(|_| vec![f64::NAN; dest_band.rows * plan_cols])
                    .collect();
                let mut attempt_failed = false;
                'slices: for slice in &slices {
                    for (a, store) in sources[slice.shard].iter().enumerate() {
                        let first_page = store.page_of(slice.local_row, 0);
                        let last_page =
                            store.page_of(slice.local_row + slice.rows - 1, plan_cols - 1);
                        for page in first_page..=last_page {
                            if cancel.is_some_and(CancelToken::is_cancelled) {
                                self.do_abort(AbortReason::Cancelled);
                                return Ok(CopyOutcome::Cancelled);
                            }
                            let ticks_at_entry = store.stats().ticks_elapsed();
                            let mut retry = 0u32;
                            let read = loop {
                                match store.read_page_verified(page) {
                                    Ok(values) => break Some(values),
                                    Err(e @ ArchiveError::PageCorrupt { .. }) => {
                                        self.reports[p].checksum_failures += 1;
                                        if retry >= self.policy.retry.max_retries {
                                            let _ = e;
                                            break None;
                                        }
                                    }
                                    Err(
                                        ArchiveError::PageIo { .. }
                                        | ArchiveError::PageQuarantined { .. },
                                    ) => {
                                        self.reports[p].io_failures += 1;
                                        if retry >= self.policy.retry.max_retries {
                                            break None;
                                        }
                                    }
                                    Err(e) => return Err(CoreError::Archive(e)),
                                }
                                retry += 1;
                                self.reports[p].retries += 1;
                                self.ticks_spent += self.policy.retry.backoff_ticks(retry);
                            };
                            self.ticks_spent +=
                                store.stats().ticks_elapsed().saturating_sub(ticks_at_entry);
                            let Some(values) = read else {
                                attempt_failed = true;
                                break 'slices;
                            };
                            self.reports[p].pages_copied += 1;
                            for (coord, value) in values {
                                if coord.row < slice.local_row
                                    || coord.row >= slice.local_row + slice.rows
                                {
                                    continue; // Outside the slice (ragged edge).
                                }
                                let dest_row = slice.global_row + (coord.row - slice.local_row)
                                    - dest_band.row_offset;
                                buffers[a][dest_row * plan_cols + coord.col] = value;
                            }
                            if self.deadline_exceeded() {
                                self.do_abort(AbortReason::WallDeadline);
                                return Ok(CopyOutcome::DeadlineExceeded);
                            }
                        }
                    }
                }
                if !attempt_failed {
                    debug_assert!(
                        buffers.iter().all(|b| b.iter().all(|v| !v.is_nan())),
                        "band copy left unwritten cells"
                    );
                    let mut pyramids = Vec::with_capacity(arity);
                    let mut stores = Vec::with_capacity(arity);
                    for buffer in buffers {
                        let grid = Grid2::from_vec(dest_band.rows, plan_cols, buffer)
                            .map_err(CoreError::Archive)?;
                        pyramids.push(AggregatePyramid::build(&grid));
                        stores.push(TileStore::new(grid, tile).map_err(CoreError::Archive)?);
                    }
                    self.reports[p].complete = true;
                    self.copied[p] = Some(MigratedBand {
                        dest_band: self.migrating[p],
                        row_offset: dest_band.row_offset,
                        rows: dest_band.rows,
                        pyramids,
                        stores,
                    });
                    continue 'bands;
                }
                if self.reports[p].attempts >= self.policy.band_attempts.max(1) {
                    self.reports[p].quarantined = true;
                    self.quarantined.insert(p);
                    continue 'bands;
                }
                // Backoff between whole-band attempts, then re-read the
                // band from scratch (partial buffers are dropped).
                self.ticks_spent += self.policy.retry.backoff_ticks(self.reports[p].attempts);
                if self.deadline_exceeded() {
                    self.do_abort(AbortReason::WallDeadline);
                    return Ok(CopyOutcome::DeadlineExceeded);
                }
            }
        }
        if self.quarantined.is_empty() {
            Ok(CopyOutcome::Complete)
        } else {
            Ok(CopyOutcome::Quarantined(
                self.quarantined
                    .iter()
                    .map(|&p| self.migrating[p])
                    .collect(),
            ))
        }
    }

    /// Lifts the copy quarantine: quarantined bands get a fresh attempt
    /// budget so a later [`run_copy`](Self::run_copy) (typically against
    /// healthier sources, e.g. a different replica) can retry them.
    pub fn clear_copy_quarantine(&mut self) {
        for p in std::mem::take(&mut self.quarantined) {
            self.reports[p].quarantined = false;
            self.reports[p].attempts = 0;
        }
    }

    /// [`MigrationState::Copying`] → [`MigrationState::DualRead`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Query`] outside `Copying`, or while any migrating
    /// band is still uncopied or quarantined.
    pub fn enter_dual_read(&mut self) -> Result<(), CoreError> {
        self.expect_state(MigrationState::Copying, "enter dual-read")?;
        if !self.quarantined.is_empty() || self.copied.iter().any(Option::is_none) {
            let pending: Vec<usize> = self
                .migrating
                .iter()
                .enumerate()
                .filter(|&(p, _)| self.copied[p].is_none())
                .map(|(_, &b)| b)
                .collect();
            return Err(CoreError::Query(format!(
                "reshard: cannot enter dual-read with uncopied bands {pending:?}"
            )));
        }
        self.state = MigrationState::DualRead;
        Ok(())
    }

    /// The migrated band copies, in migrating-band (row) order. Empty
    /// before any copy completes and after an abort or
    /// [`take_migrated`](Self::take_migrated).
    pub fn migrated_bands(&self) -> Vec<&MigratedBand> {
        self.copied.iter().flatten().collect()
    }

    /// The migration groups in the shape the dual-read scatter wants:
    /// source shard indices paired with indices into
    /// [`migrated_bands`](Self::migrated_bands) (which is exactly the
    /// destination-shard slice a dual-read caller assembles).
    ///
    /// # Errors
    ///
    /// [`CoreError::Query`] outside [`MigrationState::DualRead`].
    pub fn dual_read_groups(&self) -> Result<Vec<DualReadGroup>, CoreError> {
        self.expect_state(MigrationState::DualRead, "form dual-read groups")?;
        Ok(self
            .diff
            .groups
            .iter()
            .map(|g| DualReadGroup {
                source_shards: g.source_bands.clone(),
                dest_shards: g
                    .dest_bands
                    .iter()
                    .map(|b| {
                        self.migrating
                            .iter()
                            .position(|m| m == b)
                            .expect("migrating band indexed by its group")
                    })
                    .collect(),
            })
            .collect())
    }

    /// [`MigrationState::DualRead`] → [`MigrationState::CutOver`]: the
    /// destination epoch becomes the active one, atomically — callers of
    /// [`active_plan`](Self::active_plan) see the whole new topology or
    /// the whole old one, never a mix.
    ///
    /// # Errors
    ///
    /// [`CoreError::Query`] outside `DualRead`.
    pub fn cut_over(&mut self) -> Result<(), CoreError> {
        self.expect_state(MigrationState::DualRead, "cut over")?;
        self.state = MigrationState::CutOver;
        Ok(())
    }

    /// [`MigrationState::CutOver`] → [`MigrationState::Retired`]:
    /// scrubs the per-page quarantine of the retired source owners (the
    /// ISSUE-9 hygiene fix — those ledgers describe pages under the old
    /// band layout and would otherwise suppress reads of healthy data
    /// when the stores are reused). Pass one [`QuarantineScrub`] per
    /// retiring source shard, in [`retiring_source_bands`](Self::retiring_source_bands)
    /// order. Returns the number of quarantined pages cleared.
    ///
    /// # Errors
    ///
    /// [`CoreError::Query`] outside `CutOver` or with the wrong number
    /// of sources.
    pub fn retire(&mut self, retired_sources: &[&dyn QuarantineScrub]) -> Result<u64, CoreError> {
        self.expect_state(MigrationState::CutOver, "retire the source owners")?;
        let retiring = self.retiring_source_bands();
        if retired_sources.len() != retiring.len() {
            return Err(CoreError::Query(format!(
                "reshard: {} sources to scrub for {} retiring bands {retiring:?}",
                retired_sources.len(),
                retiring.len()
            )));
        }
        let mut cleared = 0u64;
        for source in retired_sources {
            cleared += source.quarantined_pages();
            source.clear_quarantine();
        }
        self.state = MigrationState::Retired;
        Ok(cleared)
    }

    /// Hands the migrated copies to the caller once the migration is
    /// [`MigrationState::Retired`] — the new topology's owners take the
    /// data, the coordinator is done.
    ///
    /// # Errors
    ///
    /// [`CoreError::Query`] outside `Retired`.
    pub fn take_migrated(&mut self) -> Result<Vec<MigratedBand>, CoreError> {
        self.expect_state(MigrationState::Retired, "take the migrated bands")?;
        Ok(self.copied.iter_mut().filter_map(Option::take).collect())
    }

    /// Rolls the migration back to the source epoch: every partial copy
    /// is dropped and [`active_plan`](Self::active_plan) keeps returning
    /// the source plan — exactly as if the migration never started.
    /// Allowed from `Planned`, `Copying`, and `DualRead`; `CutOver` is
    /// the point of no return.
    ///
    /// # Errors
    ///
    /// [`CoreError::Query`] from `CutOver`, `Retired`, or `Aborted`.
    pub fn abort(&mut self, reason: AbortReason) -> Result<TopologyEpoch, CoreError> {
        match self.state {
            MigrationState::Planned | MigrationState::Copying | MigrationState::DualRead => {
                self.do_abort(reason);
                Ok(self.from.epoch())
            }
            state => Err(CoreError::Query(format!(
                "reshard: cannot abort in state {state}"
            ))),
        }
    }

    fn do_abort(&mut self, reason: AbortReason) {
        for slot in &mut self.copied {
            *slot = None;
        }
        self.abort = Some(reason);
        self.state = MigrationState::Aborted;
    }

    fn deadline_exceeded(&self) -> bool {
        self.policy
            .wall_deadline_ticks
            .is_some_and(|d| self.ticks_spent > d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbir_archive::fault::FaultProfile;

    const ROWS: usize = 32;
    const COLS: usize = 16;
    const TILE: usize = 4;

    fn global_grid() -> Grid2<f64> {
        Grid2::from_fn(ROWS, COLS, |r, c| ((r * COLS + c) as f64).sin() * 10.0)
    }

    /// One store set per source shard, two attributes each.
    fn source_stores(plan: &ShardPlan) -> Vec<Vec<TileStore>> {
        let grid = global_grid();
        let scaled = Grid2::from_fn(ROWS, COLS, |r, c| grid.as_slice()[r * COLS + c] * -0.5);
        (0..plan.shard_count())
            .map(|s| {
                [&grid, &scaled]
                    .iter()
                    .map(|g| TileStore::new(plan.extract_band(g, s).unwrap(), TILE).unwrap())
                    .collect()
            })
            .collect()
    }

    fn split_coordinator(policy: ReshardPolicy) -> ReshardCoordinator {
        let from = EpochedShardPlan::initial(ShardPlan::row_bands(ROWS, COLS, 2, TILE).unwrap());
        let dest = from.plan().split_band(1).unwrap();
        ReshardCoordinator::new(from, dest, policy).unwrap()
    }

    fn borrow(sources: &[Vec<TileStore>]) -> Vec<&[TileStore]> {
        sources.iter().map(Vec::as_slice).collect()
    }

    #[test]
    fn state_machine_rejects_out_of_order_transitions() {
        let mut coord = split_coordinator(ReshardPolicy::default());
        let sources = source_stores(&ShardPlan::row_bands(ROWS, COLS, 2, TILE).unwrap());
        assert_eq!(coord.state(), MigrationState::Planned);
        assert!(coord.run_copy(&borrow(&sources), None).is_err());
        assert!(coord.enter_dual_read().is_err());
        assert!(coord.cut_over().is_err());
        assert!(coord.retire(&[]).is_err());
        assert!(coord.dual_read_groups().is_err());
        assert!(coord.take_migrated().is_err());

        coord.begin_copy().unwrap();
        assert!(coord.begin_copy().is_err());
        // Cannot enter dual-read before the copy lands.
        assert!(coord.enter_dual_read().is_err());
        assert_eq!(
            coord.run_copy(&borrow(&sources), None).unwrap(),
            CopyOutcome::Complete
        );
        coord.enter_dual_read().unwrap();
        assert_eq!(coord.active_epoch(), coord.from_epoch());
        coord.cut_over().unwrap();
        assert_eq!(coord.active_epoch(), coord.to_epoch());
        // Past the point of no return.
        assert!(coord.abort(AbortReason::Requested).is_err());
        // Wrong scrub arity.
        assert!(coord.retire(&[]).is_err());
    }

    #[test]
    fn healthy_copy_is_bit_exact_against_direct_extraction() {
        let mut coord = split_coordinator(ReshardPolicy::default());
        let from_plan = ShardPlan::row_bands(ROWS, COLS, 2, TILE).unwrap();
        let sources = source_stores(&from_plan);
        coord.begin_copy().unwrap();
        assert_eq!(
            coord.run_copy(&borrow(&sources), None).unwrap(),
            CopyOutcome::Complete
        );
        let grid = global_grid();
        let scaled = Grid2::from_fn(ROWS, COLS, |r, c| grid.as_slice()[r * COLS + c] * -0.5);
        let dest_plan = coord.dest_plan().clone();
        for band in coord.migrated_bands() {
            for (a, reference) in [&grid, &scaled].into_iter().enumerate() {
                let expect = dest_plan.extract_band(reference, band.dest_band()).unwrap();
                assert_eq!(band.stores()[a].rows(), expect.rows());
                // Bit-exact payload: the copy is byte-for-byte the band.
                let copied: Vec<u64> = (0..expect.rows())
                    .flat_map(|r| (0..COLS).map(move |c| (r, c)))
                    .map(|(r, c)| band.stores()[a].read(r, c).unwrap().to_bits())
                    .collect();
                let want: Vec<u64> = expect.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(copied, want);
            }
            assert_eq!(band.rows(), dest_plan.bands()[band.dest_band()].rows);
            assert_eq!(
                band.row_offset(),
                dest_plan.bands()[band.dest_band()].row_offset
            );
        }
        let report = coord.report();
        assert!(report.bands.iter().all(|b| b.complete && !b.quarantined));
        assert_eq!(report.state, MigrationState::Copying);
    }

    #[test]
    fn transient_faults_heal_through_coordinator_retries() {
        let mut coord = split_coordinator(ReshardPolicy::default());
        let from_plan = ShardPlan::row_bands(ROWS, COLS, 2, TILE).unwrap();
        let mut sources = source_stores(&from_plan);
        // Shard 1 is the one being split; make one of its pages flaky.
        let store = sources[1].remove(0);
        sources[1].insert(
            0,
            store.with_faults(FaultProfile::healthy().transient(0, 2)),
        );
        coord.begin_copy().unwrap();
        assert_eq!(
            coord.run_copy(&borrow(&sources), None).unwrap(),
            CopyOutcome::Complete
        );
        let report = coord.report();
        let retries: u64 = report.bands.iter().map(|b| b.retries).sum();
        let io: u64 = report.bands.iter().map(|b| b.io_failures).sum();
        assert_eq!(io, 2, "both pre-heal failures observed");
        assert_eq!(retries, 2, "coordinator retried through them");
        assert!(coord.ticks_spent() > 0, "backoff accrues on the ledger");
    }

    #[test]
    fn corruption_quarantines_then_clean_source_retry_succeeds() {
        let policy = ReshardPolicy::default();
        let mut coord = split_coordinator(policy);
        let from_plan = ShardPlan::row_bands(ROWS, COLS, 2, TILE).unwrap();
        let mut sources = source_stores(&from_plan);
        let store = sources[1].remove(1);
        sources[1].insert(1, store.with_faults(FaultProfile::healthy().corrupt(0)));
        coord.begin_copy().unwrap();
        let outcome = coord.run_copy(&borrow(&sources), None).unwrap();
        let CopyOutcome::Quarantined(bands) = outcome else {
            panic!("expected quarantine, got {outcome:?}");
        };
        assert!(!bands.is_empty());
        assert!(coord
            .copy_reports()
            .iter()
            .any(|b| b.quarantined && b.checksum_failures > 0));
        assert!(coord.enter_dual_read().is_err());

        // Re-point at a clean replica and lift the quarantine.
        let clean = source_stores(&from_plan);
        coord.clear_copy_quarantine();
        assert_eq!(
            coord.run_copy(&borrow(&clean), None).unwrap(),
            CopyOutcome::Complete
        );
        coord.enter_dual_read().unwrap();
    }

    #[test]
    fn wall_deadline_aborts_and_rolls_back() {
        let policy = ReshardPolicy::default().with_wall_deadline_ticks(3);
        let mut coord = split_coordinator(policy);
        let from_plan = ShardPlan::row_bands(ROWS, COLS, 2, TILE).unwrap();
        let mut sources = source_stores(&from_plan);
        let mut profile = FaultProfile::healthy();
        for page in 0..sources[1][0].page_count() {
            profile = profile.latency(page, 50);
        }
        let store = sources[1].remove(0);
        sources[1].insert(0, store.with_faults(profile));
        coord.begin_copy().unwrap();
        assert_eq!(
            coord.run_copy(&borrow(&sources), None).unwrap(),
            CopyOutcome::DeadlineExceeded
        );
        assert_eq!(coord.state(), MigrationState::Aborted);
        assert_eq!(coord.abort_reason(), Some(AbortReason::WallDeadline));
        assert_eq!(coord.active_epoch(), coord.from_epoch());
        assert!(coord.migrated_bands().is_empty(), "partial copies dropped");
        assert!(coord.run_copy(&borrow(&sources), None).is_err());
    }

    #[test]
    fn cancellation_aborts_and_rolls_back() {
        let mut coord = split_coordinator(ReshardPolicy::default());
        let from_plan = ShardPlan::row_bands(ROWS, COLS, 2, TILE).unwrap();
        let sources = source_stores(&from_plan);
        let cancel = CancelToken::new();
        cancel.cancel();
        coord.begin_copy().unwrap();
        assert_eq!(
            coord.run_copy(&borrow(&sources), Some(&cancel)).unwrap(),
            CopyOutcome::Cancelled
        );
        assert_eq!(coord.state(), MigrationState::Aborted);
        assert_eq!(coord.abort_reason(), Some(AbortReason::Cancelled));
        assert_eq!(coord.active_epoch(), coord.from_epoch());
    }

    struct CountingScrub {
        pages: std::cell::Cell<u64>,
        cleared: std::cell::Cell<bool>,
    }

    impl QuarantineScrub for CountingScrub {
        fn clear_quarantine(&self) {
            self.cleared.set(true);
            self.pages.set(0);
        }
        fn quarantined_pages(&self) -> u64 {
            self.pages.get()
        }
    }

    #[test]
    fn retire_scrubs_retired_sources_and_releases_copies() {
        let mut coord = split_coordinator(ReshardPolicy::default());
        let from_plan = ShardPlan::row_bands(ROWS, COLS, 2, TILE).unwrap();
        let sources = source_stores(&from_plan);
        coord.begin_copy().unwrap();
        coord.run_copy(&borrow(&sources), None).unwrap();
        coord.enter_dual_read().unwrap();
        let groups = coord.dual_read_groups().unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].source_shards, vec![1]);
        assert_eq!(groups[0].dest_shards, vec![0, 1]);
        coord.cut_over().unwrap();
        let scrub = CountingScrub {
            pages: std::cell::Cell::new(3),
            cleared: std::cell::Cell::new(false),
        };
        assert_eq!(coord.retiring_source_bands(), vec![1]);
        let cleared = coord.retire(&[&scrub]).unwrap();
        assert_eq!(cleared, 3);
        assert!(scrub.cleared.get());
        assert_eq!(coord.state(), MigrationState::Retired);
        let taken = coord.take_migrated().unwrap();
        assert_eq!(taken.len(), 2);
        assert!(coord.migrated_bands().is_empty());
    }
}
