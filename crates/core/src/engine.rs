//! The progressive execution engine (paper §3.1 / §4.2).
//!
//! Three exact engines, each reporting its work in model multiply-adds so
//! the §4.2 ratios are measurable:
//!
//! * [`staged_top_k`] — **progressive model** over flat tuples: evaluate
//!   contribution-ranked terms one stage at a time, pruning candidates
//!   whose sound upper bound falls under the current K-th lower bound.
//!   Its reduction ratio is the paper's `p_m`.
//! * [`pyramid_top_k`] — **progressive data**: best-first quad-descent over
//!   aggregate pyramids, bounding the full model over each region box.
//!   Its reduction ratio is `p_d`.
//! * [`combined_top_k`] — both at once: coarse regions are bounded with
//!   *truncated* models (fewer terms ⇒ cheaper bound), refining both the
//!   region and the model together; the paper's `O(nN/(p_m p_d))`.
//!
//! Every engine returns exactly the scores a naive full scan returns
//! (property-tested); only the work differs.

use crate::error::CoreError;
use crate::query::{Objective, TopKQuery};
use crate::source::{CellSource, PyramidSource};
use mbir_archive::extent::CellCoord;
use mbir_index::scan::TopKHeap;
use mbir_index::stats::ScoredItem;
use mbir_models::linear::{LinearModel, ProgressiveLinearModel};
use mbir_progressive::pyramid::AggregatePyramid;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Work accounting in model multiply-adds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EffortReport {
    /// Multiply-adds actually spent.
    pub multiply_adds: u64,
    /// Multiply-adds a naive full-model full-data scan would spend
    /// (`n * N` in §4.2).
    pub naive_multiply_adds: u64,
}

impl EffortReport {
    /// The §4.2 speedup `naive / actual` (∞-safe: 0 work reports 1.0).
    ///
    /// The 1.0 is a neutral placeholder, not a measurement — use
    /// [`speedup_checked`](Self::speedup_checked) to tell "no work was
    /// performed" apart from "exactly break-even".
    pub fn speedup(&self) -> f64 {
        self.speedup_checked().unwrap_or(1.0)
    }

    /// The §4.2 speedup, or `None` when no work was performed (e.g. a run
    /// stopped by a budget before its first multiply-add).
    pub fn speedup_checked(&self) -> Option<f64> {
        if self.multiply_adds == 0 {
            return None;
        }
        Some(self.naive_multiply_adds as f64 / self.multiply_adds as f64)
    }
}

impl std::ops::Add for EffortReport {
    type Output = EffortReport;

    fn add(self, rhs: EffortReport) -> EffortReport {
        EffortReport {
            multiply_adds: self.multiply_adds + rhs.multiply_adds,
            naive_multiply_adds: self.naive_multiply_adds + rhs.naive_multiply_adds,
        }
    }
}

impl std::ops::AddAssign for EffortReport {
    fn add_assign(&mut self, rhs: EffortReport) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for EffortReport {
    fn sum<I: Iterator<Item = EffortReport>>(iter: I) -> EffortReport {
        iter.fold(EffortReport::default(), |acc, e| acc + e)
    }
}

impl fmt::Display for EffortReport {
    /// Distinguishes zero work from break-even: a run that never evaluated
    /// anything prints "no work performed" rather than a fictitious 1.0x.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.speedup_checked() {
            Some(speedup) => write!(
                f,
                "{} of {} multiply-adds ({speedup:.2}x speedup)",
                self.multiply_adds, self.naive_multiply_adds
            ),
            None => write!(
                f,
                "0 of {} multiply-adds (no work performed; speedup undefined)",
                self.naive_multiply_adds
            ),
        }
    }
}

/// Reusable buffers for the descent/staged engines, so steady-state
/// query loops perform no per-query heap allocation: child coordinates,
/// the base attribute vector, region range boxes, the best-first
/// frontier, and the staged engine's candidate sets all live here and
/// are cleared (capacity kept) between queries.
///
/// One scratch belongs to one engine call at a time — sequential callers
/// keep a single instance, parallel engines keep one per worker. A fresh
/// scratch warms up over the first query (buffers grow to the query's
/// working-set size) and then stops allocating; [`regrowths`]
/// (`QueryScratch::regrowths`) counts how many buffer growth events have
/// happened, so tests can assert a warmed scratch stays allocation-free.
#[derive(Debug, Default)]
pub struct QueryScratch {
    pub(crate) children: Vec<CellCoord>,
    pub(crate) x: Vec<f64>,
    pub(crate) ranges: Vec<(f64, f64)>,
    pub(crate) frontier: BinaryHeap<Region>,
    pub(crate) alive: Vec<usize>,
    pub(crate) partial: Vec<f64>,
    pub(crate) lows: Vec<f64>,
    pub(crate) qcoeff: Vec<f64>,
    pub(crate) qmeta: Vec<f64>,
    regrowths: u64,
}

impl QueryScratch {
    /// An empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        QueryScratch::default()
    }

    /// Cumulative number of internal-buffer growth events since creation.
    /// Stable across two identical consecutive queries ⇔ the second query
    /// allocated nothing.
    pub fn regrowths(&self) -> u64 {
        self.regrowths
    }
}

/// Capacity snapshot used to detect buffer regrowth across one engine run.
pub(crate) struct ScratchCaps([usize; 9]);

impl QueryScratch {
    pub(crate) fn caps(&self) -> ScratchCaps {
        ScratchCaps([
            self.children.capacity(),
            self.x.capacity(),
            self.ranges.capacity(),
            self.frontier.capacity(),
            self.alive.capacity(),
            self.partial.capacity(),
            self.lows.capacity(),
            self.qcoeff.capacity(),
            self.qmeta.capacity(),
        ])
    }

    pub(crate) fn note_regrowth(&mut self, before: &ScratchCaps) {
        let after = self.caps();
        self.regrowths += after
            .0
            .iter()
            .zip(before.0.iter())
            .map(|(a, b)| u64::from(a > b))
            .sum::<u64>();
    }
}

/// A scored grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredCell {
    /// Base-resolution cell.
    pub cell: CellCoord,
    /// Exact model value at the cell.
    pub score: f64,
}

/// Result of a grid engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct GridTopK {
    /// Top-K cells, descending score.
    pub results: Vec<ScoredCell>,
    /// Work accounting.
    pub effort: EffortReport,
}

/// Result of a tuple engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleTopK {
    /// Top-K tuples, descending score.
    pub results: Vec<ScoredItem>,
    /// Work accounting.
    pub effort: EffortReport,
}

/// Progressive-model scan over flat tuples (the `p_m` engine).
///
/// Terms are added one stage at a time in contribution order; after each
/// stage, candidates whose upper bound is below the K-th best lower bound
/// are dropped. Each stage costs one multiply-add per surviving candidate,
/// so the total is `Σ_s alive(s)` against the naive `n·N`.
///
/// # Errors
///
/// Returns [`CoreError::Query`] for `k == 0` or an empty tuple list, and
/// [`CoreError::Model`] for arity mismatches.
pub fn staged_top_k(
    model: &ProgressiveLinearModel,
    tuples: &[Vec<f64>],
    k: usize,
) -> Result<TupleTopK, CoreError> {
    staged_top_k_with_scratch(model, tuples, k, &mut QueryScratch::new())
}

/// [`staged_top_k`] with candidate/partial-sum/lower-bound buffers reused
/// from `scratch` — the allocation-free form for callers issuing many
/// queries. Results are bit-identical to [`staged_top_k`].
///
/// # Errors
///
/// Same as [`staged_top_k`].
pub fn staged_top_k_with_scratch(
    model: &ProgressiveLinearModel,
    tuples: &[Vec<f64>],
    k: usize,
    scratch: &mut QueryScratch,
) -> Result<TupleTopK, CoreError> {
    if k == 0 {
        return Err(CoreError::Query("k must be >= 1".into()));
    }
    if tuples.is_empty() {
        return Err(CoreError::Query("no tuples to search".into()));
    }
    let n_terms = model.stages();
    for t in tuples {
        if t.len() != n_terms {
            return Err(CoreError::Model(
                mbir_models::error::ModelError::ArityMismatch {
                    expected: n_terms,
                    actual: t.len(),
                },
            ));
        }
    }
    let order = model.term_order();
    let coeffs = model.model().coefficients();
    let ranges = model.ranges();

    let caps = scratch.caps();
    let QueryScratch {
        alive,
        partial,
        lows,
        ..
    } = scratch;

    // Incremental partial sums: one multiply-add per stage per candidate.
    alive.clear();
    alive.extend(0..tuples.len());
    partial.clear();
    partial.resize(tuples.len(), model.model().intercept());
    let mut effort = EffortReport {
        multiply_adds: 0,
        naive_multiply_adds: (n_terms * tuples.len()) as u64,
    };
    for stage in 1..=n_terms {
        let term = order[stage - 1];
        let (rlo, rhi) = ranges[term];
        for &idx in alive.iter() {
            partial[idx] += coeffs[term] * tuples[idx][term].clamp(rlo, rhi);
            effort.multiply_adds += 1;
        }
        if stage == n_terms {
            break;
        }
        // Interval for candidate idx: partial + suffix_mid ± residual —
        // reconstructed via the model's stage bound helpers through one
        // representative evaluation (cheap: residual and suffix midpoint
        // are stage constants).
        let probe = model.evaluate_stage(&tuples[alive[0]], stage);
        let center_offset = probe.lo + probe.hi;
        let probe_partial = partial[alive[0]];
        let suffix_mid = center_offset / 2.0 - probe_partial;
        let half_width = (probe.hi - probe.lo) / 2.0;

        // K-th largest lower bound among the alive.
        lows.clear();
        lows.extend(
            alive
                .iter()
                .map(|&idx| partial[idx] + suffix_mid - half_width),
        );
        if lows.len() > k {
            lows.select_nth_unstable_by(k - 1, |a, b| b.total_cmp(a));
            let floor = lows[k - 1];
            alive.retain(|&idx| partial[idx] + suffix_mid + half_width >= floor);
        }
    }
    let mut heap = TopKHeap::new(k);
    for &idx in alive.iter() {
        heap.offer(ScoredItem {
            index: idx,
            score: partial[idx],
        });
    }
    scratch.note_regrowth(&caps);
    Ok(TupleTopK {
        results: heap.into_sorted(),
        effort,
    })
}

/// [`staged_top_k`] over grid cells, with attribute values pulled through a
/// [`CellSource`] instead of a resident tuple list.
///
/// Cells are enumerated row-major, so a result's `index` is
/// `row * cols + col`. The staged engine touches every tuple at stage 1
/// anyway, so the source is drained upfront; failures are strict (any
/// failed read aborts the query).
///
/// # Errors
///
/// Same as [`staged_top_k`], plus [`CoreError::Archive`] for failed base
/// reads.
pub fn staged_grid_top_k<S: CellSource>(
    model: &ProgressiveLinearModel,
    source: &S,
    rows: usize,
    cols: usize,
    k: usize,
) -> Result<TupleTopK, CoreError> {
    if rows == 0 || cols == 0 {
        return Err(CoreError::Query("empty grid".into()));
    }
    let mut tuples = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            tuples.push(read_base_vector(source, model.stages(), r, c)?);
        }
    }
    staged_top_k(model, &tuples, k)
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Region {
    pub(crate) ub: f64,
    pub(crate) level: usize,
    pub(crate) row: usize,
    pub(crate) col: usize,
}

impl PartialEq for Region {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other).is_eq()
    }
}
impl Eq for Region {}
impl PartialOrd for Region {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Region {
    /// A *total* order: upper bound first, then coordinates as a
    /// tie-break (smaller coordinates pop first from the max-heap). With
    /// ub-only ordering, equal-bound regions would pop in
    /// insertion-history order, so a coarse pass that prunes some pushes
    /// (see [`crate::coarse`]) could reorder the survivors' evaluation;
    /// the deterministic tie-break is what keeps pruned and unpruned runs
    /// bit-identical.
    fn cmp(&self, other: &Self) -> Ordering {
        self.ub
            .total_cmp(&other.ub)
            .then_with(|| other.level.cmp(&self.level))
            .then_with(|| other.row.cmp(&self.row))
            .then_with(|| other.col.cmp(&self.col))
    }
}

/// Progressive-data engine (the `p_d` engine): best-first quad-descent over
/// per-attribute aggregate pyramids with full-model box bounds.
///
/// # Errors
///
/// Returns [`CoreError::Query`] for `k == 0`, empty/misaligned pyramids, or
/// a pyramid/model arity mismatch.
pub fn pyramid_top_k(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
) -> Result<GridTopK, CoreError> {
    pyramid_top_k_with_source(model, pyramids, k, &PyramidSource::new(pyramids))
}

/// [`pyramid_top_k`] with base-level reads routed through a [`CellSource`].
///
/// The pyramids act as the resident bounding index; exact base values come
/// from `source` (e.g. a paged [`TileSource`](crate::source::TileSource)).
/// Execution is strict: any failed base read aborts the query. For
/// skip-and-degrade semantics use
/// [`resilient_top_k`](crate::resilient::resilient_top_k).
///
/// # Errors
///
/// Same as [`pyramid_top_k`], plus [`CoreError::Archive`] for failed base
/// reads.
pub fn pyramid_top_k_with_source<S: CellSource>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
) -> Result<GridTopK, CoreError> {
    pyramid_top_k_with_scratch(model, pyramids, k, source, &mut QueryScratch::new())
}

/// [`pyramid_top_k_with_source`] with the frontier, child list, range box,
/// and attribute vector reused from `scratch` — the steady-state descent
/// loop performs no heap allocation once the scratch has warmed up.
/// Results are bit-identical to [`pyramid_top_k_with_source`].
///
/// # Errors
///
/// Same as [`pyramid_top_k_with_source`].
pub fn pyramid_top_k_with_scratch<S: CellSource>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    scratch: &mut QueryScratch,
) -> Result<GridTopK, CoreError> {
    let (shape, levels) = validate_grid_inputs(model, pyramids, k)?;
    let (rows, cols) = shape;
    let n = model.arity() as u64;
    let mut effort = EffortReport {
        multiply_adds: 0,
        naive_multiply_adds: n * (rows * cols) as u64,
    };
    let caps = scratch.caps();
    let QueryScratch {
        children,
        x,
        ranges,
        frontier,
        ..
    } = scratch;
    frontier.clear();
    let mut heap = TopKHeap::new(k);
    let top = levels - 1;
    let root_bound = region_bound_into(model, pyramids, top, 0, 0, ranges, &mut effort)?;
    frontier.push(Region {
        ub: root_bound,
        level: top,
        row: 0,
        col: 0,
    });
    let mut results = Vec::new();
    while let Some(region) = frontier.pop() {
        if let Some(floor) = heap.floor() {
            if floor >= region.ub {
                break;
            }
        }
        if region.level == 0 {
            // Exact evaluation at base resolution, through the source.
            read_base_vector_into(source, model.arity(), region.row, region.col, x)?;
            effort.multiply_adds += n;
            heap.offer(ScoredItem {
                index: region.row * cols + region.col,
                score: model.evaluate(x),
            });
            continue;
        }
        pyramids[0].children_into(region.level, region.row, region.col, children);
        for child in children.iter() {
            let ub = region_bound_into(
                model,
                pyramids,
                region.level - 1,
                child.row,
                child.col,
                ranges,
                &mut effort,
            )?;
            frontier.push(Region {
                ub,
                level: region.level - 1,
                row: child.row,
                col: child.col,
            });
        }
    }
    for item in heap.into_sorted() {
        results.push(ScoredCell {
            cell: CellCoord::new(item.index / cols, item.index % cols),
            score: item.score,
        });
    }
    scratch.note_regrowth(&caps);
    Ok(GridTopK { results, effort })
}

/// Reads the full attribute vector of one base cell through a source.
pub(crate) fn read_base_vector<S: CellSource>(
    source: &S,
    arity: usize,
    row: usize,
    col: usize,
) -> Result<Vec<f64>, CoreError> {
    let mut out = Vec::with_capacity(arity);
    read_base_vector_into(source, arity, row, col, &mut out)?;
    Ok(out)
}

/// [`read_base_vector`] into a reused buffer (cleared first).
pub(crate) fn read_base_vector_into<S: CellSource>(
    source: &S,
    arity: usize,
    row: usize,
    col: usize,
    out: &mut Vec<f64>,
) -> Result<(), CoreError> {
    out.clear();
    for attr in 0..arity {
        out.push(
            source
                .base_cell(attr, row, col)
                .map_err(CoreError::Archive)?,
        );
    }
    Ok(())
}

/// Combined engine (`p_m · p_d`): quad-descent where coarse levels are
/// bounded with *truncated* models. Level `l` of `L` uses the first
/// `ceil(arity · (L - l) / L)` contribution-ranked terms, so the root is
/// bounded almost for free and bounds sharpen as regions shrink.
///
/// # Errors
///
/// Same as [`pyramid_top_k`].
pub fn combined_top_k(
    model: &ProgressiveLinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
) -> Result<GridTopK, CoreError> {
    combined_top_k_with_source(model, pyramids, k, &PyramidSource::new(pyramids))
}

/// [`combined_top_k`] with base-level reads routed through a [`CellSource`].
///
/// Strict execution: a failed base read aborts the query (see
/// [`pyramid_top_k_with_source`] for the contract).
///
/// # Errors
///
/// Same as [`combined_top_k`], plus [`CoreError::Archive`] for failed base
/// reads.
pub fn combined_top_k_with_source<S: CellSource>(
    model: &ProgressiveLinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
) -> Result<GridTopK, CoreError> {
    combined_top_k_with_scratch(model, pyramids, k, source, &mut QueryScratch::new())
}

/// [`combined_top_k_with_source`] with frontier/child/attribute buffers
/// reused from `scratch` (see [`pyramid_top_k_with_scratch`]). Results are
/// bit-identical to [`combined_top_k_with_source`].
///
/// # Errors
///
/// Same as [`combined_top_k_with_source`].
pub fn combined_top_k_with_scratch<S: CellSource>(
    model: &ProgressiveLinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    scratch: &mut QueryScratch,
) -> Result<GridTopK, CoreError> {
    let (shape, levels) = validate_grid_inputs(model.model(), pyramids, k)?;
    let (rows, cols) = shape;
    let n_terms = model.stages();
    let n = n_terms as u64;
    let mut effort = EffortReport {
        multiply_adds: 0,
        naive_multiply_adds: n * (rows * cols) as u64,
    };
    let stage_for_level = |level: usize| -> usize {
        if level == 0 {
            n_terms
        } else {
            // Coarser level -> fewer terms, never below 1.
            let frac = (levels - level) as f64 / levels as f64;
            ((n_terms as f64 * frac).ceil() as usize).clamp(1, n_terms)
        }
    };
    let caps = scratch.caps();
    let QueryScratch {
        children,
        x,
        frontier,
        ..
    } = scratch;
    frontier.clear();
    let mut heap = TopKHeap::new(k);
    let top = levels - 1;
    let root_ub = staged_region_bound(
        model,
        pyramids,
        top,
        0,
        0,
        stage_for_level(top),
        &mut effort,
    )?;
    frontier.push(Region {
        ub: root_ub,
        level: top,
        row: 0,
        col: 0,
    });
    let mut results = Vec::new();
    while let Some(region) = frontier.pop() {
        if let Some(floor) = heap.floor() {
            if floor >= region.ub {
                break;
            }
        }
        if region.level == 0 {
            read_base_vector_into(source, n_terms, region.row, region.col, x)?;
            effort.multiply_adds += n;
            heap.offer(ScoredItem {
                index: region.row * cols + region.col,
                score: model.evaluate_exact(x),
            });
            continue;
        }
        let child_stage = stage_for_level(region.level - 1);
        pyramids[0].children_into(region.level, region.row, region.col, children);
        for child in children.iter() {
            let ub = staged_region_bound(
                model,
                pyramids,
                region.level - 1,
                child.row,
                child.col,
                child_stage,
                &mut effort,
            )?;
            frontier.push(Region {
                ub,
                level: region.level - 1,
                row: child.row,
                col: child.col,
            });
        }
    }
    for item in heap.into_sorted() {
        results.push(ScoredCell {
            cell: CellCoord::new(item.index / cols, item.index % cols),
            score: item.score,
        });
    }
    scratch.note_regrowth(&caps);
    Ok(GridTopK { results, effort })
}

/// Naive full scan over the pyramids' base level — the §4.2 `O(nN)`
/// baseline, exposed so experiments can measure against it directly.
///
/// # Errors
///
/// Same validation as [`pyramid_top_k`].
pub fn naive_grid_top_k(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
) -> Result<GridTopK, CoreError> {
    let ((rows, cols), _) = validate_grid_inputs(model, pyramids, k)?;
    let n = model.arity() as u64;
    let mut effort = EffortReport {
        multiply_adds: 0,
        naive_multiply_adds: n * (rows * cols) as u64,
    };
    let mut heap = TopKHeap::new(k);
    for r in 0..rows {
        for c in 0..cols {
            let x: Vec<f64> = pyramids
                .iter()
                .map(|p| p.cell(0, r, c).map(|s| s.mean).expect("in-bounds"))
                .collect();
            effort.multiply_adds += n;
            heap.offer(ScoredItem {
                index: r * cols + c,
                score: model.evaluate(&x),
            });
        }
    }
    let results = heap
        .into_sorted()
        .into_iter()
        .map(|item| ScoredCell {
            cell: CellCoord::new(item.index / cols, item.index % cols),
            score: item.score,
        })
        .collect();
    Ok(GridTopK { results, effort })
}

/// Query-directed grid retrieval: dispatches on the [`TopKQuery`]'s
/// objective by negating the model for minimization (scores reported are
/// the *original* model values, ascending for a minimizing query).
///
/// # Errors
///
/// Same as [`pyramid_top_k`].
pub fn grid_query(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    query: TopKQuery,
) -> Result<GridTopK, CoreError> {
    match query.objective() {
        Objective::Maximize => pyramid_top_k(model, pyramids, query.k()),
        Objective::Minimize => {
            let negated = LinearModel::new(
                model.coefficients().iter().map(|a| -a).collect(),
                -model.intercept(),
            )
            .map_err(CoreError::Model)?;
            let mut result = pyramid_top_k(&negated, pyramids, query.k())?;
            for sc in &mut result.results {
                sc.score = -sc.score;
            }
            Ok(result)
        }
    }
}

pub(crate) fn validate_grid_inputs(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
) -> Result<((usize, usize), usize), CoreError> {
    if k == 0 {
        return Err(CoreError::Query("k must be >= 1".into()));
    }
    if pyramids.is_empty() {
        return Err(CoreError::Query("no attribute pyramids supplied".into()));
    }
    if pyramids.len() != model.arity() {
        return Err(CoreError::Query(format!(
            "model arity {} but {} pyramids",
            model.arity(),
            pyramids.len()
        )));
    }
    let shape = pyramids[0].base_shape();
    let levels = pyramids[0].levels();
    for p in pyramids {
        if p.base_shape() != shape || p.levels() != levels {
            return Err(CoreError::Query("pyramids must share a shape".into()));
        }
    }
    Ok((shape, levels))
}

/// Full-model interval upper bound over a pyramid region, with the
/// per-attribute range box assembled in a reused buffer (cleared first)
/// instead of a fresh allocation per call.
pub(crate) fn region_bound_into(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    level: usize,
    row: usize,
    col: usize,
    ranges: &mut Vec<(f64, f64)>,
    effort: &mut EffortReport,
) -> Result<f64, CoreError> {
    ranges.clear();
    for p in pyramids {
        let s = p.cell(level, row, col)?;
        ranges.push((s.min, s.max));
    }
    effort.multiply_adds += model.arity() as u64;
    let (_, hi) = model.bound_over_box(ranges)?;
    Ok(hi)
}

/// Truncated-model interval upper bound: the first `stage` ranked terms use
/// the region box; the rest contribute their *global* residual envelope.
fn staged_region_bound(
    model: &ProgressiveLinearModel,
    pyramids: &[AggregatePyramid],
    level: usize,
    row: usize,
    col: usize,
    stage: usize,
    effort: &mut EffortReport,
) -> Result<f64, CoreError> {
    let coeffs = model.model().coefficients();
    let mut hi = model.model().intercept();
    for &term in &model.term_order()[..stage] {
        let s = pyramids[term].cell(level, row, col)?;
        let a = coeffs[term];
        hi += if a >= 0.0 { a * s.max } else { a * s.min };
        effort.multiply_adds += 1;
    }
    // Global envelope of the unevaluated suffix, a stage constant baked
    // into the progressive model: suffix_mid + residual == max suffix.
    let suffix_hi = suffix_upper(model, stage);
    Ok(hi + suffix_hi)
}

/// Max possible contribution of the terms after `stage` (over the global
/// attribute ranges the progressive model was built with).
fn suffix_upper(model: &ProgressiveLinearModel, stage: usize) -> f64 {
    let coeffs = model.model().coefficients();
    let ranges = model.ranges();
    model.term_order()[stage..]
        .iter()
        .map(|&term| {
            let a = coeffs[term];
            let (lo, hi) = ranges[term];
            if a >= 0.0 {
                a * hi
            } else {
                a * lo
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbir_archive::grid::Grid2;
    use proptest::prelude::*;

    #[test]
    fn effort_report_distinguishes_zero_work_from_break_even() {
        let idle = EffortReport {
            multiply_adds: 0,
            naive_multiply_adds: 1000,
        };
        assert_eq!(idle.speedup_checked(), None);
        assert_eq!(idle.speedup(), 1.0); // neutral placeholder
        assert_eq!(
            idle.to_string(),
            "0 of 1000 multiply-adds (no work performed; speedup undefined)"
        );
        let break_even = EffortReport {
            multiply_adds: 1000,
            naive_multiply_adds: 1000,
        };
        assert_eq!(break_even.speedup_checked(), Some(1.0));
        assert_eq!(
            break_even.to_string(),
            "1000 of 1000 multiply-adds (1.00x speedup)"
        );
    }

    #[test]
    fn effort_report_sums_field_by_field() {
        let a = EffortReport {
            multiply_adds: 3,
            naive_multiply_adds: 10,
        };
        let b = EffortReport {
            multiply_adds: 7,
            naive_multiply_adds: 90,
        };
        assert_eq!(
            a + b,
            EffortReport {
                multiply_adds: 10,
                naive_multiply_adds: 100,
            }
        );
        let mut acc = EffortReport::default();
        acc += a;
        acc += b;
        assert_eq!(acc, a + b);
        let summed: EffortReport = [a, b].into_iter().sum();
        assert_eq!(summed, a + b);
    }

    fn pseudo_grid(seed: u64, rows: usize, cols: usize) -> Grid2<f64> {
        Grid2::from_fn(rows, cols, |r, c| {
            let h = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((r * 8191 + c * 127) as u64)
                .wrapping_mul(2862933555777941757);
            (h >> 11) as f64 / (1u64 << 53) as f64 * 100.0
        })
    }

    fn build_inputs(
        seed: u64,
        rows: usize,
        cols: usize,
        arity: usize,
    ) -> (LinearModel, Vec<AggregatePyramid>) {
        let coeffs: Vec<f64> = (0..arity)
            .map(|i| match i % 4 {
                0 => 2.0,
                1 => -1.0,
                2 => 0.25,
                _ => 0.05,
            })
            .collect();
        let model = LinearModel::new(coeffs, 0.5).unwrap();
        let pyramids: Vec<AggregatePyramid> = (0..arity)
            .map(|i| AggregatePyramid::build(&pseudo_grid(seed + i as u64, rows, cols)))
            .collect();
        (model, pyramids)
    }

    fn progressive_of(
        model: &LinearModel,
        pyramids: &[AggregatePyramid],
    ) -> ProgressiveLinearModel {
        let ranges: Vec<(f64, f64)> = pyramids
            .iter()
            .map(|p| {
                let root = p.root();
                (root.min, root.max)
            })
            .collect();
        ProgressiveLinearModel::new(model.clone(), &ranges).unwrap()
    }

    #[test]
    fn pyramid_engine_matches_naive() {
        let (model, pyramids) = build_inputs(1, 40, 56, 3);
        for k in [1usize, 5, 17] {
            let fast = pyramid_top_k(&model, &pyramids, k).unwrap();
            let slow = naive_grid_top_k(&model, &pyramids, k).unwrap();
            let fs: Vec<f64> = fast.results.iter().map(|r| r.score).collect();
            let ss: Vec<f64> = slow.results.iter().map(|r| r.score).collect();
            for (a, b) in fs.iter().zip(&ss) {
                assert!((a - b).abs() < 1e-9, "k={k}: {fs:?} vs {ss:?}");
            }
            // No speedup assertion here: these grids are spatially
            // uncorrelated noise, the worst case for region bounds (the
            // smooth-data case below demonstrates the speedup).
        }
    }

    #[test]
    fn pyramid_engine_speeds_up_on_smooth_data() {
        let rows = 64;
        let cols = 64;
        let pyramids: Vec<AggregatePyramid> = (0..3)
            .map(|i| {
                AggregatePyramid::build(&Grid2::from_fn(rows, cols, |r, c| {
                    ((r as f64 / 7.0 + i as f64).sin() + (c as f64 / 13.0).cos()) * 40.0
                }))
            })
            .collect();
        let model = LinearModel::new(vec![1.0, 0.5, -0.75], 0.0).unwrap();
        let fast = pyramid_top_k(&model, &pyramids, 3).unwrap();
        let slow = naive_grid_top_k(&model, &pyramids, 3).unwrap();
        for (a, b) in fast.results.iter().zip(&slow.results) {
            assert!((a.score - b.score).abs() < 1e-9);
        }
        assert!(
            fast.effort.speedup() > 2.0,
            "smooth data should prune well, got {}",
            fast.effort.speedup()
        );
    }

    #[test]
    fn staged_engine_matches_scan() {
        let (model, pyramids) = build_inputs(3, 24, 24, 4);
        let prog = progressive_of(&model, &pyramids);
        let tuples: Vec<Vec<f64>> = (0..24 * 24)
            .map(|i| {
                (0..4)
                    .map(|a| pyramids[a].cell(0, i / 24, i % 24).unwrap().mean)
                    .collect()
            })
            .collect();
        for k in [1usize, 10] {
            let fast = staged_top_k(&prog, &tuples, k).unwrap();
            let slow = mbir_index::scan::scan_top_k(&tuples, k, |t| model.evaluate(t));
            for (a, b) in fast.results.iter().zip(&slow.results) {
                assert!((a.score - b.score).abs() < 1e-9, "k={k}");
            }
            assert!(
                fast.effort.multiply_adds < fast.effort.naive_multiply_adds,
                "pruning must save work"
            );
        }
    }

    #[test]
    fn combined_engine_matches_naive_and_beats_singletons() {
        // Smooth data (spatial structure) + skewed coefficients: the regime
        // where both progressive axes pay off.
        let rows = 64;
        let cols = 64;
        let smooth: Vec<AggregatePyramid> = (0..4)
            .map(|i| {
                AggregatePyramid::build(&Grid2::from_fn(rows, cols, |r, c| {
                    ((r as f64 / 9.0 + i as f64).sin() + (c as f64 / 11.0).cos()) * 50.0 + 100.0
                }))
            })
            .collect();
        let model = LinearModel::new(vec![5.0, 0.8, 0.1, 0.02], 0.0).unwrap();
        let prog = progressive_of(&model, &smooth);
        let k = 5;
        let naive = naive_grid_top_k(&model, &smooth, k).unwrap();
        let data_only = pyramid_top_k(&model, &smooth, k).unwrap();
        let both = combined_top_k(&prog, &smooth, k).unwrap();
        for (a, b) in both.results.iter().zip(&naive.results) {
            assert!((a.score - b.score).abs() < 1e-9);
        }
        for (a, b) in data_only.results.iter().zip(&naive.results) {
            assert!((a.score - b.score).abs() < 1e-9);
        }
        assert!(data_only.effort.speedup() > 1.0);
        assert!(
            both.effort.multiply_adds <= data_only.effort.multiply_adds,
            "truncated bounds must not cost more: {} vs {}",
            both.effort.multiply_adds,
            data_only.effort.multiply_adds
        );
    }

    #[test]
    fn engines_validate_inputs() {
        let (model, pyramids) = build_inputs(5, 8, 8, 2);
        assert!(pyramid_top_k(&model, &pyramids, 0).is_err());
        assert!(pyramid_top_k(&model, &pyramids[..1], 1).is_err());
        let prog = progressive_of(&model, &pyramids);
        assert!(staged_top_k(&prog, &[], 1).is_err());
        assert!(staged_top_k(&prog, &[vec![1.0]], 1).is_err());
        let other = AggregatePyramid::build(&pseudo_grid(9, 4, 4));
        assert!(pyramid_top_k(&model, &[pyramids[0].clone(), other], 1).is_err());
    }

    #[test]
    fn grid_query_minimize_mirrors_maximize() {
        use crate::query::{Objective, TopKQuery};
        let (model, pyramids) = build_inputs(13, 16, 16, 3);
        let min_query = TopKQuery::new(5, Objective::Minimize).unwrap();
        let minimized = grid_query(&model, &pyramids, min_query).unwrap();
        // Reference: naive scan, ascending.
        let naive = naive_grid_top_k(
            &LinearModel::new(
                model.coefficients().iter().map(|a| -a).collect(),
                -model.intercept(),
            )
            .unwrap(),
            &pyramids,
            5,
        )
        .unwrap();
        for (got, want) in minimized.results.iter().zip(&naive.results) {
            assert!((got.score + want.score).abs() < 1e-9);
        }
        // Scores ascend for a minimizing query.
        for pair in minimized.results.windows(2) {
            assert!(pair[0].score <= pair[1].score + 1e-12);
        }
        // Maximize path delegates to pyramid_top_k.
        let max_query = TopKQuery::max(5).unwrap();
        let maximized = grid_query(&model, &pyramids, max_query).unwrap();
        let direct = pyramid_top_k(&model, &pyramids, 5).unwrap();
        assert_eq!(maximized.results, direct.results);
    }

    #[test]
    fn warmed_scratch_stops_allocating() {
        // Acceptance gate for the allocation-free steady state: the first
        // query may grow the scratch buffers, but a second identical query
        // through the same scratch must add zero regrowth events — i.e.
        // the descent loop performs no heap allocation once warm.
        use crate::source::PyramidSource;
        let (model, pyramids) = build_inputs(21, 48, 48, 3);
        let source = PyramidSource::new(&pyramids);
        let mut scratch = QueryScratch::new();
        let first =
            pyramid_top_k_with_scratch(&model, &pyramids, 5, &source, &mut scratch).unwrap();
        let warm = scratch.regrowths();
        let second =
            pyramid_top_k_with_scratch(&model, &pyramids, 5, &source, &mut scratch).unwrap();
        assert_eq!(first, second, "scratch reuse must not change results");
        assert_eq!(
            scratch.regrowths(),
            warm,
            "steady-state pyramid descent must not grow any buffer"
        );

        let prog = progressive_of(&model, &pyramids);
        let first =
            combined_top_k_with_scratch(&prog, &pyramids, 5, &source, &mut scratch).unwrap();
        let warm = scratch.regrowths();
        let second =
            combined_top_k_with_scratch(&prog, &pyramids, 5, &source, &mut scratch).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            scratch.regrowths(),
            warm,
            "steady-state combined descent must not grow any buffer"
        );

        let tuples: Vec<Vec<f64>> = (0..48 * 48)
            .map(|i| {
                (0..3)
                    .map(|a| pyramids[a].cell(0, i / 48, i % 48).unwrap().mean)
                    .collect()
            })
            .collect();
        let first = staged_top_k_with_scratch(&prog, &tuples, 5, &mut scratch).unwrap();
        let warm = scratch.regrowths();
        let second = staged_top_k_with_scratch(&prog, &tuples, 5, &mut scratch).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            scratch.regrowths(),
            warm,
            "steady-state staged scan must not grow any buffer"
        );
    }

    #[test]
    fn scratch_engines_match_allocating_engines_bitwise() {
        use crate::source::PyramidSource;
        let (model, pyramids) = build_inputs(33, 20, 28, 4);
        let source = PyramidSource::new(&pyramids);
        let prog = progressive_of(&model, &pyramids);
        let mut scratch = QueryScratch::new();
        for k in [1usize, 4, 9] {
            assert_eq!(
                pyramid_top_k_with_scratch(&model, &pyramids, k, &source, &mut scratch).unwrap(),
                pyramid_top_k(&model, &pyramids, k).unwrap(),
                "pyramid k={k}"
            );
            assert_eq!(
                combined_top_k_with_scratch(&prog, &pyramids, k, &source, &mut scratch).unwrap(),
                combined_top_k(&prog, &pyramids, k).unwrap(),
                "combined k={k}"
            );
        }
    }

    #[test]
    fn k_larger_than_grid_returns_all_cells() {
        let (model, pyramids) = build_inputs(7, 3, 3, 2);
        let r = pyramid_top_k(&model, &pyramids, 100).unwrap();
        assert_eq!(r.results.len(), 9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(25))]
        #[test]
        fn prop_all_engines_agree(
            seed in 0u64..300,
            rows in 2usize..20,
            cols in 2usize..20,
            arity in 1usize..5,
            k in 1usize..8,
        ) {
            let (model, pyramids) = build_inputs(seed, rows, cols, arity);
            let prog = progressive_of(&model, &pyramids);
            let naive = naive_grid_top_k(&model, &pyramids, k).unwrap();
            let fast = pyramid_top_k(&model, &pyramids, k).unwrap();
            let both = combined_top_k(&prog, &pyramids, k).unwrap();
            for (a, b) in fast.results.iter().zip(&naive.results) {
                prop_assert!((a.score - b.score).abs() < 1e-9);
            }
            for (a, b) in both.results.iter().zip(&naive.results) {
                prop_assert!((a.score - b.score).abs() < 1e-9);
            }
        }
    }
}
