//! Standing continuous queries over a live archive: the fire-ants FSM
//! re-armed as new pages commit.
//!
//! The paper's Fig. 1 model detects *events* (fire-ant flights) in a
//! weather series. Against a static archive that is a batch run
//! ([`mbir_models::fsm::fire_ants::detect_fly_days`]); against a
//! [`LiveArchive`](crate::snapshot::LiveArchive) the series keeps growing,
//! so the detection becomes a *standing query*: a driver that holds the
//! machine's state across commits and, on every poll, consumes exactly the
//! newly committed rows of the current snapshot.
//!
//! Two determinism guarantees make the driver trustworthy:
//!
//! * **Schedule independence** — the concatenated alerts over *any* poll
//!   schedule (after every commit, once at the end, or anything between)
//!   equal the batch events over the final committed series, because the
//!   machine is deterministic and the driver's cursor advances over
//!   exactly the committed prefix.
//! * **Snapshot isolation** — a poll reads one [`EpochSnapshot`], so a
//!   commit landing mid-poll cannot split a day or show a torn band; the
//!   new rows are simply picked up by the next poll.

use crate::error::CoreError;
use crate::snapshot::EpochSnapshot;
use mbir_archive::weather::WeatherDay;
use mbir_models::fsm::fire_ants::{fire_ants_fsm, DayClass};
use mbir_models::fsm::{Fsm, StateId};

/// Incremental fire-ants event detection: feeds days into the Fig. 1
/// machine as they arrive, emitting an alert each time the machine
/// *enters* the accepting state — the streaming counterpart of
/// [`Fsm::acceptance_events`].
///
/// # Examples
///
/// ```
/// use mbir_archive::weather::WeatherDay;
/// use mbir_core::continuous::ContinuousDetector;
///
/// let mut det = ContinuousDetector::new();
/// let day = |rain, temp| WeatherDay { rain_mm: rain, temp_c: temp };
/// assert!(det.observe(&[day(5.0, 20.0), day(0.0, 26.0)]).is_empty());
/// // Two more dry days complete the spell; the warm third day fires.
/// assert_eq!(det.observe(&[day(0.0, 26.0), day(0.0, 26.0)]), vec![3]);
/// ```
#[derive(Debug)]
pub struct ContinuousDetector {
    fsm: Fsm<DayClass>,
    state: StateId,
    accepting: bool,
    days_seen: usize,
}

impl ContinuousDetector {
    /// A fresh detector in the machine's start state.
    pub fn new() -> Self {
        let (fsm, _) = fire_ants_fsm();
        let state = fsm.start().expect("fire-ants machine has a start state");
        let accepting = fsm.is_accepting(state);
        ContinuousDetector {
            fsm,
            state,
            accepting,
            days_seen: 0,
        }
    }

    /// Days consumed so far.
    pub fn days_seen(&self) -> usize {
        self.days_seen
    }

    /// Consumes the next `days` of the series, returning the absolute day
    /// indexes (0-based from the start of the stream) at which the
    /// machine entered the accepting state. Feeding the same series in
    /// any chunking yields the same concatenated events as
    /// [`Fsm::acceptance_events`] over the whole series.
    pub fn observe(&mut self, days: &[WeatherDay]) -> Vec<usize> {
        let mut events = Vec::new();
        for day in days {
            let sym = DayClass::of(day);
            self.state = self
                .fsm
                .step(self.state, sym)
                .expect("fire-ants transition table is total");
            let now = self.fsm.is_accepting(self.state);
            if now && !self.accepting {
                events.push(self.days_seen);
            }
            self.accepting = now;
            self.days_seen += 1;
        }
        events
    }
}

impl Default for ContinuousDetector {
    fn default() -> Self {
        ContinuousDetector::new()
    }
}

/// A standing fire-ants query over a live archive: rows are days, one
/// attribute column carries rainfall and another temperature, and every
/// [`poll`](Self::poll) re-arms the FSM over exactly the rows committed
/// since the last poll.
#[derive(Debug)]
pub struct ContinuousQueryDriver {
    detector: ContinuousDetector,
    rain_attr: usize,
    temp_attr: usize,
    col: usize,
    cursor: usize,
    polls: u64,
}

impl ContinuousQueryDriver {
    /// A driver reading rainfall from attribute `rain_attr` and
    /// temperature from attribute `temp_attr`, both at column `col`.
    pub fn new(rain_attr: usize, temp_attr: usize, col: usize) -> Self {
        ContinuousQueryDriver {
            detector: ContinuousDetector::new(),
            rain_attr,
            temp_attr,
            col,
            cursor: 0,
            polls: 0,
        }
    }

    /// Rows (days) consumed so far.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Polls performed so far.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Consumes the rows `snapshot` committed past the driver's cursor,
    /// returning the day indexes (row numbers) of new fly alerts. Polling
    /// the same epoch twice is a no-op; snapshots only ever extend the
    /// committed prefix, so the cursor never re-reads a day.
    ///
    /// # Errors
    ///
    /// [`CoreError::Query`] when the snapshot has fewer rows than the
    /// driver already consumed (snapshots of a different archive), or the
    /// configured attributes / column are out of range. Archive read
    /// errors propagate as [`CoreError::Archive`].
    pub fn poll(&mut self, snapshot: &EpochSnapshot) -> Result<Vec<usize>, CoreError> {
        let stores = snapshot.stores();
        let attrs = stores.len();
        if self.rain_attr >= attrs || self.temp_attr >= attrs {
            return Err(CoreError::Query(format!(
                "driver attributes ({}, {}) out of range for {attrs}-attribute snapshot",
                self.rain_attr, self.temp_attr
            )));
        }
        let rows = snapshot.rows();
        if rows < self.cursor {
            return Err(CoreError::Query(format!(
                "snapshot has {rows} rows but the driver already consumed {}; \
                 committed prefixes never shrink, so this snapshot belongs to \
                 a different archive",
                self.cursor
            )));
        }
        if self.col >= stores[0].cols() {
            return Err(CoreError::Query(format!(
                "driver column {} out of range for width {}",
                self.col,
                stores[0].cols()
            )));
        }
        self.polls += 1;
        let mut days = Vec::with_capacity(rows - self.cursor);
        for row in self.cursor..rows {
            days.push(WeatherDay {
                rain_mm: stores[self.rain_attr].read(row, self.col)?,
                temp_c: stores[self.temp_attr].read(row, self.col)?,
            });
        }
        let alerts = self.detector.observe(&days);
        self.cursor = rows;
        Ok(alerts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::LiveArchive;
    use mbir_archive::grid::Grid2;
    use mbir_archive::weather::WeatherGenerator;
    use mbir_models::fsm::fire_ants::detect_fly_days;

    #[test]
    fn chunked_observation_equals_batch_detection() {
        let series = WeatherGenerator::new(7)
            .with_temperature(22.0, 8.0, 2.0)
            .generate(0, 240);
        let (fsm, _) = fire_ants_fsm();
        let symbols: Vec<DayClass> = series.values().iter().map(DayClass::of).collect();
        let batch = fsm.acceptance_events(&symbols).unwrap();
        for chunk in [1usize, 3, 7, 30, 240] {
            let mut det = ContinuousDetector::new();
            let mut streamed = Vec::new();
            for days in series.values().chunks(chunk) {
                streamed.extend(det.observe(days));
            }
            assert_eq!(streamed, batch, "chunk size {chunk}");
            assert_eq!(det.days_seen(), 240);
        }
    }

    /// Weather bands as grids: attribute 0 is rainfall, attribute 1 is
    /// temperature; each row is one day, replicated across columns.
    fn weather_bands(days: &[WeatherDay], cols: usize) -> Vec<Grid2<f64>> {
        vec![
            Grid2::from_fn(days.len(), cols, |r, _| days[r].rain_mm),
            Grid2::from_fn(days.len(), cols, |r, _| days[r].temp_c),
        ]
    }

    #[test]
    fn driver_alerts_match_batch_detection_under_any_poll_schedule() {
        let series = WeatherGenerator::new(11)
            .with_temperature(22.0, 8.0, 2.0)
            .generate(0, 96);
        let days = series.values();
        let batch: Vec<usize> = detect_fly_days(&series)
            .unwrap()
            .into_iter()
            .map(|d| d as usize)
            .collect();

        // Poll after every commit, after every other commit, once at the
        // end: the concatenated alerts never change.
        for poll_every in [1usize, 2, 12] {
            let mut live = LiveArchive::new(weather_bands(&days[..8], 3), 4).unwrap();
            let mut driver = ContinuousQueryDriver::new(0, 1, 1);
            let mut alerts = driver.poll(&live.snapshot()).unwrap();
            for (i, band) in days[8..].chunks(8).enumerate() {
                live.append(&weather_bands(band, 3)).unwrap();
                if (i + 1) % poll_every == 0 {
                    alerts.extend(driver.poll(&live.snapshot()).unwrap());
                }
            }
            alerts.extend(driver.poll(&live.snapshot()).unwrap());
            assert_eq!(alerts, batch, "poll_every {poll_every}");
            assert_eq!(driver.cursor(), 96);
            // Re-polling the same epoch is a no-op.
            assert!(driver.poll(&live.snapshot()).unwrap().is_empty());
        }
    }

    #[test]
    fn driver_validates_attributes_and_rejects_foreign_snapshots() {
        let live =
            LiveArchive::new(vec![Grid2::filled(4, 2, 0.0), Grid2::filled(4, 2, 30.0)], 2).unwrap();
        let snap = live.snapshot();
        assert!(ContinuousQueryDriver::new(0, 2, 0).poll(&snap).is_err());
        assert!(ContinuousQueryDriver::new(0, 1, 9).poll(&snap).is_err());
        let mut ok = ContinuousQueryDriver::new(0, 1, 0);
        ok.poll(&snap).unwrap();
        // A snapshot with fewer rows than the cursor is a foreign archive.
        let small =
            LiveArchive::new(vec![Grid2::filled(2, 2, 0.0), Grid2::filled(2, 2, 30.0)], 2).unwrap();
        assert!(ok.poll(&small.snapshot()).is_err());
    }
}
