//! Temporal model-based retrieval: the paper's §3.1 recursive risk model
//! `R(x,y,t) = a1 X1(x,y,t) + a2 X2(x,y,t) + a3 X3(x,y,t) + a4 R(x,y,t-1)`
//! run over a temporal archive, with per-frame top-K retrieval.
//!
//! The tracker maintains the recursive risk surface incrementally (one
//! `O(nN)` sweep per frame — the recursion itself is inherently dense) and
//! answers each frame's top-K through a fresh aggregate pyramid over the
//! risk surface, so the *retrieval* stays progressive even though the
//! state update is dense.

use crate::engine::{pyramid_top_k, GridTopK};
use crate::error::CoreError;
use mbir_archive::grid::Grid2;
use mbir_archive::temporal::TemporalStack;
use mbir_models::linear::{LinearModel, TemporalHpsModel};
use mbir_progressive::pyramid::AggregatePyramid;

/// Per-frame output of the tracker.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameTopK {
    /// Acquisition day of the frame.
    pub day: i64,
    /// The frame's top-K risk cells.
    pub top_k: GridTopK,
}

/// Tracks the recursive risk surface over co-registered temporal stacks
/// (one stack per observation attribute) and retrieves each frame's top-K.
///
/// # Examples
///
/// ```
/// use mbir_archive::grid::Grid2;
/// use mbir_archive::temporal::TemporalStack;
/// use mbir_core::temporal::TemporalRiskTracker;
/// use mbir_models::linear::TemporalHpsModel;
///
/// let mut stack = TemporalStack::new(8, 8);
/// stack.push(0, Grid2::filled(8, 8, 1.0)).unwrap();
/// stack.push(16, Grid2::filled(8, 8, 0.5)).unwrap();
/// let model = TemporalHpsModel::new([0.5, 0.3, 0.2], 0.5).unwrap();
/// let tracker = TemporalRiskTracker::new(model);
/// let frames = tracker.run(&[stack.clone(), stack.clone(), stack], 3).unwrap();
/// assert_eq!(frames.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TemporalRiskTracker {
    model: TemporalHpsModel,
}

impl TemporalRiskTracker {
    /// Creates a tracker for the given recursive model.
    pub fn new(model: TemporalHpsModel) -> Self {
        TemporalRiskTracker { model }
    }

    /// Runs the recursion over three observation stacks (one per model
    /// attribute) and returns each frame's top-K risk cells. Risk starts
    /// at zero everywhere.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Query`] for `k == 0`, missing frames, or
    /// misaligned stacks.
    pub fn run(
        &self,
        observations: &[TemporalStack; 3],
        k: usize,
    ) -> Result<Vec<FrameTopK>, CoreError> {
        if k == 0 {
            return Err(CoreError::Query("k must be >= 1".into()));
        }
        let shape = observations[0].shape();
        let frames = observations[0].len();
        if frames == 0 {
            return Err(CoreError::Query("temporal stacks are empty".into()));
        }
        for stack in observations.iter().skip(1) {
            if stack.shape() != shape || stack.len() != frames {
                return Err(CoreError::Query(
                    "observation stacks misaligned in shape or frame count".into(),
                ));
            }
        }
        let (rows, cols) = shape;
        let mut risk = Grid2::filled(rows, cols, 0.0f64);
        // Retrieval over the risk surface treats it as a 1-attribute model.
        let identity = LinearModel::new(vec![1.0], 0.0).map_err(CoreError::Model)?;
        let mut out = Vec::with_capacity(frames);
        for f in 0..frames {
            let (day, x1) = observations[0].frame(f)?;
            let (_, x2) = observations[1].frame(f)?;
            let (_, x3) = observations[2].frame(f)?;
            let prev = risk;
            risk = Grid2::from_fn(rows, cols, |r, c| {
                self.model
                    .step([*x1.at(r, c), *x2.at(r, c), *x3.at(r, c)], *prev.at(r, c))
            });
            let pyramid = AggregatePyramid::build(&risk);
            let top_k = pyramid_top_k(&identity, &[pyramid], k)?;
            out.push(FrameTopK { day, top_k });
        }
        Ok(out)
    }

    /// The model being tracked.
    pub fn model(&self) -> &TemporalHpsModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbir_archive::synth::GaussianField;

    fn stacks(seed: u64, rows: usize, cols: usize, frames: usize) -> [TemporalStack; 3] {
        let make = |salt: u64| {
            let mut s = TemporalStack::new(rows, cols);
            for f in 0..frames {
                let g = GaussianField::new(seed + salt * 100 + f as u64)
                    .with_roughness(0.4)
                    .generate(rows, cols)
                    .normalized(0.0, 1.0);
                s.push(f as i64 * 16, g).expect("aligned frames");
            }
            s
        };
        [make(0), make(1), make(2)]
    }

    #[test]
    fn tracker_matches_bruteforce_recursion() {
        let obs = stacks(3, 16, 16, 5);
        let model = TemporalHpsModel::new([0.4, 0.3, 0.3], 0.6).unwrap();
        let tracker = TemporalRiskTracker::new(model.clone());
        let frames = tracker.run(&obs, 4).unwrap();
        assert_eq!(frames.len(), 5);

        // Brute-force: per-cell recursion, then sort each frame.
        let mut risk = vec![0.0f64; 16 * 16];
        for (f, frame) in frames.iter().enumerate() {
            let (day, x1) = obs[0].frame(f).unwrap();
            let (_, x2) = obs[1].frame(f).unwrap();
            let (_, x3) = obs[2].frame(f).unwrap();
            assert_eq!(frame.day, day);
            for r in 0..16 {
                for c in 0..16 {
                    risk[r * 16 + c] =
                        model.step([*x1.at(r, c), *x2.at(r, c), *x3.at(r, c)], risk[r * 16 + c]);
                }
            }
            let mut sorted: Vec<f64> = risk.clone();
            sorted.sort_by(|a, b| b.total_cmp(a));
            for (got, want) in frame.top_k.results.iter().zip(&sorted) {
                assert!(
                    (got.score - want).abs() < 1e-9,
                    "frame {f}: {} vs {want}",
                    got.score
                );
            }
        }
    }

    #[test]
    fn risk_accumulates_with_persistence() {
        // Constant observations: risk converges upward to the fixed point.
        let mut constant = TemporalStack::new(4, 4);
        for f in 0..10 {
            constant.push(f, Grid2::filled(4, 4, 1.0)).unwrap();
        }
        let obs = [constant.clone(), constant.clone(), constant];
        let model = TemporalHpsModel::new([0.3, 0.3, 0.4], 0.5).unwrap();
        let frames = TemporalRiskTracker::new(model).run(&obs, 1).unwrap();
        let trajectory: Vec<f64> = frames.iter().map(|f| f.top_k.results[0].score).collect();
        for pair in trajectory.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-12, "risk must be non-decreasing");
        }
        // Fixed point: 1.0 / (1 - 0.5) = 2.0.
        assert!((trajectory.last().unwrap() - 2.0).abs() < 0.01);
    }

    #[test]
    fn tracker_validates() {
        let obs = stacks(1, 8, 8, 3);
        let model = TemporalHpsModel::new([0.3, 0.3, 0.4], 0.5).unwrap();
        let tracker = TemporalRiskTracker::new(model);
        assert!(tracker.run(&obs, 0).is_err());
        let misaligned = [
            obs[0].clone(),
            obs[1].clone(),
            stacks(9, 4, 4, 3)[0].clone(),
        ];
        assert!(tracker.run(&misaligned, 1).is_err());
        let empty = [
            TemporalStack::new(8, 8),
            TemporalStack::new(8, 8),
            TemporalStack::new(8, 8),
        ];
        assert!(tracker.run(&empty, 1).is_err());
    }
}
