//! Query planning for progressive retrieval.
//!
//! §3.1 notes the connection to "query planning issues in query
//! optimization for object-relational databases", with the twist that
//! progressive execution selects "those operations that are most relevant
//! to the final results to be executed first". The planner below makes the
//! framework self-tuning: it inspects cheap statistics — pyramid-level
//! value spreads (spatial coherence) and model contribution skew — and
//! picks the engine whose bet those statistics support. All engines are
//! exact, so planning only moves work, never answers.

use crate::engine::{combined_top_k, naive_grid_top_k, pyramid_top_k, GridTopK};
use crate::error::CoreError;
use crate::parallel::{par_pyramid_top_k, WorkerPool};
use crate::resilient::{resilient_top_k, ExecutionBudget, ResilientTopK};
use crate::source::CellSource;
use mbir_models::linear::{LinearModel, ProgressiveLinearModel};
use mbir_progressive::pyramid::AggregatePyramid;
use std::fmt;

/// The engine a plan selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Plain scan: tiny archives where bound bookkeeping cannot pay off.
    Naive,
    /// Pyramid quad-descent with full-model bounds.
    Pyramid,
    /// Pyramid descent with truncated-model bounds at coarse levels.
    Combined,
}

impl fmt::Display for EngineChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EngineChoice::Naive => "naive scan",
            EngineChoice::Pyramid => "pyramid descent",
            EngineChoice::Combined => "combined progressive",
        };
        f.write_str(name)
    }
}

/// A plan: the chosen engine plus the statistics that justified it.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Selected engine.
    pub choice: EngineChoice,
    /// Estimated spatial coherence in `[0, 1]`: 1 − (mean level-2 cell
    /// spread / root spread). Smooth data ≈ 1, white noise ≈ 0.
    pub coherence: f64,
    /// Model contribution skew in `[0, 1]`: 1 − (terms needed for 90% of
    /// total contribution / arity). Uniform models ≈ 0.
    pub skew: f64,
    /// Human-readable rationale.
    pub rationale: String,
}

/// Thresholds steering the planner (defaults are conservative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Below this many cells a scan always wins.
    pub min_cells_for_index: usize,
    /// Minimum coherence for pyramid descent to pay.
    pub min_coherence: f64,
    /// Minimum skew for truncated-model bounds to pay.
    pub min_skew: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            min_cells_for_index: 1024,
            min_coherence: 0.35,
            min_skew: 0.3,
        }
    }
}

/// Builds a plan for a linear-model grid query.
///
/// # Errors
///
/// Returns [`CoreError::Query`] for empty/misaligned inputs (same
/// validation as the engines).
pub fn plan_grid_query(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    config: &PlannerConfig,
) -> Result<QueryPlan, CoreError> {
    if pyramids.is_empty() {
        return Err(CoreError::Query("no attribute pyramids supplied".into()));
    }
    if pyramids.len() != model.arity() {
        return Err(CoreError::Query(format!(
            "model arity {} but {} pyramids",
            model.arity(),
            pyramids.len()
        )));
    }
    let (rows, cols) = pyramids[0].base_shape();
    let cells = rows * cols;

    // Coherence: how much narrower level-2 cells are than the root.
    let coherence = {
        let mut total = 0.0;
        let mut count = 0.0;
        for p in pyramids {
            let root_spread = p.root().spread().max(1e-12);
            let level = 2.min(p.levels() - 1);
            let (lr, lc) = p.level_shape(level);
            let mut acc = 0.0;
            for r in 0..lr {
                for c in 0..lc {
                    acc += p.cell(level, r, c)?.spread();
                }
            }
            total += 1.0 - (acc / (lr * lc) as f64) / root_spread;
            count += 1.0;
        }
        (total / count).clamp(0.0, 1.0)
    };

    // Skew: fraction of terms needed to cover 90% of total |a_i|*range_i.
    let skew = {
        let mut contributions: Vec<f64> = pyramids
            .iter()
            .zip(model.coefficients())
            .map(|(p, a)| a.abs() * p.root().spread())
            .collect();
        contributions.sort_by(|x, y| y.total_cmp(x));
        let total: f64 = contributions.iter().sum();
        if total <= 0.0 {
            0.0
        } else {
            let mut acc = 0.0;
            let mut needed = 0usize;
            for c in &contributions {
                acc += c;
                needed += 1;
                if acc >= 0.9 * total {
                    break;
                }
            }
            1.0 - needed as f64 / contributions.len() as f64
        }
    };

    let (choice, rationale) = if cells < config.min_cells_for_index {
        (
            EngineChoice::Naive,
            format!(
                "{cells} cells is below the {}-cell indexing floor",
                config.min_cells_for_index
            ),
        )
    } else if coherence < config.min_coherence {
        (
            EngineChoice::Naive,
            format!(
                "coherence {coherence:.2} below {:.2}: region bounds would not prune",
                config.min_coherence
            ),
        )
    } else if skew >= config.min_skew && model.arity() >= 4 {
        (
            EngineChoice::Combined,
            format!("coherence {coherence:.2} and contribution skew {skew:.2}: truncate the model at coarse levels"),
        )
    } else {
        (
            EngineChoice::Pyramid,
            format!("coherence {coherence:.2} but low skew {skew:.2}: full-model bounds"),
        )
    };
    Ok(QueryPlan {
        choice,
        coherence,
        skew,
        rationale,
    })
}

/// Plans and executes in one call, returning the plan alongside the result.
///
/// # Errors
///
/// Propagates planning and engine errors.
pub fn execute_planned(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    config: &PlannerConfig,
) -> Result<(QueryPlan, GridTopK), CoreError> {
    let plan = plan_grid_query(model, pyramids, config)?;
    let result = match plan.choice {
        EngineChoice::Naive => naive_grid_top_k(model, pyramids, k)?,
        EngineChoice::Pyramid => pyramid_top_k(model, pyramids, k)?,
        EngineChoice::Combined => {
            let ranges: Vec<(f64, f64)> = pyramids
                .iter()
                .map(|p| {
                    let root = p.root();
                    (root.min, root.max)
                })
                .collect();
            let progressive =
                ProgressiveLinearModel::new(model.clone(), &ranges).map_err(CoreError::Model)?;
            combined_top_k(&progressive, pyramids, k)?
        }
    };
    Ok((plan, result))
}

/// Plans, then executes on the pool's workers, returning the plan
/// alongside the result.
///
/// The naive scan stays sequential (it is memory-bandwidth bound and the
/// planner only picks it for tiny or incoherent grids); `Pyramid` and
/// `Combined` plans run the partitioned descent
/// ([`par_pyramid_top_k`]) — the combined engine's truncated-model bounds
/// are a sequential-frontier refinement that does not partition, and the
/// full-model descent it falls back to returns the same exact answer.
///
/// # Errors
///
/// Propagates planning and engine errors.
pub fn execute_planned_parallel(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    config: &PlannerConfig,
    pool: &WorkerPool,
) -> Result<(QueryPlan, GridTopK), CoreError> {
    let plan = plan_grid_query(model, pyramids, config)?;
    let result = match plan.choice {
        EngineChoice::Naive => naive_grid_top_k(model, pyramids, k)?,
        EngineChoice::Pyramid | EngineChoice::Combined => {
            par_pyramid_top_k(model, pyramids, k, pool)?
        }
    };
    Ok((plan, result))
}

/// Plans, then executes *resiliently* against a paged source under a
/// budget, returning the plan alongside the best-effort result.
///
/// The plan is computed from the same resident statistics as
/// [`execute_planned`] and reported for observability, but execution
/// always goes through [`resilient_top_k`]: budgeted execution needs the
/// bounded pyramid frontier to degrade gracefully, which neither the
/// naive scan nor the truncated-model engine can provide. On a healthy
/// source with an unlimited budget the result matches the strict engines
/// exactly, so honoring the plan's engine choice would only change the
/// effort accounting, never the answer.
///
/// # Errors
///
/// Propagates planning errors and non-fault engine errors; lost pages and
/// exhausted budgets degrade instead of failing.
pub fn execute_planned_resilient<S: CellSource>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    config: &PlannerConfig,
    source: &S,
    budget: &ExecutionBudget,
) -> Result<(QueryPlan, ResilientTopK), CoreError> {
    let plan = plan_grid_query(model, pyramids, config)?;
    let result = resilient_top_k(model, pyramids, k, source, budget)?;
    Ok((plan, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::PyramidSource;
    use mbir_archive::grid::Grid2;

    fn smooth_pyramids(arity: usize, side: usize) -> Vec<AggregatePyramid> {
        (0..arity)
            .map(|i| {
                AggregatePyramid::build(&Grid2::from_fn(side, side, |r, c| {
                    ((r as f64 / 11.0 + i as f64).sin() + (c as f64 / 7.0).cos()) * 40.0
                }))
            })
            .collect()
    }

    fn noise_pyramids(arity: usize, side: usize) -> Vec<AggregatePyramid> {
        (0..arity)
            .map(|i| {
                AggregatePyramid::build(&Grid2::from_fn(side, side, |r, c| {
                    let h = (i as u64 + 1)
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add((r * 9176 + c * 31) as u64)
                        .wrapping_mul(0x9e3779b97f4a7c15);
                    (h >> 11) as f64 / (1u64 << 53) as f64 * 100.0
                }))
            })
            .collect()
    }

    #[test]
    fn tiny_grids_scan() {
        let pyramids = smooth_pyramids(2, 8);
        let model = LinearModel::new(vec![1.0, 1.0], 0.0).unwrap();
        let plan = plan_grid_query(&model, &pyramids, &PlannerConfig::default()).unwrap();
        assert_eq!(plan.choice, EngineChoice::Naive);
        assert!(plan.rationale.contains("floor"));
    }

    #[test]
    fn noise_scans_smooth_descends() {
        let model = LinearModel::new(vec![1.0, 1.0], 0.0).unwrap();
        let noisy =
            plan_grid_query(&model, &noise_pyramids(2, 64), &PlannerConfig::default()).unwrap();
        assert_eq!(noisy.choice, EngineChoice::Naive);
        assert!(noisy.coherence < 0.35, "coherence {}", noisy.coherence);
        let smooth =
            plan_grid_query(&model, &smooth_pyramids(2, 64), &PlannerConfig::default()).unwrap();
        assert_eq!(smooth.choice, EngineChoice::Pyramid);
        assert!(smooth.coherence > 0.35, "coherence {}", smooth.coherence);
    }

    #[test]
    fn skewed_wide_models_go_combined() {
        let pyramids = smooth_pyramids(8, 64);
        let coeffs: Vec<f64> = (0..8).map(|i| 4.0 * 0.3f64.powi(i as i32)).collect();
        let model = LinearModel::new(coeffs, 0.0).unwrap();
        let plan = plan_grid_query(&model, &pyramids, &PlannerConfig::default()).unwrap();
        assert_eq!(plan.choice, EngineChoice::Combined);
        assert!(plan.skew >= 0.3, "skew {}", plan.skew);
    }

    #[test]
    fn execute_planned_is_exact_for_every_choice() {
        let k = 5;
        for (pyramids, coeffs) in [
            (smooth_pyramids(2, 8), vec![1.0, 1.0]),  // naive
            (noise_pyramids(2, 64), vec![1.0, 1.0]),  // naive (noise)
            (smooth_pyramids(2, 64), vec![1.0, 1.0]), // pyramid
            (
                smooth_pyramids(8, 64),
                (0..8).map(|i| 4.0 * 0.3f64.powi(i as i32)).collect(),
            ), // combined
        ] {
            let model = LinearModel::new(coeffs, 0.0).unwrap();
            let (plan, result) =
                execute_planned(&model, &pyramids, k, &PlannerConfig::default()).unwrap();
            let reference = naive_grid_top_k(&model, &pyramids, k).unwrap();
            for (a, b) in result.results.iter().zip(&reference.results) {
                assert!(
                    (a.score - b.score).abs() < 1e-9,
                    "{} must be exact",
                    plan.choice
                );
            }
        }
    }

    #[test]
    fn execute_planned_parallel_is_bit_identical_to_sequential() {
        let k = 5;
        for (pyramids, coeffs) in [
            (smooth_pyramids(2, 8), vec![1.0, 1.0]),  // naive
            (smooth_pyramids(2, 64), vec![1.0, 1.0]), // pyramid
            (
                smooth_pyramids(8, 64),
                (0..8).map(|i| 4.0 * 0.3f64.powi(i as i32)).collect(),
            ), // combined
        ] {
            let model = LinearModel::new(coeffs, 0.0).unwrap();
            let (plan, sequential) =
                execute_planned(&model, &pyramids, k, &PlannerConfig::default()).unwrap();
            for threads in [1usize, 2, 4] {
                let pool = WorkerPool::new(threads);
                let (par_plan, parallel) = execute_planned_parallel(
                    &model,
                    &pyramids,
                    k,
                    &PlannerConfig::default(),
                    &pool,
                )
                .unwrap();
                assert_eq!(par_plan.choice, plan.choice);
                assert_eq!(parallel.results.len(), sequential.results.len());
                for (a, b) in parallel.results.iter().zip(&sequential.results) {
                    assert_eq!(a.cell, b.cell, "{} @ {threads} threads", plan.choice);
                    assert!(
                        (a.score - b.score).abs() < 1e-9,
                        "{} @ {threads} threads",
                        plan.choice
                    );
                }
            }
        }
    }

    #[test]
    fn execute_planned_resilient_matches_strict_when_healthy() {
        let pyramids = smooth_pyramids(2, 64);
        let model = LinearModel::new(vec![1.0, 1.0], 0.0).unwrap();
        let src = PyramidSource::new(&pyramids);
        let (plan, result) = execute_planned_resilient(
            &model,
            &pyramids,
            5,
            &PlannerConfig::default(),
            &src,
            &ExecutionBudget::unlimited(),
        )
        .unwrap();
        assert_eq!(plan.choice, EngineChoice::Pyramid);
        assert!(!result.is_degraded());
        let reference = naive_grid_top_k(&model, &pyramids, 5).unwrap();
        for (a, b) in result.results.iter().zip(&reference.results) {
            assert_eq!(a.cell, b.cell);
            assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    #[test]
    fn planner_validates() {
        let model = LinearModel::new(vec![1.0, 1.0], 0.0).unwrap();
        assert!(plan_grid_query(&model, &[], &PlannerConfig::default()).is_err());
        let one = smooth_pyramids(1, 16);
        assert!(plan_grid_query(&model, &one, &PlannerConfig::default()).is_err());
    }
}
