//! Batched multi-query execution: one shared pyramid descent serving Q
//! queries at once.
//!
//! [`batched_top_k`] accepts a batch of linear models over one pyramid
//! index and runs a *single* best-first traversal: one solo-sized frontier
//! per query, with a [`Selector`] advancing whichever query holds the
//! globally best upper bound (a keyed branchless argmax up to 64 queries,
//! a heap above). While the governed memo tables are live this global
//! order is also the cache-friendly order — queries interested in the
//! same region pop it back to back; once the governor proves the batch
//! has no cross-query reuse left, scheduling degrades to query-major
//! serial drains with the solo engine's loop shape (DESIGN.md §15).
//! Each query's logical descent — the sequence of regions it expands, the
//! cells it evaluates, the floor it prunes with — is *exactly* the
//! sequential [`resilient_top_k`](crate::resilient::resilient_top_k)
//! descent for that query alone; what the batch shares is the physical
//! work underneath:
//!
//! * **Base cells are fetched once.** A level-0 cell reached by several
//!   queries hits the page source exactly once; the materialized
//!   attribute vector (or the lost-page verdict) is memoized and replayed
//!   for every later query. A cell is fetched iff it survives at least
//!   one query's K-th floor — the per-query floor vector is what decides.
//! * **Region range boxes are fetched once.** The per-attribute range box
//!   of a region is read from the pyramids once; each query's upper bound
//!   over that box is computed lazily on first request (same left-to-right
//!   term order as the solo bound) and replayed from its slot afterwards.
//!   Lazy slots keep zero-overlap batches at solo cost — a query never
//!   pays for another query's bound.
//!
//! The shared-frontier invariant (DESIGN.md §15): the shared descent may
//! only *add* physical cell visits relative to any single query, never
//! skip one that query needed — each query's offers are gated by its own
//! floor against its own bound, so per-query answers, completeness,
//! skipped pages, and even effort reports stay bit-identical to the solo
//! run. The budget, by contrast, is *batch-wide*: one checkpoint stream
//! over the summed multiply-adds and the shared source clocks, so a
//! binding budget stops the whole batch at one point (each still-open
//! query surrenders its remaining frontier as leftover, exactly like a
//! solo stop; already-closed queries keep their finished answers and a
//! `None` stop).
//!
//! Fault semantics match the resilient engine per query, with one caveat
//! inherited from memoization: a page whose fault behavior is *stateful*
//! across read attempts (e.g. a transient fault budget larger than the
//! retry policy) can present differently to a batch (one physical read)
//! than to Q solo runs (Q physical reads). With deterministic faults —
//! permanent, corrupt, quarantined, or transients healed within one
//! logical read — batched and solo verdicts coincide.

use crate::coarse::CoarseGrid;
use crate::engine::{
    read_base_vector_into, region_bound_into, validate_grid_inputs, EffortReport, Region,
};
use crate::error::CoreError;
use crate::lifecycle::CancelToken;
use crate::resilient::{checkpoint_stop, region_candidate, BudgetStop, ExecutionBudget};
use crate::resilient::{ResilientHit, ResilientTopK, ScoreBounds, WallDeadline};
use crate::source::CellSource;
use mbir_archive::error::ArchiveError;
use mbir_archive::extent::CellCoord;
use mbir_index::scan::TopKHeap;
use mbir_index::stats::ScoredItem;
use mbir_models::linear::LinearModel;
use mbir_progressive::pyramid::AggregatePyramid;
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for the memo tables, whose keys are already
/// well-packed `u64`s ([`region_key`] / [`cell_key`]): one Fibonacci
/// multiply plus an xor-shift replaces SipHash on the descent's hottest
/// path. Not DoS-resistant — keys come from the pyramid geometry, never
/// from untrusted input.
#[derive(Debug, Default)]
pub(crate) struct FastU64Hasher(u64);

impl Hasher for FastU64Hasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        let x = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = x ^ (x >> 29);
    }
}

/// `u64`-keyed memo map on the fast hasher.
pub(crate) type MemoMap<V> = HashMap<u64, V, BuildHasherDefault<FastU64Hasher>>;

/// One `(query, region)` frontier entry of the shared batched descent.
///
/// The order is the per-query [`Region`] order — upper bound first, then
/// smaller (level, row, col) pops first — with the query index as the
/// final cross-query tiebreak, so restricted to any one query the pop
/// sequence is exactly the solo frontier's, and the interleaving of
/// queries is deterministic.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BatchEntry {
    pub(crate) ub: f64,
    pub(crate) level: u32,
    pub(crate) row: u32,
    pub(crate) col: u32,
    pub(crate) q: u32,
}

impl PartialEq for BatchEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other).is_eq()
    }
}
impl Eq for BatchEntry {}
impl PartialOrd for BatchEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for BatchEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.ub
            .total_cmp(&other.ub)
            .then_with(|| other.level.cmp(&self.level))
            .then_with(|| other.row.cmp(&self.row))
            .then_with(|| other.col.cmp(&self.col))
            .then_with(|| other.q.cmp(&self.q))
    }
}

impl BatchEntry {
    pub(crate) fn region(&self) -> Region {
        Region {
            ub: self.ub,
            level: self.level as usize,
            row: self.row as usize,
            col: self.col as usize,
        }
    }
}

/// Memoized verdict of one base-cell read, shared across the batch.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CellSlot {
    /// Attribute vector lives at this offset of the cell arena.
    Loaded(usize),
    /// The read failed on this page (lost-page semantics).
    Lost(usize),
}

pub(crate) fn region_key(level: usize, row: usize, col: usize) -> u64 {
    debug_assert!(row < (1 << 26) && col < (1 << 26) && level < (1 << 12));
    ((level as u64) << 52) | ((row as u64) << 26) | col as u64
}

pub(crate) fn cell_key(row: u32, col: u32) -> u64 {
    ((row as u64) << 32) | col as u64
}

/// Probe window of the cell-read memo's [`MemoGovernor`].
pub(crate) const CELL_MEMO_WINDOW: u32 = 64;

/// Probe window of the bound memo's [`MemoGovernor`].
pub(crate) const BOUND_MEMO_WINDOW: u32 = 64;

/// Lifecycle of a governed memo layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MemoPhase {
    /// Measuring sharing with presence-only probes before paying for
    /// full memoization (bound memo's opening window).
    Sampling,
    /// Full memoization; hit rate still watched, may retire to `Off`.
    On,
    /// Retired for this batch: the engine takes the solo direct path.
    Off,
}

/// Hit-rate governor for a memo layer.
///
/// Memoization is pure dedup — it never changes a query's answer, only
/// who pays for a fetch — so it is worth its hash probes exactly when the
/// batch actually shares work. The governor watches the layer's hit rate
/// over fixed windows of probes and retires the layer for the rest of the
/// batch once a full window hits on fewer than half its probes: from then
/// on the engine takes the solo-style direct path, so an adversarial
/// zero-overlap batch degrades to Q independent descents instead of Q
/// descents each dragging a cold hash table. Windows reset at each
/// boundary, so the always-shared pyramid apex cannot mask a disjoint
/// bulk. A layer whose store cost is heavy (the bound memo's box + slot
/// vectors) starts in [`MemoPhase::Sampling`] and pays only key-presence
/// probes until its first window proves the sharing is real.
#[derive(Debug)]
pub(crate) struct MemoGovernor {
    window: u32,
    probes: u32,
    hits: u32,
    phase: MemoPhase,
    opening: MemoPhase,
}

impl MemoGovernor {
    /// Full memoization from the first probe (cell memo).
    pub(crate) fn new(window: u32) -> Self {
        MemoGovernor {
            window,
            probes: 0,
            hits: 0,
            phase: MemoPhase::On,
            opening: MemoPhase::On,
        }
    }

    /// Presence-only sampling until the first window passes (bound memo).
    pub(crate) fn sampling(window: u32) -> Self {
        MemoGovernor {
            window,
            probes: 0,
            hits: 0,
            phase: MemoPhase::Sampling,
            opening: MemoPhase::Sampling,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.probes = 0;
        self.hits = 0;
        self.phase = self.opening;
    }

    pub(crate) fn phase(&self) -> MemoPhase {
        self.phase
    }

    /// Whether the memo layer should still be probed (cell-memo view of
    /// the two-state lifecycle).
    pub(crate) fn live(&self) -> bool {
        self.phase != MemoPhase::Off
    }

    /// Record a probe outcome; at each window boundary, promote to full
    /// memoization when at least half of the window's probes hit, retire
    /// the layer otherwise.
    pub(crate) fn record(&mut self, hit: bool) {
        self.probes += 1;
        self.hits += u32::from(hit);
        if self.probes == self.window {
            self.phase = if self.hits * 2 < self.window {
                MemoPhase::Off
            } else {
                MemoPhase::On
            };
            self.probes = 0;
            self.hits = 0;
        }
    }
}

/// Batch width above which [`Selector`] replaces the linear top scan
/// with a mirror heap: the scan costs `O(Q)` per pop but touches only
/// each frontier's root and needs zero re-arm bookkeeping, the heap
/// costs `O(log Q)` plus one push per processed pop.
pub(crate) const SELECTOR_SCAN_MAX: usize = 64;

/// Interleaving policy over the per-query frontiers: pick, at every
/// step, the globally best `(ub, level, row, col, q)` tuple among the
/// live frontier tops — exactly the order one shared heap over all
/// `(query, region)` entries would pop, because the max over per-query
/// maxima *is* the global max. Keeping the frontiers separate is what
/// lets a closed query's remainder be abandoned in O(1) instead of
/// draining through a shared heap entry by entry.
///
/// A query participates while its top is *armed*: [`Selector::next`]
/// disarms the query it pops, and the engine re-arms it after pushing
/// children (or finding its frontier empty). A query that closes — floor
/// at or above its best bound, or a batch stop — is simply never
/// re-armed.
#[derive(Debug)]
pub(crate) enum Selector {
    /// Contiguous mirror of each armed query's frontier top plus a
    /// validity bitmask (batch width ≤ 64). `keys[q]` is the top's upper
    /// bound mapped through the IEEE total-order bijection (clamped away
    /// from the 0 = disarmed sentinel), so `next` is a branch-predictable
    /// integer argmax over one dense array; the full `(ub, level, row,
    /// col, q)` comparator runs only on the rare exact key tie.
    Scan {
        tops: Vec<Region>,
        keys: Vec<u64>,
        mask: u64,
        /// Cache-aware degraded mode: once the bound memo retires (proven
        /// zero cross-query region reuse), interleaving by global bound
        /// order has nothing left to amortize, so the selector runs each
        /// armed query to completion in ascending-q order instead —
        /// restoring solo cache locality. One-way latch; per-query pop
        /// order (and thus every per-query result) is unchanged.
        serial: bool,
    },
    /// One [`BatchEntry`] per armed query. `O(log Q)` per pop for very
    /// wide batches.
    Heap(BinaryHeap<BatchEntry>),
}

/// The IEEE-754 total-order bijection `f64` → `u64`: `ub_key(a) >
/// ub_key(b)` ⇔ `a.total_cmp(&b).is_gt()`. Clamped to ≥ 1 so 0 can mean
/// "disarmed"; the clamp only merges the two bottommost bit patterns
/// (negative quiet-NaN payloads), which the tie path re-orders exactly.
#[inline]
fn ub_key(x: f64) -> u64 {
    let b = x.to_bits();
    (b ^ ((((b as i64) >> 63) as u64) | 0x8000_0000_0000_0000)).max(1)
}

impl Selector {
    pub(crate) fn for_width(m: usize) -> Self {
        if m <= SELECTOR_SCAN_MAX {
            Selector::Scan {
                tops: vec![
                    Region {
                        ub: 0.0,
                        level: 0,
                        row: 0,
                        col: 0,
                    };
                    m
                ],
                keys: vec![0; m],
                mask: 0,
                serial: false,
            }
        } else {
            Selector::Heap(BinaryHeap::with_capacity(m))
        }
    }

    /// (Re-)arm query `q` with its current frontier top, if any.
    #[inline]
    pub(crate) fn arm(&mut self, q: usize, frontiers: &[BinaryHeap<Region>]) {
        match self {
            Selector::Scan {
                tops,
                keys,
                mask,
                serial,
            } => {
                if *serial {
                    // Query-major mode reads only the armed mask; skip the
                    // top mirror and key map.
                    if frontiers[q].is_empty() {
                        *mask &= !(1 << q);
                    } else {
                        *mask |= 1 << q;
                    }
                    return;
                }
                match frontiers[q].peek() {
                    Some(r) => {
                        tops[q] = *r;
                        keys[q] = ub_key(r.ub);
                        *mask |= 1 << q;
                    }
                    None => {
                        keys[q] = 0;
                        *mask &= !(1 << q);
                    }
                }
            }
            Selector::Heap(h) => {
                if let Some(r) = frontiers[q].peek() {
                    h.push(BatchEntry {
                        ub: r.ub,
                        level: r.level as u32,
                        row: r.row as u32,
                        col: r.col as u32,
                        q: q as u32,
                    });
                }
            }
        }
    }

    /// Full-comparator argmax over the armed tops: the tie path of the
    /// scan selector, and the reference order (`BatchEntry`'s) it keeps.
    #[cold]
    fn scan_tie_break(tops: &[Region], mask: u64) -> usize {
        let mut rest = mask;
        let mut best = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        // Ascending-q scan with a strict "pops before" test keeps the
        // smallest q on full ties — BatchEntry's tie-break.
        while rest != 0 {
            let q = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let (r, b) = (&tops[q], &tops[best]);
            if r.ub
                .total_cmp(&b.ub)
                .then_with(|| b.level.cmp(&r.level))
                .then_with(|| b.row.cmp(&r.row))
                .then_with(|| b.col.cmp(&r.col))
                .is_gt()
            {
                best = q;
            }
        }
        best
    }

    /// Switch the scan selector to serial (query-major) scheduling; a
    /// no-op for the heap selector and after the first call. Engines call
    /// this when the bound memo retires: with no cross-query reuse to
    /// amortize, query-major order trades nothing away and keeps each
    /// query's working set hot.
    #[inline]
    pub(crate) fn go_serial(&mut self) {
        if let Selector::Scan { serial, .. } = self {
            *serial = true;
        }
    }

    /// Pop the next `(query, region)` — in global shared-heap order, or
    /// query-major order once [`go_serial`](Selector::go_serial) latched —
    /// disarming that query, or `None` when no query is armed.
    #[inline]
    pub(crate) fn next(&mut self, frontiers: &mut [BinaryHeap<Region>]) -> Option<(usize, Region)> {
        match self {
            Selector::Scan {
                tops,
                keys,
                mask,
                serial,
            } => {
                if *serial {
                    if *mask == 0 {
                        return None;
                    }
                    let q = mask.trailing_zeros() as usize;
                    *mask &= !(1 << q);
                    keys[q] = 0;
                    return Some((q, frontiers[q].pop().expect("armed top mirrored")));
                }
                // Branchless integer argmax; disarmed slots hold key 0 and
                // an ascending scan with a strict test keeps the smallest
                // q among equals, so a surviving tie means two armed tops
                // share the exact ub bits — settle those with the full
                // comparator.
                let mut best = 0usize;
                let mut best_key = keys[0];
                let mut tie = false;
                for (q, &k) in keys.iter().enumerate().skip(1) {
                    let gt = k > best_key;
                    tie = (tie && !gt) || k == best_key;
                    best = if gt { q } else { best };
                    best_key = if gt { k } else { best_key };
                }
                if best_key == 0 {
                    return None;
                }
                if tie {
                    best = Self::scan_tie_break(tops, *mask);
                }
                *mask &= !(1 << best);
                keys[best] = 0;
                Some((best, frontiers[best].pop().expect("armed top mirrored")))
            }
            Selector::Heap(h) => {
                let t = h.pop()?;
                let q = t.q as usize;
                Some((
                    q,
                    frontiers[q].pop().expect("selector mirrors frontier tops"),
                ))
            }
        }
    }
}

/// Reusable buffers for the batched engine: the shared frontier, the
/// cell/bound memo tables and their flat arenas, and the per-call child,
/// attribute, and range boxes. A warmed scratch allocates nothing in the
/// steady state; [`regrowths`](BatchScratch::regrowths) counts growth
/// events so tests can assert it.
#[derive(Debug, Default)]
pub struct BatchScratch {
    frontiers: Vec<BinaryHeap<Region>>,
    pub(crate) children: Vec<CellCoord>,
    pub(crate) x: Vec<f64>,
    cell_memo: MemoMap<CellSlot>,
    bound_memo: BoundMemo,
    cell_arena: Vec<f64>,
    /// Range-box buffer for the retired-memo direct bound path.
    ranges: Vec<(f64, f64)>,
    coarse_bufs: Vec<(Vec<f64>, Vec<f64>)>,
    regrowths: u64,
}

impl BatchScratch {
    /// An empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        BatchScratch::default()
    }

    /// Cumulative number of internal-buffer growth events since creation.
    /// Stable across two identical consecutive batches ⇔ the second batch
    /// allocated nothing.
    pub fn regrowths(&self) -> u64 {
        self.regrowths
    }

    fn caps(&self) -> [usize; 10] {
        let [bm, bb, bs, bx] = self.bound_memo.caps();
        [
            self.frontiers.iter().map(BinaryHeap::capacity).sum(),
            self.children.capacity(),
            self.x.capacity(),
            self.cell_memo.capacity(),
            self.cell_arena.capacity(),
            self.ranges.capacity(),
            bm,
            bb,
            bs,
            bx,
        ]
    }

    fn note_regrowth(&mut self, before: &[usize; 10]) {
        let after = self.caps();
        self.regrowths += after
            .iter()
            .zip(before.iter())
            .map(|(a, b)| u64::from(a > b))
            .sum::<u64>();
    }
}

/// Result of one batched run: per-query answers plus the physical-work
/// accounting that shows what the batch amortized.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedTopK {
    /// Per-query results, in batch order — each bit-identical to the
    /// query's solo [`resilient_top_k`](crate::resilient::resilient_top_k)
    /// run (deterministic faults, non-binding budget).
    pub queries: Vec<ResilientTopK>,
    /// Physical pages read by the whole batch (source delta).
    pub pages_read: u64,
    /// Distinct level-0 cells materialized through the source.
    pub cells_fetched: u64,
    /// Logical per-query cell reads served (≥ `cells_fetched`; the ratio
    /// is the read amortization factor).
    pub cell_requests: u64,
    /// Physical region range-box fetches (one per distinct region while
    /// the bound memo is on; one per request while it samples or is off).
    pub bound_evals: u64,
    /// Logical per-query bound requests served (≥ `bound_evals`).
    pub bound_requests: u64,
}

/// Memoized region range boxes with lazily computed per-query bounds.
///
/// The per-attribute range box of a region is fetched from the pyramids
/// exactly once per batch; each query's upper bound over that box is
/// computed on first request — with the same `bound_over_box` term order
/// as the solo engine, so slot `q` is bit-identical to the solo
/// `region_bound_into` result for query `q` — and replayed from its slot
/// on every later request. An unevaluated slot is a `NaN` sentinel (a
/// genuinely-`NaN` bound is simply recomputed, never served stale).
///
/// A [`MemoGovernor`] retires the table when the batch exhibits no
/// cross-query region sharing; the direct path then assembles the range
/// box in a reused scratch and bounds it immediately — the same fetch
/// and `bound_over_box` term order, so the value is unchanged either way.
#[derive(Debug)]
pub(crate) struct BoundMemo {
    map: MemoMap<usize>,
    /// Region range boxes, `arity` `(min, max)` pairs per ordinal.
    boxes: Vec<(f64, f64)>,
    /// Per-query bound slots, `m` per ordinal, `NaN` until first request.
    bounds: Vec<f64>,
    /// Range-box buffer for the governed-off direct path.
    scratch: Vec<(f64, f64)>,
    gov: MemoGovernor,
}

impl Default for BoundMemo {
    fn default() -> Self {
        BoundMemo {
            map: MemoMap::default(),
            boxes: Vec::new(),
            bounds: Vec::new(),
            scratch: Vec::new(),
            gov: MemoGovernor::sampling(BOUND_MEMO_WINDOW),
        }
    }
}

impl BoundMemo {
    pub(crate) fn new() -> Self {
        BoundMemo::default()
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.boxes.clear();
        self.bounds.clear();
        self.gov.reset();
    }

    pub(crate) fn caps(&self) -> [usize; 4] {
        [
            self.map.capacity(),
            self.boxes.capacity(),
            self.bounds.capacity(),
            self.scratch.capacity(),
        ]
    }

    /// Whether the governor has retired the table. Callers fast-path a
    /// retired memo through the solo `region_bound_into` at the call
    /// site, so the hot no-sharing loop inlines exactly the solo bound
    /// code; [`bound`](BoundMemo::bound) keeps an equivalent off arm as
    /// the non-inlined fallback.
    #[inline]
    pub(crate) fn is_off(&self) -> bool {
        self.gov.phase() == MemoPhase::Off
    }

    /// The upper bound of `models[q]` over the region's range box.
    /// `bound_evals` counts physical range-box fetches (one per distinct
    /// region while memoized; one per request while sampling or off).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn bound(
        &mut self,
        models: &[LinearModel],
        pyramids: &[AggregatePyramid],
        level: usize,
        row: usize,
        col: usize,
        q: usize,
        bound_evals: &mut u64,
    ) -> Result<f64, CoreError> {
        let m = models.len();
        let arity = pyramids.len();
        match self.gov.phase() {
            MemoPhase::Off => {
                self.scratch.clear();
                for p in pyramids {
                    let s = p.cell(level, row, col)?;
                    self.scratch.push((s.min, s.max));
                }
                *bound_evals += 1;
                let (_, hi) = models[q].bound_over_box(&self.scratch)?;
                Ok(hi)
            }
            MemoPhase::Sampling => {
                // Presence-only probe: count sharing without paying the
                // box/slot store, and compute the bound directly.
                let key = region_key(level, row, col);
                match self.map.entry(key) {
                    Entry::Occupied(_) => self.gov.record(true),
                    Entry::Vacant(v) => {
                        v.insert(usize::MAX);
                        self.gov.record(false);
                    }
                }
                self.scratch.clear();
                for p in pyramids {
                    let s = p.cell(level, row, col)?;
                    self.scratch.push((s.min, s.max));
                }
                *bound_evals += 1;
                let (_, hi) = models[q].bound_over_box(&self.scratch)?;
                Ok(hi)
            }
            MemoPhase::On => {
                let key = region_key(level, row, col);
                let ord = match self.map.entry(key) {
                    Entry::Occupied(mut o) => {
                        let stored = *o.get();
                        if stored == usize::MAX {
                            // Seen during sampling but never stored:
                            // upgrade to a real ordinal now.
                            self.gov.record(true);
                            let ord = self.boxes.len() / arity;
                            for p in pyramids {
                                let s = p.cell(level, row, col)?;
                                self.boxes.push((s.min, s.max));
                            }
                            self.bounds.resize(self.bounds.len() + m, f64::NAN);
                            *bound_evals += 1;
                            o.insert(ord);
                            ord
                        } else {
                            self.gov.record(true);
                            stored
                        }
                    }
                    Entry::Vacant(v) => {
                        self.gov.record(false);
                        let ord = self.boxes.len() / arity;
                        for p in pyramids {
                            let s = p.cell(level, row, col)?;
                            self.boxes.push((s.min, s.max));
                        }
                        self.bounds.resize(self.bounds.len() + m, f64::NAN);
                        *bound_evals += 1;
                        v.insert(ord);
                        ord
                    }
                };
                let slot = ord * m + q;
                let cached = self.bounds[slot];
                if !cached.is_nan() {
                    return Ok(cached);
                }
                let (_, hi) =
                    models[q].bound_over_box(&self.boxes[ord * arity..(ord + 1) * arity])?;
                self.bounds[slot] = hi;
                Ok(hi)
            }
        }
    }
}

/// Batched top-K: one shared descent answering every model in `models`
/// against the same pyramids and page source. See the module docs for the
/// sharing/identity contract; `budget` is batch-wide.
///
/// # Errors
///
/// Same validation as
/// [`resilient_top_k`](crate::resilient::resilient_top_k) (applied to the
/// first model), plus [`CoreError::Query`] when the models disagree on
/// arity. Non-page archive errors abort the whole batch, exactly as they
/// abort a solo run.
pub fn batched_top_k<S: CellSource>(
    models: &[LinearModel],
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
) -> Result<BatchedTopK, CoreError> {
    with_pooled_scratch(|scratch| {
        batched_top_k_inner(models, pyramids, k, source, budget, None, None, scratch)
    })
}

thread_local! {
    /// Per-thread [`BatchScratch`] behind the convenience wrappers, so
    /// repeated calls on one thread warm the same buffers instead of
    /// reallocating the frontier, memo tables, and arenas every batch.
    /// [`batched_top_k_with_scratch`] bypasses the pool entirely.
    static POOLED_SCRATCH: std::cell::RefCell<BatchScratch> =
        std::cell::RefCell::new(BatchScratch::new());
}

/// Run `f` with this thread's pooled scratch, or a fresh one if the pool
/// is unavailable (a source callback re-entering the engine).
fn with_pooled_scratch<T>(f: impl FnOnce(&mut BatchScratch) -> T) -> T {
    POOLED_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut BatchScratch::new()),
    })
}

/// [`batched_top_k`] polling a [`CancelToken`] at every checkpoint.
/// Cancellation stops the whole batch; every still-open query degrades
/// with sound bounds, exactly like a solo cancellation.
///
/// # Errors
///
/// Same as [`batched_top_k`].
pub fn batched_top_k_cancellable<S: CellSource>(
    models: &[LinearModel],
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
    cancel: &CancelToken,
) -> Result<BatchedTopK, CoreError> {
    with_pooled_scratch(|scratch| {
        batched_top_k_inner(
            models,
            pyramids,
            k,
            source,
            budget,
            Some(cancel),
            None,
            scratch,
        )
    })
}

/// [`batched_top_k`] consulting a quantized [`CoarseGrid`] before each
/// exact child bound, per query against that query's own floor — the same
/// prune-only contract as
/// [`resilient_top_k_coarse`](crate::resilient::resilient_top_k_coarse),
/// so per-query results stay bit-identical.
///
/// # Errors
///
/// Same as [`batched_top_k`], plus [`CoreError::Query`] when the coarse
/// grid's arity does not match the models.
pub fn batched_top_k_coarse<S: CellSource>(
    models: &[LinearModel],
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
    coarse: &CoarseGrid,
) -> Result<BatchedTopK, CoreError> {
    with_pooled_scratch(|scratch| {
        batched_top_k_inner(
            models,
            pyramids,
            k,
            source,
            budget,
            None,
            Some(coarse),
            scratch,
        )
    })
}

/// [`batched_top_k`] with every internal buffer reused from `scratch` —
/// the allocation-free form for sessions issuing many batches. Results
/// are bit-identical to [`batched_top_k`].
///
/// # Errors
///
/// Same as [`batched_top_k`].
pub fn batched_top_k_with_scratch<S: CellSource>(
    models: &[LinearModel],
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
    scratch: &mut BatchScratch,
) -> Result<BatchedTopK, CoreError> {
    batched_top_k_inner(models, pyramids, k, source, budget, None, None, scratch)
}

/// How a [`serial_drain_query`] run ended.
enum SerialEnd {
    /// The query finished on its own: bound proof closed or frontier
    /// exhausted. Its remaining frontier (if any) is provably excluded.
    Finished,
    /// A batch-wide budget stop fired mid-drain; the in-flight region is
    /// returned so the caller can surrender it as leftover.
    Stopped(Region, BudgetStop),
}

/// Run one query to completion with the solo engine's loop shape: all
/// per-query state hoisted into locals, bounds computed directly (the
/// bound memo is retired when this runs), cells still offered to the
/// governed cell memo. This is the batch's cache-aware degraded mode —
/// once the governor proves zero cross-query region reuse, query-major
/// execution restores solo locality and sheds the selector round-trip,
/// while each query's own pop order (and thus every per-query result)
/// stays exactly the solo order.
#[allow(clippy::too_many_arguments)]
fn serial_drain_query<S: CellSource>(
    q: usize,
    first: Region,
    models: &[LinearModel],
    pyramids: &[AggregatePyramid],
    source: &S,
    budget: &ExecutionBudget,
    cancel: Option<&CancelToken>,
    deadline: &WallDeadline,
    pages_at_entry: u64,
    ticks_at_entry: u64,
    coarse: Option<&CoarseGrid>,
    coarse_bufs: &[(Vec<f64>, Vec<f64>)],
    cols: usize,
    frontiers: &mut [BinaryHeap<Region>],
    heaps: &mut [TopKHeap],
    floors: &mut [Option<f64>],
    lost: &mut [Vec<(Region, usize)>],
    efforts: &mut [EffortReport],
    total_ma: &mut u64,
    children: &mut Vec<CellCoord>,
    x: &mut Vec<f64>,
    ranges: &mut Vec<(f64, f64)>,
    cell_memo: &mut MemoMap<CellSlot>,
    cell_gov: &mut MemoGovernor,
    cell_arena: &mut Vec<f64>,
    cells_fetched: &mut u64,
    cell_requests: &mut u64,
    bound_evals: &mut u64,
    bound_requests: &mut u64,
) -> Result<SerialEnd, CoreError> {
    let arity = pyramids.len();
    let n = arity as u64;
    let model = &models[q];
    let frontier = &mut frontiers[q];
    let heap = &mut heaps[q];
    let effort = &mut efforts[q];
    let lost_q = &mut lost[q];
    let mut floor = floors[q];
    let mut e = first;
    let end = loop {
        if floor.is_some_and(|f| f >= e.ub) {
            break SerialEnd::Finished;
        }
        if let Some(stop) = checkpoint_stop(
            cancel,
            deadline,
            budget,
            *total_ma,
            source.pages_read().saturating_sub(pages_at_entry),
            source.ticks_elapsed().saturating_sub(ticks_at_entry),
        ) {
            break SerialEnd::Stopped(e, stop);
        }
        if e.level == 0 {
            *cell_requests += 1;
            if cell_gov.live() {
                let ck = cell_key(e.row as u32, e.col as u32);
                let slot = match cell_memo.get(&ck) {
                    Some(s) => {
                        cell_gov.record(true);
                        *s
                    }
                    None => {
                        cell_gov.record(false);
                        let s = match read_base_vector_into(source, arity, e.row, e.col, x) {
                            Ok(()) => {
                                *cells_fetched += 1;
                                let off = cell_arena.len();
                                cell_arena.extend_from_slice(x);
                                CellSlot::Loaded(off)
                            }
                            Err(CoreError::Archive(
                                ArchiveError::PageIo { page }
                                | ArchiveError::PageQuarantined { page }
                                | ArchiveError::PageCorrupt { page },
                            )) => {
                                let page = source.page_of(e.row, e.col).unwrap_or(page);
                                CellSlot::Lost(page)
                            }
                            Err(err) => return Err(err),
                        };
                        cell_memo.insert(ck, s);
                        s
                    }
                };
                match slot {
                    CellSlot::Loaded(off) => {
                        effort.multiply_adds += n;
                        *total_ma += n;
                        heap.offer(ScoredItem {
                            index: e.row * cols + e.col,
                            score: model.evaluate(&cell_arena[off..off + arity]),
                        });
                        floor = heap.floor();
                    }
                    CellSlot::Lost(page) => lost_q.push((e, page)),
                }
            } else {
                match read_base_vector_into(source, arity, e.row, e.col, x) {
                    Ok(()) => {
                        *cells_fetched += 1;
                        effort.multiply_adds += n;
                        *total_ma += n;
                        heap.offer(ScoredItem {
                            index: e.row * cols + e.col,
                            score: model.evaluate(x),
                        });
                        floor = heap.floor();
                    }
                    Err(CoreError::Archive(
                        ArchiveError::PageIo { page }
                        | ArchiveError::PageQuarantined { page }
                        | ArchiveError::PageCorrupt { page },
                    )) => {
                        let page = source.page_of(e.row, e.col).unwrap_or(page);
                        lost_q.push((e, page));
                    }
                    Err(err) => return Err(err),
                }
            }
        } else {
            let level = e.level;
            pyramids[0].children_into(level, e.row, e.col, children);
            for &child in children.iter() {
                if let Some(cg) = coarse {
                    if let Some(f) = floor {
                        let (qc, qm) = &coarse_bufs[q];
                        if cg.cell_upper_bound(qc, qm, level - 1, child.row, child.col) < f {
                            continue;
                        }
                    }
                }
                *bound_requests += 1;
                *bound_evals += 1;
                *total_ma += n;
                let ub = region_bound_into(
                    model,
                    pyramids,
                    level - 1,
                    child.row,
                    child.col,
                    ranges,
                    effort,
                )?;
                frontier.push(Region {
                    ub,
                    level: level - 1,
                    row: child.row,
                    col: child.col,
                });
            }
        }
        match frontier.pop() {
            Some(next) => e = next,
            None => break SerialEnd::Finished,
        }
    };
    floors[q] = floor;
    Ok(end)
}

#[allow(clippy::too_many_arguments)]
fn batched_top_k_inner<S: CellSource>(
    models: &[LinearModel],
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
    cancel: Option<&CancelToken>,
    coarse: Option<&CoarseGrid>,
    scratch: &mut BatchScratch,
) -> Result<BatchedTopK, CoreError> {
    let m = models.len();
    if m == 0 {
        return Ok(BatchedTopK {
            queries: Vec::new(),
            pages_read: 0,
            cells_fetched: 0,
            cell_requests: 0,
            bound_evals: 0,
            bound_requests: 0,
        });
    }
    let ((rows, cols), levels) = validate_grid_inputs(&models[0], pyramids, k)?;
    for model in &models[1..] {
        if model.arity() != models[0].arity() {
            return Err(CoreError::Query(
                "batched queries must share the model arity".into(),
            ));
        }
    }
    let arity = models[0].arity();
    let n = arity as u64;
    let total_cells = (rows * cols) as u64;
    let pages_at_entry = source.pages_read();
    let ticks_at_entry = source.ticks_elapsed();
    let deadline = WallDeadline::starting_now(budget);

    let caps = scratch.caps();
    let BatchScratch {
        frontiers,
        children,
        x,
        cell_memo,
        bound_memo,
        cell_arena,
        ranges,
        coarse_bufs,
        ..
    } = scratch;
    let mut selector = Selector::for_width(m);
    if frontiers.len() < m {
        frontiers.resize_with(m, BinaryHeap::new);
    }
    for f in frontiers.iter_mut() {
        f.clear();
    }
    cell_memo.clear();
    bound_memo.clear();
    cell_arena.clear();
    if let Some(cg) = coarse {
        coarse_bufs.resize_with(m, Default::default);
        for (q, model) in models.iter().enumerate() {
            let (qc, qm) = &mut coarse_bufs[q];
            cg.prepare_into(model, qc, qm)?;
        }
    }

    let mut efforts: Vec<EffortReport> = (0..m)
        .map(|_| EffortReport {
            multiply_adds: 0,
            naive_multiply_adds: n * total_cells,
        })
        .collect();
    let mut total_ma = 0u64;
    let mut heaps: Vec<TopKHeap> = (0..m).map(|_| TopKHeap::new(k)).collect();
    let mut floors: Vec<Option<f64>> = vec![None; m];
    let mut done: Vec<bool> = vec![false; m];
    let mut done_count = 0usize;
    let mut lost: Vec<Vec<(Region, usize)>> = (0..m).map(|_| Vec::new()).collect();
    let mut leftovers: Vec<Vec<Region>> = (0..m).map(|_| Vec::new()).collect();
    let mut stops: Vec<Option<BudgetStop>> = vec![None; m];
    let mut cells_fetched = 0u64;
    let mut cell_requests = 0u64;
    let mut bound_evals = 0u64;
    let mut bound_requests = 0u64;
    let mut cell_gov = MemoGovernor::new(CELL_MEMO_WINDOW);

    // Every query starts at the shared root; each is charged its own root
    // bound, exactly like the solo engine, even though the range box is
    // fetched once.
    let top = levels - 1;
    for q in 0..m {
        let ub = bound_memo.bound(models, pyramids, top, 0, 0, q, &mut bound_evals)?;
        efforts[q].multiply_adds += n;
        total_ma += n;
        bound_requests += 1;
        frontiers[q].push(Region {
            ub,
            level: top,
            row: 0,
            col: 0,
        });
        selector.arm(q, frontiers);
    }

    // The selector holds exactly one entry per live query: the current top
    // of that query's solo-sized frontier. Its max is the global max over
    // all frontier entries (each top is its frontier's max), so pops
    // interleave in exactly the shared descending order, and a closed
    // query's frontier is abandoned in O(1) instead of draining through
    // the heap entry by entry.
    while let Some((q, e)) = selector.next(frontiers) {
        if bound_memo.is_off() {
            // No cross-query reuse left to amortize: latch query-major
            // scheduling and drain this query to completion with the
            // solo-shaped loop.
            selector.go_serial();
            match serial_drain_query(
                q,
                e,
                models,
                pyramids,
                source,
                budget,
                cancel,
                &deadline,
                pages_at_entry,
                ticks_at_entry,
                coarse,
                coarse_bufs,
                cols,
                frontiers,
                &mut heaps,
                &mut floors,
                &mut lost,
                &mut efforts,
                &mut total_ma,
                children,
                x,
                ranges,
                cell_memo,
                &mut cell_gov,
                cell_arena,
                &mut cells_fetched,
                &mut cell_requests,
                &mut bound_evals,
                &mut bound_requests,
            )? {
                SerialEnd::Finished => {
                    done[q] = true;
                    done_count += 1;
                    if done_count == m {
                        break;
                    }
                    continue;
                }
                SerialEnd::Stopped(last, stop) => {
                    leftovers[q].push(last);
                    stops[q] = Some(stop);
                    for (rq, f) in frontiers.iter_mut().enumerate() {
                        if done[rq] || (rq != q && f.is_empty()) {
                            continue;
                        }
                        stops[rq] = Some(stop);
                        leftovers[rq].extend(f.drain());
                    }
                    break;
                }
            }
        }
        if floors[q].is_some_and(|f| f >= e.ub) {
            // This query's bound proof is closed: every entry left in its
            // frontier carries a smaller bound. Not re-arming the selector
            // drops them wholesale — exactly the solo engine's break.
            done[q] = true;
            done_count += 1;
            if done_count == m {
                break;
            }
            continue;
        }
        // One cooperative checkpoint per logical pop — the same cadence as
        // Q solo runs — against the *batch-wide* budget: summed
        // multiply-adds and the shared source clocks.
        let checked = checkpoint_stop(
            cancel,
            &deadline,
            budget,
            total_ma,
            source.pages_read().saturating_sub(pages_at_entry),
            source.ticks_elapsed().saturating_sub(ticks_at_entry),
        );
        if let Some(stop) = checked {
            leftovers[q].push(e);
            stops[q] = Some(stop);
            for (rq, f) in frontiers.iter_mut().enumerate() {
                if done[rq] || (rq != q && f.is_empty()) {
                    // A closed query keeps its finished answer; a query
                    // whose frontier ran dry before the stop completed on
                    // its own — neither takes the stop, as in a solo run.
                    continue;
                }
                stops[rq] = Some(stop);
                leftovers[rq].extend(f.drain());
            }
            break;
        }
        if e.level == 0 {
            cell_requests += 1;
            if cell_gov.live() {
                let ck = cell_key(e.row as u32, e.col as u32);
                let slot = match cell_memo.get(&ck) {
                    Some(s) => {
                        cell_gov.record(true);
                        *s
                    }
                    None => {
                        cell_gov.record(false);
                        let s = match read_base_vector_into(source, arity, e.row, e.col, x) {
                            Ok(()) => {
                                cells_fetched += 1;
                                let off = cell_arena.len();
                                cell_arena.extend_from_slice(x);
                                CellSlot::Loaded(off)
                            }
                            Err(CoreError::Archive(
                                ArchiveError::PageIo { page }
                                | ArchiveError::PageQuarantined { page }
                                | ArchiveError::PageCorrupt { page },
                            )) => {
                                let page = source.page_of(e.row, e.col).unwrap_or(page);
                                CellSlot::Lost(page)
                            }
                            Err(err) => return Err(err),
                        };
                        cell_memo.insert(ck, s);
                        s
                    }
                };
                match slot {
                    CellSlot::Loaded(off) => {
                        efforts[q].multiply_adds += n;
                        total_ma += n;
                        heaps[q].offer(ScoredItem {
                            index: e.row * cols + e.col,
                            score: models[q].evaluate(&cell_arena[off..off + arity]),
                        });
                        floors[q] = heaps[q].floor();
                    }
                    CellSlot::Lost(page) => lost[q].push((e, page)),
                }
            } else {
                // Governed off: the solo engine's read-and-score path,
                // with no arena copy and no table insert.
                match read_base_vector_into(source, arity, e.row, e.col, x) {
                    Ok(()) => {
                        cells_fetched += 1;
                        efforts[q].multiply_adds += n;
                        total_ma += n;
                        heaps[q].offer(ScoredItem {
                            index: e.row * cols + e.col,
                            score: models[q].evaluate(x),
                        });
                        floors[q] = heaps[q].floor();
                    }
                    Err(CoreError::Archive(
                        ArchiveError::PageIo { page }
                        | ArchiveError::PageQuarantined { page }
                        | ArchiveError::PageCorrupt { page },
                    )) => {
                        let page = source.page_of(e.row, e.col).unwrap_or(page);
                        lost[q].push((e, page));
                    }
                    Err(err) => return Err(err),
                }
            }
            selector.arm(q, frontiers);
            continue;
        }
        let level = e.level;
        pyramids[0].children_into(level, e.row, e.col, children);
        for &child in children.iter() {
            // Per-query coarse pass against this query's own floor — the
            // solo prune-only contract, query by query.
            if let Some(cg) = coarse {
                if let Some(f) = floors[q] {
                    let (qc, qm) = &coarse_bufs[q];
                    if cg.cell_upper_bound(qc, qm, level - 1, child.row, child.col) < f {
                        continue;
                    }
                }
            }
            bound_requests += 1;
            let ub = if bound_memo.is_off() {
                // Retired memo: the solo engine's bound path, inlined
                // with the same reused range-box buffer.
                bound_evals += 1;
                region_bound_into(
                    &models[q],
                    pyramids,
                    level - 1,
                    child.row,
                    child.col,
                    ranges,
                    &mut efforts[q],
                )?
            } else {
                let ub = bound_memo.bound(
                    models,
                    pyramids,
                    level - 1,
                    child.row,
                    child.col,
                    q,
                    &mut bound_evals,
                )?;
                efforts[q].multiply_adds += n;
                ub
            };
            total_ma += n;
            frontiers[q].push(Region {
                ub,
                level: level - 1,
                row: child.row,
                col: child.col,
            });
        }
        selector.arm(q, frontiers);
    }

    let pages_read = source.pages_read().saturating_sub(pages_at_entry);
    let parent_level = 1.min(levels - 1);
    let mut queries = Vec::with_capacity(m);
    for (q, heap) in heaps.into_iter().enumerate() {
        // Only a full heap gives a sound exclusion floor.
        let floor = heap.floor();
        let excluded = |hi: f64| floor.is_some_and(|f| f >= hi);
        let mut unresolved = 0u64;
        let mut skipped: BTreeSet<usize> = BTreeSet::new();
        let mut hits: Vec<ResilientHit> = heap
            .into_sorted()
            .into_iter()
            .map(|item| ResilientHit {
                cell: CellCoord::new(item.index / cols, item.index % cols),
                level: 0,
                score: item.score,
                bounds: ScoreBounds::exact(item.score),
                exact: true,
            })
            .collect();
        for region in &leftovers[q] {
            let (candidate, count) = region_candidate(
                &models[q],
                pyramids,
                region.level,
                region.row,
                region.col,
                &mut efforts[q],
            )?;
            if excluded(candidate.bounds.hi) {
                continue; // Provably outside the top-K: resolved.
            }
            unresolved += count;
            hits.push(candidate);
        }
        for (region, page) in &lost[q] {
            if excluded(region.ub) {
                continue; // Resolved by the deterministic bound.
            }
            skipped.insert(*page);
            let (mut candidate, _) = region_candidate(
                &models[q],
                pyramids,
                parent_level,
                region.row >> parent_level,
                region.col >> parent_level,
                &mut efforts[q],
            )?;
            candidate.cell = CellCoord::new(region.row, region.col);
            candidate.level = 0;
            unresolved += 1;
            hits.push(candidate);
        }
        hits.sort_by(|a, b| {
            b.bounds
                .hi
                .total_cmp(&a.bounds.hi)
                .then_with(|| b.score.total_cmp(&a.score))
                .then_with(|| a.cell.cmp(&b.cell))
        });
        hits.truncate(k);
        queries.push(ResilientTopK {
            results: hits,
            effort: efforts[q],
            completeness: 1.0 - unresolved as f64 / total_cells as f64,
            skipped_pages: skipped.into_iter().collect(),
            budget_stop: stops[q],
        });
    }
    scratch.note_regrowth(&caps);
    Ok(BatchedTopK {
        queries,
        pages_read,
        cells_fetched,
        cell_requests,
        bound_evals,
        bound_requests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::pyramid_top_k;
    use crate::resilient::{resilient_top_k, resilient_top_k_cancellable, resilient_top_k_coarse};
    use crate::source::{CachedTileSource, TileSource};
    use mbir_archive::fault::FaultProfile;
    use mbir_archive::grid::Grid2;
    use mbir_archive::stats::AccessStats;
    use mbir_archive::tile::TileStore;

    fn smooth_grid(i: usize, rows: usize, cols: usize) -> Grid2<f64> {
        Grid2::from_fn(rows, cols, |r, c| {
            ((r as f64 / 9.0 + i as f64).sin() + (c as f64 / 11.0).cos()) * 50.0 + 100.0
        })
    }

    fn world(
        arity: usize,
        rows: usize,
        cols: usize,
        tile: usize,
    ) -> (
        Vec<LinearModel>,
        Vec<AggregatePyramid>,
        Vec<TileStore>,
        AccessStats,
    ) {
        let grids: Vec<Grid2<f64>> = (0..arity).map(|i| smooth_grid(i, rows, cols)).collect();
        let pyramids = grids.iter().map(AggregatePyramid::build).collect();
        let stats = AccessStats::new();
        let stores = grids
            .iter()
            .map(|g| {
                TileStore::new(g.clone(), tile)
                    .unwrap()
                    .with_stats(stats.clone())
            })
            .collect();
        // A spread of query directions over the shared attributes: sign
        // flips, magnitude skews, and offsets, so floors mature at
        // different paces across the batch.
        let models = (0..6)
            .map(|qi| {
                let coeffs: Vec<f64> = (0..arity)
                    .map(|a| 1.0 - 0.3 * a as f64 + 0.17 * qi as f64 - 0.09 * (a * qi) as f64)
                    .collect();
                LinearModel::new(coeffs, 0.25 * qi as f64).unwrap()
            })
            .collect();
        (models, pyramids, stores, stats)
    }

    fn fresh_sources(stores: &[TileStore]) -> TileSource<'_> {
        TileSource::new(stores).unwrap()
    }

    #[test]
    fn healthy_batch_is_bit_identical_to_solo_runs() {
        let (models, pyramids, stores, _) = world(3, 48, 48, 8);
        let budget = ExecutionBudget::unlimited();
        for k in [1usize, 5, 9] {
            let src = fresh_sources(&stores);
            let batch = batched_top_k(&models, &pyramids, k, &src, &budget).unwrap();
            assert_eq!(batch.queries.len(), models.len());
            for (q, model) in models.iter().enumerate() {
                let solo_src = fresh_sources(&stores);
                let solo = resilient_top_k(model, &pyramids, k, &solo_src, &budget).unwrap();
                // Full structural equality: results, effort, completeness,
                // skipped pages, and stop reason all match the solo run.
                assert_eq!(batch.queries[q], solo, "k={k} q={q}");
            }
        }
    }

    #[test]
    fn batch_amortizes_pages_and_bounds_across_queries() {
        let (models, pyramids, stores, _) = world(3, 64, 64, 8);
        let budget = ExecutionBudget::unlimited();
        let src = fresh_sources(&stores);
        let batch = batched_top_k(&models, &pyramids, 7, &src, &budget).unwrap();
        let mut solo_pages = 0u64;
        for model in &models {
            let solo_src = fresh_sources(&stores);
            let before = solo_src.pages_read();
            resilient_top_k(model, &pyramids, 7, &solo_src, &budget).unwrap();
            solo_pages += solo_src.pages_read() - before;
        }
        assert!(
            batch.pages_read <= solo_pages,
            "batched {} pages vs solo sum {}",
            batch.pages_read,
            solo_pages
        );
        // The memo tables actually deduplicate: logical requests exceed
        // physical work whenever queries overlap. The spread batch diverges
        // early, so the sampling governor may retire the bound memo there
        // (evals == requests is then correct); cells still amortize.
        assert!(batch.cell_requests >= batch.cells_fetched);
        assert!(batch.bound_requests >= batch.bound_evals);

        // A tightly-overlapping batch keeps the bound memo on past the
        // sampling window: physical box fetches stay strictly below the
        // logical request count.
        let near: Vec<LinearModel> = (0..6)
            .map(|qi| {
                let t = qi as f64;
                let coeffs: Vec<f64> = (0..pyramids.len())
                    .map(|a| 1.0 + 0.01 * t - 0.3 * a as f64)
                    .collect();
                LinearModel::new(coeffs, 0.02 * t).unwrap()
            })
            .collect();
        let src = fresh_sources(&stores);
        let near_batch = batched_top_k(&near, &pyramids, 7, &src, &budget).unwrap();
        assert!(
            near_batch.bound_requests > near_batch.bound_evals,
            "overlapping batch should amortize range-box fetches: {} requests vs {} evals",
            near_batch.bound_requests,
            near_batch.bound_evals
        );
        assert!(near_batch.cell_requests > near_batch.cells_fetched);
    }

    #[test]
    fn singleton_batch_equals_solo_run_exactly() {
        let (models, pyramids, stores, _) = world(2, 32, 32, 8);
        let budget = ExecutionBudget::unlimited();
        let src = fresh_sources(&stores);
        let batch = batched_top_k(&models[..1], &pyramids, 5, &src, &budget).unwrap();
        let solo_src = fresh_sources(&stores);
        let solo = resilient_top_k(&models[0], &pyramids, 5, &solo_src, &budget).unwrap();
        assert_eq!(batch.queries[0], solo);
        assert_eq!(batch.cell_requests, batch.cells_fetched);
    }

    #[test]
    fn lost_pages_degrade_each_query_exactly_like_solo() {
        let (models, pyramids, stores, _) = world(2, 32, 32, 8);
        let winner = pyramid_top_k(&models[0], &pyramids, 1).unwrap().results[0].cell;
        let page = stores[0].page_of(winner.row, winner.col);
        let stores: Vec<TileStore> = stores
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).permanent(page)))
            .collect();
        let budget = ExecutionBudget::unlimited();
        let src = fresh_sources(&stores);
        let batch = batched_top_k(&models, &pyramids, 3, &src, &budget).unwrap();
        let mut any_degraded = false;
        for (q, model) in models.iter().enumerate() {
            let solo_src = fresh_sources(&stores);
            let solo = resilient_top_k(model, &pyramids, 3, &solo_src, &budget).unwrap();
            any_degraded |= solo.is_degraded();
            assert_eq!(batch.queries[q], solo, "q={q}");
        }
        assert!(any_degraded, "fault must actually degrade some query");
    }

    #[test]
    fn corrupt_page_verdict_is_shared_and_matches_solo() {
        let (models, pyramids, stores, _) = world(2, 32, 32, 8);
        let winner = pyramid_top_k(&models[1], &pyramids, 1).unwrap().results[0].cell;
        let page = stores[0].page_of(winner.row, winner.col);
        let stores: Vec<TileStore> = stores
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).corrupt(page)))
            .collect();
        let budget = ExecutionBudget::unlimited();
        let src = CachedTileSource::new(&stores, 16).unwrap();
        let batch = batched_top_k(&models, &pyramids, 4, &src, &budget).unwrap();
        for (q, model) in models.iter().enumerate() {
            let solo_src = CachedTileSource::new(&stores, 16).unwrap();
            let solo = resilient_top_k(model, &pyramids, 4, &solo_src, &budget).unwrap();
            assert_eq!(batch.queries[q], solo, "q={q}");
        }
    }

    #[test]
    fn coarse_batch_is_bit_identical_to_coarse_solo_runs() {
        let (models, pyramids, stores, _) = world(3, 64, 64, 8);
        let coarse = CoarseGrid::build(&pyramids).unwrap();
        let budget = ExecutionBudget::unlimited();
        let src = fresh_sources(&stores);
        let batch = batched_top_k_coarse(&models, &pyramids, 7, &src, &budget, &coarse).unwrap();
        for (q, model) in models.iter().enumerate() {
            let solo_src = fresh_sources(&stores);
            let solo =
                resilient_top_k_coarse(model, &pyramids, 7, &solo_src, &budget, &coarse).unwrap();
            assert_eq!(batch.queries[q], solo, "q={q}");
        }
    }

    #[test]
    fn pre_expired_deadline_stops_every_query_like_solo() {
        use std::time::Duration;
        let (models, pyramids, stores, _) = world(2, 64, 64, 8);
        let budget = ExecutionBudget::unlimited().with_wall_deadline(Duration::ZERO);
        let src = fresh_sources(&stores);
        let batch = batched_top_k(&models, &pyramids, 5, &src, &budget).unwrap();
        for (q, model) in models.iter().enumerate() {
            let solo_src = fresh_sources(&stores);
            let solo = resilient_top_k(model, &pyramids, 5, &solo_src, &budget).unwrap();
            assert_eq!(solo.budget_stop, Some(BudgetStop::WallClock));
            // A stop at the very first checkpoint leaves each query with
            // exactly its root leftover — identical to the solo stop.
            assert_eq!(batch.queries[q], solo, "q={q}");
        }
    }

    #[test]
    fn pre_cancelled_token_stops_every_query_like_solo() {
        let (models, pyramids, stores, _) = world(2, 48, 48, 8);
        let budget = ExecutionBudget::unlimited();
        let token = CancelToken::new();
        token.cancel();
        let src = fresh_sources(&stores);
        let batch =
            batched_top_k_cancellable(&models, &pyramids, 5, &src, &budget, &token).unwrap();
        for (q, model) in models.iter().enumerate() {
            let solo_src = fresh_sources(&stores);
            let solo = resilient_top_k_cancellable(model, &pyramids, 5, &solo_src, &budget, &token)
                .unwrap();
            assert_eq!(solo.budget_stop, Some(BudgetStop::Cancelled));
            assert_eq!(batch.queries[q], solo, "q={q}");
        }
    }

    #[test]
    fn mid_run_budget_stop_is_sound_per_query() {
        let (models, pyramids, stores, _) = world(2, 64, 64, 8);
        let src = fresh_sources(&stores);
        let unlimited =
            batched_top_k(&models, &pyramids, 5, &src, &ExecutionBudget::unlimited()).unwrap();
        let total: u64 = unlimited
            .queries
            .iter()
            .map(|r| r.effort.multiply_adds)
            .sum();
        let budget = ExecutionBudget::unlimited().with_max_multiply_adds(total / 3);
        let src = fresh_sources(&stores);
        let stopped = batched_top_k(&models, &pyramids, 5, &src, &budget).unwrap();
        let mut any_stopped = false;
        for (q, r) in stopped.queries.iter().enumerate() {
            any_stopped |= r.budget_stop.is_some();
            assert!(r.completeness >= 0.0 && r.completeness <= 1.0);
            assert!(r.results.len() <= 5);
            // Soundness: the true winner is confirmed exactly, covered by
            // a degraded candidate's bound, or pushed out of a full report.
            let best = unlimited.queries[q].results[0].score;
            assert!(
                r.results.len() == 5
                    || r.results
                        .iter()
                        .any(|h| (h.exact && h.score == best) || (!h.exact && h.bounds.hi >= best)),
                "q={q}: winner neither confirmed nor covered"
            );
            for hit in r.results.iter().filter(|h| !h.exact) {
                assert!(hit.bounds.lo <= hit.score && hit.score <= hit.bounds.hi);
            }
        }
        assert!(any_stopped, "budget must actually bind");
    }

    #[test]
    fn warmed_scratch_stops_allocating_across_batches() {
        let (models, pyramids, stores, _) = world(3, 48, 48, 8);
        let budget = ExecutionBudget::unlimited();
        let mut scratch = BatchScratch::new();
        let src = fresh_sources(&stores);
        let first =
            batched_top_k_with_scratch(&models, &pyramids, 6, &src, &budget, &mut scratch).unwrap();
        let warm = scratch.regrowths();
        for _ in 0..3 {
            let src = fresh_sources(&stores);
            let again =
                batched_top_k_with_scratch(&models, &pyramids, 6, &src, &budget, &mut scratch)
                    .unwrap();
            assert_eq!(again.queries, first.queries);
            assert_eq!(
                scratch.regrowths(),
                warm,
                "a warmed batch scratch must not regrow"
            );
        }
    }

    #[test]
    fn empty_batch_and_mismatched_arity_are_handled() {
        let (models, pyramids, stores, _) = world(2, 16, 16, 8);
        let src = fresh_sources(&stores);
        let budget = ExecutionBudget::unlimited();
        let empty = batched_top_k(&[], &pyramids, 3, &src, &budget).unwrap();
        assert!(empty.queries.is_empty());
        assert_eq!(empty.pages_read, 0);
        let odd = LinearModel::new(vec![1.0, 2.0, 3.0], 0.0).unwrap();
        let mixed = vec![models[0].clone(), odd];
        assert!(batched_top_k(&mixed, &pyramids, 3, &src, &budget).is_err());
        assert!(batched_top_k(&models, &pyramids, 0, &src, &budget).is_err());
    }
}
