//! Quantized coarse-pass pruning over pyramid cells.
//!
//! The index layer's [`mbir_index::quant`] rejects *point rows* below the
//! top-K floor from an i8 side structure before any f64 is touched. This
//! module is the same idea one layer up: each pyramid level's per-cell
//! `[min, max]` attribute intervals are packed into a per-level, per-attribute
//! affine i8 code pair, so the descent engines can reject a whole child
//! *region* — before the exact [`bound_over_box`] interval arithmetic runs —
//! whenever the quantized cell upper bound falls strictly below the current
//! K-th floor.
//!
//! ## The prune-only contract
//!
//! The coarse pass may only **prune**, never decide. Every region it lets
//! through gets the exact bound and descends as before; every region it
//! rejects is *provably* strictly below the floor, so no cell under it could
//! have entered the top-K even on a tie (ties require exact equality, and
//! pruning requires a strict `ub < floor`). Because the frontier is ordered
//! by a total order (the engine's `Region`: upper bound, then coordinates),
//! dropping a pruned region never reorders the survivors, and
//! the engines' results, completeness, and skipped-page accounting stay
//! bit-identical to the unpruned runs at every thread count. Only the
//! *effort* differs — that is the point.
//!
//! ## The bound derivation
//!
//! For level `l` and attribute `j`, cell interval endpoints are stored as
//! `x ≈ bias_j + scale_j · q` with `q ∈ [-127, 127]`, `qmin` rounding the
//! cell minimum and `qmax` the cell maximum. The decoded interval
//! `[bias + scale·qmin − err_j, bias + scale·qmax + err_j]` contains the
//! true cell interval, with `err_j` the *measured* maximum decode deviation
//! over the level, padded by `4ε(maxabs_j + |bias_j| + 127·scale_j)` for
//! the rounding of the measurement itself.
//!
//! A prepared query folds the model in once per level:
//! `coeff_j = a_j · scale_j`, `base = intercept + Σ a_j · bias_j`, and the
//! cell bound is `base + Σ coeff_j · (coeff_j ≥ 0 ? qmax_j : qmin_j) +
//! slack`. The slack `Σ|a_j|·err_j + γ(|intercept| + M + B + 2C)` with
//! `M = Σ|a_j|·maxabs_j`, `B = Σ|a_j|·|bias_j|`,
//! `C = 127·Σ|coeff_j|`, and `γ = (2n + 8)ε` covers, simultaneously, the
//! summation error of the coarse pass itself, of the *computed*
//! [`bound_over_box`] upper bound, and of any *computed*
//! [`evaluate`](mbir_models::linear::LinearModel::evaluate) at a point
//! inside the box — the quantized bound dominates all three, which is what
//! makes prune-only sound in floating point, not just on paper. A level
//! whose magnitude sums exceed [`OVERFLOW_GUARD`] is unusable for that
//! query (bound `+∞`, never pruned): below the guard no partial sum can
//! overflow, ruling out NaN scores sneaking past a finite bound.
//!
//! ## Layout
//!
//! Codes are cell-major interleaved: cell `(r, c)` owns the `2·n`
//! consecutive bytes at `(r·cols + c)·2n`, attribute `j` at offsets `2j`
//! (min code) and `2j + 1` (max code). One contiguous i8 read per cell
//! check, instead of `n` scattered [`CellStats`] lookups across `n`
//! pyramid allocations.
//!
//! [`bound_over_box`]: mbir_models::linear::LinearModel::bound_over_box
//! [`CellStats`]: mbir_progressive::pyramid::CellStats

use crate::error::CoreError;
use mbir_models::linear::LinearModel;
use mbir_progressive::pyramid::AggregatePyramid;

/// Largest quantized magnitude: codes live in `[-127, 127]`.
const QMAX: f64 = 127.0;

/// Machine epsilon shorthand for the error-bound arithmetic.
const EPS: f64 = f64::EPSILON;

/// Magnitude cap above which a level is unusable for a query: with every
/// magnitude sum below this, no partial sum of the exact bound or of an
/// exact evaluation can overflow to ±∞ (and hence never produce NaN), so
/// a finite quantized bound soundly dominates them.
const OVERFLOW_GUARD: f64 = 1e300;

/// Nudges a bound upward by a relative + tiny absolute pad, absorbing the
/// rounding of the final few additions that assemble the bound.
#[inline]
fn pad_up(x: f64) -> f64 {
    x + x.abs() * (16.0 * EPS) + f64::MIN_POSITIVE
}

/// One pyramid level's quantization: interleaved per-cell code pairs plus
/// everything the per-query preparation needs.
#[derive(Debug, Clone)]
struct CoarseLevel {
    /// Grid rows at this level.
    rows: usize,
    /// Grid columns at this level.
    cols: usize,
    /// False when the level holds non-finite cell stats: such a level is
    /// never pruned (its bound is `+∞` for every query).
    usable: bool,
    /// Per-attribute quantization step (0.0 for constant attributes).
    scale: Vec<f64>,
    /// Per-attribute affine offset (the level interval midpoint).
    bias: Vec<f64>,
    /// Per-attribute measured + padded decode error bound.
    err: Vec<f64>,
    /// Per-attribute max endpoint magnitude over the level.
    maxabs: Vec<f64>,
    /// Cell-major interleaved codes: cell `(r, c)` attribute `j` lives at
    /// `(r·cols + c)·2·arity + 2j` (min code) and `+ 1` (max code).
    codes: Vec<i8>,
}

/// The i8 coarse-pass side structure over a set of attribute pyramids.
///
/// Build once per archive ([`CoarseGrid::build`]), prepare once per query
/// ([`CoarseGrid::prepare_into`], filling caller-owned scratch vectors),
/// then ask [`CoarseGrid::cell_upper_bound`] for O(arity) sound cell
/// bounds during descent.
#[derive(Debug, Clone)]
pub struct CoarseGrid {
    arity: usize,
    levels: Vec<CoarseLevel>,
}

impl CoarseGrid {
    /// Quantizes one pyramid per model attribute, level by level.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Query`] when no pyramids are given or their
    /// shapes disagree, and propagates pyramid access errors.
    pub fn build(pyramids: &[AggregatePyramid]) -> Result<Self, CoreError> {
        let arity = pyramids.len();
        if arity == 0 {
            return Err(CoreError::Query(
                "coarse grid needs at least one attribute pyramid".into(),
            ));
        }
        let level_count = pyramids[0].levels();
        for (j, p) in pyramids.iter().enumerate() {
            if p.levels() != level_count || p.base_shape() != pyramids[0].base_shape() {
                return Err(CoreError::Query(format!(
                    "pyramid {j} shape disagrees with pyramid 0"
                )));
            }
        }
        let mut levels = Vec::with_capacity(level_count);
        for l in 0..level_count {
            let (rows, cols) = pyramids[0].level_shape(l);
            levels.push(CoarseLevel::pack(pyramids, l, rows, cols)?);
        }
        Ok(CoarseGrid { arity, levels })
    }

    /// Attributes per cell (one pyramid each).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Pyramid levels covered.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Prepares the per-query coarse state for `model` into caller-owned
    /// scratch: `qcoeff[l·arity + j]` is the scaled coefficient, and
    /// `qmeta[2l] / qmeta[2l + 1]` are the level's base term and slack
    /// (`+∞` slack disables pruning at that level). O(levels · arity).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Query`] when the model arity does not match
    /// the pyramid count.
    pub fn prepare_into(
        &self,
        model: &LinearModel,
        qcoeff: &mut Vec<f64>,
        qmeta: &mut Vec<f64>,
    ) -> Result<(), CoreError> {
        let n = self.arity;
        if model.arity() != n {
            return Err(CoreError::Query(format!(
                "model arity {} does not match the coarse grid's {n} pyramids",
                model.arity()
            )));
        }
        let a = model.coefficients();
        let imag = model.intercept().abs();
        let gamma = (2 * n + 8) as f64 * EPS;
        qcoeff.clear();
        qmeta.clear();
        for lvl in &self.levels {
            let at = qcoeff.len();
            for (aj, sj) in a.iter().zip(&lvl.scale) {
                qcoeff.push(aj * sj);
            }
            if !lvl.usable {
                qmeta.push(0.0);
                qmeta.push(f64::INFINITY);
                continue;
            }
            let c = &qcoeff[at..at + n];
            let mut base = model.intercept();
            let mut r_sum = 0.0f64;
            let mut m_sum = 0.0f64;
            let mut bmag = 0.0f64;
            let mut c_sum = 0.0f64;
            for j in 0..n {
                base += a[j] * lvl.bias[j];
                r_sum += a[j].abs() * lvl.err[j];
                m_sum += a[j].abs() * lvl.maxabs[j];
                bmag += a[j].abs() * lvl.bias[j].abs();
                c_sum += c[j].abs() * QMAX;
            }
            // Overflow guard: beyond this, the exact bound's partial sums
            // could overflow (or even produce NaN), which no finite bound
            // can dominate. `!(x <= GUARD)` also catches NaN magnitudes.
            if !(imag <= OVERFLOW_GUARD
                && m_sum <= OVERFLOW_GUARD
                && bmag <= OVERFLOW_GUARD
                && c_sum <= OVERFLOW_GUARD)
            {
                qmeta.push(0.0);
                qmeta.push(f64::INFINITY);
                continue;
            }
            let s = r_sum + gamma * (imag + m_sum + bmag + 2.0 * c_sum);
            let s = s + s * (16.0 * EPS) + f64::MIN_POSITIVE;
            qmeta.push(base);
            qmeta.push(s);
        }
        Ok(())
    }

    /// Sound upper bound on the model over cell `(row, col)` of `level`,
    /// from state prepared by [`CoarseGrid::prepare_into`]. Dominates both
    /// the computed exact
    /// [`bound_over_box`](mbir_models::linear::LinearModel::bound_over_box)
    /// upper bound for the cell and any computed evaluation at a point
    /// inside it; `+∞` when the level is unusable for this query.
    ///
    /// # Panics
    ///
    /// Panics when the scratch does not come from `prepare_into` on this
    /// grid, or the cell coordinates are out of range.
    #[inline]
    pub fn cell_upper_bound(
        &self,
        qcoeff: &[f64],
        qmeta: &[f64],
        level: usize,
        row: usize,
        col: usize,
    ) -> f64 {
        let n = self.arity;
        let slack = qmeta[2 * level + 1];
        if !slack.is_finite() {
            return f64::INFINITY;
        }
        let lvl = &self.levels[level];
        assert!(row < lvl.rows && col < lvl.cols, "cell out of range");
        let at = (row * lvl.cols + col) * 2 * n;
        let cell = &lvl.codes[at..at + 2 * n];
        let c = &qcoeff[level * n..(level + 1) * n];
        let mut s = qmeta[2 * level] + slack;
        for j in 0..n {
            // A non-negative coefficient wants the max code; scale ≥ 0, so
            // coeff and the model coefficient share a sign (or coeff is 0
            // and either corner works).
            let q = if c[j] >= 0.0 {
                cell[2 * j + 1]
            } else {
                cell[2 * j]
            };
            s += c[j] * f64::from(q);
        }
        let ub = pad_up(s);
        if ub.is_finite() {
            ub
        } else {
            f64::INFINITY
        }
    }
}

impl CoarseLevel {
    fn pack(
        pyramids: &[AggregatePyramid],
        level: usize,
        rows: usize,
        cols: usize,
    ) -> Result<Self, CoreError> {
        let arity = pyramids.len();
        let mut scale = vec![0.0f64; arity];
        let mut bias = vec![0.0f64; arity];
        let mut err = vec![0.0f64; arity];
        let mut maxabs = vec![0.0f64; arity];
        let mut codes = vec![0i8; rows * cols * 2 * arity];
        let mut usable = true;
        for (j, pyramid) in pyramids.iter().enumerate() {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            let mut amax = 0.0f64;
            'scan: for r in 0..rows {
                for c in 0..cols {
                    let s = pyramid.cell(level, r, c)?;
                    if !s.min.is_finite() || !s.max.is_finite() {
                        usable = false;
                        break 'scan;
                    }
                    lo = lo.min(s.min);
                    hi = hi.max(s.max);
                    amax = amax.max(s.min.abs()).max(s.max.abs());
                }
            }
            if !usable {
                break;
            }
            let mid = 0.5 * lo + 0.5 * hi;
            let step = (hi - lo) / (2.0 * QMAX);
            let step = if step.is_finite() && step > 0.0 {
                step
            } else {
                0.0
            };
            if !mid.is_finite() {
                usable = false;
                break;
            }
            let mut e = 0.0f64;
            for r in 0..rows {
                for c in 0..cols {
                    let s = pyramid.cell(level, r, c)?;
                    let (qlo, qhi) = if step == 0.0 {
                        (0i8, 0i8)
                    } else {
                        (
                            ((s.min - mid) / step).round().clamp(-QMAX, QMAX) as i8,
                            ((s.max - mid) / step).round().clamp(-QMAX, QMAX) as i8,
                        )
                    };
                    let at = (r * cols + c) * 2 * arity + 2 * j;
                    codes[at] = qlo;
                    codes[at + 1] = qhi;
                    e = e
                        .max((s.min - (mid + step * f64::from(qlo))).abs())
                        .max((s.max - (mid + step * f64::from(qhi))).abs());
                }
            }
            // Pad the measured deviation for the rounding of the
            // measurement itself (a 3-op f64 chain per endpoint).
            let e = e + 4.0 * EPS * (amax + mid.abs() + step * QMAX);
            if !e.is_finite() {
                usable = false;
                break;
            }
            scale[j] = step;
            bias[j] = mid;
            err[j] = e;
            maxabs[j] = amax;
        }
        Ok(CoarseLevel {
            rows,
            cols,
            usable,
            scale,
            bias,
            err,
            maxabs,
            codes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbir_archive::grid::Grid2;
    use proptest::prelude::*;

    fn smooth_grid(i: usize, rows: usize, cols: usize) -> Grid2<f64> {
        Grid2::from_fn(rows, cols, |r, c| {
            ((r as f64 / 7.0 + i as f64).sin() + (c as f64 / 5.0).cos()) * 40.0 + 80.0
        })
    }

    fn build_world(arity: usize, rows: usize, cols: usize) -> (Vec<AggregatePyramid>, CoarseGrid) {
        let pyramids: Vec<AggregatePyramid> = (0..arity)
            .map(|i| AggregatePyramid::build(&smooth_grid(i, rows, cols)))
            .collect();
        let coarse = CoarseGrid::build(&pyramids).unwrap();
        (pyramids, coarse)
    }

    /// Exhaustively checks the two domination contracts on every cell of
    /// every level: the quantized bound must be ≥ the computed exact
    /// box-bound, and ≥ the computed evaluation at every box corner.
    fn assert_dominates(model: &LinearModel, pyramids: &[AggregatePyramid], coarse: &CoarseGrid) {
        let n = model.arity();
        let mut qcoeff = Vec::new();
        let mut qmeta = Vec::new();
        coarse.prepare_into(model, &mut qcoeff, &mut qmeta).unwrap();
        let mut ranges = vec![(0.0f64, 0.0f64); n];
        for l in 0..pyramids[0].levels() {
            let (rows, cols) = pyramids[0].level_shape(l);
            for r in 0..rows {
                for c in 0..cols {
                    for (j, p) in pyramids.iter().enumerate() {
                        let s = p.cell(l, r, c).unwrap();
                        ranges[j] = (s.min, s.max);
                    }
                    let ub = coarse.cell_upper_bound(&qcoeff, &qmeta, l, r, c);
                    let (_, hi) = model.bound_over_box(&ranges).unwrap();
                    assert!(
                        ub >= hi,
                        "level {l} cell ({r},{c}): quantized {ub} < exact bound {hi}"
                    );
                    // Corners of the box are the extremal evaluations of a
                    // linear model; check all 2^n of them.
                    for mask in 0..(1usize << n) {
                        let x: Vec<f64> = (0..n)
                            .map(|j| {
                                if mask >> j & 1 == 1 {
                                    ranges[j].1
                                } else {
                                    ranges[j].0
                                }
                            })
                            .collect();
                        let y = model.evaluate(&x);
                        assert!(
                            ub >= y,
                            "level {l} cell ({r},{c}): quantized {ub} < corner eval {y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bound_dominates_exact_bound_and_corner_evals() {
        let (pyramids, coarse) = build_world(3, 32, 24);
        let model = LinearModel::new(vec![1.0, -0.7, 0.31], 0.25).unwrap();
        assert_dominates(&model, &pyramids, &coarse);
    }

    #[test]
    fn bound_is_tight_enough_to_prune() {
        // The bound is only useful if it is close to the exact one: on a
        // smooth world it must stay within a small absolute margin of the
        // exact box-bound at the base level.
        let (pyramids, coarse) = build_world(2, 32, 32);
        let model = LinearModel::new(vec![1.0, 0.5], 0.0).unwrap();
        let mut qcoeff = Vec::new();
        let mut qmeta = Vec::new();
        coarse
            .prepare_into(&model, &mut qcoeff, &mut qmeta)
            .unwrap();
        let mut worst = 0.0f64;
        for r in 0..32 {
            for c in 0..32 {
                let ranges: Vec<(f64, f64)> = pyramids
                    .iter()
                    .map(|p| {
                        let s = p.cell(0, r, c).unwrap();
                        (s.min, s.max)
                    })
                    .collect();
                let ub = coarse.cell_upper_bound(&qcoeff, &qmeta, 0, r, c);
                let (_, hi) = model.bound_over_box(&ranges).unwrap();
                worst = worst.max(ub - hi);
            }
        }
        // Attribute spreads are ~160 wide ⇒ one code step ~0.63 per
        // attribute; the bound should never be slack by more than a few
        // steps.
        assert!(worst < 4.0, "bound slack {worst} too loose to prune with");
    }

    #[test]
    fn constant_level_quantizes_exactly() {
        let flat = Grid2::from_fn(16, 16, |_, _| 42.0);
        let pyramids = vec![AggregatePyramid::build(&flat)];
        let coarse = CoarseGrid::build(&pyramids).unwrap();
        let model = LinearModel::new(vec![2.0], 1.0).unwrap();
        let mut qcoeff = Vec::new();
        let mut qmeta = Vec::new();
        coarse
            .prepare_into(&model, &mut qcoeff, &mut qmeta)
            .unwrap();
        let ub = coarse.cell_upper_bound(&qcoeff, &qmeta, 0, 3, 3);
        let exact = 2.0 * 42.0 + 1.0;
        assert!(ub >= exact);
        assert!(ub - exact < 1e-9, "constant cells should bound tightly");
    }

    #[test]
    fn non_finite_cells_disable_pruning_without_unsoundness() {
        let grid = Grid2::from_fn(8, 8, |r, c| {
            if (r, c) == (3, 4) {
                f64::NAN
            } else {
                (r * 8 + c) as f64
            }
        });
        let pyramids = vec![AggregatePyramid::build(&grid)];
        let coarse = CoarseGrid::build(&pyramids).unwrap();
        let model = LinearModel::new(vec![1.0], 0.0).unwrap();
        let mut qcoeff = Vec::new();
        let mut qmeta = Vec::new();
        coarse
            .prepare_into(&model, &mut qcoeff, &mut qmeta)
            .unwrap();
        // The NaN makes the whole base level unusable: every base-level
        // bound is +∞, so nothing there is ever pruned. Higher levels may
        // or may not see the NaN (CellStats merging is NaN-dropping), but
        // their bounds still dominate their own stats, which is all the
        // engines ever compare against.
        for r in 0..8 {
            for c in 0..8 {
                assert!(coarse
                    .cell_upper_bound(&qcoeff, &qmeta, 0, r, c)
                    .is_infinite());
            }
        }
    }

    #[test]
    fn huge_magnitudes_trip_the_overflow_guard() {
        let grid = Grid2::from_fn(8, 8, |r, c| (r * 8 + c) as f64 * 1e304);
        let pyramids = vec![AggregatePyramid::build(&grid)];
        let coarse = CoarseGrid::build(&pyramids).unwrap();
        let model = LinearModel::new(vec![1.0], 0.0).unwrap();
        let mut qcoeff = Vec::new();
        let mut qmeta = Vec::new();
        coarse
            .prepare_into(&model, &mut qcoeff, &mut qmeta)
            .unwrap();
        assert!(coarse
            .cell_upper_bound(&qcoeff, &qmeta, 0, 7, 7)
            .is_infinite());
    }

    #[test]
    fn build_rejects_mismatched_pyramids() {
        assert!(matches!(CoarseGrid::build(&[]), Err(CoreError::Query(_))));
        let a = AggregatePyramid::build(&smooth_grid(0, 16, 16));
        let b = AggregatePyramid::build(&smooth_grid(1, 8, 16));
        assert!(CoarseGrid::build(&[a.clone(), b]).is_err());
        assert!(CoarseGrid::build(&[a.clone(), a]).is_ok());
    }

    #[test]
    fn prepare_rejects_arity_mismatch() {
        let (_, coarse) = build_world(2, 8, 8);
        let model = LinearModel::new(vec![1.0], 0.0).unwrap();
        let mut qcoeff = Vec::new();
        let mut qmeta = Vec::new();
        assert!(matches!(
            coarse.prepare_into(&model, &mut qcoeff, &mut qmeta),
            Err(CoreError::Query(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The domination contract under random data and random models,
        /// including negative coefficients, zero coefficients, and skewed
        /// magnitudes.
        #[test]
        fn prop_bound_dominates(
            seed in 0u64..1000,
            a0 in -3.0f64..3.0,
            a1 in -3.0f64..3.0,
            intercept in -10.0f64..10.0,
            scale in prop::sample::select(vec![1e-6f64, 1.0, 1e6]),
        ) {
            let grids: Vec<Grid2<f64>> = (0..2)
                .map(|i| Grid2::from_fn(13, 11, |r, c| {
                    let t = (seed as f64 + i as f64 * 17.0
                        + r as f64 * 3.1 + c as f64 * 1.7).sin();
                    t * 100.0 * scale
                }))
                .collect();
            let pyramids: Vec<AggregatePyramid> =
                grids.iter().map(AggregatePyramid::build).collect();
            let coarse = CoarseGrid::build(&pyramids).unwrap();
            let model = LinearModel::new(vec![a0, a1], intercept).unwrap();
            assert_dominates(&model, &pyramids, &coarse);
        }
    }
}
