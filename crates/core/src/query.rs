//! Query specifications for model-based retrieval.

use crate::error::CoreError;
use std::fmt;

/// Whether the model value is to be maximized or minimized (paper §3: the
/// linear model "is maximized or minimized").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Retrieve the largest model values.
    #[default]
    Maximize,
    /// Retrieve the smallest model values.
    Minimize,
}

impl Objective {
    /// Sign applied to raw scores so every engine can maximize internally.
    pub fn sign(&self) -> f64 {
        match self {
            Objective::Maximize => 1.0,
            Objective::Minimize => -1.0,
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::Maximize => f.write_str("maximize"),
            Objective::Minimize => f.write_str("minimize"),
        }
    }
}

/// A top-K retrieval request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKQuery {
    k: usize,
    objective: Objective,
}

impl TopKQuery {
    /// Creates a top-K query.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Query`] when `k == 0`.
    pub fn new(k: usize, objective: Objective) -> Result<Self, CoreError> {
        if k == 0 {
            return Err(CoreError::Query("k must be >= 1".into()));
        }
        Ok(TopKQuery { k, objective })
    }

    /// A maximizing top-K query.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Query`] when `k == 0`.
    pub fn max(k: usize) -> Result<Self, CoreError> {
        TopKQuery::new(k, Objective::Maximize)
    }

    /// Number of results requested.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The optimization direction.
    pub fn objective(&self) -> Objective {
        self.objective
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(TopKQuery::new(0, Objective::Maximize).is_err());
        let q = TopKQuery::max(5).unwrap();
        assert_eq!(q.k(), 5);
        assert_eq!(q.objective(), Objective::Maximize);
    }

    #[test]
    fn objective_signs() {
        assert_eq!(Objective::Maximize.sign(), 1.0);
        assert_eq!(Objective::Minimize.sign(), -1.0);
        assert_eq!(Objective::default(), Objective::Maximize);
    }
}
