//! Budgeted, fault-tolerant progressive retrieval with graceful
//! degradation.
//!
//! The strict engines ([`crate::engine`]) abort on the first failed page
//! read and run until the bound proof closes. Real archive queries get
//! neither luxury: pages go missing and interactive callers impose work
//! ceilings. [`resilient_top_k`] is the pyramid descent re-run under both
//! pressures:
//!
//! * **Lost pages degrade, they don't abort.** A base read failing with
//!   [`ArchiveError::PageIo`], [`ArchiveError::PageQuarantined`], or
//!   [`ArchiveError::PageCorrupt`] (detected silent corruption) parks
//!   the cell instead. A lost cell whose frontier bound falls under the
//!   final K-th floor is *resolved* (provably outside the top-K, exactly
//!   like a healthy pruned cell); the rest are carried as *degraded*
//!   candidates bounded by their parent aggregate (the deepest index level
//!   that does not depend on the lost data) and their pages are reported
//!   skipped. Because the exclusion uses the deterministic bound rather
//!   than evaluation order, the degradation report is reproducible — the
//!   parallel engine ([`crate::parallel`]) produces the same one.
//! * **Budgets stop work at cooperative checkpoints.** An
//!   [`ExecutionBudget`] caps multiply-adds, page reads, and a virtual
//!   tick deadline; it is checked once per frontier pop. On exhaustion the
//!   remaining frontier — the deepest fully-bounded pyramid frontier — is
//!   converted to degraded candidates instead of being discarded.
//! * **Cancellation is cooperative too.** [`resilient_top_k_cancellable`]
//!   polls a [`CancelToken`](crate::lifecycle::CancelToken) at the same
//!   page-granular checkpoint and stops with [`BudgetStop::Cancelled`]
//!   under the same degradation contract. When several stop reasons trip
//!   in the same step, precedence is fixed: Cancelled > WallClock >
//!   Budget dimensions — deterministic at every thread count.
//!
//! The result is honest about what it knows: every hit carries sound
//! [`ScoreBounds`], the [`completeness`](ResilientTopK::completeness)
//! fraction reports how much of the archive is provably accounted for,
//! and [`skipped_pages`](ResilientTopK::skipped_pages) lists exactly what
//! was lost. With a healthy source and an unlimited budget the output is
//! bit-identical to [`pyramid_top_k`](crate::engine::pyramid_top_k).

use crate::coarse::CoarseGrid;
use crate::engine::{
    read_base_vector_into, region_bound_into, validate_grid_inputs, EffortReport, QueryScratch,
    Region, ScoredCell,
};
use crate::error::CoreError;
use crate::lifecycle::CancelToken;
use crate::source::CellSource;
use mbir_archive::error::ArchiveError;
use mbir_archive::extent::CellCoord;
use mbir_index::scan::TopKHeap;
use mbir_index::stats::ScoredItem;
use mbir_models::linear::LinearModel;
use mbir_progressive::pyramid::AggregatePyramid;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Work ceilings for one retrieval, checked at cooperative checkpoints
/// (once per frontier pop). `None` fields are unlimited; the default is
/// fully unlimited.
///
/// # Examples
///
/// ```
/// use mbir_core::resilient::ExecutionBudget;
///
/// let budget = ExecutionBudget::unlimited()
///     .with_max_page_reads(100)
///     .with_deadline_ticks(5_000);
/// assert!(budget.check(0, 99, 0).is_none());
/// assert!(budget.check(0, 100, 0).is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutionBudget {
    /// Cap on model multiply-adds.
    pub max_multiply_adds: Option<u64>,
    /// Cap on pages read through the source.
    pub max_page_reads: Option<u64>,
    /// Virtual deadline in I/O ticks (see
    /// [`AccessStats::ticks_elapsed`](mbir_archive::stats::AccessStats::ticks_elapsed)).
    pub deadline_ticks: Option<u64>,
    /// Wall-clock deadline measured from query start. Unlike the virtual
    /// tick deadline this is real time — interactive callers' "answer in
    /// 50 ms, whatever you have" contract. Checked through a
    /// [`WallDeadline`] latch at the same cooperative checkpoints, so
    /// expiry degrades with the same sound-bounds semantics as any other
    /// budget stop.
    pub wall_deadline: Option<Duration>,
}

impl ExecutionBudget {
    /// No ceilings at all.
    pub fn unlimited() -> Self {
        ExecutionBudget::default()
    }

    /// Caps model multiply-adds (builder style).
    pub fn with_max_multiply_adds(mut self, cap: u64) -> Self {
        self.max_multiply_adds = Some(cap);
        self
    }

    /// Caps page reads (builder style).
    pub fn with_max_page_reads(mut self, cap: u64) -> Self {
        self.max_page_reads = Some(cap);
        self
    }

    /// Sets the virtual tick deadline (builder style).
    pub fn with_deadline_ticks(mut self, deadline: u64) -> Self {
        self.deadline_ticks = Some(deadline);
        self
    }

    /// Sets the wall-clock deadline (builder style).
    pub fn with_wall_deadline(mut self, deadline: Duration) -> Self {
        self.wall_deadline = Some(deadline);
        self
    }

    /// Evaluates the ceilings against spent work; `Some` names the first
    /// exhausted dimension. A checkpoint at or beyond a cap stops the run.
    pub fn check(&self, multiply_adds: u64, page_reads: u64, ticks: u64) -> Option<BudgetStop> {
        if self
            .max_multiply_adds
            .is_some_and(|cap| multiply_adds >= cap)
        {
            return Some(BudgetStop::MultiplyAdds);
        }
        if self.max_page_reads.is_some_and(|cap| page_reads >= cap) {
            return Some(BudgetStop::PageReads);
        }
        if self.deadline_ticks.is_some_and(|cap| ticks >= cap) {
            return Some(BudgetStop::Deadline);
        }
        None
    }
}

/// Which budget dimension stopped a run early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetStop {
    /// The multiply-add cap was reached.
    MultiplyAdds,
    /// The page-read cap was reached.
    PageReads,
    /// The virtual tick deadline passed.
    Deadline,
    /// The wall-clock deadline passed.
    WallClock,
    /// The caller cancelled the query via its
    /// [`CancelToken`](crate::lifecycle::CancelToken).
    Cancelled,
}

impl fmt::Display for BudgetStop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetStop::MultiplyAdds => "multiply-add cap",
            BudgetStop::PageReads => "page-read cap",
            BudgetStop::Deadline => "tick deadline",
            BudgetStop::WallClock => "wall-clock deadline",
            BudgetStop::Cancelled => "cancelled",
        })
    }
}

/// A shared, latching wall-clock deadline observed at engine checkpoints.
///
/// One instance is created per query ([`WallDeadline::starting_now`]) and
/// shared by every worker of a parallel run, alongside the
/// [`SharedBound`](crate::parallel::SharedBound). Expiry *latches*: once
/// any checkpoint observes the deadline passed, every later check on any
/// thread reports expired, so all workers stop at their next checkpoint
/// even if the clock were to misbehave. A `None` limit never expires and
/// costs no clock reads.
#[derive(Debug)]
pub struct WallDeadline {
    started: Instant,
    limit: Option<Duration>,
    tripped: AtomicBool,
}

impl WallDeadline {
    /// Starts the clock now against `budget.wall_deadline`.
    pub fn starting_now(budget: &ExecutionBudget) -> Self {
        WallDeadline {
            started: Instant::now(),
            limit: budget.wall_deadline,
            tripped: AtomicBool::new(false),
        }
    }

    /// Whether the deadline has passed (latching; see the type docs).
    pub fn expired(&self) -> bool {
        let Some(limit) = self.limit else {
            return false;
        };
        if self.tripped.load(Ordering::Relaxed) {
            return true;
        }
        if self.started.elapsed() >= limit {
            self.tripped.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }
}

/// A sound score interval for one hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreBounds {
    /// Guaranteed lower bound.
    pub lo: f64,
    /// Guaranteed upper bound.
    pub hi: f64,
}

impl ScoreBounds {
    /// A zero-width interval around an exactly known score.
    pub fn exact(score: f64) -> Self {
        ScoreBounds {
            lo: score,
            hi: score,
        }
    }

    /// Interval width (0 for exact hits).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// One entry of a resilient result: an exactly evaluated cell, or a
/// degraded stand-in for data the run could not reach.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientHit {
    /// Base-level cell; for an unrefined region (`level > 0`) this is the
    /// region's top-left base cell.
    pub cell: CellCoord,
    /// Pyramid level of the entry: 0 is a single cell; `l > 0` is an
    /// unrefined region covering up to `4^l` base cells whose refinement
    /// the budget cut off.
    pub level: usize,
    /// Exact model score (`exact == true`) or the model evaluated at the
    /// deepest available aggregate means (`exact == false`).
    pub score: f64,
    /// Sound interval containing every base score the entry stands for.
    pub bounds: ScoreBounds,
    /// Whether `score` is an exact base-level evaluation.
    pub exact: bool,
}

/// Best-effort top-K result with explicit degradation accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientTopK {
    /// Up to K entries, descending by `score`. Exact and degraded entries
    /// are ranked together; each carries its own bounds.
    pub results: Vec<ResilientHit>,
    /// Work accounting (degraded estimates are charged too).
    pub effort: EffortReport,
    /// Fraction of base cells provably accounted for: evaluated exactly,
    /// or excluded by a sound bound. 1.0 means the answer is exact.
    pub completeness: f64,
    /// Pages whose failed reads left cells unresolved, ascending. A page
    /// that failed but whose every touched cell was excluded by a sound
    /// bound does not appear: nothing was lost from the answer.
    pub skipped_pages: Vec<usize>,
    /// `Some` when a budget dimension stopped the run early.
    pub budget_stop: Option<BudgetStop>,
}

impl ResilientTopK {
    /// Whether anything separates this answer from the exact one.
    pub fn is_degraded(&self) -> bool {
        self.completeness < 1.0
            || self.budget_stop.is_some()
            || self.results.iter().any(|h| !h.exact)
    }

    /// The exact entries as plain scored cells (what a strict engine
    /// would have been able to certify).
    pub fn exact_cells(&self) -> Vec<ScoredCell> {
        self.results
            .iter()
            .filter(|h| h.exact)
            .map(|h| ScoredCell {
                cell: h.cell,
                score: h.score,
            })
            .collect()
    }
}

/// Pyramid descent that degrades gracefully instead of aborting.
///
/// Behaves exactly like
/// [`pyramid_top_k_with_source`](crate::engine::pyramid_top_k_with_source)
/// until a base read fails or the budget runs out; see the module docs for
/// the degradation contract. Never panics on lost pages, never silently
/// drops what it could not certify.
///
/// # Errors
///
/// Returns [`CoreError::Query`] for the same input validation as
/// [`pyramid_top_k`](crate::engine::pyramid_top_k), and propagates archive
/// errors that are *not* page losses (e.g. out-of-bounds reads, which are
/// engine bugs rather than archive faults).
pub fn resilient_top_k<S: CellSource>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
) -> Result<ResilientTopK, CoreError> {
    resilient_top_k_with_scratch(model, pyramids, k, source, budget, &mut QueryScratch::new())
}

/// [`resilient_top_k`] polling a [`CancelToken`] at every page-granular
/// checkpoint. Cancellation is just another early stop: the run latches
/// [`BudgetStop::Cancelled`] and degrades with sound bounds and
/// completeness accounting, exactly like a budget or deadline stop. A
/// token that is never cancelled changes nothing: results are
/// bit-identical to [`resilient_top_k`].
///
/// # Errors
///
/// Same as [`resilient_top_k`].
pub fn resilient_top_k_cancellable<S: CellSource>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
    cancel: &CancelToken,
) -> Result<ResilientTopK, CoreError> {
    resilient_top_k_inner(
        model,
        pyramids,
        k,
        source,
        budget,
        Some(cancel),
        None,
        &mut QueryScratch::new(),
    )
}

/// [`resilient_top_k`] consulting a quantized [`CoarseGrid`] before each
/// exact child bound: children whose i8 cell bound falls strictly below
/// the current K-th floor are pruned without touching the per-attribute
/// pyramids. The coarse pass is prune-only (see [`crate::coarse`]), so
/// results, completeness, and skipped pages are bit-identical to
/// [`resilient_top_k`] under any fault pattern.
///
/// A subtlety worth knowing: in *this* sequential engine the check is
/// provably inert. The frontier pops in descending `ub` order, and an
/// evaluated cell's `ub` is its exact score, so every evaluation that
/// precedes a pop scored at least the popped `ub`; once `k` evaluations
/// exist the floor therefore already dominates the popped bound and the
/// engine breaks before expanding. This function exists as the oracle the
/// parallel engines are tested against and for API parity — the pass
/// earns its keep where a floor arrives from *outside* the local pop
/// order: [`par_resilient_top_k_coarse`](crate::parallel) workers
/// pruning against the shared bound, and sharded scatter-gather leaves
/// pruning against an earlier shard's published floor.
///
/// # Errors
///
/// Same as [`resilient_top_k`], plus [`CoreError::Query`] when the coarse
/// grid's arity does not match the model.
pub fn resilient_top_k_coarse<S: CellSource>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
    coarse: &CoarseGrid,
) -> Result<ResilientTopK, CoreError> {
    resilient_top_k_inner(
        model,
        pyramids,
        k,
        source,
        budget,
        None,
        Some(coarse),
        &mut QueryScratch::new(),
    )
}

/// [`resilient_top_k_coarse`] with descent buffers (including the
/// prepared per-level coarse coefficients) reused from `scratch`.
///
/// # Errors
///
/// Same as [`resilient_top_k_coarse`].
pub fn resilient_top_k_coarse_with_scratch<S: CellSource>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
    coarse: &CoarseGrid,
    scratch: &mut QueryScratch,
) -> Result<ResilientTopK, CoreError> {
    resilient_top_k_inner(
        model,
        pyramids,
        k,
        source,
        budget,
        None,
        Some(coarse),
        scratch,
    )
}

/// [`resilient_top_k`] with descent buffers reused from `scratch` (see
/// [`pyramid_top_k_with_scratch`](crate::engine::pyramid_top_k_with_scratch)).
/// Results are bit-identical to [`resilient_top_k`].
///
/// # Errors
///
/// Same as [`resilient_top_k`].
pub fn resilient_top_k_with_scratch<S: CellSource>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
    scratch: &mut QueryScratch,
) -> Result<ResilientTopK, CoreError> {
    resilient_top_k_inner(model, pyramids, k, source, budget, None, None, scratch)
}

#[allow(clippy::too_many_arguments)]
fn resilient_top_k_inner<S: CellSource>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
    cancel: Option<&CancelToken>,
    coarse: Option<&CoarseGrid>,
    scratch: &mut QueryScratch,
) -> Result<ResilientTopK, CoreError> {
    let (shape, levels) = validate_grid_inputs(model, pyramids, k)?;
    let (rows, cols) = shape;
    let total_cells = (rows * cols) as u64;
    let n = model.arity() as u64;
    let mut effort = EffortReport {
        multiply_adds: 0,
        naive_multiply_adds: n * total_cells,
    };
    let pages_at_entry = source.pages_read();
    let ticks_at_entry = source.ticks_elapsed();
    let deadline = WallDeadline::starting_now(budget);

    let caps = scratch.caps();
    let QueryScratch {
        children,
        x,
        ranges,
        frontier,
        qcoeff,
        qmeta,
        ..
    } = scratch;
    frontier.clear();
    if let Some(cg) = coarse {
        cg.prepare_into(model, qcoeff, qmeta)?;
    }
    let mut heap = TopKHeap::new(k);
    let top = levels - 1;
    let root_bound = region_bound_into(model, pyramids, top, 0, 0, ranges, &mut effort)?;
    frontier.push(Region {
        ub: root_bound,
        level: top,
        row: 0,
        col: 0,
    });

    // Cells whose page read failed (with the failing page), and frontier
    // regions a budget stop left unrefined.
    let mut lost: Vec<(Region, usize)> = Vec::new();
    let mut leftover: Vec<Region> = Vec::new();
    let mut skipped: BTreeSet<usize> = BTreeSet::new();
    let mut budget_stop: Option<BudgetStop> = None;

    while let Some(region) = frontier.pop() {
        if let Some(floor) = heap.floor() {
            if floor >= region.ub {
                // Bound proof closed: everything left is excluded.
                break;
            }
        }
        // Cooperative checkpoint: one stop evaluation per pop, in the
        // fixed precedence order Cancelled > WallClock > Budget, so a
        // step that trips several dimensions at once reports the same
        // reason on every run and at every thread count.
        let stop = checkpoint_stop(
            cancel,
            &deadline,
            budget,
            effort.multiply_adds,
            source.pages_read().saturating_sub(pages_at_entry),
            source.ticks_elapsed().saturating_sub(ticks_at_entry),
        );
        if let Some(stop) = stop {
            budget_stop = Some(stop);
            leftover.push(region);
            leftover.extend(frontier.drain());
            break;
        }
        if region.level == 0 {
            match read_base_vector_into(source, model.arity(), region.row, region.col, x) {
                Ok(()) => {
                    effort.multiply_adds += n;
                    heap.offer(ScoredItem {
                        index: region.row * cols + region.col,
                        score: model.evaluate(x),
                    });
                }
                Err(CoreError::Archive(
                    ArchiveError::PageIo { page }
                    | ArchiveError::PageQuarantined { page }
                    | ArchiveError::PageCorrupt { page },
                )) => {
                    let page = source.page_of(region.row, region.col).unwrap_or(page);
                    lost.push((region, page));
                }
                Err(e) => return Err(e),
            }
            continue;
        }
        pyramids[0].children_into(region.level, region.row, region.col, children);
        for child in children.iter() {
            // Coarse pass: one O(n) i8 bound per child. Strictly below the
            // floor ⇒ no cell under the child can reach the top-K even on
            // a tie, so skipping the push is sound, and because the
            // frontier order is total the survivors pop in the same
            // sequence as the unpruned run — results stay bit-identical.
            // The check performs no f64 model arithmetic, so it charges no
            // multiply-adds: the report's drop measures exactly the exact
            // bound evaluations the i8 pass replaced.
            if let Some(cg) = coarse {
                if let Some(f) = heap.floor() {
                    if cg.cell_upper_bound(qcoeff, qmeta, region.level - 1, child.row, child.col)
                        < f
                    {
                        continue;
                    }
                }
            }
            let ub = region_bound_into(
                model,
                pyramids,
                region.level - 1,
                child.row,
                child.col,
                ranges,
                &mut effort,
            )?;
            frontier.push(Region {
                ub,
                level: region.level - 1,
                row: child.row,
                col: child.col,
            });
        }
    }

    // Only a full heap gives a sound exclusion floor.
    let floor = heap.floor();
    let excluded = |hi: f64| floor.is_some_and(|f| f >= hi);

    let mut unresolved_cells = 0u64;
    let mut hits: Vec<ResilientHit> = heap
        .into_sorted()
        .into_iter()
        .map(|item| ResilientHit {
            cell: CellCoord::new(item.index / cols, item.index % cols),
            level: 0,
            score: item.score,
            bounds: ScoreBounds::exact(item.score),
            exact: true,
        })
        .collect();

    // Unrefined frontier regions: bound from their own aggregates (the
    // deepest fully-bounded frontier the budget allowed).
    for region in leftover {
        let (candidate, count) = region_candidate(
            model,
            pyramids,
            region.level,
            region.row,
            region.col,
            &mut effort,
        )?;
        if excluded(candidate.bounds.hi) {
            continue; // Provably outside the top-K: resolved.
        }
        unresolved_cells += count;
        hits.push(candidate);
    }

    // Lost cells: first exclude by the deterministic frontier bound (the
    // level-0 index bound is exact, so this is the same test the descent
    // applies to healthy cells — and it makes the surviving set, and thus
    // `skipped_pages` and completeness, independent of evaluation order).
    // Survivors are bounded from the parent aggregate — the deepest index
    // level that does not depend on the missing page.
    let parent_level = 1.min(levels - 1);
    for (region, page) in lost {
        if excluded(region.ub) {
            continue; // Provably outside the top-K: resolved, nothing lost.
        }
        skipped.insert(page);
        let (mut candidate, _) = region_candidate(
            model,
            pyramids,
            parent_level,
            region.row >> parent_level,
            region.col >> parent_level,
            &mut effort,
        )?;
        candidate.cell = CellCoord::new(region.row, region.col);
        candidate.level = 0;
        unresolved_cells += 1;
        hits.push(candidate);
    }

    // Rank by upper bound first: for exact hits hi == score, so complete
    // answers keep the plain score order, while under degradation the
    // truncation to k can never drop the only candidate that might still
    // be the true winner — every surviving hit's hi is at least as large.
    hits.sort_by(|a, b| {
        b.bounds
            .hi
            .total_cmp(&a.bounds.hi)
            .then_with(|| b.score.total_cmp(&a.score))
            .then_with(|| a.cell.cmp(&b.cell))
    });
    hits.truncate(k);

    scratch.note_regrowth(&caps);
    Ok(ResilientTopK {
        results: hits,
        effort,
        completeness: 1.0 - unresolved_cells as f64 / total_cells as f64,
        skipped_pages: skipped.into_iter().collect(),
        budget_stop,
    })
}

/// One cooperative-checkpoint stop evaluation, shared by every engine that
/// degrades under pressure (sequential, parallel, and sharded). The fixed
/// precedence Cancelled > WallClock > Budget dimensions guarantees a step
/// that trips several dimensions at once reports the same reason on every
/// run and at every thread count.
pub(crate) fn checkpoint_stop(
    cancel: Option<&CancelToken>,
    deadline: &WallDeadline,
    budget: &ExecutionBudget,
    multiply_adds: u64,
    page_reads: u64,
    ticks: u64,
) -> Option<BudgetStop> {
    cancel
        .is_some_and(CancelToken::is_cancelled)
        .then_some(BudgetStop::Cancelled)
        .or_else(|| deadline.expired().then_some(BudgetStop::WallClock))
        .or_else(|| budget.check(multiply_adds, page_reads, ticks))
}

/// Builds a degraded candidate from a pyramid region: score = model at the
/// region means, bounds = sound box bounds, plus the region's base-cell
/// count.
pub(crate) fn region_candidate(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    level: usize,
    row: usize,
    col: usize,
    effort: &mut EffortReport,
) -> Result<(ResilientHit, u64), CoreError> {
    let n = model.arity() as u64;
    let mut ranges = Vec::with_capacity(pyramids.len());
    let mut means = Vec::with_capacity(pyramids.len());
    let mut count = 0u64;
    for p in pyramids {
        let s = p.cell(level, row, col)?;
        ranges.push((s.min, s.max));
        means.push(s.mean);
        count = s.count;
    }
    let (lo, hi) = model.bound_over_box(&ranges)?;
    effort.multiply_adds += 2 * n; // bound + estimate
    let scale = 1usize << level;
    // The mean estimate is mathematically inside the box bounds, but its
    // summation order differs from bound_over_box's, so on degenerate
    // (single-cell) boxes it can land an ulp outside — clamp to keep the
    // documented `lo <= score <= hi` invariant exact.
    let score = model.evaluate(&means).clamp(lo, hi);
    Ok((
        ResilientHit {
            cell: CellCoord::new(row * scale, col * scale),
            level,
            score,
            bounds: ScoreBounds { lo, hi },
            exact: false,
        },
        count,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::pyramid_top_k;
    use crate::source::{PyramidSource, TileSource};
    use mbir_archive::fault::{FaultProfile, ResilienceConfig, RetryPolicy};
    use mbir_archive::grid::Grid2;
    use mbir_archive::stats::AccessStats;
    use mbir_archive::tile::TileStore;

    fn smooth_grid(i: usize, rows: usize, cols: usize) -> Grid2<f64> {
        Grid2::from_fn(rows, cols, |r, c| {
            ((r as f64 / 9.0 + i as f64).sin() + (c as f64 / 11.0).cos()) * 50.0 + 100.0
        })
    }

    fn world(
        arity: usize,
        rows: usize,
        cols: usize,
        tile: usize,
    ) -> (
        LinearModel,
        Vec<AggregatePyramid>,
        Vec<TileStore>,
        AccessStats,
    ) {
        let grids: Vec<Grid2<f64>> = (0..arity).map(|i| smooth_grid(i, rows, cols)).collect();
        let pyramids = grids.iter().map(AggregatePyramid::build).collect();
        let stats = AccessStats::new();
        let stores = grids
            .iter()
            .map(|g| {
                TileStore::new(g.clone(), tile)
                    .unwrap()
                    .with_stats(stats.clone())
            })
            .collect();
        let coeffs: Vec<f64> = (0..arity).map(|i| 1.0 - 0.3 * i as f64).collect();
        (
            LinearModel::new(coeffs, 0.25).unwrap(),
            pyramids,
            stores,
            stats,
        )
    }

    #[test]
    fn healthy_unlimited_matches_strict_engine_exactly() {
        let (model, pyramids, stores, _) = world(3, 48, 48, 8);
        let strict = pyramid_top_k(&model, &pyramids, 7).unwrap();
        let src = TileSource::new(&stores).unwrap();
        let r = resilient_top_k(&model, &pyramids, 7, &src, &ExecutionBudget::unlimited()).unwrap();
        assert!(!r.is_degraded());
        assert_eq!(r.completeness, 1.0);
        assert!(r.skipped_pages.is_empty());
        assert_eq!(r.budget_stop, None);
        assert_eq!(r.effort, strict.effort);
        assert_eq!(r.results.len(), strict.results.len());
        for (a, b) in r.results.iter().zip(&strict.results) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.score, b.score, "bit-identical scores");
            assert!(a.exact);
            assert_eq!(a.bounds, ScoreBounds::exact(b.score));
        }
    }

    #[test]
    fn pyramid_source_is_also_bit_identical() {
        let (model, pyramids, _, _) = world(2, 32, 32, 8);
        let strict = pyramid_top_k(&model, &pyramids, 5).unwrap();
        let src = PyramidSource::new(&pyramids);
        let r = resilient_top_k(&model, &pyramids, 5, &src, &ExecutionBudget::unlimited()).unwrap();
        for (a, b) in r.results.iter().zip(&strict.results) {
            assert_eq!((a.cell, a.score), (b.cell, b.score));
        }
    }

    #[test]
    fn lost_pages_degrade_without_aborting() {
        let (model, pyramids, stores, _) = world(2, 32, 32, 8);
        // Find the strict winner's page and fail it everywhere.
        let strict = pyramid_top_k(&model, &pyramids, 3).unwrap();
        let winner = strict.results[0].cell;
        let page = stores[0].page_of(winner.row, winner.col);
        let stores: Vec<TileStore> = stores
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).permanent(page)))
            .collect();
        let src = TileSource::new(&stores).unwrap();
        let r = resilient_top_k(&model, &pyramids, 3, &src, &ExecutionBudget::unlimited()).unwrap();
        assert!(r.is_degraded());
        assert!(r.completeness < 1.0, "completeness {}", r.completeness);
        assert_eq!(r.skipped_pages, vec![page]);
        assert_eq!(r.results.len(), 3);
        // The lost winner is represented by a degraded candidate whose
        // bounds contain the true score.
        let degraded: Vec<&ResilientHit> = r.results.iter().filter(|h| !h.exact).collect();
        assert!(!degraded.is_empty(), "lost hot cell must surface");
        let covering = degraded.iter().find(|h| {
            h.bounds.lo <= strict.results[0].score && strict.results[0].score <= h.bounds.hi
        });
        assert!(
            covering.is_some(),
            "some degraded bound covers the lost winner"
        );
    }

    #[test]
    fn transient_faults_healed_by_retries_stay_exact() {
        let (model, pyramids, stores, _) = world(2, 32, 32, 8);
        let stores: Vec<TileStore> = stores
            .into_iter()
            .map(|s| {
                s.with_faults(FaultProfile::new(0).transient(0, 2).transient(5, 1))
                    .with_resilience(ResilienceConfig::new(RetryPolicy::retries(3), None))
            })
            .collect();
        let src = TileSource::new(&stores).unwrap();
        let strict = pyramid_top_k(&model, &pyramids, 4).unwrap();
        let r = resilient_top_k(&model, &pyramids, 4, &src, &ExecutionBudget::unlimited()).unwrap();
        assert!(!r.is_degraded());
        for (a, b) in r.results.iter().zip(&strict.results) {
            assert_eq!((a.cell, a.score), (b.cell, b.score));
        }
    }

    #[test]
    fn budget_stop_reports_frontier_not_nothing() {
        let (model, pyramids, stores, _) = world(2, 64, 64, 8);
        let src = TileSource::new(&stores).unwrap();
        // A multiply-add cap hit after the root bound: nothing evaluated.
        let r = resilient_top_k(
            &model,
            &pyramids,
            5,
            &src,
            &ExecutionBudget::unlimited().with_max_multiply_adds(1),
        )
        .unwrap();
        assert_eq!(r.budget_stop, Some(BudgetStop::MultiplyAdds));
        assert!(r.is_degraded());
        assert_eq!(r.completeness, 0.0, "nothing was resolved");
        assert!(!r.results.is_empty(), "the frontier itself is reported");
        assert!(r.results.iter().all(|h| !h.exact));
        // No work beyond the root bound and its candidate estimate.
        assert!(r.effort.multiply_adds <= 3 * model.arity() as u64);
        assert_eq!(r.effort.speedup_checked().is_some(), true);
    }

    #[test]
    fn page_budget_gives_partial_but_bounded_answer() {
        let (model, pyramids, stores, _) = world(2, 64, 64, 8);
        let src = TileSource::new(&stores).unwrap();
        let unlimited =
            resilient_top_k(&model, &pyramids, 5, &src, &ExecutionBudget::unlimited()).unwrap();
        let pages_needed = stores[0].stats().pages_read();
        assert!(pages_needed > 4, "test premise: needs several pages");
        stores[0].stats().reset();
        let r = resilient_top_k(
            &model,
            &pyramids,
            5,
            &src,
            &ExecutionBudget::unlimited().with_max_page_reads(pages_needed / 2),
        )
        .unwrap();
        assert_eq!(r.budget_stop, Some(BudgetStop::PageReads));
        assert!(r.completeness < 1.0);
        assert!(r.completeness > 0.0);
        assert_eq!(r.results.len(), 5);
        // Sound bounds: every degraded hit's interval must contain the
        // model evaluated at any covered base cell — spot-check against
        // the unlimited run's exact scores.
        for hit in r.results.iter().filter(|h| !h.exact) {
            assert!(hit.bounds.lo <= hit.score && hit.score <= hit.bounds.hi);
        }
        // The exact top-1 must be either confirmed exactly or covered by
        // some degraded candidate's upper bound.
        let best = unlimited.results[0].score;
        assert!(
            r.results
                .iter()
                .any(|h| { (h.exact && h.score == best) || (!h.exact && h.bounds.hi >= best) }),
            "true winner neither confirmed nor covered"
        );
    }

    #[test]
    fn deadline_budget_stops_on_injected_latency() {
        let (model, pyramids, stores, _) = world(2, 64, 64, 8);
        // Every page is slow: 100 ticks each.
        let profile =
            (0..stores[0].page_count()).fold(FaultProfile::new(0), |p, page| p.latency(page, 100));
        let stores: Vec<TileStore> = stores
            .into_iter()
            .map(|s| s.with_faults(profile.clone()))
            .collect();
        let src = TileSource::new(&stores).unwrap();
        let r = resilient_top_k(
            &model,
            &pyramids,
            5,
            &src,
            &ExecutionBudget::unlimited().with_deadline_ticks(350),
        )
        .unwrap();
        assert_eq!(r.budget_stop, Some(BudgetStop::Deadline));
        assert!(r.completeness < 1.0);
    }

    #[test]
    fn quarantined_pages_fail_fast_into_degradation() {
        let (model, pyramids, stores, stats) = world(2, 32, 32, 8);
        let winner = pyramid_top_k(&model, &pyramids, 1).unwrap().results[0].cell;
        let page = stores[0].page_of(winner.row, winner.col);
        let stores: Vec<TileStore> = stores
            .into_iter()
            .map(|s| {
                s.with_faults(FaultProfile::new(0).permanent(page))
                    .with_resilience(ResilienceConfig::new(RetryPolicy::retries(2), Some(2)))
            })
            .collect();
        let src = TileSource::new(&stores).unwrap();
        let r = resilient_top_k(&model, &pyramids, 4, &src, &ExecutionBudget::unlimited()).unwrap();
        assert!(r.skipped_pages.contains(&page));
        // After quarantine trips, further touches of page 0 cost no
        // retries: retry count stays bounded by the breaker threshold.
        assert!(stats.retries() <= 2, "retries {}", stats.retries());
        assert!(stats.quarantines() >= 1);
    }

    #[test]
    fn zero_wall_deadline_stops_at_the_first_checkpoint() {
        let (model, pyramids, stores, _) = world(2, 64, 64, 8);
        let src = TileSource::new(&stores).unwrap();
        let r = resilient_top_k(
            &model,
            &pyramids,
            5,
            &src,
            &ExecutionBudget::unlimited().with_wall_deadline(Duration::ZERO),
        )
        .unwrap();
        assert_eq!(r.budget_stop, Some(BudgetStop::WallClock));
        assert_eq!(r.completeness, 0.0, "nothing resolved before expiry");
        assert!(!r.results.is_empty(), "the frontier itself is reported");
        assert!(r.results.iter().all(|h| !h.exact));
        for h in &r.results {
            assert!(h.bounds.lo <= h.score && h.score <= h.bounds.hi);
        }
    }

    #[test]
    fn generous_wall_deadline_never_interferes() {
        let (model, pyramids, stores, _) = world(2, 32, 32, 8);
        let src = TileSource::new(&stores).unwrap();
        let strict = pyramid_top_k(&model, &pyramids, 4).unwrap();
        let r = resilient_top_k(
            &model,
            &pyramids,
            4,
            &src,
            &ExecutionBudget::unlimited().with_wall_deadline(Duration::from_secs(3600)),
        )
        .unwrap();
        assert_eq!(r.budget_stop, None);
        assert!(!r.is_degraded());
        for (a, b) in r.results.iter().zip(&strict.results) {
            assert_eq!((a.cell, a.score), (b.cell, b.score));
        }
    }

    #[test]
    fn wall_deadline_latch_is_sticky() {
        let expired = WallDeadline::starting_now(
            &ExecutionBudget::unlimited().with_wall_deadline(Duration::ZERO),
        );
        assert!(expired.expired());
        assert!(expired.expired(), "latched");
        let unlimited = WallDeadline::starting_now(&ExecutionBudget::unlimited());
        assert!(!unlimited.expired());
        let generous = WallDeadline::starting_now(
            &ExecutionBudget::unlimited().with_wall_deadline(Duration::from_secs(3600)),
        );
        assert!(!generous.expired());
    }

    #[test]
    fn detected_corruption_degrades_like_a_lost_page() {
        use crate::source::CachedTileSource;
        let (model, pyramids, stores, stats) = world(2, 32, 32, 8);
        let winner = pyramid_top_k(&model, &pyramids, 1).unwrap().results[0].cell;
        let page = stores[0].page_of(winner.row, winner.col);
        // Corrupt the winner's page on every store; the verifying cached
        // source detects it and the engine degrades instead of returning
        // silently wrong scores.
        let stores: Vec<TileStore> = stores
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).corrupt(page)))
            .collect();
        let src = CachedTileSource::new(&stores, 8).unwrap();
        let r = resilient_top_k(&model, &pyramids, 3, &src, &ExecutionBudget::unlimited()).unwrap();
        assert!(r.is_degraded());
        assert!(r.skipped_pages.contains(&page));
        assert!(stats.corruptions() > 0);
        let strict = pyramid_top_k(&model, &pyramids, 1).unwrap();
        let covered = r.results.iter().any(|h| {
            (h.exact && h.score == strict.results[0].score)
                || (!h.exact
                    && h.bounds.lo <= strict.results[0].score
                    && strict.results[0].score <= h.bounds.hi)
        });
        assert!(covered, "true winner must be confirmed or covered");
    }

    #[test]
    fn validates_like_the_strict_engine() {
        let (model, pyramids, stores, _) = world(2, 16, 16, 8);
        let src = TileSource::new(&stores).unwrap();
        assert!(
            resilient_top_k(&model, &pyramids, 0, &src, &ExecutionBudget::unlimited()).is_err()
        );
        assert!(resilient_top_k(
            &model,
            &pyramids[..1],
            1,
            &src,
            &ExecutionBudget::unlimited()
        )
        .is_err());
    }

    /// Delegating source that cancels a token once the inner source has
    /// read `after` pages — deterministic page-granular cancellation.
    struct CancelAfterPages<'a, S: CellSource> {
        inner: &'a S,
        token: CancelToken,
        after: u64,
    }

    impl<S: CellSource> CellSource for CancelAfterPages<'_, S> {
        fn base_cell(&self, attr: usize, row: usize, col: usize) -> Result<f64, ArchiveError> {
            let v = self.inner.base_cell(attr, row, col);
            if self.inner.pages_read() >= self.after {
                self.token.cancel();
            }
            v
        }
        fn page_of(&self, row: usize, col: usize) -> Option<usize> {
            self.inner.page_of(row, col)
        }
        fn pages_read(&self) -> u64 {
            self.inner.pages_read()
        }
        fn ticks_elapsed(&self) -> u64 {
            self.inner.ticks_elapsed()
        }
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let (model, pyramids, stores, _) = world(2, 32, 32, 8);
        let src = TileSource::new(&stores).unwrap();
        let plain =
            resilient_top_k(&model, &pyramids, 5, &src, &ExecutionBudget::unlimited()).unwrap();
        let token = CancelToken::new();
        let r = resilient_top_k_cancellable(
            &model,
            &pyramids,
            5,
            &src,
            &ExecutionBudget::unlimited(),
            &token,
        )
        .unwrap();
        assert_eq!(r, plain, "live token is free");
    }

    #[test]
    fn mid_flight_cancellation_degrades_with_sound_bounds() {
        let (model, pyramids, stores, _) = world(2, 64, 64, 8);
        let strict = pyramid_top_k(&model, &pyramids, 5).unwrap();
        let inner = TileSource::new(&stores).unwrap();
        let token = CancelToken::new();
        let src = CancelAfterPages {
            inner: &inner,
            token: token.clone(),
            after: 3,
        };
        let r = resilient_top_k_cancellable(
            &model,
            &pyramids,
            5,
            &src,
            &ExecutionBudget::unlimited(),
            &token,
        )
        .unwrap();
        assert_eq!(r.budget_stop, Some(BudgetStop::Cancelled));
        assert!(r.is_degraded());
        assert!(r.completeness < 1.0);
        for h in &r.results {
            assert!(h.bounds.lo <= h.score && h.score <= h.bounds.hi);
        }
        // The true winner is either confirmed exactly or covered by some
        // surviving candidate's bounds — same contract as a budget stop.
        let best = strict.results[0].score;
        assert!(
            r.results
                .iter()
                .any(|h| (h.exact && h.score == best) || (!h.exact && h.bounds.hi >= best)),
            "true winner neither confirmed nor covered"
        );
    }

    #[test]
    fn cancellation_takes_precedence_over_deadline_and_budget() {
        let (model, pyramids, stores, _) = world(2, 64, 64, 8);
        let src = TileSource::new(&stores).unwrap();
        // All three stop families trip at the very first checkpoint: a
        // pre-cancelled token, an expired wall deadline, and an exhausted
        // multiply-add cap. The fixed precedence reports Cancelled.
        let budget = ExecutionBudget::unlimited()
            .with_max_multiply_adds(1)
            .with_wall_deadline(Duration::ZERO);
        let token = CancelToken::new();
        token.cancel();
        let r = resilient_top_k_cancellable(&model, &pyramids, 5, &src, &budget, &token).unwrap();
        assert_eq!(r.budget_stop, Some(BudgetStop::Cancelled));
        assert_eq!(r.completeness, 0.0, "nothing resolved before the stop");
        assert!(!r.results.is_empty(), "the frontier itself is reported");
        // Without the token, the same racing budget reports WallClock —
        // the next rung of the precedence order.
        let r2 = resilient_top_k(&model, &pyramids, 5, &src, &budget).unwrap();
        assert_eq!(r2.budget_stop, Some(BudgetStop::WallClock));
    }

    #[test]
    fn coarse_pass_is_bit_identical_and_free_in_the_sequential_engine() {
        // In the sequential engine the coarse check is provably inert:
        // every cell evaluated before region R popped had `ub = score >=
        // R.ub` (max-heap order), so once k evaluations exist the floor
        // already dominates R.ub and the engine breaks instead of
        // expanding. The pass can therefore never fire here — with any
        // data, any k, any fault pattern — and the run must be *exactly*
        // as cheap as the plain one, not merely no dearer. Real pruning
        // needs a floor that arrives from outside the local pop order;
        // see the parallel and shard tests.
        let (model, pyramids, stores, _) = world(3, 64, 64, 8);
        let coarse = CoarseGrid::build(&pyramids).unwrap();
        let src = TileSource::new(&stores).unwrap();
        let budget = ExecutionBudget::unlimited();
        for k in [1usize, 5, 10] {
            let plain = resilient_top_k(&model, &pyramids, k, &src, &budget).unwrap();
            let pruned =
                resilient_top_k_coarse(&model, &pyramids, k, &src, &budget, &coarse).unwrap();
            assert_eq!(pruned.results, plain.results, "k={k}");
            assert_eq!(pruned.completeness, plain.completeness);
            assert_eq!(pruned.skipped_pages, plain.skipped_pages);
            assert_eq!(pruned.budget_stop, plain.budget_stop);
            assert_eq!(
                pruned.effort.multiply_adds, plain.effort.multiply_adds,
                "k={k}: the sequential coarse pass must be a provable no-op"
            );
        }
    }

    #[test]
    fn coarse_pass_is_bit_identical_under_faults() {
        let (model, pyramids, stores, _) = world(2, 32, 32, 8);
        let coarse = CoarseGrid::build(&pyramids).unwrap();
        // Kill the strict winner's page so the degraded path is exercised.
        let strict = pyramid_top_k(&model, &pyramids, 3).unwrap();
        let winner = strict.results[0].cell;
        let page = stores[0].page_of(winner.row, winner.col);
        let stores: Vec<TileStore> = stores
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).permanent(page)))
            .collect();
        let src = TileSource::new(&stores).unwrap();
        let budget = ExecutionBudget::unlimited();
        let plain = resilient_top_k(&model, &pyramids, 3, &src, &budget).unwrap();
        let pruned = resilient_top_k_coarse(&model, &pyramids, 3, &src, &budget, &coarse).unwrap();
        assert!(plain.is_degraded(), "fault must actually degrade the run");
        assert_eq!(pruned.results, plain.results);
        assert_eq!(pruned.completeness, plain.completeness);
        assert_eq!(pruned.skipped_pages, plain.skipped_pages);
    }

    #[test]
    fn coarse_scratch_reuse_stops_allocating() {
        let (model, pyramids, stores, _) = world(2, 32, 32, 8);
        let coarse = CoarseGrid::build(&pyramids).unwrap();
        let src = TileSource::new(&stores).unwrap();
        let budget = ExecutionBudget::unlimited();
        let mut scratch = QueryScratch::new();
        resilient_top_k_coarse_with_scratch(
            &model,
            &pyramids,
            4,
            &src,
            &budget,
            &coarse,
            &mut scratch,
        )
        .unwrap();
        let warmed = scratch.regrowths();
        resilient_top_k_coarse_with_scratch(
            &model,
            &pyramids,
            4,
            &src,
            &budget,
            &coarse,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(scratch.regrowths(), warmed, "second query allocated");
    }

    #[test]
    fn coarse_arity_mismatch_is_a_query_error() {
        let (model, pyramids, stores, _) = world(2, 16, 16, 8);
        let narrow = CoarseGrid::build(&pyramids[..1]).unwrap();
        let src = TileSource::new(&stores).unwrap();
        assert!(matches!(
            resilient_top_k_coarse(
                &model,
                &pyramids,
                3,
                &src,
                &ExecutionBudget::unlimited(),
                &narrow
            ),
            Err(CoreError::Query(_))
        ));
    }
}
