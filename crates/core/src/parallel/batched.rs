//! Parallel batched multi-query execution: the shared-frontier descent of
//! [`crate::batched`] partitioned over the worker pool.
//!
//! The shape mirrors the parallel resilient engine:
//!
//! 1. **Shared warm-up.** One sequential expansion of the *batched*
//!    frontier — `(query, region)` entries popped in the global bound
//!    order, region range boxes fetched once and bounded for all Q
//!    queries at a time — until it holds enough entries to deal every
//!    worker several per query.
//! 2. **Descend.** Each worker runs the batched best-first loop over its
//!    dealt entries with a *vector* of per-query [`SharedBound`]s: a K-th
//!    floor discovered for query `q` by one worker prunes `q`'s entries
//!    in every other worker, while leaving the other queries' descents
//!    untouched. Cell reads and bound vectors are memoized per worker;
//!    cross-worker page reuse comes from routing every worker through one
//!    shared (optionally caching) [`CellSource`].
//! 3. **Merge.** Per-query results are merged exactly like the parallel
//!    resilient engine merges one query: global score order, sound floor
//!    only from a full heap, leftover and lost regions resolved per query
//!    by that query's own floor.
//!
//! With a healthy source (or deterministic page faults) and a non-binding
//! budget, every query's merged results are bit-identical to its solo
//! sequential run at every thread count — the same argument as DESIGN.md
//! §9, applied per query. Mid-run budget stops are schedule-dependent,
//! exactly as they are for [`par_resilient_top_k`](super::engines).

use crate::batched::CELL_MEMO_WINDOW;
use crate::batched::{
    cell_key, BatchEntry, BatchedTopK, BoundMemo, CellSlot, MemoGovernor, MemoMap, Selector,
};
use crate::coarse::CoarseGrid;
use crate::engine::{
    read_base_vector_into, region_bound_into, validate_grid_inputs, EffortReport, Region,
};
use crate::error::CoreError;
use crate::lifecycle::CancelToken;
use crate::parallel::engines::{code_stop, stop_code, FRONTIER_FANOUT, STOP_NONE};
use crate::parallel::pool::{SharedBound, WorkerPool};
use crate::resilient::{checkpoint_stop, region_candidate, BudgetStop, ExecutionBudget};
use crate::resilient::{ResilientHit, ResilientTopK, ScoreBounds, WallDeadline};
use crate::source::CellSource;
use mbir_archive::error::ArchiveError;
use mbir_archive::extent::CellCoord;
use mbir_index::scan::TopKHeap;
use mbir_index::stats::{sort_desc, ScoredItem};
use mbir_models::linear::LinearModel;
use mbir_progressive::pyramid::AggregatePyramid;
use std::collections::{BTreeSet, BinaryHeap};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering as AtomicOrdering};

/// Shared read-only context of one parallel batched run.
struct BatchedCtx<'a, S: CellSource> {
    models: &'a [LinearModel],
    pyramids: &'a [AggregatePyramid],
    cols: usize,
    k: usize,
    source: &'a S,
    budget: &'a ExecutionBudget,
    deadline: &'a WallDeadline,
    cancel: Option<&'a CancelToken>,
    /// One pruning bound per query: workers publish each query's K-th
    /// floor into its own slot, so pruning progress propagates per query.
    bounds: &'a [SharedBound],
    coarse: Option<&'a CoarseGrid>,
    /// Batch-wide multiply-adds across all queries and workers.
    multiply_adds: &'a AtomicU64,
    stop: &'a AtomicU8,
    pages_at_entry: u64,
    ticks_at_entry: u64,
}

struct BatchedWorkerOut {
    /// Per-query evaluated hits, in batch order.
    items: Vec<Vec<ScoredItem>>,
    /// Per-query level-0 regions whose page read failed.
    lost: Vec<Vec<(Region, usize)>>,
    /// Per-query regions a budget stop left unrefined.
    leftover: Vec<Vec<Region>>,
    efforts: Vec<EffortReport>,
    cells_fetched: u64,
    cell_requests: u64,
    bound_evals: u64,
    bound_requests: u64,
    error: Option<CoreError>,
}

/// One worker's batched descent over its dealt `(query, region)` entries:
/// each query pops among its own entries in exactly its solo order, prunes
/// against `max(its shared bound, its local floor)`, and parks lost pages;
/// the batch-wide budget is checked once per pop.
fn batched_worker<S: CellSource>(
    ctx: &BatchedCtx<'_, S>,
    seed: Vec<BatchEntry>,
) -> BatchedWorkerOut {
    let m = ctx.models.len();
    let arity = ctx.models[0].arity();
    let n = arity as u64;
    let mut frontiers: Vec<BinaryHeap<Region>> = (0..m).map(|_| BinaryHeap::new()).collect();
    for e in seed {
        frontiers[e.q as usize].push(e.region());
    }
    let mut selector = Selector::for_width(m);
    for q in 0..m {
        selector.arm(q, &frontiers);
    }
    let mut heaps: Vec<TopKHeap> = (0..m).map(|_| TopKHeap::new(ctx.k)).collect();
    let mut local_done = vec![false; m];
    let mut children: Vec<CellCoord> = Vec::new();
    let mut ranges: Vec<(f64, f64)> = Vec::new();
    let mut x: Vec<f64> = Vec::new();
    let mut cell_memo: MemoMap<CellSlot> = MemoMap::default();
    let mut cell_gov = MemoGovernor::new(CELL_MEMO_WINDOW);
    let mut cell_arena: Vec<f64> = Vec::new();
    let mut bound_memo = BoundMemo::new();
    let mut out = BatchedWorkerOut {
        items: (0..m).map(|_| Vec::new()).collect(),
        lost: (0..m).map(|_| Vec::new()).collect(),
        leftover: (0..m).map(|_| Vec::new()).collect(),
        efforts: vec![EffortReport::default(); m],
        cells_fetched: 0,
        cell_requests: 0,
        bound_evals: 0,
        bound_requests: 0,
        error: None,
    };
    let mut coarse_bufs: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
    if let Some(cg) = ctx.coarse {
        coarse_bufs.resize_with(m, Default::default);
        for (q, model) in ctx.models.iter().enumerate() {
            let (qc, qm) = &mut coarse_bufs[q];
            if let Err(e) = cg.prepare_into(model, qc, qm) {
                out.error = Some(e);
                return out;
            }
        }
    }
    'descent: while let Some((q, e)) = selector.next(&mut frontiers) {
        if bound_memo.is_off() {
            selector.go_serial();
        }
        let mut bound = ctx.bounds[q].get();
        if let Some(floor) = heaps[q].floor() {
            bound = bound.max(floor);
        }
        if bound >= e.ub {
            // This query's remaining entries in this worker all carry
            // smaller bounds: sound exclusion, query-local; its frontier
            // is abandoned without further pops.
            local_done[q] = true;
            continue;
        }
        if ctx.stop.load(AtomicOrdering::Relaxed) != STOP_NONE {
            out.leftover[q].push(e);
            for (rq, f) in frontiers.iter_mut().enumerate() {
                if !local_done[rq] {
                    out.leftover[rq].extend(f.drain());
                }
            }
            break;
        }
        let checked = checkpoint_stop(
            ctx.cancel,
            ctx.deadline,
            ctx.budget,
            ctx.multiply_adds.load(AtomicOrdering::Relaxed),
            ctx.source.pages_read().saturating_sub(ctx.pages_at_entry),
            ctx.source
                .ticks_elapsed()
                .saturating_sub(ctx.ticks_at_entry),
        );
        if let Some(stop) = checked {
            let _ = ctx.stop.compare_exchange(
                STOP_NONE,
                stop_code(stop),
                AtomicOrdering::Relaxed,
                AtomicOrdering::Relaxed,
            );
            out.leftover[q].push(e);
            for (rq, f) in frontiers.iter_mut().enumerate() {
                if !local_done[rq] {
                    out.leftover[rq].extend(f.drain());
                }
            }
            break;
        }
        if e.level == 0 {
            out.cell_requests += 1;
            if cell_gov.live() {
                let ck = cell_key(e.row as u32, e.col as u32);
                let slot = match cell_memo.get(&ck) {
                    Some(s) => {
                        cell_gov.record(true);
                        *s
                    }
                    None => {
                        cell_gov.record(false);
                        let s = match read_base_vector_into(ctx.source, arity, e.row, e.col, &mut x)
                        {
                            Ok(()) => {
                                out.cells_fetched += 1;
                                let off = cell_arena.len();
                                cell_arena.extend_from_slice(&x);
                                CellSlot::Loaded(off)
                            }
                            Err(CoreError::Archive(
                                ArchiveError::PageIo { page }
                                | ArchiveError::PageQuarantined { page }
                                | ArchiveError::PageCorrupt { page },
                            )) => {
                                let page = ctx.source.page_of(e.row, e.col).unwrap_or(page);
                                CellSlot::Lost(page)
                            }
                            Err(err) => {
                                out.error = Some(err);
                                break 'descent;
                            }
                        };
                        cell_memo.insert(ck, s);
                        s
                    }
                };
                match slot {
                    CellSlot::Loaded(off) => {
                        out.efforts[q].multiply_adds += n;
                        ctx.multiply_adds.fetch_add(n, AtomicOrdering::Relaxed);
                        heaps[q].offer(ScoredItem {
                            index: e.row * ctx.cols + e.col,
                            score: ctx.models[q].evaluate(&cell_arena[off..off + arity]),
                        });
                        if let Some(floor) = heaps[q].floor() {
                            ctx.bounds[q].offer(floor);
                        }
                    }
                    CellSlot::Lost(page) => out.lost[q].push((e, page)),
                }
            } else {
                // Governed off: the solo worker's read-and-score path,
                // with no arena copy and no table insert.
                match read_base_vector_into(ctx.source, arity, e.row, e.col, &mut x) {
                    Ok(()) => {
                        out.cells_fetched += 1;
                        out.efforts[q].multiply_adds += n;
                        ctx.multiply_adds.fetch_add(n, AtomicOrdering::Relaxed);
                        heaps[q].offer(ScoredItem {
                            index: e.row * ctx.cols + e.col,
                            score: ctx.models[q].evaluate(&x),
                        });
                        if let Some(floor) = heaps[q].floor() {
                            ctx.bounds[q].offer(floor);
                        }
                    }
                    Err(CoreError::Archive(
                        ArchiveError::PageIo { page }
                        | ArchiveError::PageQuarantined { page }
                        | ArchiveError::PageCorrupt { page },
                    )) => {
                        let page = ctx.source.page_of(e.row, e.col).unwrap_or(page);
                        out.lost[q].push((e, page));
                    }
                    Err(err) => {
                        out.error = Some(err);
                        break 'descent;
                    }
                }
            }
            selector.arm(q, &frontiers);
            continue;
        }
        let level = e.level;
        ctx.pyramids[0].children_into(level, e.row, e.col, &mut children);
        for &child in children.iter() {
            // Coarse pass against the pop-time pruning bound — the same
            // strict-`<` prune-only contract as the parallel resilient
            // worker, applied with this query's own bound.
            if let Some(cg) = ctx.coarse {
                let (qc, qm) = &coarse_bufs[q];
                if bound > f64::NEG_INFINITY
                    && cg.cell_upper_bound(qc, qm, level - 1, child.row, child.col) < bound
                {
                    continue;
                }
            }
            out.bound_requests += 1;
            let bounded = if bound_memo.is_off() {
                // Retired memo: the solo engine's bound path, inlined.
                out.bound_evals += 1;
                region_bound_into(
                    &ctx.models[q],
                    ctx.pyramids,
                    level - 1,
                    child.row,
                    child.col,
                    &mut ranges,
                    &mut out.efforts[q],
                )
            } else {
                bound_memo
                    .bound(
                        ctx.models,
                        ctx.pyramids,
                        level - 1,
                        child.row,
                        child.col,
                        q,
                        &mut out.bound_evals,
                    )
                    .inspect(|_| out.efforts[q].multiply_adds += n)
            };
            let ub = match bounded {
                Ok(ub) => ub,
                Err(err) => {
                    out.error = Some(err);
                    break 'descent;
                }
            };
            ctx.multiply_adds.fetch_add(n, AtomicOrdering::Relaxed);
            frontiers[q].push(Region {
                ub,
                level: level - 1,
                row: child.row,
                col: child.col,
            });
        }
        selector.arm(q, &frontiers);
    }
    for (q, heap) in heaps.into_iter().enumerate() {
        out.items[q] = heap.into_sorted();
    }
    out
}

/// Parallel [`batched_top_k`](crate::batched::batched_top_k): the shared
/// multi-query descent partitioned over the pool's workers, with one
/// [`SharedBound`] per query so each query's pruning floor propagates
/// across workers independently, under one batch-wide budget.
///
/// With a healthy source (or deterministic page faults) and a non-binding
/// budget, each query's results are bit-identical to its solo sequential
/// [`resilient_top_k`](crate::resilient::resilient_top_k) run at every
/// thread count. Mid-run budget stops are sound but schedule-dependent.
///
/// # Errors
///
/// Same as [`batched_top_k`](crate::batched::batched_top_k).
pub fn par_batched_top_k<S: CellSource + Sync>(
    models: &[LinearModel],
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
    pool: &WorkerPool,
) -> Result<BatchedTopK, CoreError> {
    par_batched_top_k_inner(models, pyramids, k, source, budget, None, None, pool)
}

/// [`par_batched_top_k`] polling a [`CancelToken`] at every worker
/// checkpoint; cancellation stops the whole batch with every open query
/// degrading soundly.
///
/// # Errors
///
/// Same as [`par_batched_top_k`].
pub fn par_batched_top_k_cancellable<S: CellSource + Sync>(
    models: &[LinearModel],
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
    cancel: &CancelToken,
    pool: &WorkerPool,
) -> Result<BatchedTopK, CoreError> {
    par_batched_top_k_inner(
        models,
        pyramids,
        k,
        source,
        budget,
        Some(cancel),
        None,
        pool,
    )
}

/// [`par_batched_top_k`] with the quantized coarse pass: every worker
/// consults the shared [`CoarseGrid`] per query against that query's own
/// pruning bound before computing an exact child bound. Prune-only.
///
/// # Errors
///
/// Same as [`par_batched_top_k`], plus [`CoreError::Query`] when the
/// coarse grid's arity does not match the models.
pub fn par_batched_top_k_coarse<S: CellSource + Sync>(
    models: &[LinearModel],
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
    coarse: &CoarseGrid,
    pool: &WorkerPool,
) -> Result<BatchedTopK, CoreError> {
    par_batched_top_k_inner(
        models,
        pyramids,
        k,
        source,
        budget,
        None,
        Some(coarse),
        pool,
    )
}

#[allow(clippy::too_many_arguments)]
fn par_batched_top_k_inner<S: CellSource + Sync>(
    models: &[LinearModel],
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
    cancel: Option<&CancelToken>,
    coarse: Option<&CoarseGrid>,
    pool: &WorkerPool,
) -> Result<BatchedTopK, CoreError> {
    let m = models.len();
    if m == 0 {
        return Ok(BatchedTopK {
            queries: Vec::new(),
            pages_read: 0,
            cells_fetched: 0,
            cell_requests: 0,
            bound_evals: 0,
            bound_requests: 0,
        });
    }
    let ((rows, cols), levels) = validate_grid_inputs(&models[0], pyramids, k)?;
    for model in &models[1..] {
        if model.arity() != models[0].arity() {
            return Err(CoreError::Query(
                "batched queries must share the model arity".into(),
            ));
        }
    }
    let n = models[0].arity() as u64;
    let total_cells = (rows * cols) as u64;
    let pages_at_entry = source.pages_read();
    let ticks_at_entry = source.ticks_elapsed();
    let deadline = WallDeadline::starting_now(budget);

    let mut efforts: Vec<EffortReport> = (0..m)
        .map(|_| EffortReport {
            multiply_adds: 0,
            naive_multiply_adds: n * total_cells,
        })
        .collect();
    let mut total_ma = 0u64;
    let mut bound_evals = 0u64;
    let mut bound_requests = 0u64;

    // Shared warm-up over the batched frontier: level-0 entries are
    // parked, range boxes are fetched once per region and bounded lazily
    // per requesting query, and the target scales with the batch so every
    // worker receives several entries per query.
    let mut children: Vec<CellCoord> = Vec::new();
    let mut bound_memo = BoundMemo::new();
    let mut frontier: BinaryHeap<BatchEntry> = BinaryHeap::new();
    let mut parked: Vec<BatchEntry> = Vec::new();
    let top = levels - 1;
    for (q, effort) in efforts.iter_mut().enumerate().take(m) {
        let ub = bound_memo.bound(models, pyramids, top, 0, 0, q, &mut bound_evals)?;
        effort.multiply_adds += n;
        total_ma += n;
        bound_requests += 1;
        frontier.push(BatchEntry {
            ub,
            level: top as u32,
            row: 0,
            col: 0,
            q: q as u32,
        });
    }
    let target = pool.threads() * FRONTIER_FANOUT * m;
    let mut warm_stop: Option<BudgetStop> = None;
    while frontier.len() + parked.len() < target {
        let checked = checkpoint_stop(
            cancel,
            &deadline,
            budget,
            total_ma,
            source.pages_read().saturating_sub(pages_at_entry),
            source.ticks_elapsed().saturating_sub(ticks_at_entry),
        );
        if let Some(s) = checked {
            warm_stop = Some(s);
            break;
        }
        let Some(e) = frontier.pop() else { break };
        if e.level == 0 {
            parked.push(e);
            continue;
        }
        let q = e.q as usize;
        let level = e.level as usize;
        pyramids[0].children_into(level, e.row as usize, e.col as usize, &mut children);
        for &child in children.iter() {
            bound_requests += 1;
            let ub = bound_memo.bound(
                models,
                pyramids,
                level - 1,
                child.row,
                child.col,
                q,
                &mut bound_evals,
            )?;
            efforts[q].multiply_adds += n;
            total_ma += n;
            frontier.push(BatchEntry {
                ub,
                level: (level - 1) as u32,
                row: child.row as u32,
                col: child.col as u32,
                q: e.q,
            });
        }
    }
    let mut entries = frontier.into_vec();
    entries.append(&mut parked);
    entries.sort_by(|a, b| b.cmp(a));

    let bounds: Vec<SharedBound> = (0..m).map(|_| SharedBound::new()).collect();
    let shared_ma = AtomicU64::new(total_ma);
    let stop_flag = AtomicU8::new(warm_stop.map(stop_code).unwrap_or(STOP_NONE));

    let mut all_items: Vec<Vec<ScoredItem>> = (0..m).map(|_| Vec::new()).collect();
    let mut all_lost: Vec<Vec<(Region, usize)>> = (0..m).map(|_| Vec::new()).collect();
    let mut all_leftover: Vec<Vec<Region>> = (0..m).map(|_| Vec::new()).collect();
    let mut cells_fetched = 0u64;
    let mut cell_requests = 0u64;

    if warm_stop.is_some() {
        for e in entries {
            all_leftover[e.q as usize].push(e.region());
        }
    } else {
        let ctx = BatchedCtx {
            models,
            pyramids,
            cols,
            k,
            source,
            budget,
            deadline: &deadline,
            cancel,
            bounds: &bounds,
            coarse,
            multiply_adds: &shared_ma,
            stop: &stop_flag,
            pages_at_entry,
            ticks_at_entry,
        };
        let ctx_ref = &ctx;
        let workers = pool.threads().min(entries.len()).max(1);
        let mut parts: Vec<Vec<BatchEntry>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, e) in entries.into_iter().enumerate() {
            parts[i % workers].push(e);
        }
        let outs = pool.run(
            parts
                .into_iter()
                .map(|seed| move |_wi: usize| batched_worker(ctx_ref, seed))
                .collect(),
        );
        for out in outs {
            if let Some(e) = out.error {
                return Err(e);
            }
            cells_fetched += out.cells_fetched;
            cell_requests += out.cell_requests;
            bound_evals += out.bound_evals;
            bound_requests += out.bound_requests;
            for (q, eff) in out.efforts.into_iter().enumerate() {
                efforts[q] += eff;
            }
            for (q, items) in out.items.into_iter().enumerate() {
                all_items[q].extend(items);
            }
            for (q, lv) in out.lost.into_iter().enumerate() {
                all_lost[q].extend(lv);
            }
            for (q, lv) in out.leftover.into_iter().enumerate() {
                all_leftover[q].extend(lv);
            }
        }
    }

    let budget_stop = code_stop(stop_flag.load(AtomicOrdering::Relaxed));
    let pages_read = source.pages_read().saturating_sub(pages_at_entry);
    let parent_level = 1.min(levels - 1);
    let mut queries = Vec::with_capacity(m);
    for (q, mut items) in all_items.into_iter().enumerate() {
        sort_desc(&mut items);
        items.truncate(k);
        // Only a full merged heap yields a sound exclusion floor.
        let floor = if items.len() == k {
            items.last().map(|i| i.score)
        } else {
            None
        };
        let excluded = |hi: f64| floor.is_some_and(|f| f >= hi);
        let mut unresolved = 0u64;
        let mut skipped: BTreeSet<usize> = BTreeSet::new();
        let mut hits: Vec<ResilientHit> = items
            .into_iter()
            .map(|item| ResilientHit {
                cell: CellCoord::new(item.index / cols, item.index % cols),
                level: 0,
                score: item.score,
                bounds: ScoreBounds::exact(item.score),
                exact: true,
            })
            .collect();
        let interrupted = !all_leftover[q].is_empty();
        for region in &all_leftover[q] {
            let (candidate, count) = region_candidate(
                &models[q],
                pyramids,
                region.level,
                region.row,
                region.col,
                &mut efforts[q],
            )?;
            if excluded(candidate.bounds.hi) {
                continue; // Provably outside the top-K: resolved.
            }
            unresolved += count;
            hits.push(candidate);
        }
        for (region, page) in &all_lost[q] {
            if excluded(region.ub) {
                continue;
            }
            skipped.insert(*page);
            let (mut candidate, _) = region_candidate(
                &models[q],
                pyramids,
                parent_level,
                region.row >> parent_level,
                region.col >> parent_level,
                &mut efforts[q],
            )?;
            candidate.cell = CellCoord::new(region.row, region.col);
            candidate.level = 0;
            unresolved += 1;
            hits.push(candidate);
        }
        hits.sort_by(|a, b| {
            b.bounds
                .hi
                .total_cmp(&a.bounds.hi)
                .then_with(|| b.score.total_cmp(&a.score))
                .then_with(|| a.cell.cmp(&b.cell))
        });
        hits.truncate(k);
        queries.push(ResilientTopK {
            results: hits,
            effort: efforts[q],
            completeness: 1.0 - unresolved as f64 / total_cells as f64,
            skipped_pages: skipped.into_iter().collect(),
            // A query that drained its frontier everywhere finished
            // normally even when some *other* query tripped the stop.
            budget_stop: if interrupted { budget_stop } else { None },
        });
    }
    Ok(BatchedTopK {
        queries,
        pages_read,
        cells_fetched,
        cell_requests,
        bound_evals,
        bound_requests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batched::batched_top_k;
    use crate::resilient::resilient_top_k;
    use crate::source::{CachedTileSource, TileSource};
    use mbir_archive::fault::FaultProfile;
    use mbir_archive::grid::Grid2;
    use mbir_archive::stats::AccessStats;
    use mbir_archive::tile::TileStore;

    fn batch_world(
        arity: usize,
        rows: usize,
        cols: usize,
        tile: usize,
    ) -> (Vec<LinearModel>, Vec<AggregatePyramid>, Vec<TileStore>) {
        let grids: Vec<Grid2<f64>> = (0..arity)
            .map(|i| {
                Grid2::from_fn(rows, cols, |r, c| {
                    ((r as f64 / 9.0 + i as f64).sin() + (c as f64 / 11.0).cos()) * 50.0 + 100.0
                })
            })
            .collect();
        let pyramids = grids.iter().map(AggregatePyramid::build).collect();
        let stats = AccessStats::new();
        let stores = grids
            .iter()
            .map(|g| {
                TileStore::new(g.clone(), tile)
                    .unwrap()
                    .with_stats(stats.clone())
            })
            .collect();
        let models = (0..5)
            .map(|qi| {
                let coeffs: Vec<f64> = (0..arity)
                    .map(|a| 1.0 - 0.3 * a as f64 + 0.21 * qi as f64 - 0.07 * (a * qi) as f64)
                    .collect();
                LinearModel::new(coeffs, 0.25 * qi as f64).unwrap()
            })
            .collect();
        (models, pyramids, stores)
    }

    #[test]
    fn par_batched_healthy_matches_solo_at_every_thread_count() {
        let (models, pyramids, stores) = batch_world(3, 48, 48, 8);
        let budget = ExecutionBudget::unlimited();
        let solos: Vec<ResilientTopK> = models
            .iter()
            .map(|model| {
                let src = TileSource::new(&stores).unwrap();
                resilient_top_k(model, &pyramids, 7, &src, &budget).unwrap()
            })
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let src = TileSource::new(&stores).unwrap();
            let batch = par_batched_top_k(&models, &pyramids, 7, &src, &budget, &pool).unwrap();
            for (q, solo) in solos.iter().enumerate() {
                assert_eq!(
                    batch.queries[q].results, solo.results,
                    "threads={threads} q={q}"
                );
                assert_eq!(batch.queries[q].completeness, 1.0);
                assert_eq!(batch.queries[q].budget_stop, None);
                assert!(batch.queries[q].skipped_pages.is_empty());
            }
        }
    }

    #[test]
    fn par_batched_matches_sequential_batched_under_faults() {
        let (models, pyramids, stores) = batch_world(2, 32, 32, 8);
        let src = TileSource::new(&stores).unwrap();
        let budget = ExecutionBudget::unlimited();
        let winner = batched_top_k(&models, &pyramids, 1, &src, &budget)
            .unwrap()
            .queries[0]
            .results[0]
            .cell;
        let page = stores[0].page_of(winner.row, winner.col);
        let stores: Vec<TileStore> = stores
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).permanent(page)))
            .collect();
        let seq_src = TileSource::new(&stores).unwrap();
        let sequential = batched_top_k(&models, &pyramids, 4, &seq_src, &budget).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let src = TileSource::new(&stores).unwrap();
            let parallel = par_batched_top_k(&models, &pyramids, 4, &src, &budget, &pool).unwrap();
            for q in 0..models.len() {
                assert_eq!(
                    parallel.queries[q].results, sequential.queries[q].results,
                    "threads={threads} q={q}"
                );
                assert_eq!(
                    parallel.queries[q].completeness, sequential.queries[q].completeness,
                    "threads={threads} q={q}"
                );
                assert_eq!(
                    parallel.queries[q].skipped_pages, sequential.queries[q].skipped_pages,
                    "threads={threads} q={q}"
                );
            }
        }
    }

    #[test]
    fn par_batched_coarse_is_prune_only() {
        let (models, pyramids, stores) = batch_world(3, 64, 64, 8);
        let coarse = CoarseGrid::build(&pyramids).unwrap();
        let budget = ExecutionBudget::unlimited();
        for threads in [1usize, 4] {
            let pool = WorkerPool::new(threads);
            let src = TileSource::new(&stores).unwrap();
            let plain = par_batched_top_k(&models, &pyramids, 6, &src, &budget, &pool).unwrap();
            let src = TileSource::new(&stores).unwrap();
            let pruned =
                par_batched_top_k_coarse(&models, &pyramids, 6, &src, &budget, &coarse, &pool)
                    .unwrap();
            for q in 0..models.len() {
                assert_eq!(
                    pruned.queries[q].results, plain.queries[q].results,
                    "threads={threads} q={q}"
                );
            }
        }
    }

    #[test]
    fn par_batched_pre_cancelled_token_degrades_every_query() {
        let (models, pyramids, stores) = batch_world(2, 48, 48, 8);
        let budget = ExecutionBudget::unlimited();
        let token = CancelToken::new();
        token.cancel();
        let pool = WorkerPool::new(4);
        let src = TileSource::new(&stores).unwrap();
        let batch =
            par_batched_top_k_cancellable(&models, &pyramids, 5, &src, &budget, &token, &pool)
                .unwrap();
        for r in &batch.queries {
            assert_eq!(r.budget_stop, Some(BudgetStop::Cancelled));
            assert!(r.completeness < 1.0);
            for hit in r.results.iter().filter(|h| !h.exact) {
                assert!(hit.bounds.lo <= hit.score && hit.score <= hit.bounds.hi);
            }
        }
    }

    #[test]
    fn par_batched_mid_run_budget_stop_is_sound() {
        let (models, pyramids, stores) = batch_world(2, 64, 64, 8);
        let src = TileSource::new(&stores).unwrap();
        let unlimited =
            batched_top_k(&models, &pyramids, 5, &src, &ExecutionBudget::unlimited()).unwrap();
        let total: u64 = unlimited
            .queries
            .iter()
            .map(|r| r.effort.multiply_adds)
            .sum();
        let budget = ExecutionBudget::unlimited().with_max_multiply_adds(total / 3);
        let pool = WorkerPool::new(4);
        let src = TileSource::new(&stores).unwrap();
        let stopped = par_batched_top_k(&models, &pyramids, 5, &src, &budget, &pool).unwrap();
        for (q, r) in stopped.queries.iter().enumerate() {
            assert!(r.completeness >= 0.0 && r.completeness <= 1.0);
            let best = unlimited.queries[q].results[0].score;
            assert!(
                r.results.len() == 5
                    || r.results
                        .iter()
                        .any(|h| (h.exact && h.score == best) || (!h.exact && h.bounds.hi >= best)),
                "q={q}: winner neither confirmed nor covered"
            );
        }
    }

    #[test]
    fn par_batched_amortizes_pages_with_shared_cache() {
        let (models, pyramids, stores) = batch_world(3, 64, 64, 8);
        let budget = ExecutionBudget::unlimited();
        let pool = WorkerPool::new(4);
        let mut solo_pages = 0u64;
        for model in &models {
            let src = CachedTileSource::new(&stores, 64).unwrap();
            let before = src.pages_read();
            resilient_top_k(model, &pyramids, 7, &src, &budget).unwrap();
            solo_pages += src.pages_read() - before;
        }
        let src = CachedTileSource::new(&stores, 64).unwrap();
        let batch = par_batched_top_k(&models, &pyramids, 7, &src, &budget, &pool).unwrap();
        assert!(
            batch.pages_read <= solo_pages,
            "batched {} pages vs solo sum {}",
            batch.pages_read,
            solo_pages
        );
    }

    #[test]
    fn par_batched_empty_and_mismatched_batches() {
        let (models, pyramids, stores) = batch_world(2, 16, 16, 8);
        let pool = WorkerPool::new(2);
        let src = TileSource::new(&stores).unwrap();
        let budget = ExecutionBudget::unlimited();
        let empty = par_batched_top_k(&[], &pyramids, 3, &src, &budget, &pool).unwrap();
        assert!(empty.queries.is_empty());
        let odd = LinearModel::new(vec![1.0, 2.0, 3.0], 0.0).unwrap();
        let mixed = vec![models[0].clone(), odd];
        assert!(par_batched_top_k(&mixed, &pyramids, 3, &src, &budget, &pool).is_err());
    }
}
