//! Batched multi-query execution over one shared archive.
//!
//! An archive serving interactive exploration sees bursts of independent
//! top-K queries against the *same* pyramids and tile stores. Running them
//! one after another wastes the workers; running each one on the full pool
//! thrashes it. [`QueryBatch`] admits N queries and deals them round-robin
//! across the pool, each query running the ordinary sequential engine
//! against the shared read-only index — so per-query results are exactly
//! what [`grid_query`](crate::engine::grid_query) would return, in
//! admission order, regardless of thread count. Point the batch at a
//! [`CachedTileSource`](crate::source::CachedTileSource) and concurrent
//! queries share (and dedup) their page reads too.

use crate::engine::{pyramid_top_k_with_source, GridTopK};
use crate::error::CoreError;
use crate::parallel::pool::WorkerPool;
use crate::query::{Objective, TopKQuery};
use crate::source::CellSource;
use mbir_models::linear::LinearModel;
use mbir_progressive::pyramid::AggregatePyramid;

/// A set of concurrent top-K queries against one model + pyramid index.
#[derive(Debug, Clone)]
pub struct QueryBatch<'a> {
    model: &'a LinearModel,
    pyramids: &'a [AggregatePyramid],
    queries: Vec<TopKQuery>,
}

impl<'a> QueryBatch<'a> {
    /// An empty batch against `model` and `pyramids`.
    pub fn new(model: &'a LinearModel, pyramids: &'a [AggregatePyramid]) -> Self {
        QueryBatch {
            model,
            pyramids,
            queries: Vec::new(),
        }
    }

    /// Admits a query, returning its slot in the result vector.
    pub fn admit(&mut self, query: TopKQuery) -> usize {
        self.queries.push(query);
        self.queries.len() - 1
    }

    /// The admitted queries, in admission order.
    pub fn queries(&self) -> &[TopKQuery] {
        &self.queries
    }

    /// Number of admitted queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether no query has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Runs every admitted query against the shared `source`, scheduling
    /// them round-robin over the pool's workers. Results come back in
    /// admission order, each exactly what the sequential engine returns
    /// for that query — per-query failures stay in their own slot and
    /// never poison the rest of the batch.
    pub fn run<S: CellSource + Sync>(
        &self,
        source: &S,
        pool: &WorkerPool,
    ) -> Vec<Result<GridTopK, CoreError>> {
        let n = self.queries.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = pool.threads().min(n);
        let tasks: Vec<_> = (0..workers)
            .map(|wi| {
                move |_i: usize| -> Vec<(usize, Result<GridTopK, CoreError>)> {
                    (wi..n)
                        .step_by(workers)
                        .map(|qi| {
                            (
                                qi,
                                grid_query_with_source(
                                    self.model,
                                    self.pyramids,
                                    self.queries[qi],
                                    source,
                                ),
                            )
                        })
                        .collect()
                }
            })
            .collect();
        let mut out: Vec<Option<Result<GridTopK, CoreError>>> = (0..n).map(|_| None).collect();
        for chunk in pool.run(tasks) {
            for (qi, result) in chunk {
                out[qi] = Some(result);
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every admitted query executes"))
            .collect()
    }
}

/// One query against a [`CellSource`] — the per-query unit the batch
/// schedules. Dispatches on the objective by negating the model for
/// minimization, mirroring [`grid_query`](crate::engine::grid_query).
///
/// # Errors
///
/// Same as [`pyramid_top_k_with_source`].
pub fn grid_query_with_source<S: CellSource>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    query: TopKQuery,
    source: &S,
) -> Result<GridTopK, CoreError> {
    match query.objective() {
        Objective::Maximize => pyramid_top_k_with_source(model, pyramids, query.k(), source),
        Objective::Minimize => {
            let negated = LinearModel::new(
                model.coefficients().iter().map(|a| -a).collect(),
                -model.intercept(),
            )
            .map_err(CoreError::Model)?;
            let mut result = pyramid_top_k_with_source(&negated, pyramids, query.k(), source)?;
            for sc in &mut result.results {
                sc.score = -sc.score;
            }
            Ok(result)
        }
    }
}
