//! Batched multi-query execution over one shared archive.
//!
//! An archive serving interactive exploration sees bursts of independent
//! top-K queries against the *same* pyramids and tile stores. Running them
//! one after another wastes the workers; running each one on the full pool
//! thrashes it. [`QueryBatch`] admits N queries and schedules them over
//! the pool, each query running the ordinary sequential engine against the
//! shared read-only index — so per-query results are exactly what
//! [`grid_query`](crate::engine::grid_query) would return, in admission
//! order, regardless of thread count or schedule.
//!
//! Two session-level resources make the batch cheap to repeat:
//!
//! * **Cache-aware scheduling.** Before dispatch, every query is tagged
//!   with the page its descent is predicted to land on (one allocation-free
//!   greedy walk down the pyramids), and queries are dealt to workers in
//!   *contiguous page order* instead of round-robin: queries pulling the
//!   same tiles run back to back on one worker, so a shared
//!   [`CachedTileSource`](crate::source::CachedTileSource) sees compounding
//!   hits instead of cross-worker thrash. Scheduling only permutes
//!   execution order — results stay in admission order.
//! * **A per-worker scratch pool.** Each worker reuses *one*
//!   [`QueryScratch`] across all queries it runs (instead of growing a
//!   fresh one per query), and [`ScratchPool`] carries those warmed
//!   scratches across batches in a session, so the steady state allocates
//!   nothing — [`ScratchPool::regrowths`] is the proof hook.

use crate::engine::{pyramid_top_k_with_scratch, GridTopK, QueryScratch};
use crate::error::CoreError;
use crate::parallel::pool::WorkerPool;
use crate::query::{Objective, TopKQuery};
use crate::source::CellSource;
use mbir_archive::extent::CellCoord;
use mbir_models::linear::LinearModel;
use mbir_progressive::pyramid::AggregatePyramid;

/// Per-worker query results tagged with their original batch index.
type IndexedResults = Vec<(usize, Result<GridTopK, CoreError>)>;

/// Warmed per-worker [`QueryScratch`]es carried across the batches of a
/// session. The pool grows to the widest batch it has served and then
/// stops allocating; [`regrowths`](ScratchPool::regrowths) sums the
/// growth events of every scratch, so a steady-state session shows a
/// stable count.
#[derive(Debug, Default)]
pub struct ScratchPool {
    scratches: Vec<QueryScratch>,
}

impl ScratchPool {
    /// An empty pool; scratches are created on first use.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Number of warmed scratches currently pooled.
    pub fn len(&self) -> usize {
        self.scratches.len()
    }

    /// Whether the pool holds no warmed scratch yet.
    pub fn is_empty(&self) -> bool {
        self.scratches.is_empty()
    }

    /// Total internal-buffer growth events across every pooled scratch.
    /// Stable across two identical consecutive batches ⇔ the second batch
    /// allocated nothing.
    pub fn regrowths(&self) -> u64 {
        self.scratches.iter().map(QueryScratch::regrowths).sum()
    }

    /// Takes `n` scratches out of the pool in stable order (warmed ones
    /// first, fresh ones to make up the difference), so a repeated batch
    /// pairs each worker slot with the scratch it warmed last time.
    fn take(&mut self, n: usize) -> Vec<QueryScratch> {
        let mut out: Vec<QueryScratch> = self
            .scratches
            .drain(..n.min(self.scratches.len()))
            .collect();
        out.resize_with(n, Default::default);
        out
    }
}

/// A set of concurrent top-K queries against one model + pyramid index.
#[derive(Debug, Clone)]
pub struct QueryBatch<'a> {
    model: &'a LinearModel,
    pyramids: &'a [AggregatePyramid],
    queries: Vec<TopKQuery>,
}

impl<'a> QueryBatch<'a> {
    /// An empty batch against `model` and `pyramids`.
    pub fn new(model: &'a LinearModel, pyramids: &'a [AggregatePyramid]) -> Self {
        QueryBatch {
            model,
            pyramids,
            queries: Vec::new(),
        }
    }

    /// Admits a query, returning its slot in the result vector.
    pub fn admit(&mut self, query: TopKQuery) -> usize {
        self.queries.push(query);
        self.queries.len() - 1
    }

    /// The admitted queries, in admission order.
    pub fn queries(&self) -> &[TopKQuery] {
        &self.queries
    }

    /// Number of admitted queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether no query has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Runs every admitted query against the shared `source` with a batch-
    /// local scratch pool. Results come back in admission order, each
    /// exactly what the sequential engine returns for that query —
    /// per-query failures stay in their own slot and never poison the
    /// rest of the batch.
    pub fn run<S: CellSource + Sync>(
        &self,
        source: &S,
        pool: &WorkerPool,
    ) -> Vec<Result<GridTopK, CoreError>> {
        self.run_with_pool(source, pool, &mut ScratchPool::new())
    }

    /// [`run`](QueryBatch::run) with per-worker scratches reused from (and
    /// returned to) a session-level [`ScratchPool`], so consecutive
    /// batches over the same index allocate nothing once warm. Results
    /// are bit-identical to [`run`](QueryBatch::run).
    pub fn run_with_pool<S: CellSource + Sync>(
        &self,
        source: &S,
        pool: &WorkerPool,
        scratch_pool: &mut ScratchPool,
    ) -> Vec<Result<GridTopK, CoreError>> {
        let n = self.queries.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = pool.threads().min(n);
        // Cache-aware schedule: queries predicted to land on the same page
        // are adjacent, so each worker's contiguous slice re-reads the
        // tiles its predecessor query just warmed.
        let mut schedule: Vec<usize> = (0..n).collect();
        let keys: Vec<usize> = self
            .queries
            .iter()
            .map(|q| predicted_page(self.model, self.pyramids, *q, source).unwrap_or(usize::MAX))
            .collect();
        schedule.sort_by_key(|&qi| (keys[qi], qi));
        let chunk = n.div_ceil(workers);
        let parts: Vec<Vec<usize>> = schedule.chunks(chunk).map(<[usize]>::to_vec).collect();
        let scratches = scratch_pool.take(parts.len());
        let tasks: Vec<_> = parts
            .into_iter()
            .zip(scratches)
            .map(|(part, mut scratch)| {
                move |_i: usize| -> (IndexedResults, QueryScratch) {
                    let results = part
                        .into_iter()
                        .map(|qi| {
                            (
                                qi,
                                grid_query_with_scratch(
                                    self.model,
                                    self.pyramids,
                                    self.queries[qi],
                                    source,
                                    &mut scratch,
                                ),
                            )
                        })
                        .collect();
                    (results, scratch)
                }
            })
            .collect();
        let mut out: Vec<Option<Result<GridTopK, CoreError>>> = (0..n).map(|_| None).collect();
        for (results, scratch) in pool.run(tasks) {
            scratch_pool.scratches.push(scratch);
            for (qi, result) in results {
                out[qi] = Some(result);
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every admitted query executes"))
            .collect()
    }
}

/// Predicts the page a query's descent lands on: one greedy walk from the
/// pyramid root always taking the child whose box bound is most promising
/// for the query's objective (ties to the first child, matching the
/// frontier's coordinate tiebreak), mapped to its page. Best-effort — any
/// error yields `None` and the query schedules last.
fn predicted_page<S: CellSource>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    query: TopKQuery,
    source: &S,
) -> Option<usize> {
    let mut level = pyramids.first()?.levels().checked_sub(1)?;
    let mut cell = CellCoord::new(0, 0);
    let mut children: Vec<CellCoord> = Vec::with_capacity(4);
    let mut ranges: Vec<(f64, f64)> = Vec::with_capacity(pyramids.len());
    while level > 0 {
        pyramids[0].children_into(level, cell.row, cell.col, &mut children);
        let mut best: Option<(f64, CellCoord)> = None;
        for &child in children.iter() {
            ranges.clear();
            for p in pyramids {
                let s = p.cell(level - 1, child.row, child.col).ok()?;
                ranges.push((s.min, s.max));
            }
            let (lo, hi) = model.bound_over_box(&ranges).ok()?;
            // For minimization the promising child is the one whose box
            // can reach lowest — the negated-model maximum.
            let key = match query.objective() {
                Objective::Maximize => hi,
                Objective::Minimize => -lo,
            };
            if best.is_none_or(|(b, _)| key > b) {
                best = Some((key, child));
            }
        }
        let (_, next) = best?;
        cell = next;
        level -= 1;
    }
    source.page_of(cell.row, cell.col)
}

/// One query against a [`CellSource`] — the per-query unit the batch
/// schedules. Dispatches on the objective by negating the model for
/// minimization, mirroring [`grid_query`](crate::engine::grid_query).
///
/// # Errors
///
/// Same as [`pyramid_top_k_with_source`].
pub fn grid_query_with_source<S: CellSource>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    query: TopKQuery,
    source: &S,
) -> Result<GridTopK, CoreError> {
    grid_query_with_scratch(model, pyramids, query, source, &mut QueryScratch::new())
}

/// [`grid_query_with_source`] with descent buffers reused from `scratch`,
/// so a worker running many queries in sequence allocates nothing once
/// warm. Results are bit-identical to [`grid_query_with_source`].
///
/// # Errors
///
/// Same as [`pyramid_top_k_with_source`].
pub fn grid_query_with_scratch<S: CellSource>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    query: TopKQuery,
    source: &S,
    scratch: &mut QueryScratch,
) -> Result<GridTopK, CoreError> {
    match query.objective() {
        Objective::Maximize => {
            pyramid_top_k_with_scratch(model, pyramids, query.k(), source, scratch)
        }
        Objective::Minimize => {
            let negated = LinearModel::new(
                model.coefficients().iter().map(|a| -a).collect(),
                -model.intercept(),
            )
            .map_err(CoreError::Model)?;
            let mut result =
                pyramid_top_k_with_scratch(&negated, pyramids, query.k(), source, scratch)?;
            for sc in &mut result.results {
                sc.score = -sc.score;
            }
            Ok(result)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::grid_query;
    use crate::source::{CachedTileSource, TileSource};
    use mbir_archive::grid::Grid2;
    use mbir_archive::stats::AccessStats;
    use mbir_archive::tile::TileStore;

    fn batch_world(
        rows: usize,
        cols: usize,
        tile: usize,
    ) -> (
        LinearModel,
        Vec<AggregatePyramid>,
        Vec<TileStore>,
        AccessStats,
    ) {
        let grids: Vec<Grid2<f64>> = (0..2)
            .map(|i| {
                Grid2::from_fn(rows, cols, |r, c| {
                    ((r as f64 / 7.0 + i as f64).sin() + (c as f64 / 13.0).cos()) * 40.0 + 90.0
                })
            })
            .collect();
        let pyramids = grids.iter().map(AggregatePyramid::build).collect();
        let stats = AccessStats::new();
        let stores = grids
            .iter()
            .map(|g| {
                TileStore::new(g.clone(), tile)
                    .unwrap()
                    .with_stats(stats.clone())
            })
            .collect();
        let model = LinearModel::new(vec![1.0, -0.5], 0.25).unwrap();
        (model, pyramids, stores, stats)
    }

    fn mixed_batch<'a>(model: &'a LinearModel, pyramids: &'a [AggregatePyramid]) -> QueryBatch<'a> {
        let mut batch = QueryBatch::new(model, pyramids);
        for i in 0..9 {
            let q = if i % 3 == 0 {
                TopKQuery::new(1 + i % 4, Objective::Minimize).unwrap()
            } else {
                TopKQuery::max(1 + i % 5).unwrap()
            };
            batch.admit(q);
        }
        batch
    }

    #[test]
    fn scheduled_batch_results_stay_in_admission_order() {
        let (model, pyramids, stores, _) = batch_world(48, 48, 8);
        let batch = mixed_batch(&model, &pyramids);
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let src = TileSource::new(&stores).unwrap();
            let outs = batch.run(&src, &pool);
            assert_eq!(outs.len(), batch.len());
            for (qi, out) in outs.iter().enumerate() {
                let solo = grid_query(&model, &pyramids, batch.queries()[qi]).unwrap();
                assert_eq!(
                    out.as_ref().unwrap().results,
                    solo.results,
                    "threads={threads} q={qi}"
                );
            }
        }
    }

    #[test]
    fn session_scratch_pool_stops_regrowing() {
        let (model, pyramids, stores, _) = batch_world(48, 48, 8);
        let batch = mixed_batch(&model, &pyramids);
        let pool = WorkerPool::new(4);
        let mut scratches = ScratchPool::new();
        let src = TileSource::new(&stores).unwrap();
        let first = batch.run_with_pool(&src, &pool, &mut scratches);
        let warm = scratches.regrowths();
        assert!(!scratches.is_empty());
        for _ in 0..3 {
            let src = TileSource::new(&stores).unwrap();
            let again = batch.run_with_pool(&src, &pool, &mut scratches);
            for (a, b) in again.iter().zip(first.iter()) {
                assert_eq!(a.as_ref().unwrap().results, b.as_ref().unwrap().results);
            }
            assert_eq!(
                scratches.regrowths(),
                warm,
                "a warmed session scratch pool must not regrow"
            );
        }
    }

    #[test]
    fn cache_aware_schedule_compounds_hits() {
        let (model, pyramids, stores, stats) = batch_world(64, 64, 8);
        // Many identical queries: they predict the same page, schedule
        // adjacently, and after the first query warms the cache the rest
        // hit it.
        let mut batch = QueryBatch::new(&model, &pyramids);
        for _ in 0..8 {
            batch.admit(TopKQuery::max(5).unwrap());
        }
        let pool = WorkerPool::new(1);
        let src = CachedTileSource::new(&stores, 256).unwrap();
        let outs = batch.run(&src, &pool);
        assert!(outs.iter().all(Result::is_ok));
        assert!(
            stats.cache_hits() > stats.cache_misses(),
            "hits {} should dominate misses {}",
            stats.cache_hits(),
            stats.cache_misses()
        );
    }

    #[test]
    fn predicted_page_is_in_range_for_both_objectives() {
        let (model, pyramids, stores, _) = batch_world(32, 32, 8);
        let src = TileSource::new(&stores).unwrap();
        let pages = stores[0].page_count();
        for q in [
            TopKQuery::max(3).unwrap(),
            TopKQuery::new(3, Objective::Minimize).unwrap(),
        ] {
            let page = predicted_page(&model, &pyramids, q, &src).unwrap();
            assert!(page < pages, "page {page} out of {pages}");
        }
    }

    #[test]
    fn empty_batch_runs_to_nothing() {
        let (model, pyramids, stores, _) = batch_world(16, 16, 8);
        let batch = QueryBatch::new(&model, &pyramids);
        let pool = WorkerPool::new(2);
        let src = TileSource::new(&stores).unwrap();
        assert!(batch.run(&src, &pool).is_empty());
        assert!(batch.is_empty());
    }
}
